//! Minimal offline stand-in for `rand`.
//!
//! The build environment has no registry access, so the workspace vendors
//! just the surface it uses: `StdRng::seed_from_u64`, the `Rng` core trait,
//! and `RngExt::random::<f64>()`. The generator is xoshiro256++ seeded via
//! SplitMix64 — a deterministic, high-quality 64-bit PRNG, which is all the
//! seeded experiments and tests require. Not cryptographically secure.

/// Core random-number source: a stream of `u64`s.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's output stream.
pub trait UniformRandom: Sized {
    fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl UniformRandom for u64 {
    fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformRandom for u32 {
    fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformRandom for bool {
    fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl UniformRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(x >> 11) * 2^-53` construction).
    fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformRandom for f32 {
    fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience sampling methods over any [`Rng`].
pub trait RngExt: Rng {
    fn random<T: UniformRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::uniform_random(self)
    }
}

impl<R: Rng> RngExt for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_and_reasonable_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
