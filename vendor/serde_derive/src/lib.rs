//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many plain-data types
//! but never serializes them through a format crate (the only real use is the
//! hand-written `impl Serialize for Telemetry`). These derives therefore
//! expand to nothing: the attribute compiles, and types simply don't get the
//! trait impls until a real serializer is needed.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
