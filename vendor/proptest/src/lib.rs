//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: range strategies
//! over ints/floats, tuple strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, `prop::num::*::ANY`, and the `proptest!`/
//! `prop_assert!` macros. Each test runs a fixed number of cases from a
//! deterministic per-test seed (derived from the test's module path), so
//! failures replay identically. No shrinking: a failing case panics with the
//! sampled values left to the assertion message.

pub mod test_runner {
    /// Cases per `proptest!` test. Small enough to keep `cargo test` fast,
    /// large enough to exercise the input space.
    pub const CASES: u32 = 64;

    /// Deterministic generator state (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct Gen {
        state: u64,
    }

    impl Gen {
        /// Seed from a test name so every test gets its own stream but
        /// replays identically run-to-run.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Gen { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift bounded sampling: negligible bias at test scale.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::Gen;
    use std::ops::{Range, RangeInclusive};

    /// Produces values of `Self::Value` from a deterministic generator.
    pub trait Strategy {
        type Value;
        fn generate(&self, gen: &mut Gen) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, gen: &mut Gen) -> Self::Value {
            (**self).generate(gen)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, gen: &mut Gen) -> $ty {
                        assert!(self.start < self.end, "empty integer range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + gen.below(span) as i128) as $ty
                    }
                }

                impl Strategy for RangeInclusive<$ty> {
                    type Value = $ty;
                    fn generate(&self, gen: &mut Gen) -> $ty {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty integer range strategy");
                        let span = (hi as i128 - lo as i128 + 1) as u128;
                        if span > u64::MAX as u128 {
                            return gen.next_u64() as $ty;
                        }
                        (lo as i128 + gen.below(span as u64) as i128) as $ty
                    }
                }
            )*
        };
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, gen: &mut Gen) -> f64 {
            self.start + gen.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, gen: &mut Gen) -> f64 {
            self.start() + gen.unit_f64() * (self.end() - self.start())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, gen: &mut Gen) -> f32 {
            self.start + gen.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {
            $(
                #[allow(non_snake_case)]
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    fn generate(&self, gen: &mut Gen) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(gen),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Samples any value of a primitive type uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_any_int {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Any<$ty> {
                    type Value = $ty;
                    fn generate(&self, gen: &mut Gen) -> $ty {
                        gen.next_u64() as $ty
                    }
                }
            )*
        };
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, gen: &mut Gen) -> bool {
            gen.next_u64() >> 63 == 1
        }
    }

    /// Collection length: exact or sampled from a range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        Exact(usize),
        /// Half-open `[lo, hi)`, matching `Range<usize>` semantics.
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Between(r.start, r.end)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange::Between(*r.start(), r.end() + 1)
        }
    }

    /// `prop::collection::vec(element, size)` strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Between(lo, hi) => {
                    assert!(lo < hi, "empty vec size range");
                    lo + gen.below((hi - lo) as u64) as usize
                }
            };
            (0..len).map(|_| self.element.generate(gen)).collect()
        }
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`'s layout
/// (`prop::collection::vec`, `prop::bool::ANY`, `prop::num::u8::ANY`, …).
pub mod prop {
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    #[allow(non_camel_case_types)]
    pub mod bool {
        use crate::strategy::Any;
        use std::marker::PhantomData;

        pub const ANY: Any<bool> = Any(PhantomData);
    }

    pub mod num {
        macro_rules! any_mod {
            ($($m:ident: $ty:ty),*) => {
                $(
                    pub mod $m {
                        use crate::strategy::Any;
                        use std::marker::PhantomData;

                        pub const ANY: Any<$ty> = Any(PhantomData);
                    }
                )*
            };
        }

        any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
                 i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
    }
}

/// Defines property tests: each named test samples its arguments from the
/// given strategies for [`test_runner::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut gen = $crate::test_runner::Gen::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..$crate::test_runner::CASES {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut gen);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Assertion inside a `proptest!` body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn int_ranges_in_bounds(x in 3u8..9, y in 0usize..4, z in 8u8..=8) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
            prop_assert_eq!(z, 8);
        }

        #[test]
        fn float_range_in_bounds(x in -1.5f64..2.5) {
            prop_assert!((-1.5..2.5).contains(&x));
        }

        #[test]
        fn vec_sizes_respected(exact in prop::collection::vec(0u32..10, 16),
                               ranged in prop::collection::vec(prop::bool::ANY, 1..12)) {
            prop_assert_eq!(exact.len(), 16);
            prop_assert!((1..12).contains(&ranged.len()));
            prop_assert!(exact.iter().all(|&v| v < 10));
        }

        #[test]
        fn tuples_compose(t in (0u64..20, 0u8..10, prop::num::u8::ANY, prop::bool::ANY)) {
            prop_assert!(t.0 < 20);
            prop_assert!(t.1 < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::Gen;
        let strat = prop::collection::vec(0.0f64..1.0, 0..50);
        let a: Vec<Vec<f64>> = {
            let mut g = Gen::from_name("seed");
            (0..20).map(|_| strat.generate(&mut g)).collect()
        };
        let b: Vec<Vec<f64>> = {
            let mut g = Gen::from_name("seed");
            (0..20).map(|_| strat.generate(&mut g)).collect()
        };
        assert_eq!(a, b);
    }
}
