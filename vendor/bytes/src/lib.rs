//! Minimal offline stand-in for `bytes`.
//!
//! Backed by a plain `Vec<u8>` plus a read cursor instead of refcounted
//! shared buffers — the wire codec only needs sequential big-endian
//! reads/writes and slice access, and the semantics here (consuming reads
//! shrink `len()`/`Deref`, network byte order) match upstream `bytes` for
//! that surface.

use std::ops::{Deref, DerefMut};

/// Sequential big-endian reader over a byte buffer. Reads consume.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Sequential big-endian writer onto a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// An immutable byte buffer with a consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of a subrange (indices relative to the unread portion).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::from(self[start..end].to_vec())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// A growable byte buffer for building frames.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance past end of BytesMut");
        self.data.drain(..cnt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u16(513);
        buf.put_f64(-2.5);
        buf.put_slice(&[1, 2, 3]);
        assert_eq!(buf.len(), 4 + 1 + 2 + 8 + 3);

        let mut data = buf.freeze();
        assert_eq!(data[0], 0xDE); // network byte order
        assert_eq!(data.get_u32(), 0xDEAD_BEEF);
        assert_eq!(data.get_u8(), 7);
        assert_eq!(data.get_u16(), 513);
        assert_eq!(data.get_f64(), -2.5);
        assert_eq!(data.remaining(), 3);
        assert_eq!(&data[..], &[1, 2, 3]);
    }

    #[test]
    fn consuming_reads_shrink_len() {
        let mut data = Bytes::from(vec![0, 0, 0, 9, 42]);
        assert_eq!(data.len(), 5);
        assert_eq!(data.get_u32(), 9);
        assert_eq!(data.len(), 1);
        assert_eq!(&data[..], &[42]);
    }

    #[test]
    #[should_panic]
    fn over_read_panics() {
        let mut data = Bytes::from(vec![1u8]);
        let _ = data.get_u32();
    }
}
