//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace vendors the
//! slice of serde it actually uses: the `Serialize`/`Serializer`/
//! `SerializeStruct` trait surface exercised by `surfos::telemetry`, plus the
//! derive-macro names (`serde_derive` shims them as no-ops). The trait
//! contracts match upstream serde, so swapping the real crate back in is a
//! one-line `Cargo.toml` change.

pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    /// A data structure that can be serialized.
    pub trait Serialize {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// A data format that can serialize values.
    pub trait Serializer: Sized {
        type Ok;
        type Error;
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
    }

    /// Returned from `Serializer::serialize_struct`.
    pub trait SerializeStruct {
        type Ok;
        type Error;

        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;

        fn end(self) -> Result<Self::Ok, Self::Error>
        where
            Self: Sized;
    }

    macro_rules! impl_serialize_int {
        ($($ty:ty => $method:ident as $target:ty),* $(,)?) => {
            $(impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self as $target)
                }
            })*
        };
    }

    impl_serialize_int! {
        i8 => serialize_i64 as i64,
        i16 => serialize_i64 as i64,
        i32 => serialize_i64 as i64,
        i64 => serialize_i64 as i64,
        isize => serialize_i64 as i64,
        u8 => serialize_u64 as u64,
        u16 => serialize_u64 as u64,
        u32 => serialize_u64 as u64,
        u64 => serialize_u64 as u64,
        usize => serialize_u64 as u64,
        f32 => serialize_f64 as f64,
        f64 => serialize_f64 as f64,
    }

    impl Serialize for bool {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_bool(*self)
        }
    }

    impl Serialize for str {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl Serialize for String {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }
}

pub mod de {
    /// A data format that can deserialize values.
    pub trait Deserializer<'de>: Sized {
        type Error;
    }

    /// A data structure that can be deserialized.
    pub trait Deserialize<'de>: Sized {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }
}

pub use de::Deserializer;
pub use ser::{Serialize, Serializer};
