//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace vendors the
//! slice of serde it actually uses: the `Serialize`/`Serializer` trait surface
//! exercised by `surfos::telemetry` and `surfos-obs` (structs, sequences and
//! maps), plus the derive-macro names (`serde_derive` shims them as no-ops).
//! The trait contracts match upstream serde, so swapping the real crate back
//! in is a one-line `Cargo.toml` change.

pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    /// A data structure that can be serialized.
    pub trait Serialize {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// A data format that can serialize values.
    pub trait Serializer: Sized {
        type Ok;
        type Error;
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
        type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
    }

    /// Returned from `Serializer::serialize_seq`.
    pub trait SerializeSeq {
        type Ok;
        type Error;

        fn serialize_element<T: ?Sized + Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;

        fn end(self) -> Result<Self::Ok, Self::Error>
        where
            Self: Sized;
    }

    /// Returned from `Serializer::serialize_map`.
    pub trait SerializeMap {
        type Ok;
        type Error;

        fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;

        fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;

        fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Self::Error> {
            self.serialize_key(key)?;
            self.serialize_value(value)
        }

        fn end(self) -> Result<Self::Ok, Self::Error>
        where
            Self: Sized;
    }

    /// Returned from `Serializer::serialize_struct`.
    pub trait SerializeStruct {
        type Ok;
        type Error;

        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;

        fn end(self) -> Result<Self::Ok, Self::Error>
        where
            Self: Sized;
    }

    macro_rules! impl_serialize_int {
        ($($ty:ty => $method:ident as $target:ty),* $(,)?) => {
            $(impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self as $target)
                }
            })*
        };
    }

    impl_serialize_int! {
        i8 => serialize_i64 as i64,
        i16 => serialize_i64 as i64,
        i32 => serialize_i64 as i64,
        i64 => serialize_i64 as i64,
        isize => serialize_i64 as i64,
        u8 => serialize_u64 as u64,
        u16 => serialize_u64 as u64,
        u32 => serialize_u64 as u64,
        u64 => serialize_u64 as u64,
        usize => serialize_u64 as u64,
        f32 => serialize_f64 as f64,
        f64 => serialize_f64 as f64,
    }

    impl Serialize for bool {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_bool(*self)
        }
    }

    impl Serialize for str {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl Serialize for String {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }

    impl<T: Serialize> Serialize for [T] {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut seq = serializer.serialize_seq(Some(self.len()))?;
            for item in self {
                seq.serialize_element(item)?;
            }
            seq.end()
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            self.as_slice().serialize(serializer)
        }
    }

    impl<T: Serialize, const N: usize> Serialize for [T; N] {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            self.as_slice().serialize(serializer)
        }
    }

    impl<A: Serialize, B: Serialize> Serialize for (A, B) {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut seq = serializer.serialize_seq(Some(2))?;
            seq.serialize_element(&self.0)?;
            seq.serialize_element(&self.1)?;
            seq.end()
        }
    }

    impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut map = serializer.serialize_map(Some(self.len()))?;
            for (k, v) in self {
                map.serialize_entry(k, v)?;
            }
            map.end()
        }
    }
}

pub mod de {
    /// A data format that can deserialize values.
    pub trait Deserializer<'de>: Sized {
        type Error;
    }

    /// A data structure that can be deserialized.
    pub trait Deserialize<'de>: Sized {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }
}

pub use de::Deserializer;
pub use ser::{Serialize, Serializer};
