//! Minimal offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`Criterion`/`Bencher` API
//! the benches are written against, with a much lighter measurement loop:
//! short warmup to calibrate iterations-per-sample, then a fixed number of
//! timed samples whose **median ns/iter** is reported. Two extras for perf
//! tracking:
//!
//! - CLI filter: `cargo bench --bench channel_sim -- heatmap` runs only
//!   benchmark ids containing `heatmap` (substring match, like criterion).
//! - Machine-readable output: when `CRITERION_JSONL` names a file, each
//!   benchmark appends one JSON line `{"id": ..., "median_ns": ...}` —
//!   consumed by `scripts/perf_smoke.sh` to build `BENCH_channel.json`.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timed samples per benchmark.
const SAMPLES: usize = 15;
/// Target wall time per sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
/// Warmup budget used to calibrate iterations per sample.
const WARMUP: Duration = Duration::from_millis(25);

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver. [`Default::default`] reads the CLI filter.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` (and possibly other flags) before any
        // user filter; the first non-flag argument is the id filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.as_ref(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            criterion: self,
        }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }

        // Warmup + calibration: estimate ns/iter, pick iters per sample.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_elapsed = Duration::ZERO;
        while warm_start.elapsed() < WARMUP || warm_iters == 0 {
            f(&mut b);
            warm_iters += b.iters;
            warm_elapsed += b.elapsed;
            b.iters = (b.iters * 2).min(1 << 20);
        }
        let est_ns = (warm_elapsed.as_nanos() as f64 / warm_iters as f64).max(0.1);
        let iters = ((TARGET_SAMPLE.as_nanos() as f64 / est_ns).ceil() as u64).max(1);

        let mut per_iter_ns: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                b.iters = iters;
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[SAMPLES / 2];

        println!(
            "bench: {id:<50} median {median:>14.1} ns/iter ({SAMPLES} samples x {iters} iters)"
        );
        record(id, median);
    }
}

/// Benchmark group, created by [`Criterion::benchmark_group`]; ids are
/// reported as `group/bench`.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run(&full, f);
        self
    }

    pub fn finish(self) {}
}

fn record(id: &str, median_ns: f64) {
    let Ok(path) = std::env::var("CRITERION_JSONL") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(file, "{{\"id\": \"{id}\", \"median_ns\": {median_ns:.1}}}");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_monotonic_work() {
        let mut c = Criterion { filter: None };
        c.bench_function("smoke/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_ids_are_prefixed_and_filter_skips() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("skipped", |b| {
            b.iter(|| panic!("filtered benches must not run"))
        });
        group.finish();
    }
}
