#!/usr/bin/env bash
# Regenerates every paper artefact into results/ (stdout + CSV series).
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
for bin in table1 fig2 fig4 fig5 fig6 ablations; do
    echo "== $bin =="
    cargo run --release -p surfos-bench --bin "$bin" -- --csv results \
        > "results/$bin.txt" 2> >(grep -v '^\s*Compiling\|^\s*Finished\|^\s*Running' >&2 || true)
done

# Observability snapshot of the apartment demo scenario: the
# deterministic projection (wall-clock series dropped) is byte-identical
# across runs, so this file diffs cleanly between commits.
echo "== metrics (apartment demo) =="
cargo run --release -p surfos --bin surfosd -- \
    --metrics-json results/metrics_apartment.json --deterministic-metrics \
    examples/demo.surfos > results/demo_apartment.txt

# Service-plane snapshot: a real `surfosd serve` daemon on an ephemeral
# loopback port driven by a closed-loop single-connection surfos-loadgen
# run (fixed request count and op mix, one worker), so the deterministic
# metrics projection is byte-identical across runs and diffs cleanly.
echo "== metrics (service plane) =="
cargo build -q --release -p surfos -p surfos-bench --bin surfosd --bin surfos-loadgen
serve_ctl="$(mktemp -d)"
serve_log="$(mktemp)"
trap 'rm -rf "$serve_ctl"; rm -f "$serve_log"' EXIT
mkfifo "$serve_ctl/ctl"
target/release/surfosd serve --listen 127.0.0.1:0 --workers 1 \
    --metrics-json results/metrics_service.json --deterministic-metrics \
    < "$serve_ctl/ctl" > "$serve_log" &
serve_pid=$!
exec 9> "$serve_ctl/ctl"
port=""
for _ in $(seq 100); do
    port="$(sed -n 's/^surfosd: listening on 127.0.0.1:\([0-9][0-9]*\)$/\1/p' "$serve_log")"
    [[ -n "$port" ]] && break
    sleep 0.1
done
[[ -n "$port" ]] || { echo "surfosd serve never reported its port" >&2; kill "$serve_pid"; exit 1; }
target/release/surfos-loadgen --connect "127.0.0.1:$port" \
    --conns 1 --requests 200 --mix query:8,register:1 > /dev/null
echo quit >&9
exec 9>&-
wait "$serve_pid"

echo "results/ written"
