#!/usr/bin/env bash
# Regenerates every paper artefact into results/ (stdout + CSV series).
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
for bin in table1 fig2 fig4 fig5 fig6 ablations; do
    echo "== $bin =="
    cargo run --release -p surfos-bench --bin "$bin" -- --csv results \
        > "results/$bin.txt" 2> >(grep -v '^\s*Compiling\|^\s*Finished\|^\s*Running' >&2 || true)
done

# Observability snapshot of the apartment demo scenario: the
# deterministic projection (wall-clock series dropped) is byte-identical
# across runs, so this file diffs cleanly between commits.
echo "== metrics (apartment demo) =="
cargo run --release -p surfos --bin surfosd -- \
    --metrics-json results/metrics_apartment.json --deterministic-metrics \
    examples/demo.surfos > results/demo_apartment.txt

echo "results/ written"
