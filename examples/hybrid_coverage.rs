//! Hybrid heterogeneous deployment (the paper's Figure 4 scenario as an
//! application): a nearly-free passive backhaul surface relays the AP's
//! beam through the doorway onto a small programmable surface that steers
//! to wherever the user is.
//!
//! ```text
//! cargo run --release -p surfos --example hybrid_coverage
//! ```

use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::em::phase::quantize_phase;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::{Pose, Vec3};
use surfos::hw::cost::DeploymentCost;
use surfos::hw::granularity::Reconfigurability;
use surfos::hw::spec::{ControlCapability, HardwareSpec, SurfaceMode};

fn passive_spec(n: usize, band: surfos::em::band::Band) -> HardwareSpec {
    HardwareSpec {
        model: "PrintedBackhaul".into(),
        band,
        mode: SurfaceMode::Reflective,
        capabilities: vec![ControlCapability::Phase { bits: 3 }],
        reconfigurability: Reconfigurability::Passive,
        rows: n,
        cols: n,
        pitch_m: band.wavelength_m() / 2.0,
        efficiency: 0.8,
        control_delay_us: None,
        config_slots: 1,
        cost_per_element_usd: 0.002,
        base_cost_usd: 2.0,
        power_mw: 0.0,
    }
}

fn prog_spec(n: usize, band: surfos::em::band::Band) -> HardwareSpec {
    HardwareSpec {
        model: "SteeringTile".into(),
        band,
        mode: SurfaceMode::Reflective,
        capabilities: vec![ControlCapability::Phase { bits: 2 }],
        reconfigurability: Reconfigurability::ElementWise,
        rows: n,
        cols: n,
        pitch_m: band.wavelength_m() / 2.0,
        efficiency: 0.8,
        control_delay_us: Some(1000),
        config_slots: 8,
        cost_per_element_usd: 2.5,
        base_cost_usd: 90.0,
        power_mw: 500.0,
    }
}

fn main() {
    let scen = two_room_apartment();
    let band = NamedBand::MmWave28GHz.band();
    let mut sim = ChannelSim::new(scen.plan.clone(), band);

    // Deploy: 64×64 passive backhaul on the living-room wall, 16×16
    // programmable steering tile on the bedroom wall.
    let backhaul_pose = *scen.anchor("living-wall").unwrap();
    let steer_pose = *scen.anchor("bedroom-wall").unwrap();
    let backhaul = sim.add_surface(surfos::channel::SurfaceInstance::new(
        "backhaul",
        backhaul_pose,
        surfos::em::array::ArrayGeometry::half_wavelength(64, 64, band.wavelength_m()),
        surfos::channel::OperationMode::Reflective,
    ));
    let steer = sim.add_surface(surfos::channel::SurfaceInstance::new(
        "steer",
        steer_pose,
        surfos::em::array::ArrayGeometry::half_wavelength(16, 16, band.wavelength_m()),
        surfos::channel::OperationMode::Reflective,
    ));

    // AP aims at the backhaul.
    let ap = Endpoint::access_point(
        "ap0",
        Pose::wall_mounted(
            scen.ap_pose.position,
            backhaul_pose.position - scen.ap_pose.position,
        ),
    );

    // A user walks a diagonal through the bedroom.
    let waypoints = [
        Vec3::new(5.6, 0.8, 1.2),
        Vec3::new(6.5, 1.6, 1.2),
        Vec3::new(7.4, 2.4, 1.2),
        Vec3::new(8.2, 3.2, 1.2),
    ];
    let user = Endpoint::client("user", waypoints[0]);

    // Fabricate the backhaul once: phase-conjugate the cascade α (which is
    // receiver-independent), i.e. focus the AP's energy onto the steering
    // tile. This pattern is then frozen — passive hardware.
    let lin = sim.linearize(&ap, &user);
    let cascade = lin
        .bilinear
        .iter()
        .find(|b| b.first == backhaul && b.second == steer)
        .expect("cascade exists");
    let backhaul_phases: Vec<f64> = cascade
        .alpha
        .iter()
        .map(|a| quantize_phase(-a.arg(), 3))
        .collect();
    sim.surface_mut(backhaul).set_phases(&backhaul_phases);

    let costs = DeploymentCost::of(&[passive_spec(64, band), prog_spec(16, band)]);
    println!(
        "Hybrid deployment: ${:.0} hardware, {:.3} m² aperture, {:.1} W",
        costs.hardware_usd,
        costs.area_m2,
        costs.power_mw / 1000.0
    );
    println!("Backhaul fabricated once; steering tile re-aims per user position.\n");

    // As the user moves, only the small programmable tile reconfigures.
    println!(
        "{:<24} {:>12} {:>14}",
        "user position", "SNR (dB)", "capacity"
    );
    for p in waypoints {
        let mut rx = user.clone();
        rx.pose.position = p;
        let lin = sim.linearize(&ap, &rx);
        let beta_phases: Vec<f64> = lin
            .bilinear
            .iter()
            .find(|b| b.first == backhaul && b.second == steer)
            .map(|b| b.beta.iter().map(|c| quantize_phase(-c.arg(), 2)).collect())
            .unwrap_or_else(|| vec![0.0; 256]);
        sim.surface_mut(steer).set_phases(&beta_phases);
        let budget = sim.link_budget(&ap, &rx);
        println!(
            "{:<24} {:>12.1} {:>11.0} Mb/s",
            format!("{p}"),
            budget.snr_db,
            budget.capacity_bps / 1e6
        );
        assert!(
            budget.snr_db > 10.0,
            "steered link must be usable everywhere"
        );
    }

    println!("\nThe passive aperture does the heavy lifting; the programmable");
    println!("tile provides the agility — the paper's hybrid trade-off.");
}
