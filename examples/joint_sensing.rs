//! Joint communication and sensing on one shared surface configuration —
//! the paper's Figure 5 multitasking as an application.
//!
//! A single surface serves a video stream *and* tracks the user, with one
//! configuration jointly optimized for both. Neither service starves the
//! other.
//!
//! ```text
//! cargo run --release -p surfos --example joint_sensing
//! ```

use rand::SeedableRng;
use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::{Pose, Vec3};
use surfos::orchestrator::objective::{CoverageObjective, LocalizationObjective, MultiObjective};
use surfos::orchestrator::optimizer::{adam, AdamOptions, Tying};
use surfos::sensing::aoa::AngleGrid;
use surfos::sensing::eval::evaluate_localization;

fn main() {
    let scen = two_room_apartment();
    let band = NamedBand::MmWave28GHz.band();
    let mut sim = ChannelSim::new(scen.plan.clone(), band);

    let pose = *scen.anchor("bedroom-north").unwrap();
    let n = 32;
    let idx = sim.add_surface(surfos::channel::SurfaceInstance::new(
        "shared",
        pose,
        surfos::em::array::ArrayGeometry::half_wavelength(n, n, band.wavelength_m()),
        surfos::channel::OperationMode::Reflective,
    ));
    let ap = Endpoint::access_point(
        "ap0",
        Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
    );

    let room = scen.target();
    let grid = room.sample_grid(6, 6, 1.2, 0.4);
    let probe = Endpoint::client("probe", grid[0]);

    // The joint objective: coverage capacity + localization cross-entropy.
    let joint = MultiObjective::new()
        .with(
            Box::new(CoverageObjective::new(&sim, &ap, &grid, &probe)),
            1.0,
        )
        .with(
            Box::new(LocalizationObjective::new(
                &sim,
                idx,
                &ap,
                &probe,
                &grid,
                AngleGrid::uniform(41, 1.3),
            )),
            60.0,
        );

    let result = adam(
        &joint,
        &[vec![0.0; n * n]],
        &Tying::element_wise(1),
        AdamOptions {
            iters: 200,
            lr: 0.15,
            ..Default::default()
        },
    );
    sim.surface_mut(idx).set_phases(&result.phases[0]);
    println!(
        "Jointly optimized one {n}×{n} configuration (loss {:.1}).\n",
        result.loss
    );

    // Service 1: the stream. Check SNR wherever the user may stand.
    let snr = sim.snr_heatmap(&ap, &grid, &probe);
    println!(
        "Communication: median SNR {:.1} dB, worst {:.1} dB over {} spots",
        snr.median(),
        snr.min(),
        snr.len()
    );

    // Service 2: tracking. Localize a user walking through the room using
    // the SAME configuration.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let walk = [
        Vec3::new(5.8, 1.0, 1.2),
        Vec3::new(6.6, 1.8, 1.2),
        Vec3::new(7.4, 2.6, 1.2),
        Vec3::new(8.2, 3.2, 1.2),
    ];
    let errs = evaluate_localization(
        &sim,
        idx,
        &ap,
        &probe,
        &walk,
        AngleGrid::uniform(81, 1.3),
        0.0,
        &mut rng,
    );
    println!("\nSensing (same configuration):");
    for (p, e) in walk.iter().zip(&errs) {
        println!("  user at {p} → localization error {e:.2} m");
    }
    let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
    println!(
        "\nMean tracking error {mean_err:.2} m while streaming at median {:.1} dB —",
        snr.median()
    );
    println!("one surface, one configuration, two services (Figure 5's claim).");

    assert!(snr.median() > 10.0, "stream must be healthy");
    assert!(mean_err < 0.75, "tracking must stay accurate");
}
