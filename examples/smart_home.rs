//! A smart-home day in the life: the service broker watches traffic,
//! infers demands, invokes services; the environment changes (a person
//! walks through the beam) and the runtime adapts — the paper's §5
//! argument for an OS-like runtime over a compile-time library.
//!
//! ```text
//! cargo run --release -p surfos --example smart_home
//! ```

use surfos::broker::monitor::{classify, FlowStats};
use surfos::broker::translate::translate_demand;
use surfos::broker::{AppClass, AppDemand};
use surfos::channel::dynamics::{Blocker, BlockerWalk};
use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::{Pose, Vec3};
use surfos::hw::designs;
use surfos::hw::driver::ProgrammableDriver;
use surfos::sensing::motion::MotionDetector;
use surfos::SurfOS;

fn main() {
    let scen = two_room_apartment();
    let band = NamedBand::MmWave28GHz.band();
    let sim = ChannelSim::new(scen.plan.clone(), band);
    let mut os = SurfOS::new(sim);
    os.set_user_room("bedroom");

    let mut spec = designs::scatter_mimo();
    spec.band = band;
    spec.rows = 32;
    spec.cols = 32;
    spec.pitch_m = band.wavelength_m() / 2.0;
    let pose = *scen.anchor("bedroom-north").unwrap();
    os.deploy_surface("wall0", Box::new(ProgrammableDriver::new(spec)), pose);

    os.add_endpoint(Endpoint::access_point(
        "ap0",
        Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
    ));
    os.add_endpoint(Endpoint::client("tv", Vec3::new(7.5, 1.0, 1.0)));

    // --- The broker infers a demand from traffic, no user action -------
    let flow = FlowStats {
        rate_mbps: 45.0,
        ul_dl_ratio: 0.04,
        jitter_ms: 12.0,
        burstiness: 0.2,
    };
    let class = classify(&flow).expect("clear streaming signature");
    assert_eq!(class, AppClass::VideoStreaming);
    println!("Broker: flow {flow:?}\n  → classified as {class:?}");

    let demand = AppDemand::preset(class, "tv", "bedroom");
    let requests = translate_demand(&demand, band.bandwidth_hz);
    println!("  → {} service request(s):", requests.len());
    let mut tasks = Vec::new();
    for r in requests {
        println!("      {r}");
        tasks.push(os.submit(r));
    }

    // --- The kernel serves it -------------------------------------------
    for _ in 0..3 {
        os.step(10);
    }
    let metric = os.measure(tasks[0]).expect("link measurable");
    println!("\nStream running: tv link SNR {metric:.1} dB");
    assert!(metric > 10.0);

    // --- The environment misbehaves: someone walks through the beam ----
    let ap = os.orchestrator().ap().clone();
    let tv = os.orchestrator().endpoint("tv").unwrap().clone();
    let walk = BlockerWalk::new(
        vec![Vec3::xy(6.0, 3.5), Vec3::xy(7.2, 0.8)],
        0.8, // m/s
    );
    let mut detector = MotionDetector::new(0.08);
    println!("\nA person walks through the bedroom:");
    for tick in 0..8 {
        let t_s = tick as f64 * 0.5;
        let person: Blocker = walk.blocker_at(t_s);
        os.orchestrator_mut().sim.set_blockers(vec![person]);
        let h = os.orchestrator().sim.gain(&ap, &tv);
        let snr = os.orchestrator().sim.link_budget(&ap, &tv).snr_db;
        let motion = detector.observe(h);
        println!(
            "  t={t_s:>3.1}s person at {}  SNR {snr:>6.1} dB  {}",
            person.position.flat(),
            match motion {
                Some(d) => format!("MOTION detected (Δ={d:.2})"),
                None => "".to_string(),
            }
        );
        // The runtime reacts: re-schedule and re-optimize around the body.
        os.step(500);
    }
    os.orchestrator_mut().sim.clear_blockers();

    let recovered = os.measure(tasks[0]).expect("link measurable");
    println!("\nBlocker gone; link back at {recovered:.1} dB.");
    println!("A library configures once; a runtime keeps the room alive (§5).");
}
