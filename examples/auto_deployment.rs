//! The clean-slate automation workflow of the paper's §5: from a service
//! goal all the way to a running deployment, with no expert in the loop.
//!
//! 1. requirements → **design selection** from the published-design
//!    database (with band retargeting when nothing fits),
//! 2. design → **datasheet** → **driver generation**,
//! 3. goal + environment → **placement search** (which anchor, what size),
//! 4. deploy through the kernel and serve.
//!
//! ```text
//! cargo run --release -p surfos --example auto_deployment
//! ```

use surfos::autodeploy::{plan_deployment, Anchor, CoverageGoal};
use surfos::broker::designgen::{candidate_designs, write_datasheet, DesignRequirements};
use surfos::broker::drivergen::generate_driver;
use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::Pose;
use surfos::hw::cost::scaled;
use surfos::hw::designs::all_designs;
use surfos::SurfOS;

fn main() {
    let band = NamedBand::MmWave28GHz.band();
    let scen = two_room_apartment();

    // ---- 1. Requirements → design ---------------------------------------
    let requirements = DesignRequirements {
        band,
        mode: Some(surfos::hw::spec::SurfaceMode::Reflective),
        required_controls: vec!["phase".into()],
        needs_reconfiguration: true,
        max_cost_usd: Some(2_000.0),
        max_area_m2: None,
    };
    let candidates = candidate_designs(&all_designs(), &requirements);
    assert!(
        !candidates.is_empty(),
        "the database covers the requirements"
    );
    println!(
        "[design]     {} candidate design(s): {}",
        candidates.len(),
        candidates
            .iter()
            .map(|c| c.model.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // ---- 2. Goal + environment → placement ------------------------------
    let room = scen.target().clone();
    let goal = CoverageGoal {
        points: room.sample_grid(4, 4, 1.2, 0.4),
        // Validate on the same dense grid the kernel's coverage service
        // measures on, so predictions carry over to the running system.
        validation_points: Some(room.sample_grid(6, 6, 1.2, 0.4)),
        median_snr_db: 20.0,
    };
    let anchors: Vec<Anchor> = scen
        .anchors
        .iter()
        .map(|(name, pose)| Anchor {
            name: name.clone(),
            pose: *pose,
        })
        .collect();
    // The placement search models what each design's hardware actually
    // realizes (granularity, quantization), so a cheap row-wise design
    // that cannot steer in 2-D loses here to an element-wise one.
    let plan = plan_deployment(
        &scen.plan,
        scen.ap_pose.position,
        &anchors,
        &candidates,
        &goal,
    )
    .expect("goal reachable");
    println!(
        "[placement]  {} {}×{} at '{}' → predicted median {:.1} dB, ${:.0}",
        plan.spec.model,
        plan.spec.rows,
        plan.spec.cols,
        plan.anchor,
        plan.median_snr_db,
        plan.cost_usd
    );

    // ---- 3. Sized design → datasheet → driver ---------------------------
    let chosen = candidates
        .iter()
        .find(|c| plan.spec.model == c.model)
        .expect("plan came from a candidate");
    let sized = scaled(chosen, plan.spec.rows, plan.spec.cols);
    let datasheet = write_datasheet(&sized);
    println!("[datasheet]\n{}", indent(&datasheet));
    let driver = generate_driver(&datasheet).expect("driver synthesized");
    println!(
        "[driver]     generated for {} ({} elements, {}-bit phase)",
        driver.spec().model,
        driver.spec().element_count(),
        driver.spec().phase_bits().unwrap_or(0)
    );

    // ---- 4. Deploy and serve --------------------------------------------
    let sim = ChannelSim::new(scen.plan.clone(), band);
    let mut os = SurfOS::new(sim);
    os.set_user_room("bedroom");
    let pose = *scen.anchor(&plan.anchor).expect("planned anchor exists");
    os.deploy_surface("auto0", driver, pose);
    os.add_endpoint(Endpoint::access_point(
        "ap0",
        Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
    ));

    let task = os.submit(surfos::orchestrator::ServiceRequest::optimize_coverage(
        "bedroom", 20.0,
    ));
    for _ in 0..3 {
        os.step(10);
    }
    let achieved = os.measure(task).expect("measurable");
    println!(
        "[service]    achieved median SNR {achieved:.1} dB (goal {:.0})",
        20.0
    );
    assert!(
        achieved >= 15.0,
        "running deployment should approach the plan: {achieved:.1}"
    );
    println!("\nGoal → design → datasheet → driver → placement → service,");
    println!("end to end, with no expert in the loop (§5's automation story).");
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("             {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
