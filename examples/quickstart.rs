//! Quickstart: boot SurfOS over an apartment, deploy one surface, ask for
//! service in plain language, and watch the room come alive.
//!
//! ```text
//! cargo run --release -p surfos --example quickstart
//! ```

use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::{Pose, Vec3};
use surfos::hw::designs;
use surfos::hw::driver::ProgrammableDriver;
use surfos::SurfOS;

fn main() {
    // 1. The environment: the paper's two-room apartment at 28 GHz.
    let scen = two_room_apartment();
    let band = NamedBand::MmWave28GHz.band();
    let sim = ChannelSim::new(scen.plan.clone(), band);
    let mut os = SurfOS::new(sim);
    os.set_user_room("bedroom");

    // 2. Hardware: a published design (ScatterMIMO economics), re-banded
    //    and sized for the bedroom wall, deployed through its driver.
    let mut spec = designs::scatter_mimo();
    spec.band = band;
    spec.rows = 32;
    spec.cols = 32;
    spec.pitch_m = band.wavelength_m() / 2.0;
    let pose = *scen.anchor("bedroom-north").expect("anchor");
    os.deploy_surface("wall0", Box::new(ProgrammableDriver::new(spec)), pose);

    // 3. Infrastructure and devices. The AP aims at the surface.
    let ap_pose = Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position);
    os.add_endpoint(Endpoint::access_point("ap0", ap_pose));
    os.add_endpoint(Endpoint::client("laptop", Vec3::new(6.5, 1.5, 1.2)));

    // 4. Ask for service the way a user would.
    let tasks = os.handle_utterance("I want to watch a movie on my laptop in this room");
    println!("Intent translated into {} service task(s):", tasks.len());
    for t in &tasks {
        let task = os.orchestrator().tasks.get(*t).expect("task");
        println!("  task {} ← {}", task.id, task.request);
    }

    // 5. Before: the bedroom is behind a concrete wall.
    let laptop = os.orchestrator().endpoint("laptop").unwrap().clone();
    let ap = os.orchestrator().ap().clone();
    let before = os.sim().link_budget(&ap, &laptop);
    println!(
        "\nBefore: laptop SNR = {:.1} dB (capacity {:.0} Mb/s)",
        before.snr_db,
        before.capacity_bps / 1e6
    );

    // 6. Run the kernel loop: schedule → optimize → push configs through
    //    the drivers (wire format, control delay, quantization) → actuate.
    for _ in 0..3 {
        os.step(10);
    }

    let after = os.sim().link_budget(&ap, &laptop);
    println!(
        "After:  laptop SNR = {:.1} dB (capacity {:.0} Mb/s)",
        after.snr_db,
        after.capacity_bps / 1e6
    );
    println!("\nKernel telemetry: {}", os.telemetry());

    assert!(
        after.snr_db > before.snr_db + 10.0,
        "surface must add >10 dB"
    );
    println!("\nSurfOS revived a dead room with one surface and one sentence.");
}
