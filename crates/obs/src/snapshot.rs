//! Point-in-time snapshots of the registry: sorted, merged, serializable.

use std::collections::BTreeMap;

use serde::ser::{Serialize, SerializeStruct, Serializer};

use crate::hdr::HdrHist;
use crate::registry::{bucket_lo, NUM_BUCKETS};

/// A merged histogram: total count, saturating sum, and the non-empty log2
/// buckets as `(bucket_lo, count)` pairs in ascending order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    pub(crate) fn from_buckets(count: u64, sum: u64, buckets: &[u64; NUM_BUCKETS]) -> Self {
        HistSnapshot {
            count,
            sum,
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| (bucket_lo(i), *c))
                .collect(),
        }
    }

    /// Median estimate: the midpoint of the bucket holding the median
    /// sample. Exact for single-valued buckets (e.g. bucket 1), within 2× on
    /// the wide high buckets — good enough for "where does the time go".
    pub fn p50(&self) -> u64 {
        let half = self.count.div_ceil(2);
        let mut seen = 0;
        for &(lo, c) in &self.buckets {
            seen += c;
            if seen >= half {
                let hi = if lo == 0 {
                    0
                } else if lo >= 1u64 << 63 {
                    u64::MAX
                } else {
                    2 * lo - 1
                };
                return lo / 2 + hi / 2 + (lo & hi & 1);
            }
        }
        0
    }
}

/// A merged log-linear (HDR) timer: exact-bound tail percentiles for a
/// duration series recorded with `obs::observe_ns`. Percentile fields obey
/// the `hdr` module's accuracy contract — within `2⁻⁷` (< 1 %, i.e. two
/// significant digits) *above* the true sample quantile, never below.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HdrSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

impl HdrSnapshot {
    pub(crate) fn from_hist(h: &HdrHist) -> Self {
        HdrSnapshot {
            count: h.count,
            sum: h.sum,
            min: h.min(),
            max: h.max,
            p50: h.value_at_quantile(0.50),
            p90: h.value_at_quantile(0.90),
            p99: h.value_at_quantile(0.99),
            p999: h.value_at_quantile(0.999),
        }
    }
}

/// One path in the span tree: how many times it ran and for how long, with
/// HDR tail percentiles (same accuracy contract as [`HdrSnapshot`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanSnapshot {
    pub count: u64,
    pub total_ns: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
}

impl SpanSnapshot {
    pub(crate) fn from_hist(h: &HdrHist) -> Self {
        SpanSnapshot {
            count: h.count,
            total_ns: h.sum,
            p50_ns: h.value_at_quantile(0.50),
            p90_ns: h.value_at_quantile(0.90),
            p99_ns: h.value_at_quantile(0.99),
            p999_ns: h.value_at_quantile(0.999),
            max_ns: h.max,
        }
    }
}

/// One journal event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventSnapshot {
    pub seq: u64,
    pub category: String,
    pub message: String,
}

/// Everything the registry knows, merged across shards and sorted by name.
///
/// Keys may carry a label suffix (`kernel.steps{shard=3}`, see
/// [`crate::scoped`]); every labeled series is also folded into its
/// unlabeled base key, so flat totals are sums over labels. Counters,
/// gauge values, histogram bucket counts and journal events are
/// deterministic across identical runs; `total_ns`/`p*_ns`, timers and any
/// `*_ns`-named series are wall-clock and are excluded by
/// [`Snapshot::deterministic_json`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// HDR duration histograms recorded via `obs::observe_ns`.
    pub timers: BTreeMap<String, HdrSnapshot>,
    pub spans: BTreeMap<String, SpanSnapshot>,
    pub events: Vec<EventSnapshot>,
}

/// The metric name without any `{label=value}` suffix.
pub fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// The `dim=value,...` label body of a snapshot key, if it has one.
pub fn label_body(key: &str) -> Option<&str> {
    let start = key.find('{')?;
    key[start + 1..].strip_suffix('}')
}

impl Serialize for HistSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("HistSnapshot", 3)?;
        st.serialize_field("count", &self.count)?;
        st.serialize_field("sum", &self.sum)?;
        st.serialize_field("buckets", &self.buckets)?;
        st.end()
    }
}

impl Serialize for HdrSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("HdrSnapshot", 8)?;
        st.serialize_field("count", &self.count)?;
        st.serialize_field("sum", &self.sum)?;
        st.serialize_field("min", &self.min)?;
        st.serialize_field("max", &self.max)?;
        st.serialize_field("p50", &self.p50)?;
        st.serialize_field("p90", &self.p90)?;
        st.serialize_field("p99", &self.p99)?;
        st.serialize_field("p999", &self.p999)?;
        st.end()
    }
}

impl Serialize for SpanSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("SpanSnapshot", 7)?;
        st.serialize_field("count", &self.count)?;
        st.serialize_field("total_ns", &self.total_ns)?;
        st.serialize_field("p50_ns", &self.p50_ns)?;
        st.serialize_field("p90_ns", &self.p90_ns)?;
        st.serialize_field("p99_ns", &self.p99_ns)?;
        st.serialize_field("p999_ns", &self.p999_ns)?;
        st.serialize_field("max_ns", &self.max_ns)?;
        st.end()
    }
}

impl Serialize for EventSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("EventSnapshot", 3)?;
        st.serialize_field("seq", &self.seq)?;
        st.serialize_field("category", &self.category)?;
        st.serialize_field("message", &self.message)?;
        st.end()
    }
}

impl Serialize for Snapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Snapshot", 6)?;
        st.serialize_field("counters", &self.counters)?;
        st.serialize_field("gauges", &self.gauges)?;
        st.serialize_field("histograms", &self.histograms)?;
        st.serialize_field("timers", &self.timers)?;
        st.serialize_field("spans", &self.spans)?;
        st.serialize_field("events", &self.events)?;
        st.end()
    }
}

/// The run-to-run-stable projection of a snapshot: spans reduced to their
/// counts, timers reduced to their counts, `*_ns` series dropped entirely
/// (label suffixes are ignored when testing the `_ns` convention). See
/// module docs on determinism.
struct Deterministic<'a>(&'a Snapshot);

impl Serialize for Deterministic<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        fn stable<V>(map: &BTreeMap<String, V>) -> impl Iterator<Item = (&String, &V)> {
            map.iter()
                .filter(|(name, _)| !base_name(name).ends_with("_ns"))
        }
        let snap = self.0;
        let mut st = serializer.serialize_struct("Snapshot", 6)?;

        let counters: BTreeMap<&str, u64> = stable(&snap.counters)
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        st.serialize_field("counters", &counters)?;

        let gauges: BTreeMap<&str, f64> = stable(&snap.gauges)
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        st.serialize_field("gauges", &gauges)?;

        let histograms: BTreeMap<&str, &HistSnapshot> = stable(&snap.histograms)
            .map(|(k, v)| (k.as_str(), v))
            .collect();
        st.serialize_field("histograms", &histograms)?;

        let timers: BTreeMap<&str, u64> = stable(&snap.timers)
            .map(|(k, v)| (k.as_str(), v.count))
            .collect();
        st.serialize_field("timers", &timers)?;

        let spans: BTreeMap<&str, u64> = snap
            .spans
            .iter()
            .map(|(k, v)| (k.as_str(), v.count))
            .collect();
        st.serialize_field("spans", &spans)?;

        st.serialize_field("events", &snap.events)?;
        st.end()
    }
}

impl Snapshot {
    /// The full snapshot as a JSON document (includes wall-clock fields).
    pub fn to_json(&self) -> String {
        crate::json::to_json(self)
    }

    /// The deterministic projection as JSON: identical runs produce
    /// byte-identical output. Span and timer durations and `*_ns` series
    /// are dropped; span, timer and bucket *counts* are kept.
    pub fn deterministic_json(&self) -> String {
        crate::json::to_json(&Deterministic(self))
    }

    /// Human-readable report: the span tree (indented by nesting depth),
    /// counters, gauges, timers with tail percentiles, the busiest
    /// histograms, and the journal tail.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();

        out.push_str("spans\n");
        if self.spans.is_empty() {
            out.push_str("  (none)\n");
        }
        for (path, s) in &self.spans {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let _ = writeln!(
                out,
                "  {:indent$}{:<w$} count {:>8}  total {:>10}  p50 {:>10}  p99 {:>10}",
                "",
                name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p99_ns),
                indent = depth * 2,
                w = 36usize.saturating_sub(depth * 2),
            );
        }

        out.push_str("counters\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<38} {v}");
        }
        out.push_str("gauges\n");
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  {name:<38} {v}");
        }

        if !self.timers.is_empty() {
            out.push_str("timers\n");
            for (name, t) in &self.timers {
                let _ = writeln!(
                    out,
                    "  {:<38} count {:>8}  p50 {:>9}  p99 {:>9}  p999 {:>9}  max {:>9}",
                    name,
                    t.count,
                    fmt_ns(t.p50),
                    fmt_ns(t.p99),
                    fmt_ns(t.p999),
                    fmt_ns(t.max),
                );
            }
        }

        out.push_str("histograms (busiest first)\n");
        let mut hists: Vec<_> = self.histograms.iter().collect();
        hists.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(b.0)));
        for (name, h) in hists.into_iter().take(8) {
            let _ = writeln!(
                out,
                "  {:<38} count {:>8}  p50 {:>8}  buckets {}",
                name,
                h.count,
                h.p50(),
                h.buckets
                    .iter()
                    .map(|(lo, c)| format!("{lo}:{c}"))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
        }

        out.push_str("journal (tail)\n");
        let skip = self.events.len().saturating_sub(10);
        for e in &self.events[skip..] {
            let _ = writeln!(out, "  [{:>6}] {:<16} {}", e.seq, e.category, e.message);
        }
        out
    }
}

/// Formats nanoseconds with a human unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}
