//! RAII span timers and the per-thread span path.
//!
//! Each thread keeps one growable path string of the span names currently
//! open on it, joined with `/`. Entering a span appends its name; dropping
//! the guard records the elapsed nanoseconds under the full path and
//! truncates back. Nesting therefore comes for free from lexical scope:
//!
//! ```
//! surfos_obs::set_enabled(true);
//! {
//!     let _step = surfos_obs::span!("kernel.step");
//!     let _opt = surfos_obs::span!("kernel.optimize");
//!     // records under "kernel.step" and "kernel.step/kernel.optimize"
//! }
//! # surfos_obs::set_enabled(false);
//! # surfos_obs::reset();
//! ```
//!
//! Worker threads start their own root: a span opened inside a
//! `channel::par` closure nests under whatever that worker has open (nothing),
//! not under the caller's path. Batch entry points therefore open their span
//! on the caller thread, around the fan-out.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry;

thread_local! {
    static SPAN_PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Guard returned by [`crate::span!`] / [`crate::span_enter`]. Records the
/// span on drop. Inert (a no-op to drop) when observability was disabled at
/// entry.
#[must_use = "binding a span to `_` drops it immediately; use a named variable like `_span`"]
pub struct SpanGuard {
    start: Option<Instant>,
    prev_len: usize,
    /// Set when a trace `Begin` event was accepted into the flight-recorder
    /// ring; the matching `End` is emitted on drop (and skipped when the
    /// begin was dropped, keeping B/E pairs balanced under ring pressure).
    traced: Option<&'static str>,
}

pub(crate) fn enter(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            start: None,
            prev_len: 0,
            traced: None,
        };
    }
    let prev_len = SPAN_PATH.with(|p| {
        let mut p = p.borrow_mut();
        let prev = p.len();
        if !p.is_empty() {
            p.push('/');
        }
        p.push_str(name);
        prev
    });
    let traced = (crate::trace::enabled() && crate::trace::span_begin(name)).then_some(name);
    SpanGuard {
        start: Some(Instant::now()),
        prev_len,
        traced,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos() as u64;
        if let Some(name) = self.traced {
            crate::trace::span_end(name);
        }
        SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            registry::record_span(&p, ns);
            p.truncate(self.prev_len);
        });
    }
}
