//! Label scopes: bounded-cardinality, interned label dimensions.
//!
//! `obs::scoped(&[("shard", id)])` pushes a label set onto the current
//! thread; while the returned guard lives, every counter / histogram /
//! timer / span recorded on this thread is *also* attributed to a key with
//! the labels compiled in: `kernel.steps{shard=3}`. Scopes nest — an inner
//! scope appends its pairs to the enclosing suffix (`{worker=1,shard=3}`).
//!
//! The cost model matters more than the feature: label formatting and
//! interning happen **once per scope entry** (a handful of scope entries
//! per heartbeat), not per recording call. Each distinct rendered suffix is
//! interned to a small integer id; the hot recording path carries only that
//! id (one thread-local read) and keys shard maps by `(name, id)` — no
//! string formatting, hashing of label pairs, or allocation per sample.
//!
//! Cardinality is bounded: at most [`MAX_LABEL_SETS`] distinct suffixes are
//! interned process-wide. Scopes beyond the cap become inert (samples fall
//! through to the unlabeled key, nothing is lost from the flat totals) and
//! are counted in the `obs.labels.dropped` counter of every snapshot.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt::{Display, Write};
use std::sync::{Mutex, OnceLock};

/// Upper bound on distinct interned label suffixes. Shards, workers and
/// service names are all O(dozens); 256 leaves headroom while keeping the
/// worst-case snapshot size bounded.
pub(crate) const MAX_LABEL_SETS: usize = 256;

struct Interner {
    ids: HashMap<String, u32>,
    /// Suffix bodies by `id - 1` (id 0 is reserved for "no labels").
    bodies: Vec<String>,
    dropped: u64,
}

static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();

fn interner() -> &'static Mutex<Interner> {
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            ids: HashMap::new(),
            bodies: Vec::new(),
            dropped: 0,
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, Interner> {
    interner().lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// The interned suffix id active on this thread (0 = unlabeled).
    static CURRENT: Cell<u32> = const { Cell::new(0) };
}

/// The label-suffix id active on the calling thread.
#[inline]
pub(crate) fn current() -> u32 {
    CURRENT.with(|c| c.get())
}

/// The suffix body (`shard=3` — no braces) for an interned id.
pub(crate) fn body(id: u32) -> String {
    if id == 0 {
        return String::new();
    }
    lock()
        .bodies
        .get(id as usize - 1)
        .cloned()
        .unwrap_or_default()
}

/// All interned bodies, indexed by `id - 1`. One lock for a whole snapshot.
pub(crate) fn all_bodies() -> Vec<String> {
    lock().bodies.clone()
}

/// How many scope entries were dropped at the cardinality cap.
pub(crate) fn dropped() -> u64 {
    lock().dropped
}

/// Clears interned suffixes and the drop count (for `obs::reset`). Guards
/// alive across a reset keep recording under their (now re-interned on next
/// scope entry, stale until then) id; tests reset between scopes.
pub(crate) fn reset() {
    let mut i = lock();
    i.ids.clear();
    i.bodies.clear();
    i.dropped = 0;
}

fn intern(body: String) -> Option<u32> {
    let mut i = lock();
    if let Some(&id) = i.ids.get(&body) {
        return Some(id);
    }
    if i.bodies.len() >= MAX_LABEL_SETS {
        i.dropped += 1;
        return None;
    }
    i.bodies.push(body.clone());
    let id = i.bodies.len() as u32;
    i.ids.insert(body, id);
    Some(id)
}

/// RAII guard restoring the previous label scope on drop. Returned by
/// [`crate::scoped`]; inert when observability is disabled or the
/// cardinality cap was hit.
#[must_use = "binding a label scope to `_` drops it immediately; use a named variable"]
pub struct LabelGuard {
    prev: u32,
    active: bool,
}

impl Drop for LabelGuard {
    fn drop(&mut self) {
        if self.active {
            CURRENT.with(|c| c.set(self.prev));
        }
    }
}

const INERT: LabelGuard = LabelGuard {
    prev: 0,
    active: false,
};

pub(crate) fn scoped<V: Display>(labels: &[(&str, V)]) -> LabelGuard {
    if !crate::enabled() || labels.is_empty() {
        return INERT;
    }
    let prev = current();
    let mut suffix = body(prev);
    for (k, v) in labels {
        if !suffix.is_empty() {
            suffix.push(',');
        }
        let _ = write!(suffix, "{k}={v}");
    }
    if crate::trace::enabled() {
        crate::trace::label_current_thread(&suffix);
    }
    match intern(suffix) {
        Some(id) => {
            CURRENT.with(|c| c.set(id));
            LabelGuard { prev, active: true }
        }
        None => INERT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_caps_cardinality() {
        // Use the interner directly (no global enable flag involved).
        reset();
        for i in 0..MAX_LABEL_SETS {
            assert!(intern(format!("k={i}")).is_some());
        }
        // Existing suffixes still resolve at the cap; new ones drop.
        assert!(intern("k=0".to_owned()).is_some());
        assert_eq!(intern("k=overflow".to_owned()), None);
        assert_eq!(dropped(), 1);
        reset();
        assert_eq!(dropped(), 0);
    }
}
