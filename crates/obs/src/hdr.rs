//! Log-linear ("HdrHistogram-style") histogram with exact-bound percentiles.
//!
//! The log2 histogram in [`crate::registry`] is fine for "what order of
//! magnitude" questions but its buckets are a full octave wide, so a p99
//! read from it can be off by 2×. Tail-latency reporting (the networked
//! `surfosd` SLO item in the ROADMAP) needs tighter bounds, so durations —
//! span times, `obs::observe_ns` timers — go into this log-linear variant
//! instead:
//!
//! - values below 256 land in unit-width buckets (exact);
//! - each octave `[2^k, 2^(k+1))` above that is split into 128 linear
//!   sub-buckets of width `2^(k-7)`.
//!
//! Every bucket therefore spans at most `lo/128` above its lower bound,
//! and [`HdrHist::value_at_quantile`] returns the bucket's *upper* bound
//! (clipped to the observed maximum). The reported quantile `q̂` relates to
//! the true sample quantile `q` by
//!
//! ```text
//! q ≤ q̂ ≤ q · (1 + 2⁻⁷)        (2⁻⁷ ≈ 0.78 %)
//! ```
//!
//! i.e. percentiles are exact to better than two significant decimal
//! digits. The slot array grows lazily to the highest observed bucket, so
//! an idle histogram costs a few machine words, a microsecond-scale one a
//! few KiB.

/// Linear sub-buckets per octave as a power of two: 2^7 = 128, giving the
/// documented ≤ 2⁻⁷ relative quantization error.
const SUB_BITS: u32 = 7;

/// Values below this (= 2^(SUB_BITS+1)) get unit-width, exact buckets.
const PRECISE_LIMIT: u64 = 1 << (SUB_BITS + 1);

/// Total number of addressable slots (msb 8..=63 octaves × 128 + 256).
#[cfg(test)]
const MAX_SLOTS: usize = PRECISE_LIMIT as usize + 56 * (1 << SUB_BITS);

/// The slot index of `v`.
#[inline]
fn slot(v: u64) -> usize {
    if v < PRECISE_LIMIT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64; // 8..=63
        let shift = msb - SUB_BITS as u64; // >= 1
        let sub = (v >> shift) - (1 << SUB_BITS); // 0..128
        (PRECISE_LIMIT + (msb - SUB_BITS as u64 - 1) * (1 << SUB_BITS)) as usize + sub as usize
    }
}

/// The inclusive `[lo, hi]` value range of slot `i`.
fn slot_bounds(i: usize) -> (u64, u64) {
    if i < PRECISE_LIMIT as usize {
        (i as u64, i as u64)
    } else {
        let oct = (i - PRECISE_LIMIT as usize) as u64 >> SUB_BITS;
        let sub = (i - PRECISE_LIMIT as usize) as u64 & ((1 << SUB_BITS) - 1);
        let shift = oct + 1;
        let lo = ((1 << SUB_BITS) + sub) << shift;
        (lo, lo + ((1u64 << shift) - 1))
    }
}

/// A log-linear histogram; see the module docs for the accuracy contract.
#[derive(Clone, Debug)]
pub(crate) struct HdrHist {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    slots: Vec<u64>,
}

/// An empty histogram — `min` starts at the `u64::MAX` sentinel (not 0),
/// so the first recorded value always wins the min.
impl Default for HdrHist {
    fn default() -> Self {
        HdrHist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            slots: Vec::new(),
        }
    }
}

impl HdrHist {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, v: u64) {
        let s = slot(v);
        if s >= self.slots.len() {
            self.slots.resize(s + 1, 0);
        }
        self.slots[s] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn merge(&mut self, other: &HdrHist) {
        if other.count == 0 {
            return;
        }
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (acc, c) in self.slots.iter_mut().zip(other.slots.iter()) {
            *acc += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observed minimum, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The value at quantile `q` (0.0..=1.0): the upper bound of the bucket
    /// holding the `ceil(q·count)`-th smallest sample, clipped to the
    /// observed maximum. Overestimates the true sample quantile by at most
    /// a factor of `1 + 2⁻⁷`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.slots.iter().enumerate() {
            seen += c;
            if seen >= target {
                return slot_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_partition_the_value_range() {
        // Every slot's bounds map back to the same slot, slots are
        // contiguous, and widths stay within the documented lo/128 bound.
        let mut expected_lo = 0u64;
        for i in 0..MAX_SLOTS {
            let (lo, hi) = slot_bounds(i);
            assert_eq!(lo, expected_lo, "slot {i} not contiguous");
            assert_eq!(slot(lo), i);
            assert_eq!(slot(hi), i);
            assert!(hi >= lo);
            if lo >= PRECISE_LIMIT {
                assert!(hi - lo < lo >> SUB_BITS, "slot {i} too wide");
            }
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last slot must end at u64::MAX");
        assert_eq!(slot(u64::MAX), MAX_SLOTS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = HdrHist::new();
        for v in [0u64, 1, 7, 100, 255] {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(0.5), 7);
        assert_eq!(h.value_at_quantile(1.0), 255);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max, 255);
    }

    #[test]
    fn uniform_distribution_percentiles_hit_the_documented_bound() {
        // Synthetic known distribution: 1..=100_000 once each. The true
        // p-quantile of the sample is ceil(p·100_000); the histogram must
        // report within the documented relative bound 2⁻⁷, never below.
        let n = 100_000u64;
        let mut h = HdrHist::new();
        for v in 1..=n {
            h.record(v);
        }
        for (q, exact) in [
            (0.50, 50_000u64),
            (0.90, 90_000),
            (0.99, 99_000),
            (0.999, 99_900),
        ] {
            let got = h.value_at_quantile(q);
            assert!(got >= exact, "q={q}: {got} < exact {exact}");
            let rel = (got - exact) as f64 / exact as f64;
            assert!(
                rel <= 1.0 / 128.0,
                "q={q}: {got} vs {exact} off by {rel:.5} > 2^-7"
            );
        }
        assert_eq!(h.count, n);
    }

    #[test]
    fn merge_matches_single_histogram() {
        let mut a = HdrHist::new();
        let mut b = HdrHist::new();
        let mut whole = HdrHist::new();
        // Deterministic pseudo-random values via an LCG; no rand dep here.
        let mut x = 0x2545f491_4f6cdd1du64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x >> 40; // ~24-bit values
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count, whole.count);
        assert_eq!(a.sum, whole.sum);
        assert_eq!(a.min, whole.min);
        assert_eq!(a.max, whole.max);
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.value_at_quantile(q), whole.value_at_quantile(q));
        }
    }
}
