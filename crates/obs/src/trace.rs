//! Flight-recorder trace timeline: timestamped span/instant events in
//! per-thread lock-free rings, exported as Chrome Trace Event Format JSON.
//!
//! Aggregated spans ([`crate::snapshot`]) answer *how much* time a path
//! took in total; the timeline answers *when* — which shard straggled in
//! heartbeat 14, whether the optimize phases actually overlapped. Each
//! thread owns one bounded single-producer/single-consumer ring
//! (`RING_CAP` = 32k events): the owning thread pushes `Begin`/`End`/`Instant`
//! records with a monotonic nanosecond timestamp, and the exporter is the
//! only consumer. A full ring drops the *new* event and counts it
//! (`obs.trace.dropped` in snapshots) — and a span whose `Begin` was
//! dropped skips its `End`, so the exported stream keeps balanced B/E
//! pairs under drop pressure by construction.
//!
//! Recording is off unless **both** [`crate::enabled`] and
//! [`set_enabled`]`(true)` hold; the disabled path stays the one relaxed
//! atomic load the whole crate is built around.
//!
//! [`export_chrome_json`] groups rings by track label (worker threads get
//! `shard=N`-style labels from [`crate::scoped`]; unlabeled threads get
//! `thread-K`), merges same-label rings in timestamp order, and emits a
//! `chrome://tracing` / Perfetto-loadable document with one named track
//! per label.

use std::cell::{RefCell, UnsafeCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Events per thread ring. A campus heartbeat is a few hundred span events
/// per shard; 32k covers multi-minute captures before dropping.
const RING_CAP: usize = 1 << 15;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Whether the trace timeline is recording (requires [`crate::enabled`]
/// too).
#[inline(always)]
pub fn enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns the trace timeline on or off. Pins the timestamp epoch on first
/// enable so all tracks share one time base.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    TRACING.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Begin,
    End,
    Instant,
}

#[derive(Clone, Copy)]
struct Ev {
    kind: Kind,
    name: &'static str,
    ts_ns: u64,
}

/// One thread's event ring. SPSC discipline: only the owning thread calls
/// `push`, only the exporter (serialized by the registry lock) calls
/// `drain`; the head/tail release/acquire pair publishes the slot writes.
struct Ring {
    buf: Box<[UnsafeCell<Ev>]>,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
    label: Mutex<String>,
    /// Set once the track has been named by a label scope; later scopes on
    /// the same thread don't rename it (first label wins, so a shard
    /// worker's track stays `shard=N` even when bookkeeping scopes open
    /// afterwards).
    named: AtomicBool,
}

// SAFETY: slots between `tail` and `head` are never written concurrently
// with a read — the producer only writes at `head` (unpublished until the
// release store) and the consumer only reads below `head` after acquiring
// it. The label mutex guards itself.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(label: String) -> Self {
        let init = Ev {
            kind: Kind::Instant,
            name: "",
            ts_ns: 0,
        };
        Ring {
            buf: (0..RING_CAP).map(|_| UnsafeCell::new(init)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            label: Mutex::new(label),
            named: AtomicBool::new(false),
        }
    }

    /// Producer side; returns false (and counts a drop) when full.
    fn push(&self, ev: Ev) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= RING_CAP {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        unsafe { *self.buf[head % RING_CAP].get() = ev };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side; removes and returns everything published so far.
    fn drain(&self) -> Vec<Ev> {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity(head.wrapping_sub(tail));
        while tail != head {
            out.push(unsafe { *self.buf[tail % RING_CAP].get() });
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
        out
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_rings() -> MutexGuard<'static, Vec<Arc<Ring>>> {
    rings().lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static MY_RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
}

fn with_ring<R>(f: impl FnOnce(&Ring) -> R) -> R {
    MY_RING.with(|cell| {
        let mut cell = cell.borrow_mut();
        let ring = cell.get_or_insert_with(|| {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            let ord = NEXT.fetch_add(1, Ordering::Relaxed);
            let label = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{ord}"));
            let ring = Arc::new(Ring::new(label));
            lock_rings().push(Arc::clone(&ring));
            ring
        });
        f(ring)
    })
}

/// Records a span opening; returns whether it was accepted (a rejected
/// begin means the matching [`span_end`] must be skipped to keep B/E pairs
/// balanced). Caller checks [`enabled`].
pub(crate) fn span_begin(name: &'static str) -> bool {
    with_ring(|r| {
        r.push(Ev {
            kind: Kind::Begin,
            name,
            ts_ns: now_ns(),
        })
    })
}

/// Records a span close for an accepted [`span_begin`]. The end event is
/// never dropped: a ring with a published `Begin` reserves room because
/// ends pair LIFO with begins on the same thread, and `RING_CAP` bounds
/// open depth in practice; if the ring is genuinely full the drop counter
/// still records the loss and the exporter re-balances.
pub(crate) fn span_end(name: &'static str) {
    with_ring(|r| {
        r.push(Ev {
            kind: Kind::End,
            name,
            ts_ns: now_ns(),
        })
    });
}

/// Records an instant (zero-duration) event on the current thread's track.
/// No-op unless both the obs flag and the trace flag are on.
pub fn instant(name: &'static str) {
    if crate::enabled() && enabled() {
        with_ring(|r| {
            r.push(Ev {
                kind: Kind::Instant,
                name,
                ts_ns: now_ns(),
            })
        });
    }
}

/// Names the current thread's track after a label scope (so a shard
/// worker's track shows up as `shard=3` rather than `thread-7`). Only the
/// first label scope on a thread names its track.
pub(crate) fn label_current_thread(label: &str) {
    with_ring(|r| {
        if !r.named.swap(true, Ordering::Relaxed) {
            let mut l = r.label.lock().unwrap_or_else(|e| e.into_inner());
            label.clone_into(&mut l);
        }
    });
}

/// Total events dropped to full rings so far.
pub(crate) fn dropped_total() -> u64 {
    lock_rings()
        .iter()
        .map(|r| r.dropped.load(Ordering::Relaxed))
        .sum()
}

/// Discards all buffered events and drop counts (for `obs::reset`).
pub(crate) fn reset() {
    for ring in lock_rings().iter() {
        ring.drain();
        ring.dropped.store(0, Ordering::Relaxed);
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Drains every ring and renders a Chrome Trace Event Format document
/// (`chrome://tracing` / Perfetto). Rings sharing a track label merge into
/// one track, in timestamp order; each track gets a `thread_name` metadata
/// event. Unterminated spans (still open at export time) are closed at the
/// track's last timestamp so B/E pairs always balance.
pub fn export_chrome_json() -> String {
    struct Track {
        events: Vec<Ev>,
        ord: usize,
    }
    let mut tracks: Vec<(String, Track)> = Vec::new();
    let mut dropped = 0u64;
    for ring in lock_rings().iter() {
        let events = ring.drain();
        dropped += ring.dropped.load(Ordering::Relaxed);
        if events.is_empty() {
            continue;
        }
        let label = ring.label.lock().unwrap_or_else(|e| e.into_inner()).clone();
        match tracks.iter_mut().find(|(l, _)| *l == label) {
            Some((_, t)) => t.events.extend(events),
            None => {
                let ord = tracks.len();
                tracks.push((label, Track { events, ord }));
            }
        }
    }
    // Stable name order in the file; tids by first-seen ring order.
    tracks.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    out.push_str(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"surfos\"}}",
    );
    for (label, track) in &mut tracks {
        let tid = track.ord + 1;
        let _ = write!(
            out,
            ",{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\""
        );
        escape_into(&mut out, label);
        out.push_str("\"}}");
        // Same-label rings interleave; restore per-track timestamp order.
        track.events.sort_by_key(|e| e.ts_ns);
        let mut open: Vec<&'static str> = Vec::new();
        let mut last_ts = 0u64;
        for ev in &track.events {
            last_ts = ev.ts_ns;
            let ph = match ev.kind {
                Kind::Begin => {
                    open.push(ev.name);
                    "B"
                }
                Kind::End => {
                    // An end without a begin can only appear if a prior
                    // export already consumed the begin; skip to keep the
                    // document balanced.
                    if open.pop().is_none() {
                        continue;
                    }
                    "E"
                }
                Kind::Instant => "i",
            };
            let _ = write!(out, ",{{\"ph\":\"{ph}\",\"name\":\"",);
            escape_into(&mut out, ev.name);
            let _ = write!(
                out,
                "\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3}{}}}",
                ev.ts_ns as f64 / 1e3,
                if ev.kind == Kind::Instant {
                    ",\"s\":\"t\""
                } else {
                    ""
                },
            );
        }
        // Close spans still open at export time at the last seen instant.
        while let Some(name) = open.pop() {
            let _ = write!(out, ",{{\"ph\":\"E\",\"name\":\"");
            escape_into(&mut out, name);
            let _ = write!(
                out,
                "\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3}}}",
                last_ts as f64 / 1e3
            );
        }
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{dropped}}}}}"
    );
    out
}
