//! The global sharded registry behind the `obs` recording API.
//!
//! Counters, histograms, timers and span stats live in [`NUM_SHARDS`]
//! shards; each thread is pinned round-robin to one shard on first use, so
//! concurrent recorders (the `channel::par` fan-out) take disjoint locks.
//! Gauges and the journal are process-global (last-write-wins and strictly
//! ordered respectively — sharding either would change semantics).
//!
//! Every sharded map is keyed by `(name, label_id)` where the label id is
//! the interned suffix of the active [`crate::scoped`] label scope (0 =
//! unlabeled) — the hot path never formats or hashes label strings.
//! [`collect`] renders labeled keys as `name{shard=3}` and *folds every
//! sample into the unlabeled base key as well*, so flat totals are always
//! the sum over their labeled series and consumers that predate labels
//! (e.g. `Telemetry::from_snapshot`) keep working unchanged.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::hdr::HdrHist;
use crate::journal::Journal;
use crate::labels;
use crate::snapshot::{EventSnapshot, HdrSnapshot, HistSnapshot, Snapshot, SpanSnapshot};

/// Number of registry shards. More than the machine's thread count is
/// wasted; fewer risks two fan-out workers sharing a lock. 16 covers the
/// `channel::par` pool on every machine this runs on.
pub(crate) const NUM_SHARDS: usize = 16;

/// Histogram bucket count: bucket 0 holds exact zeros, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i)`.
pub(crate) const NUM_BUCKETS: usize = 65;

/// The log2 bucket index of `v`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The smallest value that lands in bucket `i`.
#[inline]
pub(crate) fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

pub(crate) struct Hist {
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; NUM_BUCKETS],
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: 0,
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_index(v)] += 1;
    }

    fn merge_into(&self, count: &mut u64, sum: &mut u64, buckets: &mut [u64; NUM_BUCKETS]) {
        *count += self.count;
        *sum = sum.saturating_add(self.sum);
        for (acc, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *acc += b;
        }
    }
}

/// `(metric name, interned label-suffix id)`; id 0 means unlabeled.
type Key = (&'static str, u32);

#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<Key, u64>>,
    histograms: Mutex<HashMap<Key, Hist>>,
    timers: Mutex<HashMap<Key, HdrHist>>,
    /// Span stats nested by label id so the hot path can look paths up by
    /// `&str` without allocating a tuple key per drop.
    spans: Mutex<HashMap<u32, HashMap<String, HdrHist>>>,
}

struct Registry {
    shards: [Shard; NUM_SHARDS],
    gauges: Mutex<HashMap<Key, f64>>,
    journal: Mutex<Journal>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        shards: std::array::from_fn(|_| Shard::default()),
        gauges: Mutex::new(HashMap::new()),
        journal: Mutex::new(Journal::new()),
    })
}

/// Poison-tolerant lock: metrics must keep working after an unrelated panic
/// in some other recording thread (e.g. a failing test).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn my_shard() -> &'static Shard {
    let idx = MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
            s.set(v);
            v
        }
    });
    &registry().shards[idx]
}

pub(crate) fn record_counter(name: &'static str, delta: u64) {
    let key = (name, labels::current());
    *lock(&my_shard().counters).entry(key).or_insert(0) += delta;
}

pub(crate) fn record_gauge(name: &'static str, value: f64) {
    lock(&registry().gauges).insert((name, labels::current()), value);
}

pub(crate) fn record_hist(name: &'static str, value: u64) {
    lock(&my_shard().histograms)
        .entry((name, labels::current()))
        .or_insert_with(Hist::new)
        .record(value);
}

pub(crate) fn record_timer(name: &'static str, ns: u64) {
    lock(&my_shard().timers)
        .entry((name, labels::current()))
        .or_default()
        .record(ns);
}

pub(crate) fn record_span(path: &str, ns: u64) {
    let lid = labels::current();
    let mut spans = lock(&my_shard().spans);
    let by_path = spans.entry(lid).or_default();
    match by_path.get_mut(path) {
        Some(h) => h.record(ns),
        None => {
            let mut h = HdrHist::new();
            h.record(ns);
            by_path.insert(path.to_owned(), h);
        }
    }
}

pub(crate) fn record_event(category: &'static str, message: String) {
    lock(&registry().journal).push(category, message);
    if crate::trace::enabled() {
        crate::trace::instant(category);
    }
}

pub(crate) fn reset() {
    let reg = registry();
    for shard in &reg.shards {
        lock(&shard.counters).clear();
        lock(&shard.histograms).clear();
        lock(&shard.timers).clear();
        lock(&shard.spans).clear();
    }
    lock(&reg.gauges).clear();
    lock(&reg.journal).clear();
    labels::reset();
    crate::trace::reset();
}

/// Renders `(name, label_id)` as the snapshot key: `name` or
/// `name{shard=3}`.
fn full_key(name: &str, lid: u32, bodies: &[String]) -> String {
    match lid {
        0 => name.to_owned(),
        _ => {
            let body = bodies
                .get(lid as usize - 1)
                .map(String::as_str)
                .unwrap_or("?");
            format!("{name}{{{body}}}")
        }
    }
}

/// Merges every shard into one sorted snapshot. Sums are deterministic
/// regardless of which thread recorded into which shard; labeled series
/// additionally fold into their unlabeled base key (see module docs).
pub(crate) fn collect() -> Snapshot {
    let reg = registry();
    let bodies = labels::all_bodies();
    let mut snap = Snapshot::default();

    let mut hists: HashMap<Key, (u64, u64, [u64; NUM_BUCKETS])> = HashMap::new();
    let mut timers: HashMap<Key, HdrHist> = HashMap::new();
    let mut spans: HashMap<(String, u32), HdrHist> = HashMap::new();
    for shard in &reg.shards {
        for ((name, lid), v) in lock(&shard.counters).iter() {
            if *lid != 0 {
                *snap.counters.entry((*name).to_owned()).or_insert(0) += v;
            }
            *snap
                .counters
                .entry(full_key(name, *lid, &bodies))
                .or_insert(0) += v;
        }
        for (key, h) in lock(&shard.histograms).iter() {
            let (count, sum, buckets) = hists.entry(*key).or_insert((0, 0, [0; NUM_BUCKETS]));
            h.merge_into(count, sum, buckets);
            if key.1 != 0 {
                let (count, sum, buckets) =
                    hists.entry((key.0, 0)).or_insert((0, 0, [0; NUM_BUCKETS]));
                h.merge_into(count, sum, buckets);
            }
        }
        for (key, h) in lock(&shard.timers).iter() {
            timers.entry(*key).or_default().merge(h);
            if key.1 != 0 {
                timers.entry((key.0, 0)).or_default().merge(h);
            }
        }
        for (lid, by_path) in lock(&shard.spans).iter() {
            for (path, h) in by_path {
                spans.entry((path.clone(), *lid)).or_default().merge(h);
                if *lid != 0 {
                    spans.entry((path.clone(), 0)).or_default().merge(h);
                }
            }
        }
    }

    for ((name, lid), (count, sum, buckets)) in hists {
        snap.histograms.insert(
            full_key(name, lid, &bodies),
            HistSnapshot::from_buckets(count, sum, &buckets),
        );
    }
    for ((name, lid), h) in timers {
        snap.timers
            .insert(full_key(name, lid, &bodies), HdrSnapshot::from_hist(&h));
    }
    for ((path, lid), h) in spans {
        snap.spans
            .insert(full_key(&path, lid, &bodies), SpanSnapshot::from_hist(&h));
    }
    for ((name, lid), v) in lock(&reg.gauges).iter() {
        snap.gauges.insert(full_key(name, *lid, &bodies), *v);
    }
    let journal = lock(&reg.journal);
    snap.events = journal
        .iter()
        .map(|e| EventSnapshot {
            seq: e.seq,
            category: e.category.to_owned(),
            message: e.message.clone(),
        })
        .collect();
    // Self-observability counters: only present when non-zero so an
    // untouched registry still snapshots empty.
    for (name, v) in [
        ("obs.journal.dropped", journal.dropped()),
        ("obs.labels.dropped", labels::dropped()),
        ("obs.trace.dropped", crate::trace::dropped_total()),
    ] {
        if v > 0 {
            snap.counters.insert(name.to_owned(), v);
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i);
        }
    }
}
