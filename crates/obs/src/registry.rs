//! The global sharded registry behind the `obs` recording API.
//!
//! Counters, histograms and span stats live in [`NUM_SHARDS`] shards; each
//! thread is pinned round-robin to one shard on first use, so concurrent
//! recorders (the `channel::par` fan-out) take disjoint locks. Gauges and
//! the journal are process-global (last-write-wins and strictly ordered
//! respectively — sharding either would change semantics).

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::journal::Journal;
use crate::snapshot::{EventSnapshot, HistSnapshot, Snapshot, SpanSnapshot};

/// Number of registry shards. More than the machine's thread count is
/// wasted; fewer risks two fan-out workers sharing a lock. 16 covers the
/// `channel::par` pool on every machine this runs on.
pub(crate) const NUM_SHARDS: usize = 16;

/// Histogram bucket count: bucket 0 holds exact zeros, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i)`.
pub(crate) const NUM_BUCKETS: usize = 65;

/// The log2 bucket index of `v`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The smallest value that lands in bucket `i`.
#[inline]
pub(crate) fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

pub(crate) struct Hist {
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; NUM_BUCKETS],
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: 0,
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_index(v)] += 1;
    }

    fn merge_into(&self, count: &mut u64, sum: &mut u64, buckets: &mut [u64; NUM_BUCKETS]) {
        *count += self.count;
        *sum = sum.saturating_add(self.sum);
        for (acc, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *acc += b;
        }
    }
}

#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<&'static str, u64>>,
    histograms: Mutex<HashMap<&'static str, Hist>>,
    spans: Mutex<HashMap<String, Hist>>,
}

struct Registry {
    shards: [Shard; NUM_SHARDS],
    gauges: Mutex<HashMap<&'static str, f64>>,
    journal: Mutex<Journal>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        shards: std::array::from_fn(|_| Shard::default()),
        gauges: Mutex::new(HashMap::new()),
        journal: Mutex::new(Journal::new()),
    })
}

/// Poison-tolerant lock: metrics must keep working after an unrelated panic
/// in some other recording thread (e.g. a failing test).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn my_shard() -> &'static Shard {
    let idx = MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
            s.set(v);
            v
        }
    });
    &registry().shards[idx]
}

pub(crate) fn record_counter(name: &'static str, delta: u64) {
    *lock(&my_shard().counters).entry(name).or_insert(0) += delta;
}

pub(crate) fn record_gauge(name: &'static str, value: f64) {
    lock(&registry().gauges).insert(name, value);
}

pub(crate) fn record_hist(name: &'static str, value: u64) {
    lock(&my_shard().histograms)
        .entry(name)
        .or_insert_with(Hist::new)
        .record(value);
}

pub(crate) fn record_span(path: &str, ns: u64) {
    let mut spans = lock(&my_shard().spans);
    match spans.get_mut(path) {
        Some(h) => h.record(ns),
        None => {
            let mut h = Hist::new();
            h.record(ns);
            spans.insert(path.to_owned(), h);
        }
    }
}

pub(crate) fn record_event(category: &'static str, message: String) {
    lock(&registry().journal).push(category, message);
}

pub(crate) fn reset() {
    let reg = registry();
    for shard in &reg.shards {
        lock(&shard.counters).clear();
        lock(&shard.histograms).clear();
        lock(&shard.spans).clear();
    }
    lock(&reg.gauges).clear();
    lock(&reg.journal).clear();
}

/// Merges every shard into one sorted snapshot. Sums are deterministic
/// regardless of which thread recorded into which shard.
pub(crate) fn collect() -> Snapshot {
    let reg = registry();
    let mut snap = Snapshot::default();

    let mut hists: HashMap<&'static str, (u64, u64, [u64; NUM_BUCKETS])> = HashMap::new();
    let mut spans: HashMap<String, (u64, u64, [u64; NUM_BUCKETS])> = HashMap::new();
    for shard in &reg.shards {
        for (name, v) in lock(&shard.counters).iter() {
            *snap.counters.entry((*name).to_owned()).or_insert(0) += v;
        }
        for (name, h) in lock(&shard.histograms).iter() {
            let (count, sum, buckets) = hists.entry(name).or_insert((0, 0, [0; NUM_BUCKETS]));
            h.merge_into(count, sum, buckets);
        }
        for (path, h) in lock(&shard.spans).iter() {
            let (count, sum, buckets) =
                spans
                    .entry(path.clone())
                    .or_insert((0, 0, [0; NUM_BUCKETS]));
            h.merge_into(count, sum, buckets);
        }
    }

    for (name, (count, sum, buckets)) in hists {
        snap.histograms.insert(
            name.to_owned(),
            HistSnapshot::from_buckets(count, sum, &buckets),
        );
    }
    for (path, (count, total_ns, buckets)) in spans {
        let p50_ns = HistSnapshot::from_buckets(count, total_ns, &buckets).p50();
        snap.spans.insert(
            path,
            SpanSnapshot {
                count,
                total_ns,
                p50_ns,
            },
        );
    }
    for (name, v) in lock(&reg.gauges).iter() {
        snap.gauges.insert((*name).to_owned(), *v);
    }
    snap.events = lock(&reg.journal)
        .iter()
        .map(|e| EventSnapshot {
            seq: e.seq,
            category: e.category.to_owned(),
            message: e.message.clone(),
        })
        .collect();
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i);
        }
    }
}
