//! Observability substrate for SurfOS.
//!
//! One global, process-wide registry collects five kinds of signal:
//!
//! - **counters** — monotone `u64` sums (`obs::add("channel.lincache.hits", 1)`),
//! - **gauges** — last-write-wins `f64` values (`obs::gauge("orchestrator.loss", l)`),
//! - **histograms** — log2-bucketed `u64` distributions (`obs::observe("channel.batch.width", n)`),
//! - **timers** — log-linear HDR duration histograms with exact-bound
//!   `p50/p90/p99/p999` (`obs::observe_ns("channel.lincache.lookup_ns", ns)`,
//!   see the `hdr` module's accuracy contract),
//! - **spans** — RAII wall-clock timers that nest into a hierarchical timing
//!   tree (`let _s = obs::span!("kernel.step");`), keyed by the `/`-joined
//!   path of active span names on the current thread, with the same HDR
//!   percentiles per path,
//!
//! plus a fixed-capacity ring-buffer **event journal**
//! (`obs::event!("broker.monitor", "task {} degraded", id)`) and a
//! flight-recorder **trace timeline** ([`trace`]): per-thread timestamped
//! span/instant events exported as Chrome Trace Event JSON for
//! `chrome://tracing` / Perfetto.
//!
//! # Labels
//!
//! [`scoped`] pushes a label scope (`obs::scoped(&[("shard", id)])`): while
//! its guard lives, everything recorded on the thread is *also* keyed as
//! `name{shard=3}`. Suffixes are interned once per scope entry (bounded
//! cardinality; overflow counts into `obs.labels.dropped`), so the hot
//! recording path never formats strings. Labeled series always fold into
//! their flat base key, so pre-label consumers see unchanged totals.
//!
//! # Zero overhead when off
//!
//! Everything sits behind a runtime enable flag ([`set_enabled`]). While
//! disabled — the default — every recording call reduces to a single relaxed
//! atomic load and an untaken branch; `event!` does not even evaluate its
//! format arguments. `benches/obs.rs` in `surfos-bench` pins this to a few
//! nanoseconds per call.
//!
//! # Sharding
//!
//! Counter, histogram, timer and span storage is sharded: each thread is
//! assigned one of `registry::NUM_SHARDS` shards on first use (round-robin),
//! so the `channel::par` fan-out threads never contend on one lock.
//! [`snapshot`] merges the shards; merged totals are deterministic
//! regardless of thread count because addition commutes.
//!
//! # Determinism
//!
//! Counters, gauge values, histogram bucket counts and journal events are
//! functions of the work performed, not of the clock, so two identical runs
//! produce identical values. Wall-clock fields are the exception; by
//! convention every duration-valued name ends in `_ns`, and
//! [`Snapshot::deterministic_json`] excludes those (label suffixes aside),
//! all timer durations and all span durations so run outputs can be diffed.

use std::sync::atomic::{AtomicBool, Ordering};

mod hdr;
mod journal;
mod json;
mod labels;
mod registry;
mod snapshot;
mod span;
pub mod trace;

pub use json::{to_json, JsonValue, JsonWriter};
pub use labels::LabelGuard;
pub use snapshot::{
    base_name, label_body, EventSnapshot, HdrSnapshot, HistSnapshot, Snapshot, SpanSnapshot,
};
pub use span::SpanGuard;

/// The global enable flag. Off by default; when off the recording paths are
/// a single relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether observability is currently recording.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off at runtime. Existing data is kept; use
/// [`reset`] to clear it.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears every counter, gauge, histogram, timer, span stat, label
/// interning, trace buffer and journal event. Does not change the enable
/// flags. Intended for tests and for starting a fresh measurement window.
pub fn reset() {
    registry::reset();
}

/// Adds `delta` to the counter `name`. No-op while disabled.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if enabled() {
        registry::record_counter(name, delta);
    }
}

/// Sets the gauge `name` to `value` (last write wins). No-op while disabled.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if enabled() {
        registry::record_gauge(name, value);
    }
}

/// Records `value` into the log2-bucketed histogram `name`. No-op while
/// disabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        registry::record_hist(name, value);
    }
}

/// Records a duration (nanoseconds) into the log-linear HDR timer `name`;
/// snapshots expose exact-bound `p50/p90/p99/p999` per timer. By the
/// determinism convention the name must end in `_ns`. No-op while disabled.
#[inline]
pub fn observe_ns(name: &'static str, ns: u64) {
    if enabled() {
        registry::record_timer(name, ns);
    }
}

/// Pushes a label scope: while the returned guard lives, samples recorded
/// on this thread are also attributed to `name{key=value,...}` keys (and a
/// tracing thread's track is renamed to the label set). Scopes nest by
/// appending. Inert while disabled or past the label-cardinality cap
/// (counted in `obs.labels.dropped`).
///
/// ```
/// surfos_obs::set_enabled(true);
/// {
///     let _scope = surfos_obs::scoped(&[("shard", 3)]);
///     surfos_obs::add("kernel.steps", 1); // also counted as kernel.steps{shard=3}
/// }
/// # surfos_obs::set_enabled(false);
/// # surfos_obs::reset();
/// ```
#[inline]
pub fn scoped<V: std::fmt::Display>(labels: &[(&str, V)]) -> LabelGuard {
    labels::scoped(labels)
}

/// Starts a span named `name` on the current thread; the returned guard
/// records the elapsed time under the `/`-joined path of enclosing spans
/// when dropped. Prefer the [`span!`] macro. Returns an inert guard while
/// disabled.
#[inline]
pub fn span_enter(name: &'static str) -> SpanGuard {
    span::enter(name)
}

/// Appends an event to the journal. Called by the [`event!`] macro, which
/// gates format-argument evaluation on [`enabled`]; calling this directly
/// while disabled is a no-op.
#[inline]
pub fn event_str(category: &'static str, message: String) {
    if enabled() {
        registry::record_event(category, message);
    }
}

/// Takes a merged, sorted snapshot of everything recorded so far.
pub fn snapshot() -> Snapshot {
    registry::collect()
}

/// Opens an RAII span: `let _span = obs::span!("kernel.step");`. The span
/// ends when the guard goes out of scope — bind it to a named variable
/// (`_span`, not `_`) or it ends immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_enter($name)
    };
}

/// Appends a formatted event to the journal:
/// `obs::event!("broker.monitor", "task {} -> Degraded", id);`.
/// Format arguments are not evaluated while observability is disabled.
#[macro_export]
macro_rules! event {
    ($category:expr, $($arg:tt)*) => {
        if $crate::enabled() {
            $crate::event_str($category, format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the global registry/enable flag.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        add("t.counter", 3);
        gauge("t.gauge", 1.5);
        observe("t.hist", 7);
        observe_ns("t.timer_ns", 9);
        event!("t", "msg {}", 1);
        let _scope = scoped(&[("shard", 1)]);
        let _s = span!("t.span");
        drop(_s);
        drop(_scope);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.timers.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        add("t.counter", 2);
        add("t.counter", 3);
        gauge("t.gauge", 1.0);
        gauge("t.gauge", 2.5);
        observe("t.hist", 1);
        observe("t.hist", 1);
        observe("t.hist", 1000);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["t.counter"], 5);
        assert_eq!(snap.gauges["t.gauge"], 2.5);
        let h = &snap.histograms["t.hist"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1002);
        // 1 → bucket lo 1 (count 2); 1000 → bucket lo 512 (count 1).
        assert_eq!(h.buckets, vec![(1, 2), (512, 1)]);
        assert_eq!(h.p50(), 1);
    }

    #[test]
    fn timers_report_exact_bound_percentiles() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        for ns in 1..=1000u64 {
            observe_ns("t.lat_ns", ns);
        }
        let snap = snapshot();
        set_enabled(false);
        let t = &snap.timers["t.lat_ns"];
        assert_eq!(t.count, 1000);
        assert_eq!(t.min, 1);
        assert_eq!(t.max, 1000);
        for (got, exact) in [(t.p50, 500u64), (t.p90, 900), (t.p99, 990), (t.p999, 999)] {
            assert!(got >= exact && (got - exact) as f64 <= exact as f64 / 128.0);
        }
    }

    #[test]
    fn labeled_scopes_fold_into_flat_totals() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        for shard in 0..3u64 {
            let _scope = scoped(&[("shard", shard)]);
            add("t.work", shard + 1);
            observe("t.width", 4);
            observe_ns("t.lat_ns", 100 * (shard + 1));
            let _s = span!("t.phase");
        }
        add("t.work", 10); // unlabeled sample folds into the flat total too
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["t.work{shard=0}"], 1);
        assert_eq!(snap.counters["t.work{shard=1}"], 2);
        assert_eq!(snap.counters["t.work{shard=2}"], 3);
        assert_eq!(snap.counters["t.work"], 16);
        assert_eq!(snap.histograms["t.width"].count, 3);
        assert_eq!(snap.histograms["t.width{shard=1}"].count, 1);
        assert_eq!(snap.timers["t.lat_ns"].count, 3);
        assert_eq!(snap.timers["t.lat_ns{shard=2}"].max, 300);
        assert_eq!(snap.spans["t.phase"].count, 3);
        assert_eq!(snap.spans["t.phase{shard=0}"].count, 1);
        assert_eq!(base_name("t.work{shard=0}"), "t.work");
        assert_eq!(label_body("t.work{shard=0}"), Some("shard=0"));
        assert_eq!(label_body("t.work"), None);
    }

    #[test]
    fn nested_scopes_concatenate_labels() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        {
            let _outer = scoped(&[("worker", 1)]);
            let _inner = scoped(&[("shard", 2)]);
            add("t.nested", 1);
        }
        add("t.nested", 1);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["t.nested{worker=1,shard=2}"], 1);
        assert_eq!(snap.counters["t.nested"], 2);
    }

    #[test]
    fn spans_nest_into_paths() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        {
            let _outer = span!("outer");
            {
                let _inner = span!("inner");
            }
            {
                let _inner = span!("inner");
            }
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer/inner"].count, 2);
        assert!(snap.spans["outer"].total_ns >= snap.spans["outer/inner"].total_ns);
        assert!(snap.spans["outer"].p99_ns >= snap.spans["outer"].p50_ns);
    }

    #[test]
    fn journal_keeps_newest_events_and_counts_drops() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        let cap = 1024; // default capacity (no SURFOS_JOURNAL_CAP in tests)
        for i in 0..(cap + 10) {
            event!("t", "event {i}");
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.events.len(), cap);
        assert_eq!(
            snap.events.first().unwrap().message,
            format!("event {}", 10)
        );
        assert_eq!(snap.events.first().unwrap().seq, 10);
        assert_eq!(
            snap.events.last().unwrap().message,
            format!("event {}", cap + 9)
        );
        assert_eq!(snap.counters["obs.journal.dropped"], 10);
    }

    #[test]
    fn shards_merge_across_threads() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        add("t.par", 1);
                        observe("t.par.h", 4);
                    }
                });
            }
        });
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["t.par"], 800);
        assert_eq!(snap.histograms["t.par.h"].count, 800);
        assert_eq!(snap.histograms["t.par.h"].buckets, vec![(4, 800)]);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        add("t.rt.counter", 41);
        gauge("t.rt.gauge", -2.25);
        observe("t.rt.hist", 9);
        observe_ns("t.rt.timer_ns", 640);
        event!("t.rt", "hello \"quoted\" \\ world");
        {
            let _s = span!("t.rt.span");
        }
        let snap = snapshot();
        set_enabled(false);
        let text = snap.to_json();
        let v = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("t.rt.counter"))
                .and_then(JsonValue::as_f64),
            Some(41.0)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("t.rt.gauge"))
                .and_then(JsonValue::as_f64),
            Some(-2.25)
        );
        let timer = v
            .get("timers")
            .and_then(|t| t.get("t.rt.timer_ns"))
            .unwrap();
        assert_eq!(timer.get("count").and_then(JsonValue::as_f64), Some(1.0));
        assert!(timer.get("p999").and_then(JsonValue::as_f64).unwrap() >= 640.0);
        let events = v.get("events").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            events[0].get("message").and_then(JsonValue::as_str),
            Some("hello \"quoted\" \\ world")
        );
        assert!(v.get("spans").and_then(|s| s.get("t.rt.span")).is_some());
        // The deterministic projection parses too and drops wall-clock data.
        let det = JsonValue::parse(&snap.deterministic_json()).expect("valid JSON");
        let span = det.get("spans").and_then(|s| s.get("t.rt.span")).unwrap();
        assert_eq!(span.as_f64(), Some(1.0)); // count only, no ns
        assert!(det
            .get("timers")
            .and_then(|t| t.get("t.rt.timer_ns"))
            .is_none());
    }

    #[test]
    fn trace_timeline_exports_balanced_chrome_events() {
        let _x = exclusive();
        set_enabled(true);
        trace::set_enabled(true);
        reset();
        {
            let _scope = scoped(&[("shard", 0)]);
            let _outer = span!("t.tr.step");
            let _inner = span!("t.tr.phase");
            trace::instant("t.tr.tick");
        }
        let json = trace::export_chrome_json();
        trace::set_enabled(false);
        set_enabled(false);
        let v = JsonValue::parse(&json).expect("valid trace JSON");
        let events = v.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        // One named track carrying the shard label, balanced B/E pairs.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(JsonValue::as_str) == Some("thread_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(JsonValue::as_str)
                    == Some("shard=0")
        }));
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("E"))
            .count();
        assert_eq!(begins, 2);
        assert_eq!(begins, ends);
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(JsonValue::as_str) == Some("i")));
        // A second export after draining is empty of span events.
        let again = trace::export_chrome_json();
        let v2 = JsonValue::parse(&again).unwrap();
        let evs2 = v2.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        assert!(evs2
            .iter()
            .all(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M")));
        reset();
    }
}
