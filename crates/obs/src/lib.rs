//! Observability substrate for SurfOS.
//!
//! One global, process-wide registry collects four kinds of signal:
//!
//! - **counters** — monotone `u64` sums (`obs::add("channel.lincache.hits", 1)`),
//! - **gauges** — last-write-wins `f64` values (`obs::gauge("orchestrator.loss", l)`),
//! - **histograms** — log2-bucketed `u64` distributions (`obs::observe("channel.batch.width", n)`),
//! - **spans** — RAII wall-clock timers that nest into a hierarchical timing
//!   tree (`let _s = obs::span!("kernel.step");`), keyed by the `/`-joined
//!   path of active span names on the current thread,
//!
//! plus a fixed-capacity ring-buffer **event journal**
//! (`obs::event!("broker.monitor", "task {} degraded", id)`).
//!
//! # Zero overhead when off
//!
//! Everything sits behind a runtime enable flag ([`set_enabled`]). While
//! disabled — the default — every recording call reduces to a single relaxed
//! atomic load and an untaken branch; `event!` does not even evaluate its
//! format arguments. `benches/obs.rs` in `surfos-bench` pins this to a few
//! nanoseconds per call.
//!
//! # Sharding
//!
//! Counter, histogram and span storage is sharded: each thread is assigned
//! one of `registry::NUM_SHARDS` shards on first use (round-robin), so the
//! `channel::par` fan-out threads never contend on one lock. [`snapshot`]
//! merges the shards; merged totals are deterministic regardless of thread
//! count because addition commutes.
//!
//! # Determinism
//!
//! Counters, gauge values, histogram bucket counts and journal events are
//! functions of the work performed, not of the clock, so two identical runs
//! produce identical values. Wall-clock fields are the exception; by
//! convention every duration-valued name ends in `_ns`, and
//! [`Snapshot::deterministic_json`] excludes both those and all span
//! durations so run outputs can be diffed.

use std::sync::atomic::{AtomicBool, Ordering};

mod journal;
mod json;
mod registry;
mod snapshot;
mod span;

pub use json::{to_json, JsonValue, JsonWriter};
pub use snapshot::{EventSnapshot, HistSnapshot, Snapshot, SpanSnapshot};
pub use span::SpanGuard;

/// The global enable flag. Off by default; when off the recording paths are
/// a single relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether observability is currently recording.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off at runtime. Existing data is kept; use
/// [`reset`] to clear it.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears every counter, gauge, histogram, span stat and journal event.
/// Does not change the enable flag. Intended for tests and for starting a
/// fresh measurement window.
pub fn reset() {
    registry::reset();
}

/// Adds `delta` to the counter `name`. No-op while disabled.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if enabled() {
        registry::record_counter(name, delta);
    }
}

/// Sets the gauge `name` to `value` (last write wins). No-op while disabled.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if enabled() {
        registry::record_gauge(name, value);
    }
}

/// Records `value` into the log2-bucketed histogram `name`. No-op while
/// disabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        registry::record_hist(name, value);
    }
}

/// Starts a span named `name` on the current thread; the returned guard
/// records the elapsed time under the `/`-joined path of enclosing spans
/// when dropped. Prefer the [`span!`] macro. Returns an inert guard while
/// disabled.
#[inline]
pub fn span_enter(name: &'static str) -> SpanGuard {
    span::enter(name)
}

/// Appends an event to the journal. Called by the [`event!`] macro, which
/// gates format-argument evaluation on [`enabled`]; calling this directly
/// while disabled is a no-op.
#[inline]
pub fn event_str(category: &'static str, message: String) {
    if enabled() {
        registry::record_event(category, message);
    }
}

/// Takes a merged, sorted snapshot of everything recorded so far.
pub fn snapshot() -> Snapshot {
    registry::collect()
}

/// Opens an RAII span: `let _span = obs::span!("kernel.step");`. The span
/// ends when the guard goes out of scope — bind it to a named variable
/// (`_span`, not `_`) or it ends immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_enter($name)
    };
}

/// Appends a formatted event to the journal:
/// `obs::event!("broker.monitor", "task {} -> Degraded", id);`.
/// Format arguments are not evaluated while observability is disabled.
#[macro_export]
macro_rules! event {
    ($category:expr, $($arg:tt)*) => {
        if $crate::enabled() {
            $crate::event_str($category, format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the global registry/enable flag.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        add("t.counter", 3);
        gauge("t.gauge", 1.5);
        observe("t.hist", 7);
        event!("t", "msg {}", 1);
        let _s = span!("t.span");
        drop(_s);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        add("t.counter", 2);
        add("t.counter", 3);
        gauge("t.gauge", 1.0);
        gauge("t.gauge", 2.5);
        observe("t.hist", 1);
        observe("t.hist", 1);
        observe("t.hist", 1000);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["t.counter"], 5);
        assert_eq!(snap.gauges["t.gauge"], 2.5);
        let h = &snap.histograms["t.hist"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1002);
        // 1 → bucket lo 1 (count 2); 1000 → bucket lo 512 (count 1).
        assert_eq!(h.buckets, vec![(1, 2), (512, 1)]);
        assert_eq!(h.p50(), 1);
    }

    #[test]
    fn spans_nest_into_paths() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        {
            let _outer = span!("outer");
            {
                let _inner = span!("inner");
            }
            {
                let _inner = span!("inner");
            }
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer/inner"].count, 2);
        assert!(snap.spans["outer"].total_ns >= snap.spans["outer/inner"].total_ns);
    }

    #[test]
    fn journal_keeps_newest_events() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        for i in 0..(journal::CAPACITY + 10) {
            event!("t", "event {i}");
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.events.len(), journal::CAPACITY);
        assert_eq!(
            snap.events.first().unwrap().message,
            format!("event {}", 10)
        );
        assert_eq!(snap.events.first().unwrap().seq, 10);
        assert_eq!(
            snap.events.last().unwrap().message,
            format!("event {}", journal::CAPACITY + 9)
        );
    }

    #[test]
    fn shards_merge_across_threads() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        add("t.par", 1);
                        observe("t.par.h", 4);
                    }
                });
            }
        });
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["t.par"], 800);
        assert_eq!(snap.histograms["t.par.h"].count, 800);
        assert_eq!(snap.histograms["t.par.h"].buckets, vec![(4, 800)]);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        add("t.rt.counter", 41);
        gauge("t.rt.gauge", -2.25);
        observe("t.rt.hist", 9);
        event!("t.rt", "hello \"quoted\" \\ world");
        {
            let _s = span!("t.rt.span");
        }
        let snap = snapshot();
        set_enabled(false);
        let text = snap.to_json();
        let v = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("t.rt.counter"))
                .and_then(JsonValue::as_f64),
            Some(41.0)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("t.rt.gauge"))
                .and_then(JsonValue::as_f64),
            Some(-2.25)
        );
        let events = v.get("events").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            events[0].get("message").and_then(JsonValue::as_str),
            Some("hello \"quoted\" \\ world")
        );
        assert!(v.get("spans").and_then(|s| s.get("t.rt.span")).is_some());
        // The deterministic projection parses too and drops wall-clock data.
        let det = JsonValue::parse(&snap.deterministic_json()).expect("valid JSON");
        let span = det.get("spans").and_then(|s| s.get("t.rt.span")).unwrap();
        assert_eq!(span.as_f64(), Some(1.0)); // count only, no ns
    }
}
