//! JSON output for the vendored serde shim, plus a small parser for
//! round-trip tests and tooling.
//!
//! [`JsonWriter`] implements the shim's [`Serializer`] by appending compact
//! JSON to a string; [`to_json`] is the one-call entry point. [`JsonValue`]
//! parses any document this writer emits (objects keep key order, numbers
//! are `f64`).

use serde::ser::{Serialize, SerializeMap, SerializeSeq, SerializeStruct, Serializer};

/// Serializes `value` to a compact JSON string via [`JsonWriter`].
pub fn to_json<T: Serialize + ?Sized>(value: &T) -> String {
    let mut w = JsonWriter::new();
    value
        .serialize(&mut w)
        .expect("JsonWriter serialization is infallible");
    w.finish()
}

/// A compact-JSON [`Serializer`] writing into an owned string. Map keys must
/// serialize as strings (everything in this workspace does).
#[derive(Default)]
pub struct JsonWriter {
    out: String,
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter::default()
    }

    pub fn finish(self) -> String {
        self.out
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// Compound-state writer for sequences, maps and structs.
pub struct CompoundWriter<'a> {
    w: &'a mut JsonWriter,
    first: bool,
    close: char,
}

impl<'a> CompoundWriter<'a> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.w.out.push(',');
        }
    }
}

impl<'a> Serializer for &'a mut JsonWriter {
    type Ok = ();
    type Error = std::fmt::Error;
    type SerializeSeq = CompoundWriter<'a>;
    type SerializeMap = CompoundWriter<'a>;
    type SerializeStruct = CompoundWriter<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Self::Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Self::Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Self::Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Self::Error> {
        if v.is_finite() {
            // `{:?}` is the shortest representation that round-trips.
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Self::Error> {
        self.push_escaped(v);
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error> {
        self.out.push('[');
        Ok(CompoundWriter {
            w: self,
            first: true,
            close: ']',
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, Self::Error> {
        self.out.push('{');
        Ok(CompoundWriter {
            w: self,
            first: true,
            close: '}',
        })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error> {
        self.out.push('{');
        Ok(CompoundWriter {
            w: self,
            first: true,
            close: '}',
        })
    }
}

impl SerializeSeq for CompoundWriter<'_> {
    type Ok = ();
    type Error = std::fmt::Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error> {
        self.comma();
        value.serialize(&mut *self.w)
    }

    fn end(self) -> Result<(), Self::Error> {
        self.w.out.push(self.close);
        Ok(())
    }
}

impl SerializeMap for CompoundWriter<'_> {
    type Ok = ();
    type Error = std::fmt::Error;

    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error> {
        self.comma();
        key.serialize(&mut *self.w)?;
        self.w.out.push(':');
        Ok(())
    }

    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error> {
        value.serialize(&mut *self.w)
    }

    fn end(self) -> Result<(), Self::Error> {
        self.w.out.push(self.close);
        Ok(())
    }
}

impl SerializeStruct for CompoundWriter<'_> {
    type Ok = ();
    type Error = std::fmt::Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        self.comma();
        self.w.push_escaped(key);
        self.w.out.push(':');
        value.serialize(&mut *self.w)
    }

    fn end(self) -> Result<(), Self::Error> {
        self.w.out.push(self.close);
        Ok(())
    }
}

/// A parsed JSON value. Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(o) => Some(o),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_valid_json() {
        let mut w = JsonWriter::new();
        ["a\"b", "c\\d", "e\nf"].serialize(&mut w).unwrap();
        assert_eq!(w.finish(), r#"["a\"b","c\\d","e\nf"]"#);
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&42u64), "42");
        assert_eq!(to_json(&-1.5f64), "-1.5");
        assert_eq!(to_json(&(3u64, 7u64)), "[3,7]");
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v =
            JsonValue::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\nyA"}, "d": true, "e": null}"#)
                .unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\nyA")
        );
        assert_eq!(v.get("d").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("[1] garbage").is_err());
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = r#"{"counters":{"a.b":1,"c":2},"list":[[1,2],[3,4]],"s":"q\"q"}"#;
        let v = JsonValue::parse(original).unwrap();
        // Write it back by hand through the value tree.
        fn write(v: &JsonValue, out: &mut String) {
            match v {
                JsonValue::Null => out.push_str("null"),
                JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                JsonValue::Num(n) => {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n:?}"));
                    }
                }
                JsonValue::Str(s) => {
                    let mut w = JsonWriter::new();
                    w.push_escaped(s);
                    out.push_str(&w.finish());
                }
                JsonValue::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write(item, out);
                    }
                    out.push(']');
                }
                JsonValue::Obj(fields) => {
                    out.push('{');
                    for (i, (k, val)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let mut w = JsonWriter::new();
                        w.push_escaped(k);
                        out.push_str(&w.finish());
                        out.push(':');
                        write(val, out);
                    }
                    out.push('}');
                }
            }
        }
        let mut rewritten = String::new();
        write(&v, &mut rewritten);
        assert_eq!(rewritten, original);
    }
}
