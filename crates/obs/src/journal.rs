//! Fixed-capacity ring-buffer event journal.
//!
//! Events carry a monotone sequence number, a static category and a
//! preformatted message. When full, the oldest event is overwritten; the
//! sequence numbers make the loss visible (a snapshot whose first event has
//! `seq > 0` dropped exactly `seq` older events).

use std::collections::VecDeque;

/// Ring capacity. Big enough to hold the interesting tail of a run (health
/// transitions, scheduler decisions), small enough that an enabled journal
/// is a bounded cost.
pub(crate) const CAPACITY: usize = 1024;

pub(crate) struct Event {
    pub seq: u64,
    pub category: &'static str,
    pub message: String,
}

pub(crate) struct Journal {
    next_seq: u64,
    events: VecDeque<Event>,
}

impl Journal {
    pub fn new() -> Self {
        Journal {
            next_seq: 0,
            events: VecDeque::new(),
        }
    }

    pub fn push(&mut self, category: &'static str, message: String) {
        if self.events.len() == CAPACITY {
            self.events.pop_front();
        }
        self.events.push_back(Event {
            seq: self.next_seq,
            category,
            message,
        });
        self.next_seq += 1;
    }

    pub fn clear(&mut self) {
        self.events.clear();
        self.next_seq = 0;
    }

    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }
}
