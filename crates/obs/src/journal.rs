//! Fixed-capacity ring-buffer event journal.
//!
//! Events carry a monotone sequence number, a static category and a
//! preformatted message. When full, the oldest event is overwritten; the
//! overwrite is *counted* ([`Journal::dropped`], surfaced as the
//! `obs.journal.dropped` counter in every snapshot) and remains visible in
//! the sequence numbers too (a snapshot whose first event has `seq > 0`
//! dropped exactly `seq` older events).
//!
//! Capacity defaults to [`DEFAULT_CAPACITY`] and can be overridden with the
//! `SURFOS_JOURNAL_CAP` environment variable (clamped to
//! 16..=1_048_576; read once when the registry initializes).

use std::collections::VecDeque;

/// Default ring capacity. Big enough to hold the interesting tail of a run
/// (health transitions, scheduler decisions), small enough that an enabled
/// journal is a bounded cost.
pub(crate) const DEFAULT_CAPACITY: usize = 1024;

/// Capacity from `SURFOS_JOURNAL_CAP`, or the default when unset/invalid.
pub(crate) fn configured_capacity() -> usize {
    capacity_from(std::env::var("SURFOS_JOURNAL_CAP").ok().as_deref())
}

fn capacity_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .map(|v| v.clamp(16, 1 << 20))
        .unwrap_or(DEFAULT_CAPACITY)
}

pub(crate) struct Event {
    pub seq: u64,
    pub category: &'static str,
    pub message: String,
}

pub(crate) struct Journal {
    capacity: usize,
    dropped: u64,
    next_seq: u64,
    events: VecDeque<Event>,
}

impl Journal {
    pub fn new() -> Self {
        Self::with_capacity(configured_capacity())
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Journal {
            capacity,
            dropped: 0,
            next_seq: 0,
            events: VecDeque::new(),
        }
    }

    pub fn push(&mut self, category: &'static str, message: String) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            seq: self.next_seq,
            category,
            message,
        });
        self.next_seq += 1;
    }

    /// How many events have been overwritten since the last clear.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn clear(&mut self) {
        self.events.clear();
        self.next_seq = 0;
        self.dropped = 0;
    }

    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_counts_overwrites() {
        let mut j = Journal::with_capacity(16);
        for i in 0..20 {
            j.push("t", format!("e{i}"));
        }
        assert_eq!(j.dropped(), 4);
        assert_eq!(j.iter().count(), 16);
        assert_eq!(j.iter().next().unwrap().seq, 4);
        j.clear();
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn capacity_env_parsing_clamps_and_defaults() {
        assert_eq!(capacity_from(None), DEFAULT_CAPACITY);
        assert_eq!(capacity_from(Some("2048")), 2048);
        assert_eq!(capacity_from(Some(" 64 ")), 64);
        assert_eq!(capacity_from(Some("1")), 16);
        assert_eq!(capacity_from(Some("99999999999")), 1 << 20);
        assert_eq!(capacity_from(Some("nope")), DEFAULT_CAPACITY);
    }
}
