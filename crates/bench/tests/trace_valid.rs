//! Chrome Trace Event Format validation for the flight recorder.
//!
//! The exporter promises a well-formed timeline: every `E` closes a
//! matching `B` on the same track, timestamps never run backwards within a
//! track, and every track is named by a `thread_name` metadata event.
//! These tests check the promise two ways:
//!
//! - in-process: trace a sharded campus run and validate the export,
//!   including one named track per shard worker;
//! - on a file: when `SURFOS_TRACE_CHECK` points at a trace JSON (written
//!   by `surfosd --trace`, wired up in `scripts/lint.sh`), validate that.
//!
//! The parser below is deliberately minimal — it reads the exporter's own
//! output shape (flat event objects inside `"traceEvents":[...]`), it is
//! not a general JSON parser.

use std::collections::HashMap;
use std::sync::Mutex;
use surfos::channel::{Endpoint, OperationMode, SurfaceInstance};
use surfos::em::array::ArrayGeometry;
use surfos::em::band::NamedBand;
use surfos::geometry::{Pose, Vec3};
use surfos::obs;
use surfos::shard::ShardedKernel;
use surfos_bench::scenes::campus_plan;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// One parsed trace event: `ph`, `tid`, `ts` (absent on metadata), and the
/// raw `args` object text for metadata events.
#[derive(Debug)]
struct TraceEv {
    ph: String,
    tid: u64,
    ts: Option<f64>,
    name: String,
    args: Option<String>,
}

/// Splits the `traceEvents` array into per-event object strings, tracking
/// brace depth and string state (names may contain escaped quotes).
fn split_events(json: &str) -> Result<Vec<String>, String> {
    let start = json
        .find("\"traceEvents\":[")
        .ok_or("no traceEvents array")?
        + "\"traceEvents\":[".len();
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut current = String::new();
    for c in json[start..].chars() {
        if in_str {
            current.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                current.push(c);
            }
            '{' => {
                depth += 1;
                current.push(c);
            }
            '}' => {
                depth -= 1;
                current.push(c);
                if depth == 0 {
                    events.push(std::mem::take(&mut current));
                }
            }
            ']' if depth == 0 => return Ok(events),
            _ => {
                if depth > 0 {
                    current.push(c);
                }
            }
        }
    }
    Err("unterminated traceEvents array".into())
}

/// Extracts one field's raw value text from a flat event object.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut escaped = false;
        for (i, c) in stripped.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Some(&stripped[..i]);
            }
        }
        None
    } else if rest.starts_with('{') {
        // Object value (args): balance braces.
        let mut depth = 0usize;
        for (i, c) in rest.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&rest[..=i]);
                    }
                }
                _ => {}
            }
        }
        None
    } else {
        // Number: up to the next delimiter.
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn parse_events(json: &str) -> Result<Vec<TraceEv>, String> {
    split_events(json)?
        .iter()
        .map(|obj| {
            Ok(TraceEv {
                ph: field(obj, "ph")
                    .ok_or(format!("event without ph: {obj}"))?
                    .into(),
                tid: field(obj, "tid")
                    .and_then(|v| v.parse().ok())
                    .ok_or(format!("event without tid: {obj}"))?,
                ts: field(obj, "ts").and_then(|v| v.parse().ok()),
                name: field(obj, "name").unwrap_or_default().into(),
                args: field(obj, "args").map(String::from),
            })
        })
        .collect()
}

/// Validates a Chrome Trace Event document: balanced B/E per track,
/// non-decreasing timestamps per track, every event track named. Returns
/// the track-name map (tid -> thread_name).
fn validate_chrome_trace(json: &str) -> Result<HashMap<u64, String>, String> {
    let events = parse_events(json)?;
    if events.is_empty() {
        return Err("empty trace".into());
    }
    let mut names: HashMap<u64, String> = HashMap::new();
    let mut depth: HashMap<u64, i64> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    for ev in &events {
        match ev.ph.as_str() {
            "M" => {
                if ev.name == "thread_name" {
                    let label = ev
                        .args
                        .as_deref()
                        .and_then(|a| field(a, "name"))
                        .ok_or("thread_name metadata without args.name")?;
                    names.insert(ev.tid, label.to_string());
                }
                continue; // metadata carries no timestamp
            }
            "B" => *depth.entry(ev.tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(ev.tid).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!("track {}: E without matching B", ev.tid));
                }
            }
            "i" => {}
            other => return Err(format!("unexpected phase {other:?}")),
        }
        let ts = ev.ts.ok_or_else(|| format!("{} event without ts", ev.ph))?;
        let prev = last_ts.entry(ev.tid).or_insert(ts);
        if ts < *prev {
            return Err(format!(
                "track {}: timestamp ran backwards ({ts} after {prev})",
                ev.tid
            ));
        }
        *prev = ts;
        if !names.contains_key(&ev.tid) {
            return Err(format!("track {} has events but no thread_name", ev.tid));
        }
    }
    for (tid, d) in depth {
        if d != 0 {
            return Err(format!("track {tid}: {d} span(s) left open"));
        }
    }
    Ok(names)
}

#[test]
fn campus_trace_is_balanced_with_one_track_per_shard() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::trace::set_enabled(true);
    obs::reset();

    let band = NamedBand::MmWave28GHz.band();
    let campus = campus_plan(3, 1, 2, 7);
    let geom = ArrayGeometry::half_wavelength(8, 8, band.wavelength_m());
    let mut kernel = ShardedKernel::new(&campus.plan, band, campus.zones());
    kernel.set_worker_threads(Some(3));
    for (b, building) in campus.buildings.iter().enumerate() {
        let origin = building.origin;
        kernel.add_surface(SurfaceInstance::new(
            format!("b{b}-wall"),
            Pose::wall_mounted(origin + Vec3::new(1.5, 5.0, 1.5), Vec3::new(0.0, -1.0, 0.0)),
            geom,
            OperationMode::Reflective,
        ));
        kernel
            .add_link(
                Endpoint::client(format!("b{b}-ap"), origin + Vec3::new(4.0, 6.0, 2.5)),
                Endpoint::client(format!("b{b}-rx"), origin + Vec3::new(1.5, 1.5, 1.2)),
            )
            .expect("in-building link");
    }
    for _ in 0..4 {
        kernel.replay_tick(250);
    }
    let shards = kernel.shard_count();
    drop(kernel);

    let json = obs::trace::export_chrome_json();
    obs::trace::set_enabled(false);
    obs::set_enabled(false);

    let names = validate_chrome_trace(&json).expect("campus trace must validate");
    for s in 0..shards {
        let want = format!("shard={s}");
        assert!(
            names.values().any(|n| *n == want),
            "no track named {want}; tracks: {:?}",
            names.values().collect::<Vec<_>>()
        );
    }
}

#[test]
fn validator_rejects_malformed_documents() {
    // Unbalanced: a B with no E.
    let bad = r#"{"traceEvents":[{"ph":"M","name":"thread_name","pid":1,"tid":1,"args":{"name":"t"}},{"ph":"B","name":"x","pid":1,"tid":1,"ts":1.0}]}"#;
    assert!(validate_chrome_trace(bad).unwrap_err().contains("open"));
    // Backwards time on one track.
    let bad = r#"{"traceEvents":[{"ph":"M","name":"thread_name","pid":1,"tid":1,"args":{"name":"t"}},{"ph":"i","name":"a","pid":1,"tid":1,"ts":5.0,"s":"t"},{"ph":"i","name":"b","pid":1,"tid":1,"ts":2.0,"s":"t"}]}"#;
    assert!(validate_chrome_trace(bad)
        .unwrap_err()
        .contains("backwards"));
    // E with no B.
    let bad = r#"{"traceEvents":[{"ph":"M","name":"thread_name","pid":1,"tid":1,"args":{"name":"t"}},{"ph":"E","name":"x","pid":1,"tid":1,"ts":1.0}]}"#;
    assert!(validate_chrome_trace(bad)
        .unwrap_err()
        .contains("without matching B"));
}

/// File-validation arm for `scripts/lint.sh`: when `SURFOS_TRACE_CHECK`
/// names a trace written by `surfosd --trace`, validate it; otherwise this
/// test is a no-op (so plain `cargo test` stays hermetic).
#[test]
fn trace_file_from_env_validates() {
    let Ok(path) = std::env::var("SURFOS_TRACE_CHECK") else {
        return;
    };
    let json =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("SURFOS_TRACE_CHECK={path}: {e}"));
    let names = validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("{path}: invalid Chrome trace: {e}"));
    assert!(!names.is_empty(), "{path}: no named tracks");
}
