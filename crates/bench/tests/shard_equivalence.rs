//! Property test: a campus evaluated by the sharded kernel is
//! **bit-identical** to the same campus evaluated as one flat scene —
//! at any shard count, any worker-thread count, and across walker
//! handoff ticks.
//!
//! This is the sharded kernel's whole contract: the zone decomposition is
//! not an approximation. Metal shells put every cross-building path below
//! the channel layer's transmission floor, where it is gated to exactly
//! zero in the flat evaluation too, so removing the other buildings'
//! walls from a shard's scene changes no bits. Blockers owned by another
//! zone stay ≥ 2.75 m clear of any path a link can retain, so per-zone
//! crowds are equally lossless.

use proptest::prelude::*;
use surfos::channel::dynamics::BlockerWalk;
use surfos::channel::{ChannelSim, Endpoint, Linearization, OperationMode, SurfaceInstance};
use surfos::em::array::ArrayGeometry;
use surfos::em::band::NamedBand;
use surfos::geometry::{Pose, Vec3};
use surfos::shard::{ShardedKernel, Zone};
use surfos_bench::scenes::{campus_plan, CampusPlan};

const BUILDINGS: usize = 2;
const FLOORS: usize = 1;

/// Per-building deployment, shared by both arms: an 8×8 reflective
/// surface on the corridor wall, an AP in the corridor, a client in room
/// `f0s0`.
struct Deployment {
    surfaces: Vec<SurfaceInstance>,
    links: Vec<(Endpoint, Endpoint)>,
}

fn deployment(campus: &CampusPlan, rooms: usize) -> Deployment {
    let band = NamedBand::MmWave28GHz.band();
    let geom = ArrayGeometry::half_wavelength(8, 8, band.wavelength_m());
    let ext_x = rooms as f64 * 4.0;
    let mut surfaces = Vec::new();
    let mut links = Vec::new();
    for (b, building) in campus.buildings.iter().enumerate() {
        let origin = building.origin;
        surfaces.push(SurfaceInstance::new(
            format!("b{b}-wall"),
            Pose::wall_mounted(origin + Vec3::new(1.5, 5.0, 1.5), Vec3::new(0.0, -1.0, 0.0)),
            geom,
            OperationMode::Reflective,
        ));
        links.push((
            Endpoint::client(
                format!("b{b}-ap"),
                origin + Vec3::new(ext_x / 2.0, 6.0, 2.5),
            ),
            Endpoint::client(format!("b{b}-rx"), origin + Vec3::new(1.5, 1.5, 1.2)),
        ));
    }
    Deployment { surfaces, links }
}

fn assert_bits_eq(a: &Linearization, b: &Linearization, tick: usize, link: usize) {
    let ctx = format!("tick {tick}, link {link}");
    assert_eq!(
        a.constant.re.to_bits(),
        b.constant.re.to_bits(),
        "{ctx}: constant.re"
    );
    assert_eq!(
        a.constant.im.to_bits(),
        b.constant.im.to_bits(),
        "{ctx}: constant.im"
    );
    assert_eq!(a.linear.len(), b.linear.len(), "{ctx}: linear term count");
    for (ta, tb) in a.linear.iter().zip(&b.linear) {
        assert_eq!(ta.surface, tb.surface, "{ctx}: surface index");
        assert_eq!(ta.coeffs.len(), tb.coeffs.len(), "{ctx}: coeff count");
        for (ca, cb) in ta.coeffs.iter().zip(&tb.coeffs) {
            assert_eq!(ca.re.to_bits(), cb.re.to_bits(), "{ctx}: coeff.re");
            assert_eq!(ca.im.to_bits(), cb.im.to_bits(), "{ctx}: coeff.im");
        }
    }
    assert_eq!(a.bilinear.len(), b.bilinear.len(), "{ctx}: bilinear count");
    for (ta, tb) in a.bilinear.iter().zip(&b.bilinear) {
        assert_eq!(
            (ta.first, ta.second),
            (tb.first, tb.second),
            "{ctx}: cascade pair"
        );
        for (ca, cb) in ta
            .alpha
            .iter()
            .zip(&tb.alpha)
            .chain(ta.beta.iter().zip(&tb.beta))
        {
            assert_eq!(ca.re.to_bits(), cb.re.to_bits(), "{ctx}: cascade coeff.re");
            assert_eq!(ca.im.to_bits(), cb.im.to_bits(), "{ctx}: cascade coeff.im");
        }
    }
}

/// Runs both arms over the same walk script and compares every tick.
#[allow(clippy::too_many_arguments)]
fn check_equivalence(
    rooms: usize,
    seed: u64,
    two_zones: bool,
    threads: usize,
    ticks: usize,
    dt_ms: u64,
    walks: &[BlockerWalk],
) {
    let band = NamedBand::MmWave28GHz.band();
    let campus = campus_plan(BUILDINGS, FLOORS, rooms, seed);
    let deploy = deployment(&campus, rooms);

    // Sharded arm.
    let zones = if two_zones {
        campus.zones()
    } else {
        vec![Zone::all()]
    };
    let mut sharded = ShardedKernel::new(&campus.plan, band, zones);
    sharded.set_worker_threads(Some(threads));
    for s in &deploy.surfaces {
        sharded.add_surface(s.clone());
    }
    for (ap, rx) in &deploy.links {
        sharded
            .add_link(ap.clone(), rx.clone())
            .expect("in-building link");
    }
    for walk in walks {
        sharded.attach_walk(walk.clone());
    }

    // Flat arm: one ChannelSim over the whole campus plan, every walker in
    // the one crowd (id order = attach order, the order shards preserve).
    let mut flat = ChannelSim::new(campus.plan.clone(), band);
    for s in &deploy.surfaces {
        flat.add_surface(s.clone());
    }

    let mut now_ms = 0u64;
    for tick in 0..ticks {
        sharded.replay_tick(dt_ms);
        now_ms += dt_ms;
        let t_s = now_ms as f64 / 1000.0; // same expression as the shards
        flat.set_blockers(walks.iter().map(|w| w.blocker_at(t_s)).collect());
        let sharded_lins = sharded.linearizations();
        assert_eq!(sharded_lins.len(), deploy.links.len());
        for (link, (ap, rx)) in deploy.links.iter().enumerate() {
            let flat_lin = flat.cached_linearization(ap, rx);
            // The comparison must be about real signal, not two empty
            // linearizations agreeing vacuously.
            assert!(
                flat_lin.constant.abs() > 0.0,
                "tick {tick}, link {link}: flat channel is dark"
            );
            assert_bits_eq(&sharded_lins[link], &flat_lin, tick, link);
        }
    }
}

proptest! {
    #[test]
    fn sharded_campus_is_bit_identical_to_flat(
        rooms in 1usize..=2,
        seed in 0u64..10_000,
        two_zones in prop::bool::ANY,
        threads in 1usize..=4,
        ticks in 3usize..=8,
        dt_ms in 80u64..=400,
        walkers in prop::collection::vec(
            (prop::collection::vec((-8.0f64..32.0, -8.0f64..20.0), 2..4), 0.8f64..3.0),
            1..4,
        ),
    ) {
        let walks: Vec<BlockerWalk> = walkers
            .into_iter()
            .map(|(pts, speed)| {
                BlockerWalk::new(
                    pts.into_iter().map(|(x, y)| Vec3::xy(x, y)).collect(),
                    speed,
                )
            })
            .collect();
        check_equivalence(rooms, seed, two_zones, threads, ticks, dt_ms, &walks);
    }
}

/// Deterministic companion: a fast walker scripted straight down the
/// street guarantees the compared window contains ownership handoffs, not
/// just in-zone motion.
#[test]
fn equivalence_holds_across_forced_handoffs() {
    // pitch_x for (1 floor, 2 rooms) buildings: 8 + 1.2 + 6 = 15.2 m; the
    // zone boundary sits at 15.2 − 3.6 = 11.6 m. A 4 m/s walker from
    // x = 2 to x = 28 crosses it inside 8 ticks of 1 s.
    let street = BlockerWalk::new(vec![Vec3::xy(2.0, -3.0), Vec3::xy(28.0, -3.0)], 4.0);
    let indoor = BlockerWalk::new(vec![Vec3::xy(1.0, 1.0), Vec3::xy(7.0, 4.0)], 1.0);
    check_equivalence(2, 99, true, 2, 8, 1000, &[street.clone(), indoor]);

    // And the walker really does change owner in the sharded arm.
    let campus = campus_plan(BUILDINGS, FLOORS, 2, 99);
    let mut kernel =
        ShardedKernel::new(&campus.plan, NamedBand::MmWave28GHz.band(), campus.zones());
    kernel.attach_walk(street);
    for _ in 0..8 {
        kernel.replay_tick(1000);
    }
    assert!(
        kernel.handoffs() > 0,
        "street walker never crossed the boundary"
    );
}
