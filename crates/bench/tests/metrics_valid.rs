//! Metrics-snapshot validation for the service plane.
//!
//! `surfosd serve --metrics-json` must leave behind a machine-readable
//! document with the `rpc.*` series a fleet operator alerts on. These
//! tests check the promise two ways:
//!
//! - in-process: boot a real daemon over loopback, fire a short burst,
//!   and validate its snapshot;
//! - on a file: when `SURFOS_METRICS_CHECK` points at a snapshot written
//!   by `surfosd serve --metrics-json` (wired up by the daemon smoke arm
//!   in `scripts/lint.sh`), validate that.

use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;
use surfos::daemon::{demo_kernel, ServeOptions, Server};
use surfos::obs::{self, JsonValue};
use surfos::rpc::frame::{read_frame, write_frame};
use surfos::rpc::proto::{Request, RequestEnvelope, Response};

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Validates a serve-mode snapshot: parseable, has the request counter,
/// the per-connection accounting, and (in full snapshots) the
/// `rpc.request_ns` HDR timer with percentile fields. Returns the total
/// request count.
fn validate_daemon_metrics(json: &str) -> Result<u64, String> {
    let doc = JsonValue::parse(json).map_err(|e| format!("bad JSON: {e}"))?;
    let counters = doc
        .get("counters")
        .and_then(JsonValue::as_object)
        .ok_or("no counters object")?;
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name || k.starts_with(&format!("{name}{{")))
            .and_then(|(_, v)| v.as_f64())
    };
    let requests = counter("rpc.requests").ok_or("no rpc.requests counter")? as u64;
    if requests == 0 {
        return Err("rpc.requests is zero — the daemon served nothing".into());
    }
    counter("rpc.conns.opened").ok_or("no rpc.conns.opened counter")?;

    // Deterministic projections reduce timers to bare counts and drop
    // `*_ns` series entirely; full snapshots (timer values are objects)
    // must expose the HDR percentiles the loadgen reports.
    let timers = doc.get("timers").and_then(JsonValue::as_object);
    let is_full = timers.is_some_and(|t| t.iter().any(|(_, v)| v.as_object().is_some()));
    if let (Some(timers), true) = (timers, is_full) {
        let rpc_timers: Vec<_> = timers
            .iter()
            .filter(|(k, _)| k.starts_with("rpc.request_ns"))
            .collect();
        if rpc_timers.is_empty() {
            return Err("full snapshot without any rpc.request_ns timer".into());
        }
        for (name, t) in rpc_timers {
            for field in ["count", "p50", "p99", "p999"] {
                let v = t
                    .get(field)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("timer {name} lacks {field}"))?;
                if field == "count" && v <= 0.0 {
                    return Err(format!("timer {name} has zero samples"));
                }
            }
        }
    }
    Ok(requests)
}

#[test]
fn live_daemon_snapshot_validates() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::reset();

    let server = Server::start(
        demo_kernel(),
        ServeOptions {
            tcp: Some("127.0.0.1:0".into()),
            ..ServeOptions::default()
        },
    )
    .expect("bind loopback");
    let mut c = TcpStream::connect(server.tcp_addr().unwrap()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for id in 1..=10u64 {
        let req = if id % 2 == 0 {
            Request::QueryChannel {
                tx: "ap0".into(),
                rx: "laptop".into(),
            }
        } else {
            Request::Ping
        };
        write_frame(&mut c, &RequestEnvelope::new(id, req).encode()).unwrap();
        let body = read_frame(&mut c).unwrap().expect("answer");
        assert!(!matches!(
            Response::decode(&body).unwrap().1,
            Response::Error { .. }
        ));
    }
    drop(c);
    server.stop();

    let snap = obs::snapshot();
    obs::set_enabled(false);
    let full = snap.to_json();
    let requests = validate_daemon_metrics(&full).expect("full snapshot must validate");
    assert!(requests >= 10, "served {requests} < 10");
    // The deterministic projection stays valid too (timers are dropped,
    // counters survive).
    validate_daemon_metrics(&snap.deterministic_json())
        .expect("deterministic projection must validate");
    obs::reset();
}

#[test]
fn validator_rejects_snapshots_missing_the_rpc_series() {
    assert!(validate_daemon_metrics("not json").is_err());
    assert!(validate_daemon_metrics(r#"{"counters":{}}"#)
        .unwrap_err()
        .contains("rpc.requests"));
    assert!(
        validate_daemon_metrics(r#"{"counters":{"rpc.requests":0,"rpc.conns.opened":1}}"#)
            .unwrap_err()
            .contains("zero")
    );
    // A full snapshot (object-valued timers) must carry the request timer.
    let no_timer = concat!(
        r#"{"counters":{"rpc.requests":5,"rpc.conns.opened":1},"#,
        r#""timers":{"other_ns":{"count":1,"p50":1,"p99":1,"p999":1}}}"#
    );
    assert!(validate_daemon_metrics(no_timer)
        .unwrap_err()
        .contains("rpc.request_ns"));
}

/// File-validation arm for `scripts/lint.sh`: when `SURFOS_METRICS_CHECK`
/// names a snapshot written by `surfosd serve --metrics-json`, validate
/// it; otherwise a no-op so plain `cargo test` stays hermetic.
#[test]
fn metrics_file_from_env_validates() {
    let Ok(path) = std::env::var("SURFOS_METRICS_CHECK") else {
        return;
    };
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("SURFOS_METRICS_CHECK={path}: {e}"));
    let requests = validate_daemon_metrics(&json)
        .unwrap_or_else(|e| panic!("{path}: invalid daemon metrics: {e}"));
    assert!(requests > 0, "{path}: no requests recorded");
}
