//! Shape guards for the paper reproductions: scaled-down versions of the
//! figure experiments asserting the *orderings* the paper reports, so a
//! physics or optimizer regression cannot silently invert a result.

use surfos_bench::{fig2, fig4, fig5};

#[test]
fn fig2_shape_coverage_config_disrupts_localization() {
    let out = fig2::run(24, 120);
    // The coverage config must localize far worse than the specular
    // baseline (the paper's Figure 2 contrast).
    assert!(
        out.localization_m.median() > 3.0 * out.baseline_localization_m.median(),
        "coverage {:.2} m vs baseline {:.2} m",
        out.localization_m.median(),
        out.baseline_localization_m.median()
    );
    // While coverage itself is healthy: the room's upper quartile is lit.
    assert!(
        out.coverage_dbm.quantile(0.75) > -60.0,
        "coverage map should be lit: p75 {:.1} dBm",
        out.coverage_dbm.quantile(0.75)
    );
}

#[test]
fn fig5_shape_joint_config_multitasks() {
    let out = fig5::run(24, 120);
    let joint = &out.configs[0];
    let loc_opt = &out.configs[1];
    let cov_opt = &out.configs[2];

    // Joint ≈ loc-opt on error, ≈ cov-opt on SNR.
    assert!(joint.loc_error_m.median() < 2.0 * loc_opt.loc_error_m.median() + 0.1);
    assert!(joint.snr_db.median() > cov_opt.snr_db.median() - 6.0);
    // Single-task configs collapse on the other task.
    assert!(cov_opt.loc_error_m.median() > 3.0 * loc_opt.loc_error_m.median());
    assert!(loc_opt.snr_db.median() < cov_opt.snr_db.median() - 5.0);
}

#[test]
fn fig4_shape_arm_characters() {
    // Minimal sweep: one representative point per arm.
    let passive = fig4::passive_only(96, 60);
    let programmable = fig4::programmable_only(48);
    let hybrid = fig4::hybrid(64, 12);

    // Character: passive is nearly free but big; programmable is small
    // but expensive; hybrid reaches comparable SNR at a fraction of the
    // programmable cost and of the passive size.
    assert!(
        passive.cost_usd < 50.0,
        "passive cheap: ${:.0}",
        passive.cost_usd
    );
    assert!(
        programmable.cost_usd > 10.0 * hybrid.cost_usd / 2.0,
        "programmable dear: ${:.0} vs hybrid ${:.0}",
        programmable.cost_usd,
        hybrid.cost_usd
    );
    assert!(
        hybrid.median_snr_db > passive.median_snr_db + 5.0,
        "hybrid outperforms same-order passive: {:.1} vs {:.1} dB",
        hybrid.median_snr_db,
        passive.median_snr_db
    );
    assert!(
        hybrid.median_snr_db > programmable.median_snr_db + 5.0,
        "hybrid outperforms similar-cost programmable: {:.1} vs {:.1} dB",
        hybrid.median_snr_db,
        programmable.median_snr_db
    );
    assert!(
        hybrid.area_m2 < 2.0 * passive.area_m2,
        "hybrid aperture stays deployable"
    );
}

#[test]
fn fig4_hybrid_scales_with_both_parts() {
    // Growing either part of the hybrid helps — the trade-off is real.
    let small = fig4::hybrid(32, 8);
    let more_passive = fig4::hybrid(64, 8);
    let more_prog = fig4::hybrid(32, 12);
    assert!(more_passive.median_snr_db > small.median_snr_db + 2.0);
    assert!(more_prog.median_snr_db > small.median_snr_db + 2.0);
}
