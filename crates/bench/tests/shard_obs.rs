//! Labeled observability on the sharded kernel: every `kernel.shard.*`
//! series carries a `{shard=N}` breakdown, the flat total equals the sum
//! over labels, and the deterministic metrics projection stays
//! byte-identical across identical runs with labels present.

use std::sync::Mutex;
use surfos::channel::dynamics::BlockerWalk;
use surfos::channel::{Endpoint, OperationMode, SurfaceInstance};
use surfos::em::array::ArrayGeometry;
use surfos::em::band::NamedBand;
use surfos::geometry::{Pose, Vec3};
use surfos::obs;
use surfos::shard::ShardedKernel;
use surfos_bench::scenes::campus_plan;

/// The obs registry is process-global; tests that reset/enable it must not
/// interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Boots a 3-building campus (one zone per building), runs `ticks`
/// heartbeats with a street walker, and returns the shard count.
fn run_campus(threads: usize, ticks: usize) -> usize {
    let band = NamedBand::MmWave28GHz.band();
    let campus = campus_plan(3, 1, 2, 7);
    let geom = ArrayGeometry::half_wavelength(8, 8, band.wavelength_m());
    let mut kernel = ShardedKernel::new(&campus.plan, band, campus.zones());
    kernel.set_worker_threads(Some(threads));
    for (b, building) in campus.buildings.iter().enumerate() {
        let origin = building.origin;
        kernel.add_surface(SurfaceInstance::new(
            format!("b{b}-wall"),
            Pose::wall_mounted(origin + Vec3::new(1.5, 5.0, 1.5), Vec3::new(0.0, -1.0, 0.0)),
            geom,
            OperationMode::Reflective,
        ));
        kernel
            .add_link(
                Endpoint::client(format!("b{b}-ap"), origin + Vec3::new(4.0, 6.0, 2.5)),
                Endpoint::client(format!("b{b}-rx"), origin + Vec3::new(1.5, 1.5, 1.2)),
            )
            .expect("in-building link");
    }
    kernel.attach_walk(BlockerWalk::new(
        vec![Vec3::xy(2.0, -3.0), Vec3::xy(28.0, -3.0)],
        2.0,
    ));
    for _ in 0..ticks {
        kernel.replay_tick(250);
    }
    std::hint::black_box(kernel.linearizations());
    kernel.shard_count()
}

#[test]
fn labeled_shard_series_sum_to_flat_totals() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::reset();
    let shards = run_campus(3, 6);
    let snap = obs::snapshot();
    obs::set_enabled(false);

    // Every shard shows up as its own labeled series on the eval phase.
    let eval_labels: Vec<&String> = snap
        .spans
        .keys()
        .filter(|k| obs::base_name(k) == "kernel.shard.eval" && k.contains("{shard="))
        .collect();
    assert_eq!(
        eval_labels.len(),
        shards,
        "expected one kernel.shard.eval{{shard=N}} series per shard, got {eval_labels:?}"
    );

    // The flat total of each always-labeled shard phase is exactly the sum
    // of its per-shard breakdowns (the collect-time fold contract).
    for (flat_key, flat) in snap
        .spans
        .iter()
        .filter(|(k, _)| k.starts_with("kernel.shard.") && !k.contains('{'))
    {
        let labeled_sum: u64 = snap
            .spans
            .iter()
            .filter(|(k, _)| k.contains('{') && obs::base_name(k) == *flat_key)
            .map(|(_, s)| s.count)
            .sum();
        assert_eq!(
            flat.count, labeled_sum,
            "span {flat_key}: flat total != sum over shard labels"
        );
    }
}

#[test]
fn deterministic_metrics_with_labels_are_byte_identical() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Force the process-global one-shot SIMD dispatch (and its obs
    // record) before the measured windows, where it also lands for real
    // single-run processes — otherwise only the first of the two runs
    // would capture it.
    let _ = surfos::em::simd::backend();
    let mut runs = Vec::new();
    for _ in 0..2 {
        obs::set_enabled(true);
        obs::reset();
        // One worker thread: journal-event interleaving across shards is
        // scheduling-dependent at higher thread counts, and this test is
        // about byte identity, not parallelism.
        run_campus(1, 4);
        let json = obs::snapshot().deterministic_json();
        obs::set_enabled(false);
        runs.push(json);
    }
    assert!(
        runs[0].contains("{shard="),
        "deterministic projection lost the label axis: {}",
        &runs[0][..runs[0].len().min(400)]
    );
    assert!(
        !runs[0].contains("_ns\""),
        "wall-clock series leaked into the deterministic projection"
    );
    assert_eq!(
        runs[0], runs[1],
        "two identical runs produced different deterministic metrics"
    );
}
