//! Channel-simulator micro-benchmarks: the cost of ray tracing
//! (linearization) and of re-evaluating channels from cached
//! linearizations — the asymmetry the optimizer's design relies on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::channel::Endpoint;
use surfos_bench::ApartmentLab;

fn bench_linearize(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel/linearize");
    for n in [8usize, 16, 32] {
        let mut lab = ApartmentLab::new("bedroom-north");
        lab.deploy("s", "bedroom-north", n);
        let rx = Endpoint::client("rx", lab.grid[10]);
        group.bench_function(format!("{n}x{n}"), |b| {
            b.iter(|| black_box(lab.sim.linearize(&lab.ap, &rx)))
        });
    }
    group.finish();
}

fn bench_cached_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel/evaluate_cached");
    for n in [16usize, 32] {
        let mut lab = ApartmentLab::new("bedroom-north");
        lab.deploy("s", "bedroom-north", n);
        let rx = Endpoint::client("rx", lab.grid[10]);
        let lin = lab.sim.linearize(&lab.ap, &rx);
        let responses = lab.sim.responses();
        group.bench_function(format!("{n}x{n}"), |b| {
            b.iter(|| black_box(lin.evaluate(black_box(&responses))))
        });
    }
    group.finish();
}

fn bench_cascade_scene(c: &mut Criterion) {
    // Two surfaces: linearization now includes bilinear cascade terms.
    let mut lab = ApartmentLab::new("living-wall");
    lab.deploy("backhaul", "living-wall", 32);
    lab.deploy("steer", "bedroom-wall", 16);
    let rx = Endpoint::client("rx", lab.grid[10]);
    c.bench_function("channel/linearize_with_cascades", |b| {
        b.iter(|| black_box(lab.sim.linearize(&lab.ap, &rx)))
    });
}

fn bench_heatmap(c: &mut Criterion) {
    let mut lab = ApartmentLab::new("bedroom-north");
    lab.deploy("s", "bedroom-north", 16);
    let grid = lab.heatmap_grid(10, 8);
    c.bench_function("channel/rss_heatmap_80pts_16x16", |b| {
        b.iter(|| black_box(lab.sim.rss_heatmap(&lab.ap, &grid, &lab.probe)))
    });
}

fn bench_frequency_response(c: &mut Criterion) {
    // Trace-once sweep vs the old clone-the-simulator-per-point sweep:
    // the asymmetry the trace/evaluate split buys.
    let mut lab = ApartmentLab::new("bedroom-north");
    lab.deploy("s", "bedroom-north", 16);
    let rx = Endpoint::client("rx", lab.grid[10]);
    let mut group = c.benchmark_group("channel/frequency_response");
    group.sample_size(20);
    group.bench_function("trace_once_128pts_16x16", |b| {
        b.iter(|| black_box(lab.sim.frequency_response(&lab.ap, &rx, 128)))
    });
    group.bench_function("naive_retrace_128pts_16x16", |b| {
        b.iter(|| black_box(lab.sim.frequency_response_naive(&lab.ap, &rx, 128)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_linearize,
    bench_cached_evaluate,
    bench_cascade_scene,
    bench_heatmap,
    bench_frequency_response
);
criterion_main!(benches);
