//! Walk-replay benchmarks: 60 heartbeats of moving blockers over a
//! cluttered 32-wall scene with a programmable surface. The incremental
//! path (blocker-epoch index refit + per-link linearization refresh) is
//! measured against a forced full rebuild per tick — the speedup the
//! two-epoch dynamics engine exists to deliver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::channel::dynamics::BlockerWalk;
use surfos::channel::{ChannelSim, Endpoint, OperationMode, SurfaceInstance};
use surfos::em::antenna::ElementPattern;
use surfos::em::array::ArrayGeometry;
use surfos::em::band::NamedBand;
use surfos::geometry::{Pose, Vec3};
use surfos_bench::scenes::cluttered_plan;

const WALLS: usize = 32;
const BLOCKERS: usize = 4;
const TICKS: usize = 60;
const SCENE_SEED: u64 = 42;

fn walk_scene() -> (ChannelSim, Endpoint, Endpoint, BlockerWalk) {
    let band = NamedBand::MmWave28GHz.band();
    let mut sim = ChannelSim::new(cluttered_plan(WALLS, SCENE_SEED), band);
    let geom = ArrayGeometry::half_wavelength(16, 16, band.wavelength_m());
    let pose = Pose::wall_mounted(Vec3::new(10.0, 4.0, 1.8), Vec3::new(0.0, 1.0, 0.0));
    sim.add_surface(SurfaceInstance::new(
        "s0",
        pose,
        geom,
        OperationMode::Reflective,
    ));
    let mut ap = Endpoint::client("ap", Vec3::new(4.0, 10.0, 2.0));
    ap.pattern = ElementPattern::Isotropic;
    let mut rx = Endpoint::client("rx", Vec3::new(16.0, 11.0, 1.2));
    rx.pattern = ElementPattern::Isotropic;
    let walk = BlockerWalk::new(
        vec![
            Vec3::xy(6.0, 9.0),
            Vec3::xy(14.0, 10.5),
            Vec3::xy(11.0, 6.0),
        ],
        1.4,
    );
    (sim, ap, rx, walk)
}

/// One replayed heartbeat: reposition the crowd, re-ask the cached link.
fn tick(sim: &mut ChannelSim, walk: &BlockerWalk, ap: &Endpoint, rx: &Endpoint, k: usize) {
    let t_s = k as f64 * 0.1;
    sim.set_blockers(walk.crowd_at(t_s, BLOCKERS, 0.8));
    black_box(sim.cached_linearization(ap, rx));
}

fn bench_walk_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel/walk_replay_60ticks");
    group.sample_size(10);

    // Incremental: blocker-only mutations refit the index and refresh the
    // cached linearization in place.
    {
        let (mut sim, ap, rx, walk) = walk_scene();
        let _ = sim.cached_linearization(&ap, &rx); // warm
        group.bench_function("incremental", |b| {
            b.iter(|| {
                for k in 0..TICKS {
                    tick(&mut sim, &walk, &ap, &rx, k);
                }
            })
        });
    }

    // Full rebuild: the pre-incremental behaviour, forced by invalidating
    // the structure each tick — index rebuilt, caches dropped, link fully
    // re-traced.
    {
        let (mut sim, ap, rx, walk) = walk_scene();
        group.bench_function("full_rebuild", |b| {
            b.iter(|| {
                for k in 0..TICKS {
                    sim.invalidate_cache();
                    tick(&mut sim, &walk, &ap, &rx, k);
                }
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_walk_replay);
criterion_main!(benches);
