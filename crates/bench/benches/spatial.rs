//! Spatial-index benchmarks: segment queries and full-link tracing on
//! cluttered scenes at 8/32/128 walls, brute-force scan vs BVH/AABB
//! culling. The indexed variants must return bit-identical results (the
//! property tests enforce that); these benches measure what the culling
//! buys as scenes grow.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::channel::paths::{self, Medium};
use surfos::channel::{Endpoint, SceneIndex};
use surfos::em::antenna::ElementPattern;
use surfos::em::band::NamedBand;
use surfos::geometry::Vec3;
use surfos_bench::scenes::{cluttered_plan, probe_segments};

const WALL_COUNTS: [usize; 3] = [8, 32, 128];
const SCENE_SEED: u64 = 42;

fn bench_crossings(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan/crossings");
    for n in WALL_COUNTS {
        let plan = cluttered_plan(n, SCENE_SEED);
        let index = plan.build_wall_index();
        let probes = probe_segments(16, SCENE_SEED ^ 0xBEEF);
        group.bench_function(format!("brute_{n}w"), |b| {
            b.iter(|| {
                for &(from, to) in &probes {
                    black_box(plan.crossings(from, to));
                }
            })
        });
        group.bench_function(format!("bvh_{n}w"), |b| {
            b.iter(|| {
                for &(from, to) in &probes {
                    black_box(plan.crossings_with(&index, from, to));
                }
            })
        });
    }
    group.finish();
}

fn bench_trace_segment(c: &mut Criterion) {
    let mut group = c.benchmark_group("medium/trace_segment");
    let band = NamedBand::MmWave28GHz.band();
    for n in WALL_COUNTS {
        let plan = cluttered_plan(n, SCENE_SEED);
        let index = SceneIndex::build(&plan, &[], &[]);
        let brute = Medium::new(&plan, &[], &[], band);
        let indexed = Medium::with_index(&plan, &[], &[], band, &index);
        let probes = probe_segments(16, SCENE_SEED ^ 0xBEEF);
        group.bench_function(format!("brute_{n}w"), |b| {
            b.iter(|| {
                for &(from, to) in &probes {
                    black_box(brute.trace_segment(from, to));
                }
            })
        });
        group.bench_function(format!("bvh_{n}w"), |b| {
            b.iter(|| {
                for &(from, to) in &probes {
                    black_box(indexed.trace_segment(from, to));
                }
            })
        });
    }
    group.finish();
}

fn bench_linearize_cluttered(c: &mut Criterion) {
    // Full-stack separation: the brute control re-scans every wall for
    // every bounce leg (O(walls²) per link), the indexed path walks the
    // BVH. Both produce bit-identical linearizations.
    let mut group = c.benchmark_group("channel/linearize_cluttered");
    let band = NamedBand::MmWave28GHz.band();
    for n in WALL_COUNTS {
        let plan = cluttered_plan(n, SCENE_SEED);
        let sim = surfos::channel::ChannelSim::new(plan.clone(), band);
        let mut tx = Endpoint::client("tx", Vec3::new(2.0, 2.0, 1.8));
        tx.pattern = ElementPattern::Isotropic;
        let mut rx = Endpoint::client("rx", Vec3::new(17.0, 16.0, 1.2));
        rx.pattern = ElementPattern::Isotropic;
        group.bench_function(format!("brute_{n}w"), |b| {
            b.iter(|| {
                let medium = Medium::new(&plan, &[], &[], band);
                black_box(
                    paths::trace_channel(&medium, &tx, &rx, &[], true, true).linearize_at(&band),
                )
            })
        });
        // `sim.linearize` resolves the epoch-cached index and traces
        // through it — the production path.
        group.bench_function(format!("indexed_{n}w"), |b| {
            b.iter(|| black_box(sim.linearize(&tx, &rx)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_crossings,
    bench_trace_segment,
    bench_linearize_cluttered
);
criterion_main!(benches);
