//! Service-plane wire benchmarks: framing and protocol codec.
//!
//! These gate the per-request CPU cost of the `surfosd serve` hot path —
//! everything a session worker does per frame besides the kernel dispatch
//! itself: frame encode/decode through `FrameBuf`, request envelope
//! decode, response encode. A regression here taxes every RPC on every
//! connection, so the ids live in `BENCH_baseline.json` and are checked
//! by `scripts/perf_smoke.sh --check` (group `rpc`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::rpc::frame::{encode_frame, FrameBuf};
use surfos::rpc::proto::{Request, RequestEnvelope, Response};

fn representative_request() -> RequestEnvelope {
    RequestEnvelope::with_tenant(
        42,
        "tenant-7",
        Request::RegisterService {
            kind: "coverage".into(),
            subject: "bedroom".into(),
            value: 25.0,
        },
    )
}

fn bench_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpc/frame");
    let body = representative_request().encode();
    group.bench_function("encode", |b| b.iter(|| encode_frame(black_box(&body))));
    let wire = encode_frame(&body);
    group.bench_function("decode_framebuf", |b| {
        let mut buf = FrameBuf::new();
        b.iter(|| {
            buf.extend(black_box(&wire));
            buf.next_frame().expect("well-formed").expect("complete")
        })
    });
    // Worst-case honest input: the frame arrives in two chunks, so the
    // decoder sees an incomplete header/body before completing.
    group.bench_function("decode_split_delivery", |b| {
        let mut buf = FrameBuf::new();
        let mid = wire.len() / 2;
        b.iter(|| {
            buf.extend(black_box(&wire[..mid]));
            let none = buf.next_frame().expect("incomplete is not an error");
            assert!(none.is_none());
            buf.extend(black_box(&wire[mid..]));
            buf.next_frame().expect("well-formed").expect("complete")
        })
    });
    group.finish();
}

fn bench_proto(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpc/proto");
    let env = representative_request();
    group.bench_function("request_encode", |b| b.iter(|| black_box(&env).encode()));
    let body = env.encode();
    group.bench_function("request_decode", |b| {
        b.iter(|| RequestEnvelope::decode(black_box(&body)).expect("round-trip"))
    });
    let response = Response::Channel {
        rss_dbm: -51.25,
        snr_db: 32.5,
        capacity_bps: 4.5e9,
    };
    group.bench_function("response_encode", |b| {
        b.iter(|| black_box(&response).encode(black_box(42)))
    });
    let resp_body = response.encode(42);
    group.bench_function("response_decode", |b| {
        b.iter(|| Response::decode(black_box(&resp_body)).expect("round-trip"))
    });
    group.finish();
}

criterion_group!(benches, bench_frame, bench_proto);
criterion_main!(benches);
