//! Wire-format benchmarks: configuration encode/decode throughput at
//! realistic surface sizes — the control channel's data-plane cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::hw::wire::{decode, encode, ConfigFrame};
use surfos::hw::SurfaceConfig;

fn frame(n: usize) -> ConfigFrame {
    let phases: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.61) % std::f64::consts::TAU)
        .collect();
    ConfigFrame {
        slot: 1,
        config: SurfaceConfig::from_phases(&phases),
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/encode");
    for (n, bits) in [(1024usize, 2u8), (4096, 2), (4096, 3)] {
        let f = frame(n);
        group.bench_function(format!("{n}elem_{bits}bit"), |b| {
            b.iter(|| black_box(encode(black_box(&f), bits, 0)))
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/decode");
    for (n, bits) in [(1024usize, 2u8), (4096, 2)] {
        let bytes = encode(&frame(n), bits, 0);
        group.bench_function(format!("{n}elem_{bits}bit"), |b| {
            b.iter(|| black_box(decode(black_box(bytes.clone())).unwrap()))
        });
    }
    group.finish();
}

fn bench_roundtrip_with_amplitude(c: &mut Criterion) {
    let mut f = frame(1024);
    for (i, e) in f.config.elements.iter_mut().enumerate() {
        e.amplitude = (i % 8) as f64 / 7.0;
    }
    c.bench_function("wire/roundtrip_1024_phase+amp", |b| {
        b.iter(|| {
            let bytes = encode(black_box(&f), 2, 8);
            black_box(decode(bytes).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_roundtrip_with_amplitude
);
criterion_main!(benches);
