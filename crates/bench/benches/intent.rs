//! Intent-translation benchmarks: utterance → service calls latency for
//! the offline rule engine (an LLM backend would add network time on top).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::broker::intent::{IntentContext, IntentTranslator, RuleBasedTranslator};
use surfos::broker::translate::required_link_snr_db;

fn context() -> IntentContext {
    IntentContext {
        room: "bedroom".into(),
        devices: vec!["VR_headset".into(), "laptop".into(), "phone".into()],
        bandwidth_hz: 400e6,
    }
}

fn bench_translate(c: &mut Criterion) {
    let translator = RuleBasedTranslator;
    let ctx = context();
    let mut group = c.benchmark_group("intent/translate");
    for (name, utterance) in [
        ("vr", "I want to start VR gaming in this room."),
        (
            "meeting+charge",
            "I want to have an online meeting while charging my phone.",
        ),
        ("miss", "colorless green ideas sleep furiously"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(translator.translate(black_box(utterance), &ctx)))
        });
    }
    group.finish();
}

fn bench_snr_mapping(c: &mut Criterion) {
    c.bench_function("intent/required_snr_mapping", |b| {
        b.iter(|| black_box(required_link_snr_db(black_box(800.0), 400e6, 10.0)))
    });
}

criterion_group!(benches, bench_translate, bench_snr_mapping);
criterion_main!(benches);
