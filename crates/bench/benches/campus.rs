//! Campus-scale shard benchmarks: the near-linear scale-out story.
//!
//! `channel/campus_linearize` shows the problem — flat single-scene
//! tracing cost grows roughly linearly with campus size even though the
//! extra buildings are RF-dark to every link. `kernel/shard_scale` shows
//! the fix — the same ≥ 16k-wall campus evaluated by a `ShardedKernel` at
//! 1, 2 and 4 shards, with the worker pool pinned to one thread so the
//! measured speedup is *algorithmic* (zone-local scenes mean ~4× fewer
//! walls per trace, ~4× fewer retained paths and fewer blockers per
//! refresh), not parallelism. The acceptance bar is ≥ 3× at 4 shards on
//! both walk replay and batch linearization.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::channel::dynamics::BlockerWalk;
use surfos::channel::{ChannelSim, Endpoint, OperationMode, SurfaceInstance};
use surfos::em::array::ArrayGeometry;
use surfos::em::band::NamedBand;
use surfos::geometry::{Pose, Vec3};
use surfos::shard::{ShardedKernel, Zone};
use surfos_bench::scenes::{campus_plan, CampusPlan};

/// Buildings in the bench campus (2×2 grid).
const BUILDINGS: usize = 4;
/// Floor plates per building — (16, 42) is the 4064-wall building the
/// building benches use; 4 of them + shells = 16 272 walls.
const FLOORS: usize = 16;
/// Rooms per corridor side per floor.
const ROOMS: usize = 42;
const SCENE_SEED: u64 = 11;

/// Per-building endpoint/surface placement, relative to the building
/// origin: AP in the floor-0 corridor, three clients spread across floor
/// strips (f0 room s0, an f7 south room, the f15 corridor), a 16×16
/// reflective surface on the corridor wall above the first client's
/// doorway. Three links per building keeps the batch-amortization
/// (shared scene snapshot) symmetric between the 1-shard and 4-shard
/// arms, so the shard-scaling ratio measures scene size, not batch
/// width.
fn ap_offset() -> Vec3 {
    Vec3::new(84.0, 6.0, 2.5)
}
fn client_offsets() -> [Vec3; 3] {
    [
        Vec3::new(2.0, 2.0, 1.2),
        Vec3::new(84.0, 100.0, 1.2),
        Vec3::new(160.0, 216.0, 1.5),
    ]
}
fn surface_pose(origin: Vec3) -> Pose {
    Pose::wall_mounted(origin + Vec3::new(2.0, 5.0, 1.8), Vec3::new(0.0, -1.0, 0.0))
}

/// A sharded campus kernel with one link, surface and corridor walker per
/// building, plus one street walker, at an explicit zone table. The worker
/// pool is pinned to one thread: shard-count speedups must come from the
/// decomposition, not from cores.
fn build_kernel(campus: &CampusPlan, zones: Vec<Zone>) -> ShardedKernel {
    let band = NamedBand::MmWave28GHz.band();
    let mut kernel = ShardedKernel::new(&campus.plan, band, zones);
    kernel.set_worker_threads(Some(1));
    let geom = ArrayGeometry::half_wavelength(16, 16, band.wavelength_m());
    for (b, building) in campus.buildings.iter().enumerate() {
        let origin = building.origin;
        kernel.add_surface(SurfaceInstance::new(
            format!("b{b}-wall"),
            surface_pose(origin),
            geom,
            OperationMode::Reflective,
        ));
        for (i, client) in client_offsets().into_iter().enumerate() {
            kernel
                .add_link(
                    Endpoint::client(format!("b{b}-ap"), origin + ap_offset()),
                    Endpoint::client(format!("b{b}-rx{i}"), origin + client),
                )
                .expect("in-building link");
        }
        // One walker pacing the ground-floor corridor, repeatedly cutting
        // the AP→client line so every tick refreshes real path state.
        kernel.attach_walk(BlockerWalk::new(
            vec![origin + Vec3::xy(2.0, 6.0), origin + Vec3::xy(166.0, 6.0)],
            1.4,
        ));
    }
    // A fast courier in the south street: crosses the column boundary
    // during the bench window, so cross-shard handoff cost is in the
    // measurement, not assumed away.
    kernel.attach_walk(BlockerWalk::new(
        vec![Vec3::xy(84.0, -3.6), Vec3::xy(260.0, -3.6)],
        20.0,
    ));
    kernel
}

/// The zone table for a given shard count over the 2×2 campus: 4 = one
/// zone per building, 2 = one per grid column, 1 = the whole plane (the
/// flat kernel, the baseline every speedup is against).
fn zones_for(campus: &CampusPlan, shards: usize) -> Vec<Zone> {
    match shards {
        1 => vec![Zone::all()],
        2 => {
            let xb = campus.buildings[1].zone.x0;
            vec![
                Zone::new(f64::NEG_INFINITY, f64::NEG_INFINITY, xb, f64::INFINITY),
                Zone::new(xb, f64::NEG_INFINITY, f64::INFINITY, f64::INFINITY),
            ]
        }
        4 => campus.zones(),
        _ => unreachable!("bench covers 1/2/4 shards"),
    }
}

fn bench_campus_linearize(c: &mut Criterion) {
    // Flat single-scene cost vs campus size: one in-building link, traced
    // against 1-, 2- and 4-building scenes. The link's numbers are
    // identical in all three (the other buildings are RF-dark) — only the
    // cost grows.
    let band = NamedBand::MmWave28GHz.band();
    let mut group = c.benchmark_group("channel/campus_linearize");
    group.sample_size(10);
    for buildings in [1usize, 2, 4] {
        let campus = campus_plan(buildings, FLOORS, ROOMS, SCENE_SEED);
        let mut sim = ChannelSim::new(campus.plan.clone(), band);
        sim.add_surface(SurfaceInstance::new(
            "b0-wall",
            surface_pose(campus.buildings[0].origin),
            ArrayGeometry::half_wavelength(16, 16, band.wavelength_m()),
            OperationMode::Reflective,
        ));
        let ap = Endpoint::client("ap", campus.buildings[0].origin + ap_offset());
        let rx = Endpoint::client("rx", campus.buildings[0].origin + client_offsets()[0]);
        group.bench_function(format!("flat_{buildings}bldg"), |b| {
            b.iter(|| black_box(sim.linearize_batch(&[(&ap, &rx)]).len()))
        });
    }
    group.finish();
}

fn bench_shard_scale(c: &mut Criterion) {
    let campus = campus_plan(BUILDINGS, FLOORS, ROOMS, SCENE_SEED);
    assert!(campus.plan.walls().len() >= 16_000);
    let mut group = c.benchmark_group("kernel/shard_scale");
    group.sample_size(10);

    for shards in [1usize, 2, 4] {
        // Walk replay: 10 campus heartbeats of moving blockers, every link
        // re-asked through the per-shard linearization caches.
        let mut kernel = build_kernel(&campus, zones_for(&campus, shards));
        kernel.replay_tick(100); // warm the caches once
        group.bench_function(format!("walk_replay_10ticks/{shards}shards"), |b| {
            b.iter(|| {
                for _ in 0..10 {
                    kernel.replay_tick(100);
                }
                black_box(kernel.linearizations().len())
            })
        });

        // Batch linearization: every link freshly traced (no cache).
        let mut kernel = build_kernel(&campus, zones_for(&campus, shards));
        group.bench_function(format!("linearize_batch/{shards}shards"), |b| {
            b.iter(|| black_box(kernel.linearize_links().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campus_linearize, bench_shard_scale);
criterion_main!(benches);
