//! Scheduler throughput: frames scheduled per second as the task set and
//! resource grid grow — the control-plane scalability number.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::orchestrator::scheduler::{Requirement, ResourceModel, Scheduler};

fn requirements(n: usize, surfaces: usize) -> Vec<Requirement> {
    (0..n as u64)
        .map(|task| Requirement {
            task,
            priority: (task % 10) as u8,
            band: (task % 2) as usize,
            surfaces: vec![(task as usize) % surfaces],
            min_slots: 1 + (task as usize) % 3,
            shareable: task % 3 != 0,
        })
        .collect()
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/frame");
    for (tasks, surfaces, slots) in [(10usize, 4usize, 8usize), (50, 8, 16), (200, 16, 32)] {
        let model = ResourceModel {
            slots_per_frame: slots,
            bands: 2,
            surfaces,
        };
        let reqs = requirements(tasks, surfaces);
        group.bench_function(format!("{tasks}tasks_{surfaces}surf_{slots}slots"), |b| {
            b.iter(|| black_box(Scheduler::schedule(black_box(&reqs), &model)))
        });
    }
    group.finish();
}

fn bench_slice_release(c: &mut Criterion) {
    let model = ResourceModel {
        slots_per_frame: 16,
        bands: 2,
        surfaces: 8,
    };
    let reqs = requirements(100, 8);
    let outcome = Scheduler::schedule(&reqs, &model);
    c.bench_function("scheduler/release_task", |b| {
        b.iter(|| {
            let mut map = outcome.map.clone();
            black_box(map.release_task(black_box(42)))
        })
    });
}

criterion_group!(benches, bench_schedule, bench_slice_release);
criterion_main!(benches);
