//! Building-scale spatial benchmarks: 1k–4k-wall multi-floor plans, where
//! the SAH/packed tree has to beat both the brute scan *and* the reference
//! median-split tree to earn its keep.
//!
//! `plan/crossings_building` isolates the index (16 probe segments through
//! the whole building, brute vs median tree vs SAH tree — all three return
//! bit-identical crossings, the proptests pin that). The wall counts come
//! from `building_plan`'s parametric layout: (8 floors × 21 rooms/side) =
//! 1024 walls, (16 × 42) = 4064 walls.
//!
//! `channel/linearize_building` is the full production path — direct +
//! wall-reflection + penetration tracing through `ChannelSim`'s epoch
//! cache and `SceneIndex` — on the same scenes, brute control vs indexed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::channel::paths::{self, Medium};
use surfos::channel::Endpoint;
use surfos::em::antenna::ElementPattern;
use surfos::em::band::NamedBand;
use surfos::geometry::Vec3;
use surfos_bench::scenes::{building_extent, building_plan, probe_segments_in};

/// (floors, rooms per side) → 1024 and 4064 walls.
const BUILDINGS: [(usize, usize); 2] = [(8, 21), (16, 42)];
const SCENE_SEED: u64 = 2024;

fn bench_crossings_building(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan/crossings_building");
    for (floors, rooms) in BUILDINGS {
        let plan = building_plan(floors, rooms, SCENE_SEED);
        let n = plan.walls().len();
        let sah = plan.build_wall_index();
        let median = plan.build_wall_index_median();
        let (ext_x, ext_y) = building_extent(floors, rooms);
        let probes = probe_segments_in(16, SCENE_SEED ^ 0xBEEF, ext_x, ext_y);
        group.bench_function(format!("brute_{n}w"), |b| {
            b.iter(|| {
                for &(from, to) in &probes {
                    black_box(plan.crossings(from, to));
                }
            })
        });
        group.bench_function(format!("median_{n}w"), |b| {
            b.iter(|| {
                for &(from, to) in &probes {
                    black_box(plan.crossings_with(&median, from, to));
                }
            })
        });
        group.bench_function(format!("sah_{n}w"), |b| {
            b.iter(|| {
                for &(from, to) in &probes {
                    black_box(plan.crossings_with(&sah, from, to));
                }
            })
        });
    }
    group.finish();
}

fn bench_linearize_building(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel/linearize_building");
    let band = NamedBand::MmWave28GHz.band();
    for (floors, rooms) in BUILDINGS {
        let plan = building_plan(floors, rooms, SCENE_SEED);
        let n = plan.walls().len();
        let sim = surfos::channel::ChannelSim::new(plan.clone(), band);
        // A link spanning several rooms and one corridor on the first
        // floor plate: enough walls in play that culling quality decides
        // the trace cost.
        let mut tx = Endpoint::client("tx", Vec3::new(2.0, 2.5, 1.8));
        tx.pattern = ElementPattern::Isotropic;
        let mut rx = Endpoint::client("rx", Vec3::new(rooms as f64 * 4.0 - 2.0, 9.5, 1.2));
        rx.pattern = ElementPattern::Isotropic;
        // Brute control only at the smaller building: O(walls²) per link
        // makes the 4k-wall control pure waiting, and the 1k point already
        // anchors the separation.
        if n <= 2048 {
            group.bench_function(format!("brute_{n}w"), |b| {
                b.iter(|| {
                    let medium = Medium::new(&plan, &[], &[], band);
                    black_box(
                        paths::trace_channel(&medium, &tx, &rx, &[], true, true)
                            .linearize_at(&band),
                    )
                })
            });
        }
        // `sim.linearize` resolves the epoch-cached SAH/packed index and
        // traces through it — the production path.
        group.bench_function(format!("indexed_{n}w"), |b| {
            b.iter(|| black_box(sim.linearize(&tx, &rx)))
        });
    }
    group.finish();
}

fn bench_frequency_response_building(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel/frequency_response_building");
    let band = NamedBand::MmWave28GHz.band();
    // One trace of the 4064-wall building, then a 64-point subcarrier
    // sweep: the trace exercises the packet/prefilter geometry once, the
    // sweep exercises the SoA phasor re-phasing 64 times. The scalar
    // reference arm (`sweep_evaluate_scalar`) rides along to keep the
    // AoS → SoA separation visible in the numbers.
    let (floors, rooms) = BUILDINGS[1];
    let plan = building_plan(floors, rooms, SCENE_SEED);
    let n = plan.walls().len();
    let sim = surfos::channel::ChannelSim::new(plan, band);
    let mut tx = Endpoint::client("tx", Vec3::new(2.0, 2.5, 1.8));
    tx.pattern = ElementPattern::Isotropic;
    let mut rx = Endpoint::client("rx", Vec3::new(rooms as f64 * 4.0 - 2.0, 9.5, 1.2));
    rx.pattern = ElementPattern::Isotropic;
    group.bench_function(format!("sweep64_{n}w"), |b| {
        b.iter(|| black_box(sim.frequency_response(&tx, &rx, 64)))
    });
    // Sweep-only arms on a pre-computed trace: the rephase hot loop with
    // the trace cost excluded, SoA vs the scalar reference.
    let trace = sim.trace(&tx, &rx);
    let responses = sim.responses();
    let (lo, hi) = (band.low_hz(), band.high_hz());
    let probes: Vec<surfos::em::band::Band> = (0..64)
        .map(|i| {
            let f = lo + (hi - lo) * i as f64 / 63.0;
            surfos::em::band::Band::new(f, band.bandwidth_hz.min(f))
        })
        .collect();
    group.bench_function(format!("rephase64_soa_{n}w"), |b| {
        b.iter(|| black_box(trace.sweep_evaluate(&probes, &responses)))
    });
    group.bench_function(format!("rephase64_scalar_{n}w"), |b| {
        b.iter(|| black_box(trace.sweep_evaluate_scalar(&probes, &responses)))
    });
    group.finish();
}

/// The SIMD kernel arms this host can run, labelled for bench ids.
fn runnable_backends() -> Vec<(surfos::em::simd::Backend, &'static str)> {
    use surfos::em::simd::Backend;
    let mut v = vec![(Backend::Scalar, "scalar"), (Backend::Sse2, "sse2")];
    if surfos::em::simd::avx2_available() {
        v.push((Backend::Avx2, "avx2"));
    }
    v
}

/// Per-backend arms of the batched wall-crossing query on the 4064-wall
/// building: the four-lane f64 `crossing_t` solve (sse2 = `F64x2` pairs,
/// avx2 = native `F64x4`) against the scalar per-segment reference. All
/// arms return bit-identical crossings — the proptests pin that — so the
/// deltas here are pure kernel cost.
fn bench_crossing_t_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel/crossing_t_f64x4");
    let (floors, rooms) = BUILDINGS[1];
    let plan = building_plan(floors, rooms, SCENE_SEED);
    let n = plan.walls().len();
    let sah = plan.build_wall_index();
    let (ext_x, ext_y) = building_extent(floors, rooms);
    let probes = probe_segments_in(16, SCENE_SEED ^ 0xBEEF, ext_x, ext_y);
    for (backend, name) in runnable_backends() {
        group.bench_function(format!("{name}_{n}w"), |b| {
            b.iter(|| black_box(plan.crossings_batch_with(&sah, backend, &probes)))
        });
    }
    group.finish();
}

/// Per-backend arms of the phasor rotate-and-accumulate kernel on a
/// sweep-sized bank (4096 phasors × 64 steps): the portable reassociated
/// loop (scalar/sse2 share it) against the fused AVX2 `F64x4` kernel.
fn bench_sweep_mul_add(c: &mut Criterion) {
    use surfos::em::simd::phasor;
    let mut group = c.benchmark_group("channel/sweep_mul_add");
    const N: usize = 4096;
    const STEPS: usize = 64;
    let seed = |i: usize, k: u64| {
        let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ k;
        x ^= x >> 29;
        (x % 2000) as f64 / 1000.0 - 1.0
    };
    let re0: Vec<f64> = (0..N).map(|i| seed(i, 1)).collect();
    let im0: Vec<f64> = (0..N).map(|i| seed(i, 2)).collect();
    let (dre, dim): (Vec<f64>, Vec<f64>) = (0..N)
        .map(|i| {
            let a = seed(i, 3) * std::f64::consts::PI;
            (a.cos(), a.sin())
        })
        .unzip();
    for (backend, name) in runnable_backends() {
        group.bench_function(format!("{name}_{N}x{STEPS}"), |b| {
            b.iter(|| {
                let mut re = re0.clone();
                let mut im = im0.clone();
                let mut acc = (0.0, 0.0);
                for _ in 0..STEPS {
                    let (r, i) =
                        phasor::sum_and_advance_with(backend, &mut re, &mut im, &dre, &dim);
                    acc.0 += r;
                    acc.1 += i;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// Per-backend arms of the eight-lane interval-bank sweep over a crowd of
/// blocker-sized boxes (256 boxes × 16 probe segments), against the brute
/// per-box exact test the scalar arm degenerates to. The bank only
/// *narrows* — candidates re-run the exact test — so arms differ in cost,
/// never in survivors.
fn bench_aperture_bank(c: &mut Criterion) {
    use surfos::geometry::bvh::{Aabb, AabbBank};
    let mut group = c.benchmark_group("channel/aperture_bank");
    const BOXES: usize = 256;
    let (floors, rooms) = BUILDINGS[0];
    let (ext_x, ext_y) = building_extent(floors, rooms);
    let hash = |i: usize, k: u64| {
        let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ k;
        x ^= x >> 29;
        (x % 10_000) as f64 / 10_000.0
    };
    let boxes: Vec<Aabb> = (0..BOXES)
        .map(|i| {
            let c = Vec3::new(hash(i, 1) * ext_x, hash(i, 2) * ext_y, hash(i, 3) * 3.0);
            let half = Vec3::new(0.3, 0.3, 0.9);
            Aabb::new(c - half, c + half)
        })
        .collect();
    let bank = AabbBank::new(&boxes);
    let probes = probe_segments_in(16, SCENE_SEED ^ 0xD00A, ext_x, ext_y);
    for (backend, name) in runnable_backends() {
        group.bench_function(format!("{name}_{BOXES}b"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(from, to) in &probes {
                    bank.for_each_candidate_with(backend, from, to, |i| {
                        if boxes[i].intersects_segment(from, to) {
                            hits += 1;
                        }
                    });
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_crossings_building,
    bench_linearize_building,
    bench_frequency_response_building,
    bench_crossing_t_backends,
    bench_sweep_mul_add,
    bench_aperture_bank
);
criterion_main!(benches);
