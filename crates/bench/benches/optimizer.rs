//! Configuration-optimizer benchmarks: the per-iteration cost of the
//! analytic-gradient path versus the baselines, across surface sizes —
//! the numbers that justify gradient descent as the paper's workhorse.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use surfos::orchestrator::objective::{CoverageObjective, Objective};
use surfos::orchestrator::optimizer::{adam, greedy_quantized, random_search, AdamOptions, Tying};
use surfos_bench::ApartmentLab;

fn coverage_objective(n: usize) -> CoverageObjective {
    let mut lab = ApartmentLab::new("bedroom-north");
    lab.deploy("s", "bedroom-north", n);
    CoverageObjective::new(&lab.sim, &lab.ap, &lab.grid, &lab.probe)
}

fn bench_loss_and_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer/loss_grad");
    for n in [8usize, 16, 32] {
        let obj = coverage_objective(n);
        let responses: Vec<Vec<surfos::em::complex::Complex>> =
            vec![vec![surfos::em::complex::Complex::ONE; n * n]];
        group.bench_function(format!("loss_{n}x{n}"), |b| {
            b.iter(|| black_box(obj.loss(black_box(&responses))))
        });
        group.bench_function(format!("grad_{n}x{n}"), |b| {
            b.iter(|| black_box(obj.grad_phase(black_box(&responses))))
        });
    }
    group.finish();
}

fn bench_adam_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer/adam_10iters");
    group.sample_size(10);
    for n in [16usize, 32] {
        let obj = coverage_objective(n);
        group.bench_function(format!("{n}x{n}"), |b| {
            b.iter(|| {
                black_box(adam(
                    &obj,
                    &[vec![0.0; n * n]],
                    &Tying::element_wise(1),
                    AdamOptions {
                        iters: 10,
                        lr: 0.15,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer/baselines");
    group.sample_size(10);
    let n = 16usize;
    let obj = coverage_objective(n);
    group.bench_function("random_search_100", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            black_box(random_search(&obj, &[n * n], 100, &mut rng))
        })
    });
    group.bench_function("greedy_2bit_1pass", |b| {
        b.iter(|| {
            black_box(greedy_quantized(
                &obj,
                &[n * n],
                &Tying::element_wise(1),
                2,
                1,
            ))
        })
    });
    group.finish();
}

fn bench_column_tying(c: &mut Criterion) {
    // Column tying shrinks the parameter count; the per-iteration cost
    // should shrink accordingly.
    let mut group = c.benchmark_group("optimizer/tying");
    group.sample_size(10);
    let n = 32usize;
    let obj = coverage_objective(n);
    let opts = AdamOptions {
        iters: 10,
        lr: 0.15,
        ..Default::default()
    };
    group.bench_function("element_wise_10iters", |b| {
        b.iter(|| {
            black_box(adam(
                &obj,
                &[vec![0.0; n * n]],
                &Tying::element_wise(1),
                opts,
            ))
        })
    });
    group.bench_function("column_wise_10iters", |b| {
        let mut tying = Tying::element_wise(1);
        tying.tie_columns(0, n, n);
        b.iter(|| black_box(adam(&obj, &[vec![0.0; n * n]], &tying, opts)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_loss_and_gradient,
    bench_adam_iterations,
    bench_baselines,
    bench_column_tying
);
criterion_main!(benches);
