//! Observability overhead benchmarks.
//!
//! The whole point of `surfos-obs` is that instrumentation left in hot
//! paths (BVH queries, lin-cache lookups, the kernel loop) costs nothing
//! while metrics are off: every recording API starts with one relaxed
//! atomic load. The `off/*` benchmarks measure that disabled path — they
//! should report single-digit nanoseconds per call. The `on/*` variants
//! show what enabling collection costs, for calibration (they are *not*
//! perf-gated; sharded registry contention is measured in context by the
//! channel benches).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::obs;

fn bench_disabled(c: &mut Criterion) {
    obs::set_enabled(false);
    let mut group = c.benchmark_group("obs/off");
    group.bench_function("counter_add", |b| {
        b.iter(|| obs::add(black_box("bench.counter"), black_box(1)))
    });
    group.bench_function("histogram_observe", |b| {
        b.iter(|| obs::observe(black_box("bench.hist"), black_box(42)))
    });
    group.bench_function("span_enter_drop", |b| {
        b.iter(|| {
            let _g = obs::span!("bench.span");
        })
    });
    group.bench_function("event_macro", |b| {
        // The format args must not even be evaluated when off.
        b.iter(|| obs::event!("bench", "value={}", black_box(7)))
    });
    group.bench_function("timer_observe_ns", |b| {
        b.iter(|| obs::observe_ns(black_box("bench.timer_ns"), black_box(1250)))
    });
    group.bench_function("labeled_scope", |b| {
        // The label must not be formatted or interned when off.
        b.iter(|| {
            let _g = obs::scoped(&[("shard", black_box(3u32))]);
        })
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    obs::set_enabled(true);
    obs::reset();
    let mut group = c.benchmark_group("obs/on");
    group.bench_function("counter_add", |b| {
        b.iter(|| obs::add(black_box("bench.counter"), black_box(1)))
    });
    group.bench_function("histogram_observe", |b| {
        b.iter(|| obs::observe(black_box("bench.hist"), black_box(42)))
    });
    group.bench_function("span_enter_drop", |b| {
        b.iter(|| {
            let _g = obs::span!("bench.span");
        })
    });
    group.bench_function("timer_observe_ns", |b| {
        b.iter(|| obs::observe_ns(black_box("bench.timer_ns"), black_box(1250)))
    });
    group.bench_function("labeled_scope", |b| {
        b.iter(|| {
            let _g = obs::scoped(&[("shard", black_box(3u32))]);
        })
    });
    group.finish();
    obs::set_enabled(false);
    obs::reset();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
