//! Sensing benchmarks: AoA spectrum estimation and the differentiable
//! localization loss — the per-probe costs that bound how many sensing
//! tasks a frame can carry.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use surfos::em::array::{ArrayGeometry, SteeringVector};
use surfos::em::complex::Complex;
use surfos::sensing::aoa::{AngleGrid, AoaEstimator};

const LAMBDA: f64 = 0.0107;

fn k() -> f64 {
    2.0 * std::f64::consts::PI / LAMBDA
}

fn bench_spectrum(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensing/spectrum");
    for (n, bins) in [(8usize, 41usize), (16, 81), (32, 81)] {
        let geom = ArrayGeometry::half_wavelength(n, n, LAMBDA);
        let est = AoaEstimator::new(&geom, k(), AngleGrid::uniform(bins, 1.3));
        let y = SteeringVector::compute(&geom, [0.3, 0.0, 1.0], k()).weights;
        group.bench_function(format!("{n}x{n}_{bins}bins"), |b| {
            b.iter(|| black_box(est.spectrum(black_box(&y))))
        });
    }
    group.finish();
}

fn bench_loss_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensing/aoa_loss");
    let n = 16usize;
    let bins = 41;
    let geom = ArrayGeometry::half_wavelength(n, n, LAMBDA);
    let est = AoaEstimator::new(&geom, k(), AngleGrid::uniform(bins, 1.3));
    let coeffs = SteeringVector::compute(&geom, [0.2, 0.0, 1.0], k()).weights;
    let cal = vec![Complex::ONE; n * n];
    let lin = est.linearize(&coeffs, &cal, 0.2);
    let r: Vec<Complex> = (0..n * n).map(|i| Complex::cis(i as f64 * 0.1)).collect();
    group.bench_function("loss_16x16_41bins", |b| {
        b.iter(|| black_box(lin.loss(black_box(&r))))
    });
    group.bench_function("grad_16x16_41bins", |b| {
        b.iter(|| black_box(lin.grad_phase(black_box(&r))))
    });
    group.finish();
}

criterion_group!(benches, bench_spectrum, bench_loss_gradient);
criterion_main!(benches);
