//! Observability smoke run: boots the apartment scenario, runs the kernel
//! loop with metrics enabled, and prints one JSON line per derived metric
//! and per span — consumed by `scripts/perf_smoke.sh`, which attaches the
//! lines to `BENCH_channel.json` under `"observability"`.
//!
//! The lines deliberately use `"span"`/`"p50_ns"` and `"metric"`/`"value"`
//! keys, *not* the benches' `"id"`/`"median_ns"` pair: span medians vary
//! with optimizer iteration counts and are not perf-gated, so they must
//! stay invisible to the regression extractor.

use surfos::channel::dynamics::BlockerWalk;
use surfos::channel::{ChannelSim, Endpoint, OperationMode, SurfaceInstance};
use surfos::em::antenna::ElementPattern;
use surfos::em::array::ArrayGeometry;
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::{Pose, Vec3};
use surfos::hw::designs;
use surfos::hw::driver::ProgrammableDriver;
use surfos::obs;
use surfos::orchestrator::ServiceRequest;
use surfos::SurfOS;

fn main() {
    obs::set_enabled(true);

    let scen = two_room_apartment();
    let sim = ChannelSim::new(scen.plan.clone(), NamedBand::MmWave28GHz.band());
    let mut os = SurfOS::new(sim);
    let mut spec = designs::scatter_mimo();
    spec.band = NamedBand::MmWave28GHz.band();
    spec.rows = 32;
    spec.cols = 32;
    spec.pitch_m = 0.0053;
    let pose = *scen.anchor("bedroom-north").expect("anchor");
    os.deploy_surface("wall0", Box::new(ProgrammableDriver::new(spec)), pose);
    os.add_endpoint(Endpoint::access_point(
        "ap0",
        Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
    ));
    os.add_endpoint(Endpoint::client("laptop", Vec3::new(6.5, 1.5, 1.2)));
    os.orchestrator_mut().adam_options.iters = 60;
    os.submit(ServiceRequest::optimize_coverage("bedroom", 25.0));
    // A link task exercises the per-pair linearization cache (coverage
    // goes through the sweep path, which is uncached by design).
    os.submit(ServiceRequest::enhance_link("laptop", 20.0, 50.0));
    // A walking person: every step after the first is a blocker-only
    // mutation, exercising the incremental refit/refresh path.
    os.attach_walk(BlockerWalk::new(
        vec![Vec3::xy(5.5, 1.0), Vec3::xy(7.0, 2.5)],
        1.4,
    ));
    for _ in 0..3 {
        os.step(10);
    }

    let snap = obs::snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    // Which SIMD kernel arm this run dispatched to (1 = scalar reference,
    // 2 = sse2 pairs, 3 = native avx2) — attached so every perf number in
    // BENCH_channel.json is attributable to a backend.
    println!(
        "{{\"metric\": \"em.simd.backend\", \"value\": {}}}",
        surfos::em::simd::backend() as u8
    );

    // Refreshes are warm accesses too: the entry survived a blocker step
    // and was patched in place instead of re-traced.
    let hits = (get("channel.lincache.hits") + get("channel.lincache.refreshes")) as f64;
    let misses = get("channel.lincache.misses") as f64;
    let hit_rate = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    println!("{{\"metric\": \"channel.lincache.hit_rate\", \"value\": {hit_rate:.4}}}");

    let visited = get("geometry.bvh.nodes_visited") as f64;
    let brute = get("geometry.bvh.brute_walls") as f64;
    let cull = if brute > 0.0 { visited / brute } else { 0.0 };
    println!("{{\"metric\": \"geometry.bvh.visit_ratio\", \"value\": {cull:.4}}}");
    println!(
        "{{\"metric\": \"channel.traces\", \"value\": {}}}",
        get("channel.traces")
    );
    println!(
        "{{\"metric\": \"channel.rephasings\", \"value\": {}}}",
        get("channel.rephasings")
    );
    // Incremental dynamics: how often blocker motion refit the index
    // instead of rebuilding it, and how many per-path evaluations the
    // crossing-set diff patched through vs re-traced.
    for name in [
        "channel.refits",
        "channel.index.builds",
        "channel.paths_patched",
        "channel.paths_retraced",
        "channel.lincache.refreshes",
        "geometry.bvh.refits",
    ] {
        println!("{{\"metric\": \"{name}\", \"value\": {}}}", get(name));
    }
    println!(
        "{{\"metric\": \"channel.walk_replay.speedup\", \"value\": {:.2}}}",
        walk_replay_speedup()
    );

    for (path, span) in &snap.spans {
        // Labeled breakdowns (`...{shard=0}`) fold into the flat path and
        // vary with thread scheduling; attach only the flat totals.
        if path.contains('{') {
            continue;
        }
        // Self time: this span's total minus its *direct* children's
        // totals — where the phase itself spent time, not its callees.
        let child_total: u64 = snap
            .spans
            .iter()
            .filter(|(q, _)| {
                q.len() > path.len() + 1
                    && q.starts_with(path.as_str())
                    && q.as_bytes()[path.len()] == b'/'
                    && !q[path.len() + 1..].contains('/')
            })
            .map(|(_, s)| s.total_ns)
            .sum();
        println!(
            "{{\"span\": \"{path}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"self_total_ns\": {}}}",
            span.count,
            span.p50_ns,
            span.p99_ns,
            span.total_ns.saturating_sub(child_total)
        );
    }
}

/// Rebuild-vs-refit wall-clock ratio over a 60-tick walk replay on the
/// dynamics bench's scene (32 cluttered walls, 4 walkers, 16×16 surface).
/// A coarse one-shot measurement — the gated numbers live in the
/// `channel/walk_replay_60ticks` criterion bench; this records the
/// realized speedup alongside the obs counters.
fn walk_replay_speedup() -> f64 {
    let band = NamedBand::MmWave28GHz.band();
    let build = || {
        let mut sim = ChannelSim::new(surfos_bench::scenes::cluttered_plan(32, 42), band);
        let geom = ArrayGeometry::half_wavelength(16, 16, band.wavelength_m());
        sim.add_surface(SurfaceInstance::new(
            "s0",
            Pose::wall_mounted(Vec3::new(10.0, 4.0, 1.8), Vec3::new(0.0, 1.0, 0.0)),
            geom,
            OperationMode::Reflective,
        ));
        sim
    };
    let mut ap = Endpoint::client("ap", Vec3::new(4.0, 10.0, 2.0));
    ap.pattern = ElementPattern::Isotropic;
    let mut rx = Endpoint::client("rx", Vec3::new(16.0, 11.0, 1.2));
    rx.pattern = ElementPattern::Isotropic;
    let walk = BlockerWalk::new(
        vec![
            Vec3::xy(6.0, 9.0),
            Vec3::xy(14.0, 10.5),
            Vec3::xy(11.0, 6.0),
        ],
        1.4,
    );
    let replay = |sim: &mut ChannelSim, rebuild: bool| {
        let start = std::time::Instant::now();
        for k in 0..60 {
            if rebuild {
                sim.invalidate_cache();
            }
            sim.set_blockers(walk.crowd_at(k as f64 * 0.1, 4, 0.8));
            std::hint::black_box(sim.cached_linearization(&ap, &rx));
        }
        start.elapsed().as_secs_f64()
    };
    let mut incremental = build();
    let _ = incremental.cached_linearization(&ap, &rx); // warm
    let t_inc = replay(&mut incremental, false);
    let mut full = build();
    let t_full = replay(&mut full, true);
    if t_inc > 0.0 {
        t_full / t_inc
    } else {
        0.0
    }
}
