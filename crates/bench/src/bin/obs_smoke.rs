//! Observability smoke run: boots the apartment scenario, runs the kernel
//! loop with metrics enabled, and prints one JSON line per derived metric
//! and per span — consumed by `scripts/perf_smoke.sh`, which attaches the
//! lines to `BENCH_channel.json` under `"observability"`.
//!
//! The lines deliberately use `"span"`/`"p50_ns"` and `"metric"`/`"value"`
//! keys, *not* the benches' `"id"`/`"median_ns"` pair: span medians vary
//! with optimizer iteration counts and are not perf-gated, so they must
//! stay invisible to the regression extractor.

use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::{Pose, Vec3};
use surfos::hw::designs;
use surfos::hw::driver::ProgrammableDriver;
use surfos::obs;
use surfos::orchestrator::ServiceRequest;
use surfos::SurfOS;

fn main() {
    obs::set_enabled(true);

    let scen = two_room_apartment();
    let sim = ChannelSim::new(scen.plan.clone(), NamedBand::MmWave28GHz.band());
    let mut os = SurfOS::new(sim);
    let mut spec = designs::scatter_mimo();
    spec.band = NamedBand::MmWave28GHz.band();
    spec.rows = 32;
    spec.cols = 32;
    spec.pitch_m = 0.0053;
    let pose = *scen.anchor("bedroom-north").expect("anchor");
    os.deploy_surface("wall0", Box::new(ProgrammableDriver::new(spec)), pose);
    os.add_endpoint(Endpoint::access_point(
        "ap0",
        Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
    ));
    os.add_endpoint(Endpoint::client("laptop", Vec3::new(6.5, 1.5, 1.2)));
    os.orchestrator_mut().adam_options.iters = 60;
    os.submit(ServiceRequest::optimize_coverage("bedroom", 25.0));
    // A link task exercises the per-pair linearization cache (coverage
    // goes through the sweep path, which is uncached by design).
    os.submit(ServiceRequest::enhance_link("laptop", 20.0, 50.0));
    for _ in 0..3 {
        os.step(10);
    }

    let snap = obs::snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    let hits = get("channel.lincache.hits") as f64;
    let misses = get("channel.lincache.misses") as f64;
    let hit_rate = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    println!("{{\"metric\": \"channel.lincache.hit_rate\", \"value\": {hit_rate:.4}}}");

    let visited = get("geometry.bvh.nodes_visited") as f64;
    let brute = get("geometry.bvh.brute_walls") as f64;
    let cull = if brute > 0.0 { visited / brute } else { 0.0 };
    println!("{{\"metric\": \"geometry.bvh.visit_ratio\", \"value\": {cull:.4}}}");
    println!(
        "{{\"metric\": \"channel.traces\", \"value\": {}}}",
        get("channel.traces")
    );
    println!(
        "{{\"metric\": \"channel.rephasings\", \"value\": {}}}",
        get("channel.rephasings")
    );

    for (path, span) in &snap.spans {
        println!(
            "{{\"span\": \"{path}\", \"count\": {}, \"p50_ns\": {}}}",
            span.count, span.p50_ns
        );
    }
}
