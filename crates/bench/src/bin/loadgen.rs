//! `surfos-loadgen` — iperf for the service plane.
//!
//! Opens N concurrent connections to a running `surfosd serve`, replays a
//! configurable request mix (query / register / intent / ping) at a
//! target rate or closed-loop, and reports throughput plus p50/p99/p999
//! request latency sourced from the `surfos-obs` HDR timers
//! (`rpc.request_ns{op=...}`, one labeled series per op).
//!
//! ```text
//! surfos-loadgen --connect 127.0.0.1:7464 --conns 64 --requests 10000
//! surfos-loadgen --unix /tmp/surfosd.sock --conns 8 --requests 800 \
//!     --mix query:8,register:1,intent:1 --rate 500
//! ```
//!
//! Flags:
//!
//! - `--connect ADDR` / `--unix PATH` — where the daemon listens (one
//!   required; both allowed, connections split round-robin).
//! - `--conns N` — concurrent connections (default 8).
//! - `--requests N` — total requests across all connections (default 1000).
//! - `--mix SPEC` — weighted op mix, e.g. `query:8,register:1,intent:1`
//!   (ops: `ping`, `query`, `register`, `intent`; default `query:8,register:1`).
//!   The schedule is a deterministic round-robin expansion of the weights,
//!   so identical invocations replay identical request streams.
//! - `--rate R` — target requests/second across all connections
//!   (0 = closed loop, as fast as responses return; default 0).
//! - `--workers N` — client worker threads (0 = auto).
//! - `--tenant NAME` — claim one shared tenant on every connection
//!   (default: each connection gets its own auto tenant).
//! - `--tx ID` / `--rx ID` — endpoints for `query` ops (default `ap0` /
//!   `laptop`, the demo scene).
//! - `--subject ROOM` — subject for `register` ops (default `bedroom`).
//! - `--timeout-ms N` — abort safety net (default 60000).
//! - `--metrics-json PATH` / `--deterministic-metrics` — dump the client
//!   side observability snapshot on exit (`-` for stdout).
//!
//! Registered leases are recycled: once a connection holds 4, the next
//! `register` slot releases the oldest instead, so long runs exercise the
//! full lease lifecycle instead of just saturating quotas. `Rejected`
//! responses are counted separately — against a small `--capacity` they
//! are the *expected* outcome and the daemon's admission works.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use surfos::obs;
use surfos::rpc::frame::{write_frame, FrameBuf};
use surfos::rpc::proto::{Request, RequestEnvelope, Response};

#[derive(Debug, Clone)]
struct Args {
    connect: Option<String>,
    unix: Option<String>,
    conns: usize,
    requests: u64,
    mix: Vec<Op>,
    rate: f64,
    workers: usize,
    tenant: Option<String>,
    tx: String,
    rx: String,
    subject: String,
    timeout_ms: u64,
    metrics_json: Option<String>,
    deterministic: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Ping,
    Query,
    Register,
    Intent,
}

/// Expands `query:8,register:1` into a deterministic round-robin schedule
/// (interleaved by weight, not 8-then-1, so short runs still mix).
fn parse_mix(spec: &str) -> Result<Vec<Op>, String> {
    let mut weighted = Vec::new();
    for part in spec.split(',') {
        let (name, weight) = match part.split_once(':') {
            Some((n, w)) => (
                n.trim(),
                w.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad weight in {part:?}"))?,
            ),
            None => (part.trim(), 1),
        };
        let op = match name {
            "ping" => Op::Ping,
            "query" => Op::Query,
            "register" => Op::Register,
            "intent" => Op::Intent,
            other => return Err(format!("unknown op {other:?} in mix")),
        };
        weighted.push((op, weight));
    }
    let total: usize = weighted.iter().map(|(_, w)| w).sum();
    if total == 0 {
        return Err("mix has zero total weight".into());
    }
    // Largest-remainder interleave: at position i, pick the op furthest
    // behind its weight share (signed — an op ahead of its share has a
    // negative deficit).
    let mut emitted = vec![0i64; weighted.len()];
    let mut schedule = Vec::with_capacity(total);
    for i in 0..total as i64 {
        let pick = (0..weighted.len())
            .max_by_key(|&k| weighted[k].1 as i64 * (i + 1) - emitted[k] * total as i64)
            .expect("non-empty mix");
        emitted[pick] += 1;
        schedule.push(weighted[pick].0);
    }
    Ok(schedule)
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        connect: None,
        unix: None,
        conns: 8,
        requests: 1000,
        mix: parse_mix("query:8,register:1").expect("default mix"),
        rate: 0.0,
        workers: 0,
        tenant: None,
        tx: "ap0".into(),
        rx: "laptop".into(),
        subject: "bedroom".into(),
        timeout_ms: 60_000,
        metrics_json: None,
        deterministic: false,
    };
    let mut args = argv.into_iter();
    fn val(name: &str, v: Option<String>) -> Result<String, String> {
        v.ok_or_else(|| format!("{name} needs a value"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => out.connect = Some(val("--connect", args.next())?),
            "--unix" => out.unix = Some(val("--unix", args.next())?),
            "--conns" => {
                out.conns = val("--conns", args.next())?
                    .parse()
                    .map_err(|_| "bad --conns")?
            }
            "--requests" => {
                out.requests = val("--requests", args.next())?
                    .parse()
                    .map_err(|_| "bad --requests")?
            }
            "--mix" => out.mix = parse_mix(&val("--mix", args.next())?)?,
            "--rate" => {
                out.rate = val("--rate", args.next())?
                    .parse()
                    .map_err(|_| "bad --rate")?
            }
            "--workers" => {
                out.workers = val("--workers", args.next())?
                    .parse()
                    .map_err(|_| "bad --workers")?
            }
            "--tenant" => out.tenant = Some(val("--tenant", args.next())?),
            "--tx" => out.tx = val("--tx", args.next())?,
            "--rx" => out.rx = val("--rx", args.next())?,
            "--subject" => out.subject = val("--subject", args.next())?,
            "--timeout-ms" => {
                out.timeout_ms = val("--timeout-ms", args.next())?
                    .parse()
                    .map_err(|_| "bad --timeout-ms")?
            }
            "--metrics-json" => out.metrics_json = Some(val("--metrics-json", args.next())?),
            "--deterministic-metrics" => out.deterministic = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if out.connect.is_none() && out.unix.is_none() {
        return Err("need --connect ADDR and/or --unix PATH".into());
    }
    if out.conns == 0 {
        return Err("--conns must be at least 1".into());
    }
    Ok(out)
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nb),
            Conn::Unix(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// One closed-loop client connection (at most one request in flight).
struct Client {
    conn: Conn,
    inbuf: FrameBuf,
    outbuf: Vec<u8>,
    out_pos: usize,
    /// (request id, op name, send time) of the in-flight request.
    pending: Option<(u64, &'static str, Instant)>,
    seq: u64,
    mix_idx: usize,
    leases: Vec<u64>,
    quota: u64,
    sent: u64,
    done: u64,
    dead: bool,
    tenant_claim: Option<String>,
}

/// Leases held per connection before `register` slots turn into releases.
const LEASE_RECYCLE: usize = 4;

impl Client {
    fn finished(&self) -> bool {
        self.dead || (self.done >= self.quota && self.pending.is_none())
    }

    fn next_request(&mut self, args: &Args) -> (Request, &'static str) {
        let op = args.mix[self.mix_idx % args.mix.len()];
        self.mix_idx += 1;
        match op {
            Op::Ping => (Request::Ping, "ping"),
            Op::Query => (
                Request::QueryChannel {
                    tx: args.tx.clone(),
                    rx: args.rx.clone(),
                },
                "query",
            ),
            Op::Intent => (
                Request::SubmitIntent {
                    utterance: "I want to watch a movie on my laptop".into(),
                },
                "intent",
            ),
            Op::Register => {
                if self.leases.len() >= LEASE_RECYCLE {
                    (
                        Request::ReleaseService {
                            service: self.leases.remove(0),
                        },
                        "release",
                    )
                } else {
                    (
                        Request::RegisterService {
                            kind: "coverage".into(),
                            subject: args.subject.clone(),
                            value: 25.0,
                        },
                        "register",
                    )
                }
            }
        }
    }

    /// Sends the next scheduled request, if any remain.
    fn kick(&mut self, args: &Args) {
        if self.dead || self.pending.is_some() || self.sent >= self.quota {
            return;
        }
        let (request, op) = self.next_request(args);
        self.seq += 1;
        let env = match &self.tenant_claim {
            Some(t) => RequestEnvelope::with_tenant(self.seq, t.clone(), request),
            None => RequestEnvelope::new(self.seq, request),
        };
        let body = env.encode();
        write_frame(&mut self.outbuf, &body).expect("Vec write is infallible");
        self.pending = Some((self.seq, op, Instant::now()));
        self.sent += 1;
    }

    /// Flushes queued bytes; marks the client dead on a broken pipe.
    fn flush(&mut self) {
        while self.out_pos < self.outbuf.len() {
            match self.conn.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.outbuf.clear();
        self.out_pos = 0;
    }

    /// Drains responses; records latency per op into the HDR timers.
    fn drain(&mut self, scratch: &mut [u8]) {
        loop {
            match self.conn.read(scratch) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.inbuf.extend(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        loop {
            match self.inbuf.next_frame() {
                Ok(Some(body)) => self.on_response(&body),
                Ok(None) => break,
                Err(_) => {
                    obs::add("loadgen.frame_errors", 1);
                    self.dead = true;
                    break;
                }
            }
        }
    }

    fn on_response(&mut self, body: &str) {
        let Ok((id, response)) = Response::decode(body) else {
            obs::add("loadgen.decode_errors", 1);
            self.dead = true;
            return;
        };
        let Some((want, op, t0)) = self.pending else {
            obs::add("loadgen.unexpected_frames", 1);
            return;
        };
        if id != want {
            obs::add("loadgen.unexpected_frames", 1);
            return;
        }
        let _op_label = obs::scoped(&[("op", op)]);
        obs::observe_ns("rpc.request_ns", t0.elapsed().as_nanos() as u64);
        obs::add("loadgen.responses", 1);
        match response {
            Response::Registered { service, .. } => {
                self.leases.push(service);
                obs::add("loadgen.ok", 1);
            }
            Response::Rejected { .. } => obs::add("loadgen.rejected", 1),
            Response::Error { .. } => obs::add("loadgen.errors", 1),
            _ => obs::add("loadgen.ok", 1),
        }
        self.pending = None;
        self.done += 1;
    }
}

fn connect(args: &Args, idx: usize) -> io::Result<Conn> {
    // With both listeners given, connections alternate between them.
    let use_unix = match (&args.connect, &args.unix) {
        (Some(_), Some(_)) => idx % 2 == 1,
        (None, Some(_)) => true,
        _ => false,
    };
    let conn = if use_unix {
        Conn::Unix(UnixStream::connect(args.unix.as_deref().expect("checked"))?)
    } else {
        Conn::Tcp(TcpStream::connect(
            args.connect.as_deref().expect("checked"),
        )?)
    };
    conn.set_nonblocking(true)?;
    Ok(conn)
}

fn worker(
    args: &Args,
    mut clients: Vec<Client>,
    sent_global: &AtomicU64,
    start: Instant,
    deadline: Instant,
) -> (u64, u64, usize) {
    let mut scratch = [0u8; 4096];
    loop {
        let mut moved = false;
        let mut all_done = true;
        for c in &mut clients {
            if c.finished() {
                continue;
            }
            all_done = false;
            // Pacing: under --rate, a request slot must be earned by
            // elapsed time before any client may send.
            let may_send = if args.rate > 0.0 {
                let allowed = (start.elapsed().as_secs_f64() * args.rate) as u64;
                if sent_global.load(Ordering::Relaxed) < allowed {
                    sent_global.fetch_add(1, Ordering::Relaxed) < allowed
                } else {
                    false
                }
            } else {
                true
            };
            let before = c.pending.is_some();
            if may_send {
                c.kick(args);
            }
            c.flush();
            c.drain(&mut scratch);
            moved |= c.pending.is_none() || !before;
        }
        if all_done {
            break;
        }
        if Instant::now() > deadline {
            break;
        }
        if !moved {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    let sent: u64 = clients.iter().map(|c| c.sent).sum();
    let done: u64 = clients.iter().map(|c| c.done).sum();
    let dead = clients.iter().filter(|c| c.dead).count();
    (sent, done, dead)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            eprintln!(
                "usage: surfos-loadgen --connect ADDR|--unix PATH [--conns N] [--requests N] \
                 [--mix query:8,register:1] [--rate R] [--workers N] [--tenant NAME] \
                 [--timeout-ms N] [--metrics-json PATH] [--deterministic-metrics]"
            );
            std::process::exit(2);
        }
    };
    obs::set_enabled(true);

    // Open every connection up front — concurrency means simultaneously
    // open sockets, not a connection churn test.
    let mut clients = Vec::with_capacity(args.conns);
    for i in 0..args.conns {
        let conn = match connect(&args, i) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("loadgen: connect {}/{}: {e}", i + 1, args.conns);
                std::process::exit(1);
            }
        };
        let quota = args.requests / args.conns as u64
            + u64::from((i as u64) < args.requests % args.conns as u64);
        clients.push(Client {
            conn,
            inbuf: FrameBuf::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            pending: None,
            seq: 0,
            mix_idx: i, // offset the schedule so conns don't sync-step
            leases: Vec::new(),
            quota,
            sent: 0,
            done: 0,
            dead: false,
            tenant_claim: args.tenant.clone(),
        });
    }

    let workers = if args.workers > 0 {
        args.workers
    } else {
        surfos::channel::par::configured_threads().min(8)
    }
    .min(args.conns);

    // Deal clients round-robin across workers.
    let mut shards: Vec<Vec<Client>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, c) in clients.into_iter().enumerate() {
        shards[i % workers].push(c);
    }

    let sent_global = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let deadline = start + Duration::from_millis(args.timeout_ms);
    let results: Vec<(u64, u64, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let args = &args;
                let sent_global = sent_global.clone();
                scope.spawn(move || worker(args, shard, &sent_global, start, deadline))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let elapsed = start.elapsed();

    let sent: u64 = results.iter().map(|r| r.0).sum();
    let done: u64 = results.iter().map(|r| r.1).sum();
    let dead: usize = results.iter().map(|r| r.2).sum();

    let snap = obs::snapshot();
    let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!(
        "loadgen: {} conns, {done}/{sent} responses in {:.2}s  ({:.0} req/s)",
        args.conns,
        elapsed.as_secs_f64(),
        done as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "loadgen: outcomes: ok={} rejected={} errors={} dead_conns={dead}",
        count("loadgen.ok"),
        count("loadgen.rejected"),
        count("loadgen.errors"),
    );
    // The headline latency lines: the flat timer, then one per op label.
    for (name, hdr) in &snap.timers {
        if name.starts_with("rpc.request_ns") {
            println!(
                "loadgen: {name}  p50={} p99={} p999={} max={}  (n={})",
                fmt_ns(hdr.p50),
                fmt_ns(hdr.p99),
                fmt_ns(hdr.p999),
                fmt_ns(hdr.max),
                hdr.count
            );
        }
    }

    if let Some(path) = args.metrics_json.as_deref() {
        let json = if args.deterministic {
            snap.deterministic_json()
        } else {
            snap.to_json()
        };
        if path == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("loadgen: cannot write metrics to {path}: {e}");
            std::process::exit(1);
        }
    }

    if done < sent || dead > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_expands_interleaved_and_deterministic() {
        let mix = parse_mix("query:3,register:1").unwrap();
        assert_eq!(mix.len(), 4);
        assert_eq!(mix.iter().filter(|o| **o == Op::Query).count(), 3);
        assert_eq!(mix.iter().filter(|o| **o == Op::Register).count(), 1);
        assert_eq!(mix, parse_mix("query:3,register:1").unwrap());
        // Weighted ops interleave instead of clumping, and every weight
        // is honoured exactly over one period.
        let mix = parse_mix("query:6,register:2,intent:1,ping:1").unwrap();
        assert_eq!(mix.len(), 10);
        assert_eq!(mix.iter().filter(|o| **o == Op::Query).count(), 6);
        assert_eq!(mix.iter().filter(|o| **o == Op::Register).count(), 2);
        assert_eq!(mix.iter().filter(|o| **o == Op::Intent).count(), 1);
        assert_eq!(mix.iter().filter(|o| **o == Op::Ping).count(), 1);
        assert_ne!(mix[0], mix[5], "six queries must not open back-to-back");
        // Bare names default to weight 1.
        assert_eq!(parse_mix("ping").unwrap(), vec![Op::Ping]);
        assert!(parse_mix("warp:1").is_err());
        assert!(parse_mix("query:0").is_err());
    }

    #[test]
    fn args_require_an_address() {
        let err = parse_args(["--conns".into(), "4".into()]).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
    }

    #[test]
    fn register_slots_recycle_leases() {
        // A client that already holds LEASE_RECYCLE leases turns its next
        // register slot into a release of the oldest.
        let args = parse_args([
            "--connect".into(),
            "x".into(),
            "--mix".into(),
            "register:1".into(),
        ])
        .unwrap();
        let mut c = Client {
            conn: Conn::Tcp(loopback_stream()),
            inbuf: FrameBuf::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            pending: None,
            seq: 0,
            mix_idx: 0,
            leases: (1..=LEASE_RECYCLE as u64).collect(),
            quota: 10,
            sent: 0,
            done: 0,
            dead: false,
            tenant_claim: None,
        };
        let (req, op) = c.next_request(&args);
        assert_eq!(op, "release");
        assert_eq!(req, Request::ReleaseService { service: 1 });
        assert_eq!(c.leases.len(), LEASE_RECYCLE - 1);
        let (_, op) = c.next_request(&args);
        assert_eq!(op, "register");
    }

    /// A connected-but-unused TCP stream for constructing Clients.
    fn loopback_stream() -> TcpStream {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        TcpStream::connect(l.local_addr().unwrap()).unwrap()
    }
}
