//! Regenerates Figure 6: translating user demands into SurfOS service
//! calls.
//!
//! The paper shows GPT-4o doing this; SurfOS ships a deterministic rule
//! engine behind the same [`IntentTranslator`] trait (see DESIGN.md for
//! the substitution rationale), so the figure regenerates offline.
//!
//! ```text
//! cargo run -p surfos-bench --release --bin fig6
//! ```
//!
//! [`IntentTranslator`]: surfos::broker::intent::IntentTranslator

use surfos::broker::intent::{IntentContext, IntentTranslator, RuleBasedTranslator};

fn show(translator: &dyn IntentTranslator, utterance: &str, ctx: &IntentContext) {
    println!("User Input: {utterance}");
    let requests = translator.translate(utterance, ctx);
    if requests.is_empty() {
        println!("  (no service invoked)");
    }
    for r in requests {
        println!("  {r}");
    }
    println!();
}

fn main() {
    println!("Figure 6: LLM-style translation of user demands to service calls.");
    println!("Context: you are a translator that invokes SurfOS service");
    println!("functions to meet user demands.\n");

    let translator = RuleBasedTranslator;

    let ctx = IntentContext {
        room: "room_id".into(),
        devices: vec!["VR_headset".into(), "laptop".into(), "phone".into()],
        bandwidth_hz: 400e6,
    };
    show(&translator, "I want to start VR gaming in this room.", &ctx);

    let meeting_ctx = IntentContext {
        room: "meeting_room".into(),
        ..ctx.clone()
    };
    show(
        &translator,
        "I want to have an online meeting while charging my phone.",
        &meeting_ctx,
    );

    // Beyond the paper's two examples:
    show(
        &translator,
        "I need to send a confidential report from my laptop.",
        &ctx,
    );
    show(
        &translator,
        "Please monitor the room for motion while I'm away.",
        &ctx,
    );
    show(&translator, "mumble mumble quantum blockchain", &ctx);
}
