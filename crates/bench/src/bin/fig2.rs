//! Regenerates Figure 2: coverage vs localization heatmaps under a
//! coverage-only surface configuration.
//!
//! ```text
//! cargo run -p surfos-bench --release --bin fig2
//! ```

use surfos_bench::fig2;
use surfos_bench::report::{csv_dir_from_args, heatmap_rows, print_heatmap, write_csv};

fn main() {
    println!("Figure 2: lacking support for multiple services concurrently.");
    println!("One 32×32 surface serves the bedroom; its configuration is");
    println!("optimized for coverage alone.\n");

    let out = fig2::run(32, 200);

    print_heatmap(
        "(a) Coverage heatmap under the coverage-optimized config (dBm)",
        &out.coverage_dbm,
        "dBm",
    );
    print_heatmap(
        "(b) Localization error heatmap under the SAME config (m, capped at 5)",
        &out.localization_m,
        "m",
    );
    print_heatmap(
        "(reference) Localization error with an unconfigured (specular) surface (m)",
        &out.baseline_localization_m,
        "m",
    );

    println!(
        "\nMedian localization error: {:.2} m (coverage config) vs {:.2} m (specular)",
        out.localization_m.median(),
        out.baseline_localization_m.median()
    );
    println!(
        "Fraction of locations with error > 0.5 m under the coverage config: {:.0}%",
        100.0
            * (1.0
                - out
                    .localization_m
                    .cdf()
                    .iter()
                    .filter(|(v, _)| *v <= 0.5)
                    .count() as f64
                    / out.localization_m.len() as f64)
    );
    println!("\nPaper's claim reproduced: a configuration that maximizes coverage");
    println!("can disrupt or preclude effective user localization in the same space.");

    if let Some(dir) = csv_dir_from_args() {
        write_csv(
            &dir,
            "fig2_coverage_dbm",
            "x,y,rss_dbm",
            &heatmap_rows(&out.coverage_dbm),
        );
        write_csv(
            &dir,
            "fig2_localization_m",
            "x,y,error_m",
            &heatmap_rows(&out.localization_m),
        );
        write_csv(
            &dir,
            "fig2_baseline_localization_m",
            "x,y,error_m",
            &heatmap_rows(&out.baseline_localization_m),
        );
    }
}
