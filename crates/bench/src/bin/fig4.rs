//! Regenerates Figure 4: the passive/programmable/hybrid deployment
//! trade-off — cost (b) and size (c) needed to reach target median SNRs.
//!
//! ```text
//! cargo run -p surfos-bench --release --bin fig4
//! ```

use surfos_bench::fig4::{cheapest_per_target, smallest_per_target, sweep};
use surfos_bench::report::{csv_dir_from_args, print_row, print_rule, write_csv};

fn main() {
    println!("Figure 4: leveraging hardware heterogeneity.");
    println!("AP in the living room; coverage extended into the bedroom by");
    println!("(i) one passive surface, (ii) one programmable surface with");
    println!("dynamic steering, (iii) a hybrid passive-backhaul + programmable-");
    println!("steering deployment.\n");

    let points = sweep();

    println!("Sweep points (median SNR over the bedroom grid):");
    let widths = [26, 12, 12, 12];
    print_row(
        &[
            "deployment".into(),
            "cost ($)".into(),
            "size (m²)".into(),
            "median SNR".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    for p in &points {
        print_row(
            &[
                p.label.clone(),
                format!("{:.0}", p.cost_usd),
                format!("{:.3}", p.area_m2),
                format!("{:.1} dB", p.median_snr_db),
            ],
            &widths,
        );
    }

    println!("\n(b) Cheapest deployment reaching each target median SNR:");
    let widths = [10, 30, 30, 30];
    print_row(
        &[
            "target".into(),
            "passive-only".into(),
            "programmable-only".into(),
            "hybrid".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    for target in [10.0, 15.0, 20.0, 25.0] {
        let cell = |prefix: &str| match cheapest_per_target(&points, prefix, target) {
            Some(p) => format!("${:.0}  ({})", p.cost_usd, p.label),
            None => "not reached".to_string(),
        };
        print_row(
            &[
                format!("{target:.0} dB"),
                cell("passive"),
                cell("programmable"),
                cell("hybrid"),
            ],
            &widths,
        );
    }

    println!("\n(c) Smallest total aperture reaching each target median SNR:");
    print_row(
        &[
            "target".into(),
            "passive-only".into(),
            "programmable-only".into(),
            "hybrid".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    for target in [10.0, 15.0, 20.0, 25.0] {
        let cell = |prefix: &str| match smallest_per_target(&points, prefix, target) {
            Some(p) => format!("{:.3} m²  ({})", p.area_m2, p.label),
            None => "not reached".to_string(),
        };
        print_row(
            &[
                format!("{target:.0} dB"),
                cell("passive"),
                cell("programmable"),
                cell("hybrid"),
            ],
            &widths,
        );
    }

    if let Some(dir) = csv_dir_from_args() {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "{},{},{},{}",
                    p.label.replace(',', ";"),
                    p.cost_usd,
                    p.area_m2,
                    p.median_snr_db
                )
            })
            .collect();
        write_csv(
            &dir,
            "fig4_sweep",
            "deployment,cost_usd,area_m2,median_snr_db",
            &rows,
        );
    }

    println!("\nPaper's claim to reproduce: the hybrid needs a fraction of the");
    println!("programmable-only cost and of the passive-only size for comparable");
    println!("performance, by using the passive surface as a cheap backhaul and");
    println!("the programmable surface for dynamic steering.");
}
