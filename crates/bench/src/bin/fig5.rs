//! Regenerates Figure 5: CDFs of localization error and SNR across
//! locations for multi-tasking vs single-task configurations.
//!
//! ```text
//! cargo run -p surfos-bench --release --bin fig5
//! ```

use surfos_bench::fig5;
use surfos_bench::report::{cdf_rows, csv_dir_from_args, print_cdf, write_csv};

fn main() {
    println!("Figure 5: multitasking for joint localization and coverage.");
    println!("One shared 32×32 surface configuration; three optimizations.\n");

    let out = fig5::run(32, 200);

    println!("CDF over locations — localization error:");
    for c in &out.configs {
        print_cdf(c.label, &c.loc_error_m, "m");
    }

    println!("\nCDF over locations — SNR:");
    for c in &out.configs {
        print_cdf(c.label, &c.snr_db, "dB");
    }

    println!("\nMedians:");
    for c in &out.configs {
        println!(
            "  {:>18}: localization {:>5.2} m | SNR {:>5.1} dB",
            c.label,
            c.loc_error_m.median(),
            c.snr_db.median()
        );
    }

    let joint = &out.configs[0];
    let loc_opt = &out.configs[1];
    let cov_opt = &out.configs[2];
    println!(
        "\nJoint vs best single-task: localization {:.2} m vs {:.2} m; SNR {:.1} dB vs {:.1} dB",
        joint.loc_error_m.median(),
        loc_opt.loc_error_m.median(),
        joint.snr_db.median(),
        cov_opt.snr_db.median()
    );
    if let Some(dir) = csv_dir_from_args() {
        for c in &out.configs {
            let tag = c.label.to_lowercase().replace([' ', '-'], "_");
            write_csv(
                &dir,
                &format!("fig5_snr_cdf_{tag}"),
                "snr_db,cdf",
                &cdf_rows(&c.snr_db),
            );
            write_csv(
                &dir,
                &format!("fig5_loc_cdf_{tag}"),
                "error_m,cdf",
                &cdf_rows(&c.loc_error_m),
            );
        }
    }

    println!("\nPaper's claim to reproduce: a single surface configuration can");
    println!("effectively multitask with little performance loss on both tasks.");
}
