//! Regenerates Table 1: the heterogeneous surface design space, loaded
//! through the unified hardware manager.
//!
//! ```text
//! cargo run -p surfos-bench --release --bin table1
//! ```

use surfos::hw::designs::all_designs;
use surfos::hw::driver::{PassiveDriver, ProgrammableDriver};
use surfos::hw::granularity::Reconfigurability;
use surfos::hw::spec::SurfaceMode;
use surfos::hw::SurfaceDriver;
use surfos_bench::report::{print_row, print_rule};

fn main() {
    println!("Table 1: Diverse hardware designs, transmissive (T) and reflective (R).");
    println!("Every row is loaded through the same unified driver interface.\n");

    let widths = [12, 14, 22, 6, 18, 10, 9];
    print_row(
        &[
            "System".into(),
            "Freq Band".into(),
            "Signal Control Mode".into(),
            "T/R".into(),
            "Re-configurable".into(),
            "Cost ($)".into(),
            "Elements".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    for spec in all_designs() {
        // The proof of the hardware manager: instantiate the right driver
        // for every design and exercise one unified primitive.
        let mut driver: Box<dyn SurfaceDriver> = if spec.is_passive() {
            Box::new(PassiveDriver::new(spec.clone()))
        } else {
            Box::new(ProgrammableDriver::new(spec.clone()))
        };
        let n = driver.spec().element_count();
        if driver.spec().supports("phase") {
            driver
                .shift_phase(0, &vec![0.0; n], 0)
                .expect("unified phase primitive");
        }

        let band = if spec.model == "Scrolls" {
            "0.9-6 GHz".to_string()
        } else {
            format!("{:.1} GHz", spec.band.center_hz / 1e9)
        };
        let controls: Vec<&str> = spec.capabilities.iter().map(|c| c.name()).collect();
        let mode = match spec.mode {
            SurfaceMode::Reflective => "R",
            SurfaceMode::Transmissive => "T",
            SurfaceMode::Transflective => "T&R",
        };
        let reconf = match spec.reconfigurability {
            Reconfigurability::Passive => "no (passive)".to_string(),
            Reconfigurability::RowWise => "yes (row-wise)".to_string(),
            Reconfigurability::ColumnWise => "yes (column-wise)".to_string(),
            Reconfigurability::ElementWise => "yes".to_string(),
        };
        print_row(
            &[
                spec.model.clone(),
                band,
                controls.join("+"),
                mode.into(),
                reconf,
                format!("{:.0}", spec.total_cost_usd()),
                format!("{n}"),
            ],
            &widths,
        );
    }

    println!("\nAll 13 designs registered and driven through the same API.");
}
