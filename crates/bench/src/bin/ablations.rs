//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. phase-quantization depth (why the hardware manager exposes bits),
//! 2. control granularity (element- vs column- vs row-wise),
//! 3. optimizer choice (analytic-gradient Adam vs baselines),
//! 4. joint multitasking vs time-division multiplexing of single-task
//!    configurations (the paper's "new multiplexing dimension").
//!
//! ```text
//! cargo run -p surfos-bench --release --bin ablations
//! ```

use rand::SeedableRng;
use surfos::em::complex::Complex;
use surfos::em::phase::{quantization_loss, quantize_phase};
use surfos::orchestrator::objective::{
    CoverageObjective, LocalizationObjective, MultiObjective, Objective,
};
use surfos::orchestrator::optimizer::{adam, greedy_quantized, random_search, AdamOptions, Tying};
use surfos::sensing::aoa::AngleGrid;
use surfos_bench::report::{print_row, print_rule};
use surfos_bench::ApartmentLab;

const N: usize = 24;

fn coverage_lab() -> (ApartmentLab, usize, CoverageObjective) {
    let mut lab = ApartmentLab::new("bedroom-north");
    let idx = lab.deploy("s", "bedroom-north", N);
    let obj = CoverageObjective::new(&lab.sim, &lab.ap, &lab.grid, &lab.probe);
    (lab, idx, obj)
}

fn opts(iters: usize) -> AdamOptions {
    AdamOptions {
        iters,
        lr: 0.15,
        ..Default::default()
    }
}

fn median_with_phases(obj: &CoverageObjective, phases: &[f64]) -> f64 {
    let responses: Vec<Vec<Complex>> = vec![phases.iter().map(|&p| Complex::cis(p)).collect()];
    obj.median_snr_db(&responses)
}

fn ablation_quantization() {
    println!("\n[1] Phase quantization depth (coverage task, {N}×{N} surface)");
    let (_lab, _idx, obj) = coverage_lab();
    let continuous = adam(
        &obj,
        &[vec![0.0; N * N]],
        &Tying::element_wise(1),
        opts(150),
    );
    let widths = [12, 14, 16, 18];
    print_row(
        &[
            "bits".into(),
            "median SNR".into(),
            "loss vs cont.".into(),
            "theory (sinc²)".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    let cont_snr = median_with_phases(&obj, &continuous.phases[0]);
    for bits in [1u8, 2, 3, 4] {
        let q: Vec<f64> = continuous.phases[0]
            .iter()
            .map(|&p| quantize_phase(p, bits))
            .collect();
        let snr = median_with_phases(&obj, &q);
        print_row(
            &[
                format!("{bits}"),
                format!("{snr:.1} dB"),
                format!("{:.1} dB", cont_snr - snr),
                format!("{:.1} dB", -10.0 * quantization_loss(bits).log10()),
            ],
            &widths,
        );
    }
    print_row(
        &[
            "continuous".into(),
            format!("{cont_snr:.1} dB"),
            "0.0 dB".into(),
            "0.0 dB".into(),
        ],
        &widths,
    );
}

fn ablation_granularity() {
    println!("\n[2] Control granularity (coverage task, {N}×{N} surface)");
    let (_lab, _idx, obj) = coverage_lab();
    let widths = [14, 8, 14];
    print_row(
        &["granularity".into(), "DoF".into(), "median SNR".into()],
        &widths,
    );
    print_rule(&widths);
    for (label, tying) in [
        ("element-wise", Tying::element_wise(1)),
        ("column-wise", {
            let mut t = Tying::element_wise(1);
            t.tie_columns(0, N, N);
            t
        }),
        ("row-wise", {
            let mut t = Tying::element_wise(1);
            t.tie_rows(0, N, N);
            t
        }),
    ] {
        let result = adam(&obj, &[vec![0.0; N * N]], &tying, opts(150));
        let snr = median_with_phases(&obj, &result.phases[0]);
        print_row(
            &[
                label.into(),
                format!("{}", tying.dof(0, N * N)),
                format!("{snr:.1} dB"),
            ],
            &widths,
        );
    }
}

fn ablation_optimizers() {
    println!("\n[3] Optimizer comparison (coverage loss; lower is better)");
    let (_lab, _idx, obj) = coverage_lab();
    let widths = [22, 16, 14];
    print_row(
        &[
            "algorithm".into(),
            "objective evals".into(),
            "final loss".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    let a = adam(
        &obj,
        &[vec![0.0; N * N]],
        &Tying::element_wise(1),
        opts(150),
    );
    print_row(
        &[
            "adam (analytic grad)".into(),
            "150".into(),
            format!("{:.1}", a.loss),
        ],
        &widths,
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let r = random_search(&obj, &[N * N], 150, &mut rng);
    print_row(
        &[
            "random search".into(),
            "150".into(),
            format!("{:.1}", r.loss),
        ],
        &widths,
    );

    let g = greedy_quantized(&obj, &[N * N], &Tying::element_wise(1), 2, 1);
    print_row(
        &[
            "greedy 2-bit (1 pass)".into(),
            format!("{}", 3 * N * N),
            format!("{:.1}", g.loss),
        ],
        &widths,
    );
    // Losses are negative sum capacity: more negative is better.
    println!(
        "\n  at equal evaluations, the analytic gradient finds {:.0} b/s/Hz more\n  sum capacity than random search",
        r.loss - a.loss
    );
}

fn ablation_joint_vs_tdm() {
    println!("\n[4] Joint multitasking vs time-division multiplexing");
    let mut lab = ApartmentLab::new("bedroom-north");
    let idx = lab.deploy("s", "bedroom-north", N);
    let coverage = CoverageObjective::new(&lab.sim, &lab.ap, &lab.grid, &lab.probe);
    let localization = LocalizationObjective::new(
        &lab.sim,
        idx,
        &lab.ap,
        &lab.probe,
        &lab.grid,
        AngleGrid::uniform(41, 1.3),
    );

    let cov_phases = adam(
        &coverage,
        &[vec![0.0; N * N]],
        &Tying::element_wise(1),
        opts(150),
    )
    .phases[0]
        .clone();
    let loc_phases = adam(
        &localization,
        &[vec![0.0; N * N]],
        &Tying::element_wise(1),
        opts(150),
    )
    .phases[0]
        .clone();
    let joint_obj = MultiObjective::new()
        .with(
            Box::new(CoverageObjective::new(
                &lab.sim, &lab.ap, &lab.grid, &lab.probe,
            )),
            1.0,
        )
        .with(
            Box::new(LocalizationObjective::new(
                &lab.sim,
                idx,
                &lab.ap,
                &lab.probe,
                &lab.grid,
                AngleGrid::uniform(41, 1.3),
            )),
            60.0,
        );
    let joint_phases = adam(
        &joint_obj,
        &[vec![0.0; N * N]],
        &Tying::element_wise(1),
        opts(150),
    )
    .phases[0]
        .clone();

    let as_resp = |phases: &[f64]| -> Vec<Vec<Complex>> {
        vec![phases.iter().map(|&p| Complex::cis(p)).collect()]
    };

    // TDM: each task is served half the time by its own config. Coverage
    // capacity halves (half the airtime); sensing runs at half duty cycle.
    let tdm_capacity = -coverage.loss(&as_resp(&cov_phases)) / 2.0;
    let tdm_loc_loss = localization.loss(&as_resp(&loc_phases));
    // Joint: both run full-time on the shared configuration.
    let joint_capacity = -coverage.loss(&as_resp(&joint_phases));
    let joint_loc_loss = localization.loss(&as_resp(&joint_phases));

    let widths = [22, 24, 24];
    print_row(
        &[
            "scheme".into(),
            "sum capacity (b/s/Hz)".into(),
            "localization CE (nats)".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    print_row(
        &[
            "TDM (50/50 split)".into(),
            format!("{tdm_capacity:.0}"),
            format!("{tdm_loc_loss:.2} (half duty)"),
        ],
        &widths,
    );
    print_row(
        &[
            "joint (shared cfg)".into(),
            format!("{joint_capacity:.0}"),
            format!("{joint_loc_loss:.2} (full duty)"),
        ],
        &widths,
    );
    println!(
        "\n  joint multiplexing recovers {:.0}% of the TDM capacity loss while\n  sensing continuously instead of half the time",
        100.0 * (joint_capacity - tdm_capacity) / tdm_capacity
    );
}

fn main() {
    println!("SurfOS ablation studies (DESIGN.md §5)");
    ablation_quantization();
    ablation_granularity();
    ablation_optimizers();
    ablation_joint_vs_tdm();
}
