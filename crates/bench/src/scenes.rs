//! Deterministic cluttered and building-scale scenes for the spatial-index
//! benchmarks.
//!
//! The apartment lab has six walls — enough for the paper's figures but
//! too small to show how tracing scales. Two families of generators fill
//! the gap:
//!
//! - [`cluttered_plan`] scatters `n` pseudo-random walls over a 20×20 m
//!   area (LCG-seeded, so every run benchmarks the same scene) for the
//!   8/32/128-wall sweeps, and
//! - [`building_plan`] lays out a parametric multi-floor building —
//!   `floors` floor plates, each with two rows of `rooms_per_side` rooms
//!   flanking a central corridor, concrete shell, mixed-material
//!   partitions, and a doorway aperture per room — reaching the 1k–4k wall
//!   counts the SAH/packed BVH targets (the paper's §5 building-scale
//!   deployment regime).

use surfos::geometry::{FloorPlan, Material, Room, Vec3, Wall};
use surfos::shard::Zone;

/// `n_walls` short walls with mixed materials over a 20×20 m area.
/// Deterministic in `seed`.
pub fn cluttered_plan(n_walls: usize, seed: u64) -> FloorPlan {
    let mut next = lcg(seed);
    let materials = [
        Material::Drywall,
        Material::Concrete,
        Material::Glass,
        Material::Wood,
    ];
    let mut plan = FloorPlan::new();
    for i in 0..n_walls {
        let x = next() * 20.0;
        let y = next() * 20.0;
        let ang = next() * std::f64::consts::TAU;
        let len = 0.5 + next() * 3.5;
        plan.add_wall(Wall::new(
            Vec3::xy(x, y),
            Vec3::xy(x + ang.cos() * len, y + ang.sin() * len),
            1.5 + next() * 2.5,
            materials[i % materials.len()],
        ));
    }
    plan
}

/// `n` deterministic probe segments criss-crossing the same 20×20 m area
/// at mixed heights.
pub fn probe_segments(n: usize, seed: u64) -> Vec<(Vec3, Vec3)> {
    let mut next = lcg(seed);
    (0..n)
        .map(|_| {
            (
                Vec3::new(next() * 20.0, next() * 20.0, 0.3 + next() * 2.5),
                Vec3::new(next() * 20.0, next() * 20.0, 0.3 + next() * 2.5),
            )
        })
        .collect()
}

/// Room depth (corridor to exterior) in metres.
const ROOM_DEPTH: f64 = 5.0;
/// Room width along the corridor in metres.
const ROOM_WIDTH: f64 = 4.0;
/// Central corridor width in metres.
const CORRIDOR_WIDTH: f64 = 2.0;
/// Clear doorway width in each room's corridor wall.
const DOORWAY_WIDTH: f64 = 0.9;
/// Storey height in metres.
const STOREY_HEIGHT: f64 = 3.0;
/// Plan-view gap between floor plates (walls extrude from `z = 0`, so the
/// "floors" tile side by side instead of stacking).
const FLOOR_GAP: f64 = 2.0;

/// A parametric multi-floor building: `floors` rectangular floor plates,
/// each `rooms_per_side · ROOM_WIDTH` m wide, with a south and a north row
/// of rooms flanking a central corridor. Every room opens onto the
/// corridor through a doorway aperture (two wall segments with an
/// LCG-jittered 0.9 m gap); partitions between rooms cycle through
/// drywall/glass/wood, the shell and corridor walls are concrete.
///
/// Wall count is exactly `floors · (6 · rooms_per_side + 2)`: 4 shell
/// walls + `2 (rooms_per_side − 1)` partitions + `4 · rooms_per_side`
/// corridor segments per floor — `(8, 21)` lands on 1024 walls, `(16, 42)`
/// on 4064. Deterministic in `seed`. Rooms are registered as named
/// [`Room`] regions (`f{f}s{i}` / `f{f}n{i}` / `f{f}corridor`) so
/// coverage-style objectives can target them.
///
/// The geometry layer extrudes every wall from `z = 0`, so floor plates
/// tile side by side in plan view (offset in `y`) rather than stacking in
/// `z`; for spatial-index behaviour this is equivalent — what matters is
/// thousands of walls with strong room/corridor structure, which is
/// exactly the non-uniform distribution SAH partitioning exploits.
pub fn building_plan(floors: usize, rooms_per_side: usize, seed: u64) -> FloorPlan {
    assert!(
        floors > 0 && rooms_per_side > 0,
        "building must be non-empty"
    );
    let mut next = lcg(seed);
    let partition_materials = [Material::Drywall, Material::Glass, Material::Wood];
    let mut plan = FloorPlan::new();
    let width = rooms_per_side as f64 * ROOM_WIDTH;
    let depth = 2.0 * ROOM_DEPTH + CORRIDOR_WIDTH;
    for f in 0..floors {
        let y0 = f as f64 * (depth + FLOOR_GAP);
        let y_corridor_s = y0 + ROOM_DEPTH; // south corridor wall
        let y_corridor_n = y_corridor_s + CORRIDOR_WIDTH; // north corridor wall
        let y1 = y0 + depth;
        let concrete = Material::Concrete;

        // Shell: 4 perimeter walls.
        plan.add_wall(Wall::new(
            Vec3::xy(0.0, y0),
            Vec3::xy(width, y0),
            STOREY_HEIGHT,
            concrete,
        ));
        plan.add_wall(Wall::new(
            Vec3::xy(0.0, y1),
            Vec3::xy(width, y1),
            STOREY_HEIGHT,
            concrete,
        ));
        plan.add_wall(Wall::new(
            Vec3::xy(0.0, y0),
            Vec3::xy(0.0, y1),
            STOREY_HEIGHT,
            concrete,
        ));
        plan.add_wall(Wall::new(
            Vec3::xy(width, y0),
            Vec3::xy(width, y1),
            STOREY_HEIGHT,
            concrete,
        ));

        // Partitions between rooms, both rows.
        for k in 1..rooms_per_side {
            let x = k as f64 * ROOM_WIDTH;
            let material = partition_materials[(f + k) % partition_materials.len()];
            plan.add_wall(Wall::new(
                Vec3::xy(x, y0),
                Vec3::xy(x, y_corridor_s),
                STOREY_HEIGHT,
                material,
            ));
            plan.add_wall(Wall::new(
                Vec3::xy(x, y_corridor_n),
                Vec3::xy(x, y1),
                STOREY_HEIGHT,
                material,
            ));
        }

        // Corridor walls, one doorway aperture per room: each room's span
        // of the corridor wall becomes two segments around a jittered gap.
        for (row, y_wall) in [(0usize, y_corridor_s), (1, y_corridor_n)] {
            for k in 0..rooms_per_side {
                let x0 = k as f64 * ROOM_WIDTH;
                let slack = ROOM_WIDTH - DOORWAY_WIDTH - 1.0; // ≥0.5 m jamb each side
                let door = x0 + 0.5 + next() * slack;
                plan.add_wall(Wall::new(
                    Vec3::xy(x0, y_wall),
                    Vec3::xy(door, y_wall),
                    STOREY_HEIGHT,
                    concrete,
                ));
                plan.add_wall(Wall::new(
                    Vec3::xy(door + DOORWAY_WIDTH, y_wall),
                    Vec3::xy(x0 + ROOM_WIDTH, y_wall),
                    STOREY_HEIGHT,
                    concrete,
                ));
                let (room_y0, room_y1, tag) = if row == 0 {
                    (y0, y_corridor_s, 's')
                } else {
                    (y_corridor_n, y1, 'n')
                };
                plan.add_room(Room::new(
                    format!("f{f}{tag}{k}"),
                    Vec3::xy(x0, room_y0),
                    Vec3::xy(x0 + ROOM_WIDTH, room_y1),
                ));
            }
        }
        plan.add_room(Room::new(
            format!("f{f}corridor"),
            Vec3::xy(0.0, y_corridor_s),
            Vec3::xy(width, y_corridor_n),
        ));
    }
    plan
}

/// The plan-view extent `(x, y)` of [`building_plan`]'s footprint — for
/// sizing probe segments to the scene.
pub fn building_extent(floors: usize, rooms_per_side: usize) -> (f64, f64) {
    let depth = 2.0 * ROOM_DEPTH + CORRIDOR_WIDTH;
    (
        rooms_per_side as f64 * ROOM_WIDTH,
        floors as f64 * (depth + FLOOR_GAP) - FLOOR_GAP,
    )
}

/// `n` deterministic probe segments criss-crossing a `[0, x] × [0, y]`
/// plan-view extent at mixed heights — [`probe_segments`] generalized to
/// building-sized footprints.
pub fn probe_segments_in(n: usize, seed: u64, x: f64, y: f64) -> Vec<(Vec3, Vec3)> {
    let mut next = lcg(seed);
    (0..n)
        .map(|_| {
            (
                Vec3::new(next() * x, next() * y, 0.3 + next() * 2.5),
                Vec3::new(next() * x, next() * y, 0.3 + next() * 2.5),
            )
        })
        .collect()
}

/// Street width between adjacent building shells in metres.
pub const STREET_WIDTH: f64 = 6.0;
/// Clearance between a building's outermost wall and its metal shell.
const SHELL_MARGIN: f64 = 0.6;
/// Shell height: one metre above the storey so no bounce clears it.
const SHELL_HEIGHT: f64 = STOREY_HEIGHT + 1.0;

/// One building of a [`campus_plan`], with its zone cell.
#[derive(Debug, Clone)]
pub struct CampusBuilding {
    /// Building name, also the prefix of its room names (`b{i}`).
    pub name: String,
    /// Translation applied to the building's walls and rooms.
    pub origin: Vec3,
    /// The half-open zone cell owning this building (street midlines;
    /// outermost cells extend to ±∞, so the cells tile the plane).
    pub zone: Zone,
}

/// A campus scene: the flat floor plan plus its building/zone table.
#[derive(Debug, Clone)]
pub struct CampusPlan {
    /// All buildings' walls and rooms in one flat plan (walls contiguous
    /// per building — shard partitioning preserves global order).
    pub plan: FloorPlan,
    /// Per-building metadata in build order.
    pub buildings: Vec<CampusBuilding>,
}

impl CampusPlan {
    /// The zone table in building order — the argument
    /// `surfos::shard::ShardedKernel::new` expects.
    pub fn zones(&self) -> Vec<Zone> {
        self.buildings.iter().map(|b| b.zone).collect()
    }
}

/// A campus of `buildings` copies of [`building_plan`] on a near-square
/// grid, each wrapped in a 4-wall **metal isolation shell** and separated
/// by [`STREET_WIDTH`] m streets. Deterministic in `seed` (building `b`
/// uses stream `seed + b`). Room names gain a `b{b}.` prefix
/// (`b3.f0s1`, …).
///
/// Wall count is exactly `buildings · (floors · (6 · rooms_per_side + 2) + 4)`;
/// `campus_plan(4, 16, 42, s)` lands on 16 272 walls, the ≥ 16k-wall
/// scene the shard-scaling benches use.
///
/// The metal shells are what make the campus *shardable*: any path that
/// leaves one shell and enters another picks up ≥ 180 dB of penetration
/// loss, which the channel layer's transmission floor rounds to exactly
/// zero — so per-building kernels are bit-identical to the flat
/// whole-campus evaluation, not an approximation. [`CampusBuilding::zone`]
/// cells are cut along street midlines (clear of every wall) and tile the
/// plane.
pub fn campus_plan(
    buildings: usize,
    floors: usize,
    rooms_per_side: usize,
    seed: u64,
) -> CampusPlan {
    assert!(buildings > 0, "campus must have at least one building");
    let cols = (buildings as f64).sqrt().ceil() as usize;
    let rows = buildings.div_ceil(cols);
    let (ext_x, ext_y) = building_extent(floors, rooms_per_side);
    let pitch_x = ext_x + 2.0 * SHELL_MARGIN + STREET_WIDTH;
    let pitch_y = ext_y + 2.0 * SHELL_MARGIN + STREET_WIDTH;

    let mut plan = FloorPlan::new();
    let mut meta = Vec::with_capacity(buildings);
    for b in 0..buildings {
        let (i, j) = (b % cols, b / cols);
        let origin = Vec3::xy(i as f64 * pitch_x, j as f64 * pitch_y);

        // Shell first, then the building's own walls: each building's
        // block stays contiguous in global wall order, which is what lets
        // the sharded evaluation accumulate terms in the same relative
        // order as the flat one.
        let (sx0, sy0) = (origin.x - SHELL_MARGIN, origin.y - SHELL_MARGIN);
        let (sx1, sy1) = (
            origin.x + ext_x + SHELL_MARGIN,
            origin.y + ext_y + SHELL_MARGIN,
        );
        for (a, bb) in [
            (Vec3::xy(sx0, sy0), Vec3::xy(sx1, sy0)),
            (Vec3::xy(sx1, sy0), Vec3::xy(sx1, sy1)),
            (Vec3::xy(sx1, sy1), Vec3::xy(sx0, sy1)),
            (Vec3::xy(sx0, sy1), Vec3::xy(sx0, sy0)),
        ] {
            plan.add_wall(Wall::new(a, bb, SHELL_HEIGHT, Material::Metal));
        }
        let inner = building_plan(floors, rooms_per_side, seed + b as u64);
        for w in inner.walls() {
            plan.add_wall(Wall::new(w.a + origin, w.b + origin, w.height, w.material));
        }
        for room in inner.rooms() {
            plan.add_room(Room::new(
                format!("b{b}.{}", room.name),
                room.min + origin,
                room.max + origin,
            ));
        }

        // Zone cell: street midlines; the outermost cell in each
        // direction (including the rightmost building of a partial last
        // row) opens to ±∞ so the cells tile the plane.
        let x0 = if i == 0 {
            f64::NEG_INFINITY
        } else {
            i as f64 * pitch_x - SHELL_MARGIN - STREET_WIDTH / 2.0
        };
        let x1 = if i + 1 == cols || b + 1 == buildings {
            f64::INFINITY
        } else {
            (i + 1) as f64 * pitch_x - SHELL_MARGIN - STREET_WIDTH / 2.0
        };
        let y0 = if j == 0 {
            f64::NEG_INFINITY
        } else {
            j as f64 * pitch_y - SHELL_MARGIN - STREET_WIDTH / 2.0
        };
        let y1 = if j + 1 == rows {
            f64::INFINITY
        } else {
            (j + 1) as f64 * pitch_y - SHELL_MARGIN - STREET_WIDTH / 2.0
        };
        meta.push(CampusBuilding {
            name: format!("b{b}"),
            origin,
            zone: Zone::new(x0, y0, x1, y1),
        });
    }

    CampusPlan {
        plan,
        buildings: meta,
    }
}

/// A splittable LCG stream in `[0, 1)`.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluttered_plan_is_deterministic_and_sized() {
        let a = cluttered_plan(32, 7);
        let b = cluttered_plan(32, 7);
        assert_eq!(a.walls().len(), 32);
        for (wa, wb) in a.walls().iter().zip(b.walls()) {
            assert_eq!(wa.a, wb.a);
            assert_eq!(wa.b, wb.b);
        }
        // Different seed, different scene.
        let c = cluttered_plan(32, 8);
        assert_ne!(a.walls()[0].a, c.walls()[0].a);
    }

    #[test]
    fn building_plan_wall_count_is_parametric() {
        // floors · (6R + 2): the counts the building benches advertise.
        assert_eq!(building_plan(8, 21, 5).walls().len(), 1024);
        assert_eq!(building_plan(16, 42, 5).walls().len(), 4064);
        assert_eq!(building_plan(1, 1, 5).walls().len(), 8);
    }

    #[test]
    fn building_plan_is_deterministic_and_has_rooms() {
        let a = building_plan(2, 3, 9);
        let b = building_plan(2, 3, 9);
        for (wa, wb) in a.walls().iter().zip(b.walls()) {
            assert_eq!(wa.a, wb.a);
            assert_eq!(wa.b, wb.b);
        }
        // 2 floors × (2 rows × 3 rooms + corridor).
        assert_eq!(a.rooms().len(), 2 * 7);
        assert!(a.room("f0s0").is_some());
        assert!(a.room("f1corridor").is_some());
        // Doorway jitter responds to the seed.
        let c = building_plan(2, 3, 10);
        assert!(a
            .walls()
            .iter()
            .zip(c.walls())
            .any(|(wa, wc)| wa.a != wc.a || wa.b != wc.b));
    }

    #[test]
    fn building_rooms_connect_through_doorways() {
        // A room centre must reach the corridor centre through its doorway
        // with zero wall crossings for *some* probe height path — walk the
        // doorway gap: the two corridor-wall segments leave a 0.9 m gap.
        let plan = building_plan(1, 4, 3);
        let index = plan.build_wall_index();
        let room = plan.room("f0s1").unwrap();
        let corridor = plan.room("f0corridor").unwrap();
        // Find the doorway: sweep x across the room span at the corridor
        // wall line; at least one x must pass with LOS.
        let mut found = false;
        for i in 0..200 {
            let x = room.min.x + (i as f64 / 199.0) * (room.max.x - room.min.x);
            let inside = Vec3::new(x, room.center(1.2).y, 1.2);
            let hall = Vec3::new(x, corridor.center(1.2).y, 1.2);
            if plan.has_los_with(&index, inside, hall) {
                found = true;
                break;
            }
        }
        assert!(found, "no doorway aperture found in corridor wall");
    }

    #[test]
    fn campus_plan_wall_count_is_parametric() {
        // buildings · (floors · (6R + 2) + 4).
        assert_eq!(campus_plan(4, 2, 3, 5).plan.walls().len(), 4 * (2 * 20 + 4));
        assert_eq!(campus_plan(1, 1, 1, 5).plan.walls().len(), 12);
        // The shard-scaling bench scene: ≥ 16k walls.
        assert_eq!(campus_plan(4, 16, 42, 5).plan.walls().len(), 16_272);
    }

    #[test]
    fn campus_plan_is_deterministic_with_prefixed_rooms() {
        let a = campus_plan(3, 1, 2, 9);
        let b = campus_plan(3, 1, 2, 9);
        for (wa, wb) in a.plan.walls().iter().zip(b.plan.walls()) {
            assert_eq!(wa.a, wb.a);
            assert_eq!(wa.b, wb.b);
        }
        assert!(a.plan.room("b0.f0s0").is_some());
        assert!(a.plan.room("b2.f0corridor").is_some());
        assert_eq!(a.buildings.len(), 3);
        assert_eq!(a.buildings[1].name, "b1");
    }

    #[test]
    fn campus_zones_tile_and_contain_their_walls() {
        // 5 buildings on a 3-wide grid exercises the partial last row.
        let campus = campus_plan(5, 1, 2, 3);
        let zones = campus.zones();
        // Every wall endpoint routes to its own building's zone.
        let mut w = 0;
        let per_building = campus.plan.walls().len() / 5;
        for (b, building) in campus.buildings.iter().enumerate() {
            for _ in 0..per_building {
                let wall = &campus.plan.walls()[w];
                for p in [wall.a, wall.b] {
                    assert!(
                        building.zone.contains(p),
                        "building {b} wall at {p:?} outside its zone"
                    );
                }
                w += 1;
            }
        }
        // The cells tile the plane: every probe point has exactly one owner.
        for &(x, y) in &[
            (-50.0, -50.0),
            (0.0, 0.0),
            (14.0, 3.0),
            (14.0, 25.0),
            (300.0, -10.0),
            (7.05, 19.1),
        ] {
            let owners = zones.iter().filter(|z| z.contains(Vec3::xy(x, y))).count();
            assert_eq!(owners, 1, "point ({x}, {y}) owned by {owners} zones");
        }
    }

    #[test]
    fn campus_buildings_are_rf_isolated() {
        // A link between two buildings crosses both metal shells: the
        // channel must be indistinguishable from zero at mmWave — this is
        // the physical fact the sharded kernel's bit-equivalence rests on.
        use surfos::channel::{ChannelSim, Endpoint};
        use surfos::em::band::NamedBand;
        let campus = campus_plan(2, 1, 1, 7);
        let sim = ChannelSim::new(campus.plan.clone(), NamedBand::MmWave28GHz.band());
        let a = Endpoint::client("a", campus.buildings[0].origin + Vec3::new(2.0, 2.0, 1.2));
        let b = Endpoint::client("b", campus.buildings[1].origin + Vec3::new(2.0, 2.0, 1.2));
        let gain = sim.gain(&a, &b);
        assert!(
            gain.abs() < 1e-9,
            "cross-building channel should be RF-dark, got |h| = {}",
            gain.abs()
        );
    }

    #[test]
    fn building_extent_covers_all_walls() {
        let plan = building_plan(3, 5, 11);
        let (x, y) = building_extent(3, 5);
        for w in plan.walls() {
            for p in [w.a, w.b] {
                assert!(p.x >= -1e-9 && p.x <= x + 1e-9);
                assert!(p.y >= -1e-9 && p.y <= y + 1e-9);
            }
        }
    }
}
