//! Deterministic cluttered scenes for the spatial-index benchmarks.
//!
//! The apartment lab has six walls — enough for the paper's figures but
//! too small to show how tracing scales. These generators scatter `n`
//! pseudo-random walls over a 20×20 m area (LCG-seeded, so every run
//! benchmarks the same scene) for the 8/32/128-wall sweeps.

use surfos::geometry::{FloorPlan, Material, Vec3, Wall};

/// `n_walls` short walls with mixed materials over a 20×20 m area.
/// Deterministic in `seed`.
pub fn cluttered_plan(n_walls: usize, seed: u64) -> FloorPlan {
    let mut next = lcg(seed);
    let materials = [
        Material::Drywall,
        Material::Concrete,
        Material::Glass,
        Material::Wood,
    ];
    let mut plan = FloorPlan::new();
    for i in 0..n_walls {
        let x = next() * 20.0;
        let y = next() * 20.0;
        let ang = next() * std::f64::consts::TAU;
        let len = 0.5 + next() * 3.5;
        plan.add_wall(Wall::new(
            Vec3::xy(x, y),
            Vec3::xy(x + ang.cos() * len, y + ang.sin() * len),
            1.5 + next() * 2.5,
            materials[i % materials.len()],
        ));
    }
    plan
}

/// `n` deterministic probe segments criss-crossing the same 20×20 m area
/// at mixed heights.
pub fn probe_segments(n: usize, seed: u64) -> Vec<(Vec3, Vec3)> {
    let mut next = lcg(seed);
    (0..n)
        .map(|_| {
            (
                Vec3::new(next() * 20.0, next() * 20.0, 0.3 + next() * 2.5),
                Vec3::new(next() * 20.0, next() * 20.0, 0.3 + next() * 2.5),
            )
        })
        .collect()
}

/// A splittable LCG stream in `[0, 1)`.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluttered_plan_is_deterministic_and_sized() {
        let a = cluttered_plan(32, 7);
        let b = cluttered_plan(32, 7);
        assert_eq!(a.walls().len(), 32);
        for (wa, wb) in a.walls().iter().zip(b.walls()) {
            assert_eq!(wa.a, wb.a);
            assert_eq!(wa.b, wb.b);
        }
        // Different seed, different scene.
        let c = cluttered_plan(32, 8);
        assert_ne!(a.walls()[0].a, c.walls()[0].a);
    }
}
