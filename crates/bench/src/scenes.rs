//! Deterministic cluttered and building-scale scenes for the spatial-index
//! benchmarks.
//!
//! The apartment lab has six walls — enough for the paper's figures but
//! too small to show how tracing scales. Two families of generators fill
//! the gap:
//!
//! - [`cluttered_plan`] scatters `n` pseudo-random walls over a 20×20 m
//!   area (LCG-seeded, so every run benchmarks the same scene) for the
//!   8/32/128-wall sweeps, and
//! - [`building_plan`] lays out a parametric multi-floor building —
//!   `floors` floor plates, each with two rows of `rooms_per_side` rooms
//!   flanking a central corridor, concrete shell, mixed-material
//!   partitions, and a doorway aperture per room — reaching the 1k–4k wall
//!   counts the SAH/packed BVH targets (the paper's §5 building-scale
//!   deployment regime).

use surfos::geometry::{FloorPlan, Material, Room, Vec3, Wall};

/// `n_walls` short walls with mixed materials over a 20×20 m area.
/// Deterministic in `seed`.
pub fn cluttered_plan(n_walls: usize, seed: u64) -> FloorPlan {
    let mut next = lcg(seed);
    let materials = [
        Material::Drywall,
        Material::Concrete,
        Material::Glass,
        Material::Wood,
    ];
    let mut plan = FloorPlan::new();
    for i in 0..n_walls {
        let x = next() * 20.0;
        let y = next() * 20.0;
        let ang = next() * std::f64::consts::TAU;
        let len = 0.5 + next() * 3.5;
        plan.add_wall(Wall::new(
            Vec3::xy(x, y),
            Vec3::xy(x + ang.cos() * len, y + ang.sin() * len),
            1.5 + next() * 2.5,
            materials[i % materials.len()],
        ));
    }
    plan
}

/// `n` deterministic probe segments criss-crossing the same 20×20 m area
/// at mixed heights.
pub fn probe_segments(n: usize, seed: u64) -> Vec<(Vec3, Vec3)> {
    let mut next = lcg(seed);
    (0..n)
        .map(|_| {
            (
                Vec3::new(next() * 20.0, next() * 20.0, 0.3 + next() * 2.5),
                Vec3::new(next() * 20.0, next() * 20.0, 0.3 + next() * 2.5),
            )
        })
        .collect()
}

/// Room depth (corridor to exterior) in metres.
const ROOM_DEPTH: f64 = 5.0;
/// Room width along the corridor in metres.
const ROOM_WIDTH: f64 = 4.0;
/// Central corridor width in metres.
const CORRIDOR_WIDTH: f64 = 2.0;
/// Clear doorway width in each room's corridor wall.
const DOORWAY_WIDTH: f64 = 0.9;
/// Storey height in metres.
const STOREY_HEIGHT: f64 = 3.0;
/// Plan-view gap between floor plates (walls extrude from `z = 0`, so the
/// "floors" tile side by side instead of stacking).
const FLOOR_GAP: f64 = 2.0;

/// A parametric multi-floor building: `floors` rectangular floor plates,
/// each `rooms_per_side · ROOM_WIDTH` m wide, with a south and a north row
/// of rooms flanking a central corridor. Every room opens onto the
/// corridor through a doorway aperture (two wall segments with an
/// LCG-jittered 0.9 m gap); partitions between rooms cycle through
/// drywall/glass/wood, the shell and corridor walls are concrete.
///
/// Wall count is exactly `floors · (6 · rooms_per_side + 2)`: 4 shell
/// walls + `2 (rooms_per_side − 1)` partitions + `4 · rooms_per_side`
/// corridor segments per floor — `(8, 21)` lands on 1024 walls, `(16, 42)`
/// on 4064. Deterministic in `seed`. Rooms are registered as named
/// [`Room`] regions (`f{f}s{i}` / `f{f}n{i}` / `f{f}corridor`) so
/// coverage-style objectives can target them.
///
/// The geometry layer extrudes every wall from `z = 0`, so floor plates
/// tile side by side in plan view (offset in `y`) rather than stacking in
/// `z`; for spatial-index behaviour this is equivalent — what matters is
/// thousands of walls with strong room/corridor structure, which is
/// exactly the non-uniform distribution SAH partitioning exploits.
pub fn building_plan(floors: usize, rooms_per_side: usize, seed: u64) -> FloorPlan {
    assert!(
        floors > 0 && rooms_per_side > 0,
        "building must be non-empty"
    );
    let mut next = lcg(seed);
    let partition_materials = [Material::Drywall, Material::Glass, Material::Wood];
    let mut plan = FloorPlan::new();
    let width = rooms_per_side as f64 * ROOM_WIDTH;
    let depth = 2.0 * ROOM_DEPTH + CORRIDOR_WIDTH;
    for f in 0..floors {
        let y0 = f as f64 * (depth + FLOOR_GAP);
        let y_corridor_s = y0 + ROOM_DEPTH; // south corridor wall
        let y_corridor_n = y_corridor_s + CORRIDOR_WIDTH; // north corridor wall
        let y1 = y0 + depth;
        let concrete = Material::Concrete;

        // Shell: 4 perimeter walls.
        plan.add_wall(Wall::new(
            Vec3::xy(0.0, y0),
            Vec3::xy(width, y0),
            STOREY_HEIGHT,
            concrete,
        ));
        plan.add_wall(Wall::new(
            Vec3::xy(0.0, y1),
            Vec3::xy(width, y1),
            STOREY_HEIGHT,
            concrete,
        ));
        plan.add_wall(Wall::new(
            Vec3::xy(0.0, y0),
            Vec3::xy(0.0, y1),
            STOREY_HEIGHT,
            concrete,
        ));
        plan.add_wall(Wall::new(
            Vec3::xy(width, y0),
            Vec3::xy(width, y1),
            STOREY_HEIGHT,
            concrete,
        ));

        // Partitions between rooms, both rows.
        for k in 1..rooms_per_side {
            let x = k as f64 * ROOM_WIDTH;
            let material = partition_materials[(f + k) % partition_materials.len()];
            plan.add_wall(Wall::new(
                Vec3::xy(x, y0),
                Vec3::xy(x, y_corridor_s),
                STOREY_HEIGHT,
                material,
            ));
            plan.add_wall(Wall::new(
                Vec3::xy(x, y_corridor_n),
                Vec3::xy(x, y1),
                STOREY_HEIGHT,
                material,
            ));
        }

        // Corridor walls, one doorway aperture per room: each room's span
        // of the corridor wall becomes two segments around a jittered gap.
        for (row, y_wall) in [(0usize, y_corridor_s), (1, y_corridor_n)] {
            for k in 0..rooms_per_side {
                let x0 = k as f64 * ROOM_WIDTH;
                let slack = ROOM_WIDTH - DOORWAY_WIDTH - 1.0; // ≥0.5 m jamb each side
                let door = x0 + 0.5 + next() * slack;
                plan.add_wall(Wall::new(
                    Vec3::xy(x0, y_wall),
                    Vec3::xy(door, y_wall),
                    STOREY_HEIGHT,
                    concrete,
                ));
                plan.add_wall(Wall::new(
                    Vec3::xy(door + DOORWAY_WIDTH, y_wall),
                    Vec3::xy(x0 + ROOM_WIDTH, y_wall),
                    STOREY_HEIGHT,
                    concrete,
                ));
                let (room_y0, room_y1, tag) = if row == 0 {
                    (y0, y_corridor_s, 's')
                } else {
                    (y_corridor_n, y1, 'n')
                };
                plan.add_room(Room::new(
                    format!("f{f}{tag}{k}"),
                    Vec3::xy(x0, room_y0),
                    Vec3::xy(x0 + ROOM_WIDTH, room_y1),
                ));
            }
        }
        plan.add_room(Room::new(
            format!("f{f}corridor"),
            Vec3::xy(0.0, y_corridor_s),
            Vec3::xy(width, y_corridor_n),
        ));
    }
    plan
}

/// The plan-view extent `(x, y)` of [`building_plan`]'s footprint — for
/// sizing probe segments to the scene.
pub fn building_extent(floors: usize, rooms_per_side: usize) -> (f64, f64) {
    let depth = 2.0 * ROOM_DEPTH + CORRIDOR_WIDTH;
    (
        rooms_per_side as f64 * ROOM_WIDTH,
        floors as f64 * (depth + FLOOR_GAP) - FLOOR_GAP,
    )
}

/// `n` deterministic probe segments criss-crossing a `[0, x] × [0, y]`
/// plan-view extent at mixed heights — [`probe_segments`] generalized to
/// building-sized footprints.
pub fn probe_segments_in(n: usize, seed: u64, x: f64, y: f64) -> Vec<(Vec3, Vec3)> {
    let mut next = lcg(seed);
    (0..n)
        .map(|_| {
            (
                Vec3::new(next() * x, next() * y, 0.3 + next() * 2.5),
                Vec3::new(next() * x, next() * y, 0.3 + next() * 2.5),
            )
        })
        .collect()
}

/// A splittable LCG stream in `[0, 1)`.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluttered_plan_is_deterministic_and_sized() {
        let a = cluttered_plan(32, 7);
        let b = cluttered_plan(32, 7);
        assert_eq!(a.walls().len(), 32);
        for (wa, wb) in a.walls().iter().zip(b.walls()) {
            assert_eq!(wa.a, wb.a);
            assert_eq!(wa.b, wb.b);
        }
        // Different seed, different scene.
        let c = cluttered_plan(32, 8);
        assert_ne!(a.walls()[0].a, c.walls()[0].a);
    }

    #[test]
    fn building_plan_wall_count_is_parametric() {
        // floors · (6R + 2): the counts the building benches advertise.
        assert_eq!(building_plan(8, 21, 5).walls().len(), 1024);
        assert_eq!(building_plan(16, 42, 5).walls().len(), 4064);
        assert_eq!(building_plan(1, 1, 5).walls().len(), 8);
    }

    #[test]
    fn building_plan_is_deterministic_and_has_rooms() {
        let a = building_plan(2, 3, 9);
        let b = building_plan(2, 3, 9);
        for (wa, wb) in a.walls().iter().zip(b.walls()) {
            assert_eq!(wa.a, wb.a);
            assert_eq!(wa.b, wb.b);
        }
        // 2 floors × (2 rows × 3 rooms + corridor).
        assert_eq!(a.rooms().len(), 2 * 7);
        assert!(a.room("f0s0").is_some());
        assert!(a.room("f1corridor").is_some());
        // Doorway jitter responds to the seed.
        let c = building_plan(2, 3, 10);
        assert!(a
            .walls()
            .iter()
            .zip(c.walls())
            .any(|(wa, wc)| wa.a != wc.a || wa.b != wc.b));
    }

    #[test]
    fn building_rooms_connect_through_doorways() {
        // A room centre must reach the corridor centre through its doorway
        // with zero wall crossings for *some* probe height path — walk the
        // doorway gap: the two corridor-wall segments leave a 0.9 m gap.
        let plan = building_plan(1, 4, 3);
        let index = plan.build_wall_index();
        let room = plan.room("f0s1").unwrap();
        let corridor = plan.room("f0corridor").unwrap();
        // Find the doorway: sweep x across the room span at the corridor
        // wall line; at least one x must pass with LOS.
        let mut found = false;
        for i in 0..200 {
            let x = room.min.x + (i as f64 / 199.0) * (room.max.x - room.min.x);
            let inside = Vec3::new(x, room.center(1.2).y, 1.2);
            let hall = Vec3::new(x, corridor.center(1.2).y, 1.2);
            if plan.has_los_with(&index, inside, hall) {
                found = true;
                break;
            }
        }
        assert!(found, "no doorway aperture found in corridor wall");
    }

    #[test]
    fn building_extent_covers_all_walls() {
        let plan = building_plan(3, 5, 11);
        let (x, y) = building_extent(3, 5);
        for w in plan.walls() {
            for p in [w.a, w.b] {
                assert!(p.x >= -1e-9 && p.x <= x + 1e-9);
                assert!(p.y >= -1e-9 && p.y <= y + 1e-9);
            }
        }
    }
}
