//! Figure 5: multitasking for joint localization and coverage.
//!
//! One surface, three configurations — coverage-optimized, localization-
//! optimized, and jointly optimized — evaluated on both metrics across
//! bedroom locations. The paper's claim: a *single* shared configuration
//! multitasks with little loss on either metric.

use crate::experiments::ApartmentLab;
use rand::SeedableRng;
use surfos::channel::Heatmap;
use surfos::orchestrator::objective::{
    CoverageObjective, LocalizationObjective, MultiObjective, Objective,
};
use surfos::orchestrator::optimizer::{adam, AdamOptions, Tying};
use surfos::sensing::aoa::AngleGrid;
use surfos::sensing::eval::evaluate_localization;

/// One configuration's evaluation: SNR and localization error across
/// locations.
pub struct ConfigEval {
    /// Configuration name (paper legend).
    pub label: &'static str,
    /// SNR (dB) across locations.
    pub snr_db: Heatmap,
    /// Localization error (m) across locations.
    pub loc_error_m: Heatmap,
}

/// The Figure 5 outputs, in the paper's legend order.
pub struct Fig5 {
    /// Multi-tasking / Localization-Opt / Coverage-Opt.
    pub configs: Vec<ConfigEval>,
}

/// Weight on the localization loss in the joint objective (the coverage
/// loss over 36 locations is numerically much larger than a mean
/// cross-entropy in nats, so the sensing term needs this factor to
/// matter — the paper's "minimize the sum" with balanced scales).
pub const JOINT_LOCALIZATION_WEIGHT: f64 = 60.0;

fn optimize(objective: &dyn Objective, n: usize, iters: usize) -> Vec<f64> {
    let initial = vec![vec![0.0; n * n]];
    adam(
        objective,
        &initial,
        &Tying::element_wise(1),
        AdamOptions {
            iters,
            lr: 0.15,
            ..Default::default()
        },
    )
    .phases[0]
        .clone()
}

/// Runs the experiment with an `n × n` surface and `iters` optimizer
/// steps per configuration.
pub fn run(n: usize, iters: usize) -> Fig5 {
    let mut lab = ApartmentLab::new("bedroom-north");
    let idx = lab.deploy("shared", "bedroom-north", n);
    let eval_grid = lab.heatmap_grid(8, 6);
    let angle_grid = AngleGrid::uniform(81, 1.3);
    let noise = crate::fig2::sounding_noise_std(&lab, idx);

    let coverage = CoverageObjective::new(&lab.sim, &lab.ap, &lab.grid, &lab.probe);
    let localization = LocalizationObjective::new(
        &lab.sim,
        idx,
        &lab.ap,
        &lab.probe,
        &lab.grid,
        AngleGrid::uniform(41, 1.3),
    );

    let cov_phases = optimize(&coverage, n, iters);
    let loc_phases = optimize(&localization, n, iters);
    let joint = MultiObjective::new()
        .with(
            Box::new(CoverageObjective::new(
                &lab.sim, &lab.ap, &lab.grid, &lab.probe,
            )),
            1.0,
        )
        .with(
            Box::new(LocalizationObjective::new(
                &lab.sim,
                idx,
                &lab.ap,
                &lab.probe,
                &lab.grid,
                AngleGrid::uniform(41, 1.3),
            )),
            JOINT_LOCALIZATION_WEIGHT,
        );
    let joint_phases = optimize(&joint, n, iters);

    let mut configs = Vec::new();
    for (label, phases) in [
        ("Multi-tasking", &joint_phases),
        ("Localization Opt", &loc_phases),
        ("Coverage Opt", &cov_phases),
    ] {
        lab.sim.surface_mut(idx).set_phases(phases);
        let snr_db = lab.sim.snr_heatmap(&lab.ap, &eval_grid, &lab.probe);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let errs = evaluate_localization(
            &lab.sim,
            idx,
            &lab.ap,
            &lab.probe,
            &eval_grid,
            angle_grid.clone(),
            noise,
            &mut rng,
        );
        let errs = errs.into_iter().map(|e| e.min(5.0)).collect();
        configs.push(ConfigEval {
            label,
            snr_db,
            loc_error_m: Heatmap::new(eval_grid.clone(), errs),
        });
    }
    Fig5 { configs }
}
