//! Terminal reporting helpers for the experiment binaries.

use std::io::Write;
use std::path::Path;
use surfos::channel::Heatmap;

/// The output directory requested with `--csv <dir>`, if any.
pub fn csv_dir_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Writes CSV rows to `<dir>/<name>.csv`, creating the directory. Panics
/// on I/O failure (an experiment run with an unwritable output directory
/// should fail loudly, not silently drop data).
pub fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) {
    std::fs::create_dir_all(dir).expect("create csv dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv file");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    eprintln!("wrote {}", path.display());
}

/// Serializes a heatmap as `x,y,value` rows.
pub fn heatmap_rows(map: &Heatmap) -> Vec<String> {
    map.points
        .iter()
        .zip(&map.values)
        .map(|(p, v)| format!("{},{},{}", p.x, p.y, v))
        .collect()
}

/// Serializes a CDF as `value,fraction` rows.
pub fn cdf_rows(map: &Heatmap) -> Vec<String> {
    map.cdf()
        .into_iter()
        .map(|(v, f)| format!("{v},{f}"))
        .collect()
}

/// Prints a titled heatmap: ASCII art plus order statistics.
pub fn print_heatmap(title: &str, map: &Heatmap, unit: &str) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len()));
    print!("{}", map.ascii(36, 12));
    println!(
        "min {:.2} | p25 {:.2} | median {:.2} | p75 {:.2} | max {:.2} ({unit})",
        map.min(),
        map.quantile(0.25),
        map.median(),
        map.quantile(0.75),
        map.max()
    );
}

/// Prints a CDF as decile rows (the series a plotting tool would consume).
pub fn print_cdf(label: &str, map: &Heatmap, unit: &str) {
    print!("{label:>18} ({unit}): ");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        print!("p{:<3} {:>7.2}  ", (q * 100.0) as u32, map.quantile(q));
    }
    println!();
}

/// Prints a markdown-ish table row with fixed column widths.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::from("|");
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!(" {cell:<w$} |"));
    }
    println!("{line}");
}

/// Prints a rule matching [`print_row`] widths.
pub fn print_rule(widths: &[usize]) {
    let mut line = String::from("|");
    for w in widths {
        line.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{line}");
}
