//! The common laboratory: the paper's two-room apartment with
//! configurable surface deployments at 28 GHz.

use surfos::channel::{ChannelSim, Endpoint, OperationMode, SurfaceInstance};
use surfos::em::array::ArrayGeometry;
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::{two_room_apartment, Scenario};
use surfos::geometry::{Pose, Vec3};
use surfos::hw::granularity::Reconfigurability;
use surfos::hw::spec::{ControlCapability, HardwareSpec, SurfaceMode};

/// The experiment environment: apartment + simulator + AP + probe grid.
pub struct ApartmentLab {
    /// The scenario (plan + anchors).
    pub scenario: Scenario,
    /// The channel simulator (surfaces deployed by the experiment).
    pub sim: ChannelSim,
    /// The serving AP (aim set per experiment).
    pub ap: Endpoint,
    /// Evaluation grid over the target bedroom.
    pub grid: Vec<Vec3>,
    /// The probe/client template used on the grid.
    pub probe: Endpoint,
}

impl ApartmentLab {
    /// Builds the lab with the AP aimed at `aim_anchor`.
    pub fn new(aim_anchor: &str) -> Self {
        let scenario = two_room_apartment();
        let band = NamedBand::MmWave28GHz.band();
        let sim = ChannelSim::new(scenario.plan.clone(), band);
        let aim = scenario
            .anchor(aim_anchor)
            .unwrap_or_else(|| panic!("unknown anchor {aim_anchor:?}"))
            .position;
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(scenario.ap_pose.position, aim - scenario.ap_pose.position),
        );
        let grid = scenario.target().sample_grid(6, 6, 1.2, 0.4);
        let probe = Endpoint::client("probe", grid[0]);
        ApartmentLab {
            scenario,
            sim,
            ap,
            grid,
            probe,
        }
    }

    /// Deploys an `n × n` surface at a named anchor; returns its index.
    pub fn deploy(&mut self, id: &str, anchor: &str, n: usize) -> usize {
        let pose = *self
            .scenario
            .anchor(anchor)
            .unwrap_or_else(|| panic!("unknown anchor {anchor:?}"));
        let geom = ArrayGeometry::half_wavelength(n, n, self.sim.band.wavelength_m());
        self.sim.add_surface(
            SurfaceInstance::new(id, pose, geom, OperationMode::Reflective).with_efficiency(0.8),
        )
    }

    /// A denser grid for heatmaps (Figure 2).
    pub fn heatmap_grid(&self, nx: usize, ny: usize) -> Vec<Vec3> {
        self.scenario.target().sample_grid(nx, ny, 1.2, 0.25)
    }
}

/// The passive 28 GHz design used by the Figure 4 economics (AutoMS-style
/// printed reflectarray re-targeted to 28 GHz): near-free per element,
/// zero power, fabrication-time configuration.
pub fn passive28(n: usize) -> HardwareSpec {
    HardwareSpec {
        model: "Passive28".into(),
        band: NamedBand::MmWave28GHz.band(),
        mode: SurfaceMode::Reflective,
        capabilities: vec![ControlCapability::Phase { bits: 3 }],
        reconfigurability: Reconfigurability::Passive,
        rows: n,
        cols: n,
        pitch_m: NamedBand::MmWave28GHz.band().wavelength_m() / 2.0,
        efficiency: 0.8,
        control_delay_us: None,
        config_slots: 1,
        cost_per_element_usd: 0.002,
        base_cost_usd: 2.0,
        power_mw: 0.0,
    }
}

/// The programmable 28 GHz design for Figure 4 (ScatterMIMO-class
/// economics): $2.5 per element plus a $90 controller.
pub fn programmable28(n: usize) -> HardwareSpec {
    HardwareSpec {
        model: "Prog28".into(),
        band: NamedBand::MmWave28GHz.band(),
        mode: SurfaceMode::Reflective,
        capabilities: vec![ControlCapability::Phase { bits: 2 }],
        reconfigurability: Reconfigurability::ElementWise,
        rows: n,
        cols: n,
        pitch_m: NamedBand::MmWave28GHz.band().wavelength_m() / 2.0,
        efficiency: 0.8,
        control_delay_us: Some(1_000),
        config_slots: 8,
        cost_per_element_usd: 2.5,
        base_cost_usd: 90.0,
        power_mw: 500.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_with_grid_inside_bedroom() {
        let lab = ApartmentLab::new("bedroom-north");
        assert_eq!(lab.grid.len(), 36);
        let room = lab.scenario.target();
        assert!(lab.grid.iter().all(|p| room.contains(*p)));
    }

    #[test]
    fn deploy_places_surface_at_anchor() {
        let mut lab = ApartmentLab::new("bedroom-north");
        let idx = lab.deploy("s", "bedroom-north", 8);
        let surf = &lab.sim.surfaces()[idx];
        assert_eq!(surf.len(), 64);
        assert_eq!(
            surf.pose.position,
            lab.scenario.anchor("bedroom-north").unwrap().position
        );
    }

    #[test]
    fn fig4_specs_validate_and_price_correctly() {
        let p = passive28(64);
        let r = programmable28(16);
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(r.validate(), Ok(()));
        // Passive: thousands of elements for a few dollars.
        assert!(p.total_cost_usd() < 15.0);
        // Programmable: hundreds of dollars for a fraction of the area.
        assert!(r.total_cost_usd() > 500.0);
        assert!(r.area_m2() < p.area_m2());
    }
}
