//! Figure 2: a coverage-optimized configuration disrupts localization.
//!
//! One programmable surface serves the bedroom. Its configuration is
//! optimized for coverage alone, then two heatmaps are computed over the
//! room: received power (the paper's Figure 2a) and localization error
//! (Figure 2b). The coverage map is healthy; the localization map is not —
//! the configuration weights the sensing aperture into ambiguity.

use crate::experiments::ApartmentLab;
use rand::SeedableRng;
use surfos::channel::Heatmap;
use surfos::orchestrator::objective::CoverageObjective;
use surfos::orchestrator::optimizer::{adam, AdamOptions, Tying};
use surfos::sensing::aoa::AngleGrid;
use surfos::sensing::eval::evaluate_localization;

/// The Figure 2 outputs.
pub struct Fig2 {
    /// RSS heatmap (dBm) over the bedroom under the coverage config.
    pub coverage_dbm: Heatmap,
    /// Localization error heatmap (m) under the same config.
    pub localization_m: Heatmap,
    /// Localization error heatmap (m) under the identity (specular)
    /// config, as the sanity baseline the reader mentally compares to.
    pub baseline_localization_m: Heatmap,
}

/// Sounding noise as a fraction of the typical configured element sample.
const SOUNDING_NOISE_FRACTION: f64 = 0.25;

/// Estimates a physical sounding noise floor from the scene: a fraction
/// of the mean |element sample| for a client mid-room.
pub fn sounding_noise_std(lab: &ApartmentLab, surface_idx: usize) -> f64 {
    let mut client = lab.probe.clone();
    client.pose.position = lab.grid[lab.grid.len() / 2];
    let lin = lab.sim.linearize(&client, &lab.ap);
    match lin.linear.iter().find(|t| t.surface == surface_idx) {
        Some(term) => {
            let mean: f64 =
                term.coeffs.iter().map(|c| c.abs()).sum::<f64>() / term.coeffs.len() as f64;
            mean * SOUNDING_NOISE_FRACTION
        }
        None => 0.0,
    }
}

/// Runs the experiment with an `n × n` surface and `iters` optimizer
/// steps.
pub fn run(n: usize, iters: usize) -> Fig2 {
    let mut lab = ApartmentLab::new("bedroom-north");
    let idx = lab.deploy("prog", "bedroom-north", n);
    let grid = lab.heatmap_grid(12, 9);
    let angle_grid = AngleGrid::uniform(81, 1.3);
    let noise = sounding_noise_std(&lab, idx);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    // Baseline: identity (specular) surface.
    let base_errs = evaluate_localization(
        &lab.sim,
        idx,
        &lab.ap,
        &lab.probe,
        &grid,
        angle_grid.clone(),
        noise,
        &mut rng,
    );
    let baseline_localization_m = Heatmap::new(grid.clone(), cap(base_errs));

    // Coverage-optimize on the standard grid, then evaluate on the denser
    // heatmap grid.
    let objective = CoverageObjective::new(&lab.sim, &lab.ap, &lab.grid, &lab.probe);
    let initial = vec![vec![0.0; n * n]];
    let result = adam(
        &objective,
        &initial,
        &Tying::element_wise(1),
        AdamOptions {
            iters,
            lr: 0.15,
            ..Default::default()
        },
    );
    lab.sim.surface_mut(idx).set_phases(&result.phases[0]);

    let coverage_dbm = lab.sim.rss_heatmap(&lab.ap, &grid, &lab.probe);
    let errs = evaluate_localization(
        &lab.sim, idx, &lab.ap, &lab.probe, &grid, angle_grid, noise, &mut rng,
    );
    let localization_m = Heatmap::new(grid, cap(errs));

    Fig2 {
        coverage_dbm,
        localization_m,
        baseline_localization_m,
    }
}

/// Caps unlocalizable (infinite) errors at a plottable ceiling.
fn cap(errs: Vec<f64>) -> Vec<f64> {
    errs.into_iter().map(|e| e.min(5.0)).collect()
}
