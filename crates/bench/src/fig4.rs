//! Figure 4: leveraging hardware heterogeneity.
//!
//! The paper's deployment (Fig 4a) is anchor-constrained: the only
//! feasible mounting spots are `living-wall` (sees the AP, but sees the
//! bedroom only through the doorway cone) and `bedroom-wall` (covers the
//! whole bedroom, but is hidden from the AP behind the concrete
//! partition). No single spot is good at both — that is the premise.
//!
//! - **passive-only / programmable-only** — one surface at whichever of
//!   the two anchors serves it best. The passive surface carries one
//!   static fabricated pattern; the programmable surface re-steers per
//!   client location (dynamic steering).
//! - **hybrid** — a passive backhaul at `living-wall` phase-conjugates the
//!   AP beam onto a small programmable surface at `bedroom-wall`, which
//!   steers to clients: aperture bought at passive prices, agility at a
//!   small programmable size.
//!
//! Output: the cost (Fig 4b) and size (Fig 4c) each arm needs to reach a
//! target median SNR over the bedroom.

use crate::experiments::{passive28, programmable28, ApartmentLab};
use surfos::em::complex::Complex;
use surfos::em::phase::quantize_phase;
use surfos::hw::cost::DeploymentCost;
use surfos::orchestrator::objective::CoverageObjective;
use surfos::orchestrator::optimizer::{adam, AdamOptions, Tying};

/// One evaluated deployment point.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmPoint {
    /// Human-readable configuration, e.g. `"passive 64×64"`.
    pub label: String,
    /// Total hardware cost in USD.
    pub cost_usd: f64,
    /// Total aperture area in m².
    pub area_m2: f64,
    /// Median SNR over the bedroom grid, dB.
    pub median_snr_db: f64,
}

/// The two mounting spots the Figure 4 deployment allows.
pub const ANCHORS: [&str; 2] = ["living-wall", "bedroom-wall"];

fn adam_opts(iters: usize) -> AdamOptions {
    AdamOptions {
        iters,
        lr: 0.15,
        ..Default::default()
    }
}

/// Median over the grid of a static (single-config) surface optimized for
/// room coverage at one anchor.
fn static_median_at(anchor: &str, n: usize, iters: usize, bits: u8) -> f64 {
    let mut lab = ApartmentLab::new(anchor);
    let idx = lab.deploy("s", anchor, n);
    let objective = CoverageObjective::new(&lab.sim, &lab.ap, &lab.grid, &lab.probe);
    let initial = vec![vec![0.0; n * n]];
    let result = adam(
        &objective,
        &initial,
        &Tying::element_wise(1),
        adam_opts(iters),
    );
    let phases: Vec<f64> = result.phases[0]
        .iter()
        .map(|&p| quantize_phase(p, bits))
        .collect();
    lab.sim.surface_mut(idx).set_phases(&phases);
    let responses: Vec<Vec<Complex>> = vec![lab.sim.surfaces()[idx].response().to_vec()];
    objective.median_snr_db(&responses)
}

/// Median over the grid of a per-location re-steered (dynamic)
/// programmable surface at one anchor, `bits`-bit quantized.
fn steered_median_at(anchor: &str, n: usize, bits: u8) -> f64 {
    let mut lab = ApartmentLab::new(anchor);
    let idx = lab.deploy("s", anchor, n);
    let mut snrs: Vec<f64> = Vec::with_capacity(lab.grid.len());
    for p in lab.grid.clone() {
        let mut rx = lab.probe.clone();
        rx.pose.position = p;
        let lin = lab.sim.linearize(&lab.ap, &rx);
        let phases: Vec<f64> = match lin.linear.iter().find(|t| t.surface == idx) {
            Some(term) => term
                .coeffs
                .iter()
                .map(|c| quantize_phase(-c.arg(), bits))
                .collect(),
            None => vec![0.0; n * n],
        };
        lab.sim.surface_mut(idx).set_phases(&phases);
        snrs.push(lab.sim.link_budget(&lab.ap, &rx).snr_db);
    }
    snrs.sort_by(f64::total_cmp);
    snrs[snrs.len() / 2]
}

/// Passive-only arm: the better of the two anchors.
pub fn passive_only(n: usize, iters: usize) -> ArmPoint {
    let median = ANCHORS
        .iter()
        .map(|a| static_median_at(a, n, iters, 3))
        .fold(f64::NEG_INFINITY, f64::max);
    let spec = passive28(n);
    let cost = DeploymentCost::of(std::slice::from_ref(&spec));
    ArmPoint {
        label: format!("passive {n}×{n}"),
        cost_usd: cost.hardware_usd,
        area_m2: cost.area_m2,
        median_snr_db: median,
    }
}

/// Programmable-only arm: dynamic steering at the better anchor.
pub fn programmable_only(n: usize) -> ArmPoint {
    let median = ANCHORS
        .iter()
        .map(|a| steered_median_at(a, n, 2))
        .fold(f64::NEG_INFINITY, f64::max);
    let spec = programmable28(n);
    let cost = DeploymentCost::of(std::slice::from_ref(&spec));
    ArmPoint {
        label: format!("programmable {n}×{n}"),
        cost_usd: cost.hardware_usd,
        area_m2: cost.area_m2,
        median_snr_db: median,
    }
}

/// Hybrid arm: passive backhaul (living-wall) + programmable steering
/// surface (bedroom-wall). The passive pattern phase-conjugates the
/// AP → passive → programmable cascade α (client-independent); the
/// programmable surface re-focuses per location from the cascade β.
pub fn hybrid(n_passive: usize, n_prog: usize) -> ArmPoint {
    let mut lab = ApartmentLab::new("living-wall");
    let passive_idx = lab.deploy("backhaul", "living-wall", n_passive);
    let prog_idx = lab.deploy("steer", "bedroom-wall", n_prog);

    // Configure the backhaul once (α is receiver-independent).
    let mut rx0 = lab.probe.clone();
    rx0.pose.position = lab.grid[lab.grid.len() / 2];
    let lin0 = lab.sim.linearize(&lab.ap, &rx0);
    let cascade = lin0
        .bilinear
        .iter()
        .find(|b| b.first == passive_idx && b.second == prog_idx)
        .expect("backhaul cascade must exist");
    let passive_phases: Vec<f64> = cascade
        .alpha
        .iter()
        .map(|a| quantize_phase(-a.arg(), 3))
        .collect();
    lab.sim.surface_mut(passive_idx).set_phases(&passive_phases);

    // Per-location programmable steering from the cascade β.
    let mut snrs: Vec<f64> = Vec::with_capacity(lab.grid.len());
    for p in lab.grid.clone() {
        let mut rx = lab.probe.clone();
        rx.pose.position = p;
        let lin = lab.sim.linearize(&lab.ap, &rx);
        let phases: Vec<f64> = match lin
            .bilinear
            .iter()
            .find(|b| b.first == passive_idx && b.second == prog_idx)
        {
            Some(b) => b.beta.iter().map(|c| quantize_phase(-c.arg(), 2)).collect(),
            None => vec![0.0; n_prog * n_prog],
        };
        lab.sim.surface_mut(prog_idx).set_phases(&phases);
        snrs.push(lab.sim.link_budget(&lab.ap, &rx).snr_db);
    }
    snrs.sort_by(f64::total_cmp);
    let median = snrs[snrs.len() / 2];

    let specs = [passive28(n_passive), programmable28(n_prog)];
    let cost = DeploymentCost::of(&specs);
    ArmPoint {
        label: format!("hybrid {n_passive}×{n_passive}P + {n_prog}×{n_prog}R"),
        cost_usd: cost.hardware_usd,
        area_m2: cost.area_m2,
        median_snr_db: median,
    }
}

/// The full sweep: every arm at several sizes.
pub fn sweep() -> Vec<ArmPoint> {
    let mut points = Vec::new();
    for n in [32, 64, 96, 128, 192, 256] {
        points.push(passive_only(n, 80));
    }
    for n in [16, 32, 48, 64, 96, 128] {
        points.push(programmable_only(n));
    }
    for (ns, np) in [
        (32, 8),
        (48, 8),
        (48, 12),
        (64, 12),
        (64, 16),
        (96, 16),
        (96, 24),
        (128, 24),
    ] {
        points.push(hybrid(ns, np));
    }
    points
}

/// For each SNR target, the cheapest configuration of each arm that
/// reaches it (`None` when the sweep never got there).
pub fn cheapest_per_target<'a>(
    points: &'a [ArmPoint],
    prefix: &str,
    target_snr_db: f64,
) -> Option<&'a ArmPoint> {
    points
        .iter()
        .filter(|p| p.label.starts_with(prefix) && p.median_snr_db >= target_snr_db)
        .min_by(|a, b| a.cost_usd.total_cmp(&b.cost_usd))
}

/// Same, by smallest aperture area.
pub fn smallest_per_target<'a>(
    points: &'a [ArmPoint],
    prefix: &str,
    target_snr_db: f64,
) -> Option<&'a ArmPoint> {
    points
        .iter()
        .filter(|p| p.label.starts_with(prefix) && p.median_snr_db >= target_snr_db)
        .min_by(|a, b| a.area_m2.total_cmp(&b.area_m2))
}
