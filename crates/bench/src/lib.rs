//! Shared experiment scaffolding for the SurfOS reproduction.
//!
//! Each paper artefact (Table 1, Figures 2/4/5/6) has a binary under
//! `src/bin/`; the experiment logic lives here so binaries stay thin and
//! integration tests can assert the experiments' *shapes* (who wins, by
//! roughly how much) without scraping stdout.

pub mod experiments;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod report;
pub mod scenes;

pub use experiments::ApartmentLab;
