//! Portable SIMD shim for the packet-tracing hot path.
//!
//! SurfOS vendors its dependencies, so rather than pull in `wide` or wait
//! for `std::simd` we expose the handful of lane operations the tracing
//! and re-phasing kernels actually need: splat/load, add/sub/mul,
//! `mul_add`, min/max, compares producing lane masks, mask boolean
//! algebra with `bitmask`/`any`/`all`, blend/`select`, and horizontal
//! reductions.
//!
//! Two backends sit behind one API:
//!
//! - **x86_64** (default): [`F32x4`] wraps a `__m128` and uses the SSE
//!   intrinsics that are in the x86_64 baseline — no runtime feature
//!   detection; the only `unsafe` in the workspace is the audited `sse!`
//!   wrapper around value-based baseline intrinsics.
//! - **scalar fallback** (`--features scalar-fallback`, and automatically
//!   on non-x86_64 targets): plain `[f32; 4]` arrays with loops shaped so
//!   the results are **bit-identical** to the SSE backend, including the
//!   SSE operand-order semantics of `min`/`max` under NaN and the fixed
//!   `(a[0]+a[2]) + (a[1]+a[3])` association of [`F32x4::reduce_sum`].
//!
//! [`F32x8`] is a pair of [`F32x4`] — wide enough for an 8-lane ray
//! packet while still compiling to two SSE registers on the baseline.
//!
//! `mul_add` is **not fused** on either backend (it is `a * b + c` with
//! both roundings) so the two backends agree bit-for-bit; it exists so
//! kernels have a single spelling that a future FMA-enabled build can
//! swap wholesale.
//!
//! The [`phasor`] submodule holds the structure-of-arrays complex
//! helpers used by `ChannelTrace::sweep_evaluate`; see its docs for the
//! reassociation / ULP policy.

#![allow(clippy::should_implement_trait)]

#[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
mod backend {
    use core::arch::x86_64::*;

    /// Wraps a value-based SSE intrinsic call.
    ///
    /// SAFETY: SSE and SSE2 are unconditionally part of the `x86_64`
    /// baseline target features, so the wrapped intrinsics (all
    /// value-based — no pointers) can never execute on a CPU that lacks
    /// them when this backend is compiled in.
    macro_rules! sse {
        ($e:expr) => {
            unsafe { $e }
        };
    }

    /// Four `f32` lanes in one SSE register.
    #[derive(Clone, Copy, Debug)]
    pub struct F32x4(pub(super) __m128);

    /// Lane mask for [`F32x4`]: each lane is all-ones (true) or all-zeros.
    #[derive(Clone, Copy, Debug)]
    pub struct Mask4(pub(super) __m128);

    #[inline]
    fn all_ones() -> __m128 {
        let z = sse!(_mm_setzero_ps());
        sse!(_mm_cmpeq_ps(z, z))
    }

    impl F32x4 {
        /// Broadcasts `v` to all lanes.
        #[inline]
        pub fn splat(v: f32) -> Self {
            F32x4(sse!(_mm_set1_ps(v)))
        }

        /// Loads the four lanes from an array (`a[0]` is lane 0).
        #[inline]
        pub fn from_array(a: [f32; 4]) -> Self {
            F32x4(sse!(_mm_setr_ps(a[0], a[1], a[2], a[3])))
        }

        /// Stores the four lanes to an array (`a[0]` is lane 0).
        #[inline]
        pub fn to_array(self) -> [f32; 4] {
            let v = self.0;
            [
                sse!(_mm_cvtss_f32(v)),
                sse!(_mm_cvtss_f32(_mm_shuffle_ps::<0b01_01_01_01>(v, v))),
                sse!(_mm_cvtss_f32(_mm_shuffle_ps::<0b10_10_10_10>(v, v))),
                sse!(_mm_cvtss_f32(_mm_shuffle_ps::<0b11_11_11_11>(v, v))),
            ]
        }

        /// Lane-wise `self + rhs`.
        #[inline]
        pub fn add(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_add_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self - rhs`.
        #[inline]
        pub fn sub(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_sub_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self * rhs`.
        #[inline]
        pub fn mul(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_mul_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self * b + c`, rounded twice (**not** fused; see
        /// module docs).
        #[inline]
        pub fn mul_add(self, b: Self, c: Self) -> Self {
            F32x4(sse!(_mm_add_ps(_mm_mul_ps(self.0, b.0), c.0)))
        }

        /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on
        /// `0/0`).
        #[inline]
        pub fn div(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_div_ps(self.0, rhs.0)))
        }

        /// Lane-wise absolute value (clears the sign bit; `|NaN|` keeps
        /// its payload).
        #[inline]
        pub fn abs(self) -> Self {
            F32x4(sse!(_mm_andnot_ps(_mm_set1_ps(-0.0), self.0)))
        }

        /// Lane-wise minimum with SSE `minps` semantics: returns the
        /// *second* operand (`rhs`) when the lanes compare unordered
        /// (NaN) or equal.
        #[inline]
        pub fn min(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_min_ps(self.0, rhs.0)))
        }

        /// Lane-wise maximum with SSE `maxps` semantics (see [`Self::min`]).
        #[inline]
        pub fn max(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_max_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self < rhs` (false on NaN).
        #[inline]
        pub fn simd_lt(self, rhs: Self) -> Mask4 {
            Mask4(sse!(_mm_cmplt_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self <= rhs` (false on NaN).
        #[inline]
        pub fn simd_le(self, rhs: Self) -> Mask4 {
            Mask4(sse!(_mm_cmple_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self >= rhs` (false on NaN).
        #[inline]
        pub fn simd_ge(self, rhs: Self) -> Mask4 {
            Mask4(sse!(_mm_cmpge_ps(self.0, rhs.0)))
        }

        /// Picks `self` where `mask` is true, `other` where false.
        #[inline]
        pub fn select(self, mask: Mask4, other: Self) -> Self {
            F32x4(sse!(_mm_or_ps(
                _mm_and_ps(mask.0, self.0),
                _mm_andnot_ps(mask.0, other.0),
            )))
        }

        /// Horizontal sum with the fixed association
        /// `(a[0] + a[2]) + (a[1] + a[3])`.
        #[inline]
        pub fn reduce_sum(self) -> f32 {
            let v = self.0;
            let hi = sse!(_mm_movehl_ps(v, v));
            let pair = sse!(_mm_add_ps(v, hi));
            let odd = sse!(_mm_shuffle_ps::<0b01>(pair, pair));
            sse!(_mm_cvtss_f32(_mm_add_ss(pair, odd)))
        }

        /// Horizontal minimum (SSE `minps` NaN semantics per step).
        #[inline]
        pub fn reduce_min(self) -> f32 {
            let v = self.0;
            let hi = sse!(_mm_movehl_ps(v, v));
            let pair = sse!(_mm_min_ps(v, hi));
            let odd = sse!(_mm_shuffle_ps::<0b01>(pair, pair));
            sse!(_mm_cvtss_f32(_mm_min_ss(pair, odd)))
        }

        /// Horizontal maximum (SSE `maxps` NaN semantics per step).
        #[inline]
        pub fn reduce_max(self) -> f32 {
            let v = self.0;
            let hi = sse!(_mm_movehl_ps(v, v));
            let pair = sse!(_mm_max_ps(v, hi));
            let odd = sse!(_mm_shuffle_ps::<0b01>(pair, pair));
            sse!(_mm_cvtss_f32(_mm_max_ss(pair, odd)))
        }
    }

    impl Mask4 {
        /// Mask with every lane set to `b`.
        #[inline]
        pub fn splat(b: bool) -> Self {
            if b {
                Mask4(all_ones())
            } else {
                Mask4(sse!(_mm_setzero_ps()))
            }
        }

        /// Lane-wise AND.
        #[inline]
        pub fn and(self, rhs: Self) -> Self {
            Mask4(sse!(_mm_and_ps(self.0, rhs.0)))
        }

        /// Lane-wise OR.
        #[inline]
        pub fn or(self, rhs: Self) -> Self {
            Mask4(sse!(_mm_or_ps(self.0, rhs.0)))
        }

        /// Lane-wise NOT.
        #[inline]
        pub fn not(self) -> Self {
            Mask4(sse!(_mm_andnot_ps(self.0, all_ones())))
        }

        /// One bit per lane, lane 0 in bit 0.
        #[inline]
        pub fn bitmask(self) -> u8 {
            (sse!(_mm_movemask_ps(self.0)) & 0xF) as u8
        }
    }
}

#[cfg(any(not(target_arch = "x86_64"), feature = "scalar-fallback"))]
mod backend {
    /// Four `f32` lanes in a plain array (scalar fallback backend).
    #[derive(Clone, Copy, Debug)]
    pub struct F32x4(pub(super) [f32; 4]);

    /// Lane mask for [`F32x4`], one bit per lane (lane 0 in bit 0).
    #[derive(Clone, Copy, Debug)]
    pub struct Mask4(pub(super) u8);

    /// SSE `minps` semantics: second operand on unordered or equal.
    #[inline]
    fn min_sse(a: f32, b: f32) -> f32 {
        if a < b {
            a
        } else {
            b
        }
    }

    /// SSE `maxps` semantics: second operand on unordered or equal.
    #[inline]
    fn max_sse(a: f32, b: f32) -> f32 {
        if a > b {
            a
        } else {
            b
        }
    }

    impl F32x4 {
        /// Broadcasts `v` to all lanes.
        #[inline]
        pub fn splat(v: f32) -> Self {
            F32x4([v; 4])
        }

        /// Loads the four lanes from an array (`a[0]` is lane 0).
        #[inline]
        pub fn from_array(a: [f32; 4]) -> Self {
            F32x4(a)
        }

        /// Stores the four lanes to an array (`a[0]` is lane 0).
        #[inline]
        pub fn to_array(self) -> [f32; 4] {
            self.0
        }

        /// Lane-wise `self + rhs`.
        #[inline]
        pub fn add(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| self.0[i] + rhs.0[i]))
        }

        /// Lane-wise `self - rhs`.
        #[inline]
        pub fn sub(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| self.0[i] - rhs.0[i]))
        }

        /// Lane-wise `self * rhs`.
        #[inline]
        pub fn mul(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| self.0[i] * rhs.0[i]))
        }

        /// Lane-wise `self * b + c`, rounded twice (**not** fused; see
        /// module docs).
        #[inline]
        pub fn mul_add(self, b: Self, c: Self) -> Self {
            F32x4(core::array::from_fn(|i| self.0[i] * b.0[i] + c.0[i]))
        }

        /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on
        /// `0/0`).
        #[inline]
        pub fn div(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| self.0[i] / rhs.0[i]))
        }

        /// Lane-wise absolute value (clears the sign bit; `|NaN|` keeps
        /// its payload).
        #[inline]
        pub fn abs(self) -> Self {
            F32x4(core::array::from_fn(|i| {
                f32::from_bits(self.0[i].to_bits() & 0x7fff_ffff)
            }))
        }

        /// Lane-wise minimum with SSE `minps` semantics (see the SSE
        /// backend's docs).
        #[inline]
        pub fn min(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| min_sse(self.0[i], rhs.0[i])))
        }

        /// Lane-wise maximum with SSE `maxps` semantics.
        #[inline]
        pub fn max(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| max_sse(self.0[i], rhs.0[i])))
        }

        /// Lane-wise `self < rhs` (false on NaN).
        #[inline]
        pub fn simd_lt(self, rhs: Self) -> Mask4 {
            let mut m = 0u8;
            for i in 0..4 {
                m |= u8::from(self.0[i] < rhs.0[i]) << i;
            }
            Mask4(m)
        }

        /// Lane-wise `self <= rhs` (false on NaN).
        #[inline]
        pub fn simd_le(self, rhs: Self) -> Mask4 {
            let mut m = 0u8;
            for i in 0..4 {
                m |= u8::from(self.0[i] <= rhs.0[i]) << i;
            }
            Mask4(m)
        }

        /// Lane-wise `self >= rhs` (false on NaN).
        #[inline]
        pub fn simd_ge(self, rhs: Self) -> Mask4 {
            let mut m = 0u8;
            for i in 0..4 {
                m |= u8::from(self.0[i] >= rhs.0[i]) << i;
            }
            Mask4(m)
        }

        /// Picks `self` where `mask` is true, `other` where false.
        #[inline]
        pub fn select(self, mask: Mask4, other: Self) -> Self {
            F32x4(core::array::from_fn(|i| {
                if mask.0 & (1 << i) != 0 {
                    self.0[i]
                } else {
                    other.0[i]
                }
            }))
        }

        /// Horizontal sum with the fixed association
        /// `(a[0] + a[2]) + (a[1] + a[3])` (matches the SSE backend).
        #[inline]
        pub fn reduce_sum(self) -> f32 {
            (self.0[0] + self.0[2]) + (self.0[1] + self.0[3])
        }

        /// Horizontal minimum (SSE `minps` NaN semantics per step).
        #[inline]
        pub fn reduce_min(self) -> f32 {
            min_sse(min_sse(self.0[0], self.0[2]), min_sse(self.0[1], self.0[3]))
        }

        /// Horizontal maximum (SSE `maxps` NaN semantics per step).
        #[inline]
        pub fn reduce_max(self) -> f32 {
            max_sse(max_sse(self.0[0], self.0[2]), max_sse(self.0[1], self.0[3]))
        }
    }

    impl Mask4 {
        /// Mask with every lane set to `b`.
        #[inline]
        pub fn splat(b: bool) -> Self {
            Mask4(if b { 0xF } else { 0 })
        }

        /// Lane-wise AND.
        #[inline]
        pub fn and(self, rhs: Self) -> Self {
            Mask4(self.0 & rhs.0)
        }

        /// Lane-wise OR.
        #[inline]
        pub fn or(self, rhs: Self) -> Self {
            Mask4(self.0 | rhs.0)
        }

        /// Lane-wise NOT.
        #[inline]
        pub fn not(self) -> Self {
            Mask4(!self.0 & 0xF)
        }

        /// One bit per lane, lane 0 in bit 0.
        #[inline]
        pub fn bitmask(self) -> u8 {
            self.0
        }
    }
}

pub use backend::{F32x4, Mask4};

impl Mask4 {
    /// `true` if any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// `true` if every lane is set.
    #[inline]
    pub fn all(self) -> bool {
        self.bitmask() == 0xF
    }
}

/// Eight `f32` lanes as a pair of [`F32x4`] — the ray-packet width used
/// by `surfos-geometry`'s packet traversal.
#[derive(Clone, Copy, Debug)]
pub struct F32x8(F32x4, F32x4);

/// Lane mask for [`F32x8`].
#[derive(Clone, Copy, Debug)]
pub struct Mask8(Mask4, Mask4);

impl F32x8 {
    /// Number of lanes.
    pub const LANES: usize = 8;

    /// Broadcasts `v` to all lanes.
    #[inline]
    pub fn splat(v: f32) -> Self {
        F32x8(F32x4::splat(v), F32x4::splat(v))
    }

    /// Loads the eight lanes from an array (`a[0]` is lane 0).
    #[inline]
    pub fn from_array(a: [f32; 8]) -> Self {
        F32x8(
            F32x4::from_array([a[0], a[1], a[2], a[3]]),
            F32x4::from_array([a[4], a[5], a[6], a[7]]),
        )
    }

    /// Stores the eight lanes to an array (`a[0]` is lane 0).
    #[inline]
    pub fn to_array(self) -> [f32; 8] {
        let lo = self.0.to_array();
        let hi = self.1.to_array();
        [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]]
    }

    /// Lane-wise `self + rhs`.
    #[inline]
    pub fn add(self, rhs: Self) -> Self {
        F32x8(self.0.add(rhs.0), self.1.add(rhs.1))
    }

    /// Lane-wise `self - rhs`.
    #[inline]
    pub fn sub(self, rhs: Self) -> Self {
        F32x8(self.0.sub(rhs.0), self.1.sub(rhs.1))
    }

    /// Lane-wise `self * rhs`.
    #[inline]
    pub fn mul(self, rhs: Self) -> Self {
        F32x8(self.0.mul(rhs.0), self.1.mul(rhs.1))
    }

    /// Lane-wise `self * b + c`, rounded twice (**not** fused).
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        F32x8(self.0.mul_add(b.0, c.0), self.1.mul_add(b.1, c.1))
    }

    /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on `0/0`).
    #[inline]
    pub fn div(self, rhs: Self) -> Self {
        F32x8(self.0.div(rhs.0), self.1.div(rhs.1))
    }

    /// Lane-wise absolute value (clears the sign bit; `|NaN|` keeps its payload).
    #[inline]
    pub fn abs(self) -> Self {
        F32x8(self.0.abs(), self.1.abs())
    }

    /// Lane-wise minimum with SSE `minps` semantics.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        F32x8(self.0.min(rhs.0), self.1.min(rhs.1))
    }

    /// Lane-wise maximum with SSE `maxps` semantics.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        F32x8(self.0.max(rhs.0), self.1.max(rhs.1))
    }

    /// Lane-wise `self < rhs` (false on NaN).
    #[inline]
    pub fn simd_lt(self, rhs: Self) -> Mask8 {
        Mask8(self.0.simd_lt(rhs.0), self.1.simd_lt(rhs.1))
    }

    /// Lane-wise `self <= rhs` (false on NaN).
    #[inline]
    pub fn simd_le(self, rhs: Self) -> Mask8 {
        Mask8(self.0.simd_le(rhs.0), self.1.simd_le(rhs.1))
    }

    /// Lane-wise `self >= rhs` (false on NaN).
    #[inline]
    pub fn simd_ge(self, rhs: Self) -> Mask8 {
        Mask8(self.0.simd_ge(rhs.0), self.1.simd_ge(rhs.1))
    }

    /// Picks `self` where `mask` is true, `other` where false.
    #[inline]
    pub fn select(self, mask: Mask8, other: Self) -> Self {
        F32x8(
            self.0.select(mask.0, other.0),
            self.1.select(mask.1, other.1),
        )
    }

    /// Horizontal sum: `lo.reduce_sum() + hi.reduce_sum()`.
    #[inline]
    pub fn reduce_sum(self) -> f32 {
        self.0.reduce_sum() + self.1.reduce_sum()
    }

    /// Horizontal minimum (SSE `minps` NaN semantics per step).
    #[inline]
    pub fn reduce_min(self) -> f32 {
        let a = self.0.reduce_min();
        let b = self.1.reduce_min();
        if a < b {
            a
        } else {
            b
        }
    }

    /// Horizontal maximum (SSE `maxps` NaN semantics per step).
    #[inline]
    pub fn reduce_max(self) -> f32 {
        let a = self.0.reduce_max();
        let b = self.1.reduce_max();
        if a > b {
            a
        } else {
            b
        }
    }
}

impl Mask8 {
    /// Mask with every lane set to `b`.
    #[inline]
    pub fn splat(b: bool) -> Self {
        Mask8(Mask4::splat(b), Mask4::splat(b))
    }

    /// Mask with the first `n` lanes set (`n` is clamped to 8) — the
    /// shape of a partially filled remainder packet.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        let lanes = F32x8::from_array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        lanes.simd_lt(F32x8::splat(n.min(8) as f32))
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(self, rhs: Self) -> Self {
        Mask8(self.0.and(rhs.0), self.1.and(rhs.1))
    }

    /// Lane-wise OR.
    #[inline]
    pub fn or(self, rhs: Self) -> Self {
        Mask8(self.0.or(rhs.0), self.1.or(rhs.1))
    }

    /// Lane-wise NOT.
    #[inline]
    pub fn not(self) -> Self {
        Mask8(self.0.not(), self.1.not())
    }

    /// One bit per lane, lane 0 in bit 0.
    #[inline]
    pub fn bitmask(self) -> u8 {
        self.0.bitmask() | (self.1.bitmask() << 4)
    }

    /// `true` if any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// `true` if every lane is set.
    #[inline]
    pub fn all(self) -> bool {
        self.bitmask() == 0xFF
    }
}

pub mod phasor {
    //! Structure-of-arrays complex phasor kernels for the sweep hot loop.
    //!
    //! `ChannelTrace::sweep_evaluate` advances one unit phasor per path /
    //! per element across a uniform frequency grid: at every probe it
    //! sums the current values and multiplies each by a fixed per-step
    //! rotation. The AoS form (`Vec<Complex>`) defeats autovectorization
    //! because the complex-sum reduction carries a loop dependency LLVM
    //! will not reassociate for floats. These kernels keep the phasors in
    //! SoA `f64` slices and reassociate the reduction explicitly into
    //! [`ACC_LANES`] partial sums.
    //!
    //! **Equivalence policy**: each phasor's *rotation* is bit-identical
    //! to the scalar `Complex` multiply (`re·dre − im·dim`,
    //! `re·dim + im·dre`, same operation order). Only the *sum* is
    //! reassociated, so a sum over `n` values deviates from the
    //! left-to-right scalar sum by at most `O(n · ε · Σ|vᵢ|)` absolute —
    //! with unit phasors that is `≲ n²·2⁻⁵²`, orders of magnitude below
    //! the ~1e-11 relative deviation `sweep_evaluate` already documents
    //! against point-wise evaluation.

    /// Number of independent accumulators used by the reassociated sums.
    pub const ACC_LANES: usize = 4;

    /// Sums the phasors `(re[i], im[i])`, each weighted by the *real*
    /// scale `w[i]`, then advances every phasor by its per-step rotation
    /// `(dre[i], dim[i])`. Returns the (reassociated) weighted sum.
    ///
    /// All slices must have equal length.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    pub fn weighted_sum_and_advance(
        re: &mut [f64],
        im: &mut [f64],
        dre: &[f64],
        dim: &[f64],
        w: &[f64],
    ) -> (f64, f64) {
        let n = re.len();
        assert!(im.len() == n && dre.len() == n && dim.len() == n && w.len() == n);
        let mut sr = [0.0f64; ACC_LANES];
        let mut si = [0.0f64; ACC_LANES];
        for i in 0..n {
            let (r, im_i) = (re[i], im[i]);
            sr[i % ACC_LANES] += r * w[i];
            si[i % ACC_LANES] += im_i * w[i];
            re[i] = r * dre[i] - im_i * dim[i];
            im[i] = r * dim[i] + im_i * dre[i];
        }
        (
            (sr[0] + sr[2]) + (sr[1] + sr[3]),
            (si[0] + si[2]) + (si[1] + si[3]),
        )
    }

    /// Sums the phasors `(re[i], im[i])` and advances each by its
    /// per-step rotation; the unweighted special case of
    /// [`weighted_sum_and_advance`].
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    pub fn sum_and_advance(re: &mut [f64], im: &mut [f64], dre: &[f64], dim: &[f64]) -> (f64, f64) {
        let n = re.len();
        assert!(im.len() == n && dre.len() == n && dim.len() == n);
        let mut sr = [0.0f64; ACC_LANES];
        let mut si = [0.0f64; ACC_LANES];
        for i in 0..n {
            let (r, im_i) = (re[i], im[i]);
            sr[i % ACC_LANES] += r;
            si[i % ACC_LANES] += im_i;
            re[i] = r * dre[i] - im_i * dim[i];
            im[i] = r * dim[i] + im_i * dre[i];
        }
        (
            (sr[0] + sr[2]) + (sr[1] + sr[3]),
            (si[0] + si[2]) + (si[1] + si[3]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f32; 8] = [1.0, -2.5, 3.25, 0.0, 7.5, -0.125, 42.0, 1e-3];
    const B: [f32; 8] = [0.5, 2.5, -3.25, 1.0, -7.5, 0.25, 41.0, 2e-3];

    #[test]
    fn roundtrip_and_splat() {
        assert_eq!(F32x8::from_array(A).to_array(), A);
        assert_eq!(F32x8::splat(2.5).to_array(), [2.5; 8]);
        assert_eq!(
            F32x4::from_array([1.0, 2.0, 3.0, 4.0]).to_array(),
            [1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn lanewise_arithmetic() {
        let a = F32x8::from_array(A);
        let b = F32x8::from_array(B);
        for i in 0..8 {
            assert_eq!(a.add(b).to_array()[i], A[i] + B[i]);
            assert_eq!(a.sub(b).to_array()[i], A[i] - B[i]);
            assert_eq!(a.mul(b).to_array()[i], A[i] * B[i]);
            assert_eq!(a.mul_add(b, a).to_array()[i], A[i] * B[i] + A[i]);
        }
    }

    #[test]
    fn div_and_abs_are_lanewise_ieee() {
        let a = F32x8::from_array(A);
        let b = F32x8::from_array(B);
        for i in 0..8 {
            assert_eq!(a.div(b).to_array()[i], A[i] / B[i]);
            assert_eq!(a.abs().to_array()[i], A[i].abs());
        }
        // Division by zero and 0/0 follow IEEE semantics.
        let num = F32x4::from_array([1.0, -1.0, 0.0, 4.0]);
        let den = F32x4::from_array([0.0, 0.0, 0.0, 2.0]);
        let q = num.div(den).to_array();
        assert_eq!(q[0], f32::INFINITY);
        assert_eq!(q[1], f32::NEG_INFINITY);
        assert!(q[2].is_nan());
        assert_eq!(q[3], 2.0);
        // abs clears the sign bit, including on -0.0 and NaN.
        let x = F32x4::from_array([-0.0, -3.5, f32::NEG_INFINITY, f32::NAN]);
        let ax = x.abs().to_array();
        assert_eq!(ax[0].to_bits(), 0.0f32.to_bits());
        assert_eq!(ax[1], 3.5);
        assert_eq!(ax[2], f32::INFINITY);
        assert!(ax[3].is_nan());
    }

    #[test]
    fn min_max_follow_sse_operand_order_on_nan() {
        let nan = f32::NAN;
        let a = F32x4::from_array([nan, 1.0, 2.0, nan]);
        let b = F32x4::from_array([5.0, nan, 1.0, nan]);
        let min = a.min(b).to_array();
        let max = a.max(b).to_array();
        // Unordered lanes take the second operand.
        assert_eq!(min[0], 5.0);
        assert!(min[1].is_nan());
        assert_eq!(min[2], 1.0);
        assert!(min[3].is_nan());
        assert_eq!(max[0], 5.0);
        assert!(max[1].is_nan());
        assert_eq!(max[2], 2.0);
        assert!(max[3].is_nan());
    }

    #[test]
    fn compares_and_masks() {
        let a = F32x8::from_array(A);
        let b = F32x8::from_array(B);
        let lt = a.simd_lt(b);
        let le = a.simd_le(b);
        let ge = a.simd_ge(b);
        for i in 0..8 {
            assert_eq!(lt.bitmask() & (1 << i) != 0, A[i] < B[i], "lane {i}");
            assert_eq!(le.bitmask() & (1 << i) != 0, A[i] <= B[i], "lane {i}");
            assert_eq!(ge.bitmask() & (1 << i) != 0, A[i] >= B[i], "lane {i}");
        }
        assert_eq!(lt.or(ge).bitmask(), 0xFF); // no NaNs in A/B
        assert_eq!(lt.and(lt.not()).bitmask(), 0);
        assert!(lt.or(ge).all());
        assert!(!Mask8::splat(false).any());
        assert!(Mask8::splat(true).all());
    }

    #[test]
    fn compares_are_false_on_nan() {
        let a = F32x4::from_array([f32::NAN, 0.0, f32::NAN, 1.0]);
        let b = F32x4::splat(0.0);
        assert_eq!(a.simd_lt(b).bitmask(), 0b0000);
        assert_eq!(a.simd_le(b).bitmask(), 0b0010);
        assert_eq!(a.simd_ge(b).bitmask(), 0b1010);
    }

    #[test]
    fn select_blends_per_lane() {
        let a = F32x8::from_array(A);
        let b = F32x8::from_array(B);
        let m = a.simd_lt(b);
        let out = a.select(m, b).to_array();
        for i in 0..8 {
            assert_eq!(out[i], if A[i] < B[i] { A[i] } else { B[i] });
        }
    }

    #[test]
    fn first_n_masks_lead_lanes() {
        assert_eq!(Mask8::first_n(0).bitmask(), 0b0000_0000);
        assert_eq!(Mask8::first_n(1).bitmask(), 0b0000_0001);
        assert_eq!(Mask8::first_n(5).bitmask(), 0b0001_1111);
        assert_eq!(Mask8::first_n(8).bitmask(), 0b1111_1111);
        assert_eq!(Mask8::first_n(99).bitmask(), 0b1111_1111);
    }

    #[test]
    fn reductions_match_documented_association() {
        let a = F32x4::from_array([1.0, 1e-8, -1.0, 2.0]);
        assert_eq!(a.reduce_sum(), (1.0 + -1.0) + (1e-8 + 2.0));
        assert_eq!(a.reduce_min(), -1.0);
        assert_eq!(a.reduce_max(), 2.0);
        let b = F32x8::from_array(A);
        let arr = b.to_array();
        let lo = (arr[0] + arr[2]) + (arr[1] + arr[3]);
        let hi = (arr[4] + arr[6]) + (arr[5] + arr[7]);
        assert_eq!(b.reduce_sum(), lo + hi);
        assert_eq!(b.reduce_min(), -2.5);
        assert_eq!(b.reduce_max(), 42.0);
    }

    #[test]
    fn phasor_rotation_matches_complex_multiply() {
        use crate::complex::Complex;
        let n = 13; // deliberately not a multiple of ACC_LANES
        let mut vals: Vec<Complex> = (0..n)
            .map(|i| Complex::from_polar(1.0, 0.37 * i as f64))
            .collect();
        let deltas: Vec<Complex> = (0..n)
            .map(|i| Complex::from_polar(1.0, -0.11 * i as f64))
            .collect();
        let mut re: Vec<f64> = vals.iter().map(|c| c.re).collect();
        let mut im: Vec<f64> = vals.iter().map(|c| c.im).collect();
        let dre: Vec<f64> = deltas.iter().map(|c| c.re).collect();
        let dim: Vec<f64> = deltas.iter().map(|c| c.im).collect();
        for _ in 0..50 {
            let scalar_sum: Complex = vals.iter().copied().fold(Complex::ZERO, |a, c| a + c);
            let (sr, si) = phasor::sum_and_advance(&mut re, &mut im, &dre, &dim);
            // Reassociated sum: tiny absolute deviation, not bit equality.
            assert!((sr - scalar_sum.re).abs() < 1e-12);
            assert!((si - scalar_sum.im).abs() < 1e-12);
            for (v, d) in vals.iter_mut().zip(&deltas) {
                *v *= *d;
            }
            // Rotation itself is pinned bit-identically.
            for i in 0..n {
                assert_eq!(re[i], vals[i].re, "re lane {i}");
                assert_eq!(im[i], vals[i].im, "im lane {i}");
            }
        }
    }

    #[test]
    fn weighted_phasor_sum_applies_real_scales() {
        let mut re = vec![1.0, 0.0, -1.0];
        let mut im = vec![0.0, 1.0, 0.0];
        let dre = vec![1.0; 3];
        let dim = vec![0.0; 3];
        let w = vec![2.0, 3.0, 5.0];
        let (sr, si) = phasor::weighted_sum_and_advance(&mut re, &mut im, &dre, &dim, &w);
        assert_eq!(sr, (1.0 * 2.0 - 1.0 * 5.0) + 0.0);
        assert_eq!(si, 3.0);
        // Identity rotation leaves the phasors unchanged.
        assert_eq!(re, vec![1.0, 0.0, -1.0]);
        assert_eq!(im, vec![0.0, 1.0, 0.0]);
    }
}
