//! Physical constants and power / decibel unit conversions.
//!
//! SurfOS follows RF convention: link budgets are computed in dB, physics in
//! linear units. These helpers are the single place the conversions live so
//! a factor-of-10 bug cannot hide in two different call sites.

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Boltzmann constant, joules per kelvin.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Standard noise reference temperature, kelvin.
pub const T0_KELVIN: f64 = 290.0;

/// Converts a decibel value to a linear power ratio.
///
/// `db_to_linear(3.0)` is approximately `2.0`.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to decibels.
///
/// Ratios that are zero or negative map to `f64::NEG_INFINITY`, matching RF
/// convention (no power, no signal).
#[inline]
pub fn linear_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * ratio.log10()
    }
}

/// Converts a power in dBm to watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    db_to_linear(dbm) * 1e-3
}

/// Converts a power in watts to dBm.
#[inline]
pub fn watts_to_dbm(watts: f64) -> f64 {
    linear_to_db(watts / 1e-3)
}

/// Converts a field *amplitude* ratio to decibels (20·log10).
#[inline]
pub fn amplitude_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * ratio.log10()
    }
}

/// Converts decibels to a field *amplitude* ratio (inverse of 20·log10).
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn db_linear_known_points() {
        assert!((db_to_linear(0.0) - 1.0).abs() < 1e-12);
        assert!((db_to_linear(10.0) - 10.0).abs() < 1e-9);
        assert!((db_to_linear(3.0) - 1.995).abs() < 0.01);
        assert!((linear_to_db(100.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_watts_known_points() {
        assert!((dbm_to_watts(0.0) - 1e-3).abs() < 1e-15);
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-9);
        assert!((watts_to_dbm(1e-3) - 0.0).abs() < 1e-9);
        assert!((watts_to_dbm(2.0) - 33.0103).abs() < 1e-3);
    }

    #[test]
    fn zero_power_is_neg_infinity() {
        assert_eq!(linear_to_db(0.0), f64::NEG_INFINITY);
        assert_eq!(linear_to_db(-1.0), f64::NEG_INFINITY);
        assert_eq!(amplitude_to_db(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn amplitude_db_is_twice_power_db() {
        let r = 3.7;
        assert!((amplitude_to_db(r) - 2.0 * linear_to_db(r)).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_db_roundtrip(db in -200.0..200.0f64) {
            let back = linear_to_db(db_to_linear(db));
            prop_assert!((back - db).abs() < 1e-9);
        }

        #[test]
        fn prop_dbm_roundtrip(dbm in -200.0..60.0f64) {
            let back = watts_to_dbm(dbm_to_watts(dbm));
            prop_assert!((back - dbm).abs() < 1e-9);
        }

        #[test]
        fn prop_amplitude_roundtrip(db in -100.0..100.0f64) {
            let back = amplitude_to_db(db_to_amplitude(db));
            prop_assert!((back - db).abs() < 1e-9);
        }
    }
}
