//! ULP (units-in-the-last-place) distance between floats.
//!
//! The SIMD↔scalar equivalence tests pin most results bit-identically,
//! but wherever a kernel *reassociates* a floating-point reduction (the
//! SoA phasor sums in [`crate::simd::phasor`]) bit equality is the wrong
//! contract — the right one is a small, documented ULP bound. Comparing
//! by ULPs rather than an absolute epsilon makes the bound scale with
//! the magnitude of the values under test.
//!
//! The distance is measured on the monotone integer number line obtained
//! by mapping each float's bit pattern through a sign fold: adjacent
//! representable floats are 1 ULP apart, `+0.0` and `-0.0` are 0 apart,
//! and the distance is saturating. `NaN` compares infinitely far from
//! everything (including itself) so a NaN never slips through a
//! tolerance check.

/// Maps an `f64` onto a monotone signed-integer line: negative floats
/// map below zero, positives above, and ordering is preserved.
#[inline]
fn monotone_bits_f64(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    if b < 0 {
        i64::MIN.wrapping_add(1).wrapping_sub(b).wrapping_sub(1)
    } else {
        b
    }
}

/// Maps an `f32` onto a monotone signed-integer line (see
/// [`monotone_bits_f64`]).
#[inline]
fn monotone_bits_f32(x: f32) -> i32 {
    let b = x.to_bits() as i32;
    if b < 0 {
        i32::MIN.wrapping_add(1).wrapping_sub(b).wrapping_sub(1)
    } else {
        b
    }
}

/// The distance between two `f64` values in units-in-the-last-place,
/// saturating at `u64::MAX`.
///
/// `0` means bit-identical up to the sign of zero; `1` means adjacent
/// representable values. If either input is `NaN` the distance is
/// `u64::MAX`.
///
/// ```
/// use surfos_em::ulp::ulp_distance_f64;
///
/// assert_eq!(ulp_distance_f64(1.0, 1.0), 0);
/// assert_eq!(ulp_distance_f64(1.0, 1.0 + f64::EPSILON), 1);
/// assert_eq!(ulp_distance_f64(0.0, -0.0), 0);
/// ```
pub fn ulp_distance_f64(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    let (ia, ib) = (monotone_bits_f64(a), monotone_bits_f64(b));
    ia.abs_diff(ib)
}

/// The distance between two `f32` values in units-in-the-last-place,
/// saturating at `u32::MAX`. See [`ulp_distance_f64`].
pub fn ulp_distance_f32(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    let (ia, ib) = (monotone_bits_f32(a), monotone_bits_f32(b));
    ia.abs_diff(ib)
}

/// `true` when `a` and `b` are within `max_ulps` of each other per
/// [`ulp_distance_f64`]. `NaN` is never within any bound.
pub fn approx_eq_ulps_f64(a: f64, b: f64, max_ulps: u64) -> bool {
    ulp_distance_f64(a, b) <= max_ulps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_are_zero_ulps_apart() {
        for v in [0.0, 1.0, -1.0, 1e-300, -1e300, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(ulp_distance_f64(v, v), 0, "{v}");
        }
        assert_eq!(ulp_distance_f64(0.0, -0.0), 0);
        assert_eq!(ulp_distance_f32(0.0, -0.0), 0);
    }

    #[test]
    fn adjacent_values_are_one_ulp_apart() {
        let cases = [1.0, -1.0, 1e-10, 1e10, f64::MIN_POSITIVE];
        for v in cases {
            let step = if v > 0.0 { 1u64 } else { u64::MAX };
            let next = f64::from_bits(v.to_bits().wrapping_add(step));
            assert_eq!(ulp_distance_f64(v, next), 1, "{v}");
        }
        assert_eq!(ulp_distance_f64(1.0, 1.0 + f64::EPSILON), 1);
        assert_eq!(ulp_distance_f32(1.0, 1.0 + f32::EPSILON), 1);
    }

    #[test]
    fn distance_crosses_zero_monotonically() {
        // Smallest positive and smallest negative subnormal are 2 apart
        // on the folded line (one step each down to ±0).
        let tiny = f64::from_bits(1);
        let neg_tiny = f64::from_bits(1 | (1 << 63));
        assert_eq!(ulp_distance_f64(tiny, 0.0), 1);
        assert_eq!(ulp_distance_f64(neg_tiny, 0.0), 1);
        assert_eq!(ulp_distance_f64(tiny, neg_tiny), 2);
        assert_eq!(ulp_distance_f64(1.0, -1.0), 2 * ulp_distance_f64(1.0, 0.0));
    }

    #[test]
    fn nan_is_never_close() {
        assert_eq!(ulp_distance_f64(f64::NAN, f64::NAN), u64::MAX);
        assert_eq!(ulp_distance_f64(f64::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance_f32(f32::NAN, 1.0), u32::MAX);
        assert!(!approx_eq_ulps_f64(f64::NAN, f64::NAN, u64::MAX - 1));
    }

    #[test]
    fn approx_eq_bounds_are_inclusive() {
        let b = 1.0 + f64::EPSILON;
        assert!(approx_eq_ulps_f64(1.0, b, 1));
        assert!(!approx_eq_ulps_f64(1.0, b, 0));
        assert!(approx_eq_ulps_f64(1.0, 1.0, 0));
    }

    #[test]
    fn infinities_behave_like_extreme_finite_neighbours() {
        assert_eq!(ulp_distance_f64(f64::MAX, f64::INFINITY), 1);
        assert!(ulp_distance_f64(f64::INFINITY, f64::NEG_INFINITY) > 1 << 62);
    }
}
