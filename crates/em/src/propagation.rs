//! Free-space propagation and surface scattering link budgets.
//!
//! SurfOS computes narrowband complex channel gains path-by-path. The two
//! primitives are:
//!
//! - [`friis_amplitude`]: the complex gain of a free-space segment, and
//! - [`element_scatter_amplitude`]: the gain of a Tx → surface-element → Rx
//!   bounce, which is the building block of every surface-aided path.
//!
//! Both return *amplitude* (field) gains; power is the squared magnitude.

use crate::complex::Complex;
use std::f64::consts::PI;

/// The complex amplitude gain of a free-space segment of length `dist_m`
/// at wavelength `lambda_m`, including the propagation phase `e^{-jkd}`:
///
/// `g = (λ / 4πd) · e^{-j 2πd/λ}`
///
/// The magnitude squared is the familiar Friis free-space power loss for
/// isotropic ends; antenna gains are applied by callers via patterns.
///
/// # Panics
/// Panics if `dist_m` or `lambda_m` is not strictly positive.
pub fn friis_amplitude(dist_m: f64, lambda_m: f64) -> Complex {
    assert!(dist_m > 0.0, "distance must be positive");
    assert!(lambda_m > 0.0, "wavelength must be positive");
    let mag = lambda_m / (4.0 * PI * dist_m);
    let phase = -2.0 * PI * dist_m / lambda_m;
    Complex::from_polar(mag, phase)
}

/// The complex amplitude gain of a single surface-element bounce:
/// transmitter at distance `d1`, receiver at distance `d2`, element
/// effective aperture `element_area_m2`, element amplitude efficiency
/// `efficiency` (0..=1), and incident/departure pattern gains already
/// folded in by the caller.
///
/// Physics: an element of area `A` intercepts power density `Pt/(4π d1²)`
/// and re-radiates it with aperture gain `4πA/λ²`. The resulting two-hop
/// amplitude gain is
///
/// `g = (A · efficiency) / (4π · d1 · d2) · e^{-jk(d1+d2)}`
///
/// which reproduces the classic RIS "multiplicative path loss" — and why
/// many elements are needed to compete with a direct link.
///
/// # Panics
/// Panics if distances/area are not positive or efficiency outside `[0, 1]`.
pub fn element_scatter_amplitude(
    d1_m: f64,
    d2_m: f64,
    lambda_m: f64,
    element_area_m2: f64,
    efficiency: f64,
) -> Complex {
    assert!(d1_m > 0.0 && d2_m > 0.0, "distances must be positive");
    assert!(lambda_m > 0.0, "wavelength must be positive");
    assert!(element_area_m2 > 0.0, "element area must be positive");
    assert!(
        (0.0..=1.0).contains(&efficiency),
        "efficiency must be within [0, 1]"
    );
    let mag = element_area_m2 * efficiency / (4.0 * PI * d1_m * d2_m);
    let phase = -2.0 * PI * (d1_m + d2_m) / lambda_m;
    Complex::from_polar(mag, phase)
}

/// Free-space path loss in dB (positive number) over `dist_m` at `lambda_m`.
pub fn fspl_db(dist_m: f64, lambda_m: f64) -> f64 {
    -crate::units::amplitude_to_db(friis_amplitude(dist_m, lambda_m).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn friis_known_value() {
        // 2.4 GHz (λ=0.125 m), 1 m: FSPL ≈ 40.05 dB
        let lambda = 0.125;
        let loss = fspl_db(1.0, lambda);
        assert!((loss - 40.05).abs() < 0.2, "loss={loss}");
    }

    #[test]
    fn friis_inverse_square() {
        let g1 = friis_amplitude(1.0, 0.01).abs();
        let g2 = friis_amplitude(2.0, 0.01).abs();
        assert!((g1 / g2 - 2.0).abs() < 1e-9); // amplitude halves => power quarters
    }

    #[test]
    fn friis_phase_matches_distance() {
        let lambda = 0.01;
        // one full wavelength further => same phase
        let a = friis_amplitude(1.0, lambda);
        let b = friis_amplitude(1.0 + lambda, lambda);
        assert!((a.arg() - b.arg()).abs() < 1e-6);
    }

    #[test]
    fn scatter_multiplicative_pathloss() {
        // doubling either hop distance halves the amplitude
        let base = element_scatter_amplitude(2.0, 3.0, 0.01, 1e-4, 1.0).abs();
        let far1 = element_scatter_amplitude(4.0, 3.0, 0.01, 1e-4, 1.0).abs();
        let far2 = element_scatter_amplitude(2.0, 6.0, 0.01, 1e-4, 1.0).abs();
        assert!((base / far1 - 2.0).abs() < 1e-9);
        assert!((base / far2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scatter_phase_is_total_path() {
        let lambda = 0.005;
        let a = element_scatter_amplitude(1.0, 2.0, lambda, 1e-5, 0.8);
        let want = crate::phase::wrap_phase_signed(-2.0 * PI * 3.0 / lambda);
        assert!((crate::phase::wrap_phase_signed(a.arg()) - want).abs() < 1e-6);
    }

    #[test]
    fn zero_efficiency_kills_path() {
        let a = element_scatter_amplitude(1.0, 1.0, 0.01, 1e-4, 0.0);
        assert_eq!(a.abs(), 0.0);
    }

    #[test]
    fn surface_beats_nothing_but_not_direct_per_element() {
        // A single λ/2-pitch element at 60 GHz cannot outgain the direct
        // path of the same total length (the classic RIS result).
        let lambda = 0.005;
        let area = (lambda / 2.0) * (lambda / 2.0);
        let direct = friis_amplitude(5.0, lambda).abs();
        let bounced = element_scatter_amplitude(2.5, 2.5, lambda, area, 1.0).abs();
        assert!(bounced < direct);
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn negative_distance_rejected() {
        let _ = friis_amplitude(-1.0, 0.01);
    }

    #[test]
    #[should_panic(expected = "efficiency must be within")]
    fn efficiency_out_of_range_rejected() {
        let _ = element_scatter_amplitude(1.0, 1.0, 0.01, 1e-4, 1.5);
    }

    proptest! {
        #[test]
        fn prop_friis_monotone_in_distance(
            d1 in 0.1..100.0f64, scale in 1.01..10.0f64, lambda in 0.001..0.3f64
        ) {
            let near = friis_amplitude(d1, lambda).abs();
            let far = friis_amplitude(d1 * scale, lambda).abs();
            prop_assert!(far < near);
        }

        #[test]
        fn prop_scatter_symmetric_in_hops(
            d1 in 0.1..50.0f64, d2 in 0.1..50.0f64, lambda in 0.001..0.3f64
        ) {
            let a = element_scatter_amplitude(d1, d2, lambda, 1e-4, 0.9);
            let b = element_scatter_amplitude(d2, d1, lambda, 1e-4, 0.9);
            prop_assert!((a - b).abs() < 1e-15 + 1e-9 * a.abs());
        }
    }
}
