//! Frequency bands and wavelengths.
//!
//! Surface hardware is narrowband relative to the spectrum SurfOS manages
//! (0.9 GHz – 60 GHz, Table 1 of the paper), so every channel computation is
//! tagged with a [`Band`]. Bands are also the unit of frequency-division
//! multiplexing in the orchestrator.

use crate::units::SPEED_OF_LIGHT;
use serde::{Deserialize, Serialize};

/// A contiguous frequency band: a centre frequency plus a bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Band {
    /// Centre frequency in hertz.
    pub center_hz: f64,
    /// Bandwidth in hertz.
    pub bandwidth_hz: f64,
}

impl Band {
    /// Creates a band from a centre frequency and bandwidth, both in hertz.
    ///
    /// # Panics
    /// Panics if the centre frequency or bandwidth is not strictly positive,
    /// or if the band would extend below 0 Hz.
    pub fn new(center_hz: f64, bandwidth_hz: f64) -> Self {
        assert!(center_hz > 0.0, "band centre must be positive");
        assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
        assert!(
            center_hz - bandwidth_hz / 2.0 >= 0.0,
            "band extends below 0 Hz"
        );
        Band {
            center_hz,
            bandwidth_hz,
        }
    }

    /// Carrier wavelength in metres at the band centre.
    #[inline]
    pub fn wavelength_m(&self) -> f64 {
        SPEED_OF_LIGHT / self.center_hz
    }

    /// Wavenumber `k = 2π/λ` in radians per metre at the band centre.
    #[inline]
    pub fn wavenumber(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.wavelength_m()
    }

    /// Lower band edge in hertz.
    #[inline]
    pub fn low_hz(&self) -> f64 {
        self.center_hz - self.bandwidth_hz / 2.0
    }

    /// Upper band edge in hertz.
    #[inline]
    pub fn high_hz(&self) -> f64 {
        self.center_hz + self.bandwidth_hz / 2.0
    }

    /// Returns `true` if this band overlaps `other` (shared spectrum).
    ///
    /// Overlap is what creates inter-service and inter-surface interference,
    /// so the orchestrator checks this before co-scheduling tasks.
    pub fn overlaps(&self, other: &Band) -> bool {
        self.low_hz() < other.high_hz() && other.low_hz() < self.high_hz()
    }

    /// Returns `true` if `freq_hz` falls inside the band (edges inclusive).
    pub fn contains(&self, freq_hz: f64) -> bool {
        freq_hz >= self.low_hz() && freq_hz <= self.high_hz()
    }
}

/// Well-known bands used by the surface designs in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NamedBand {
    /// 2.4 GHz ISM (Wi-Fi, LAIA / RFocus / LLAMA / LAVA).
    Ism2_4GHz,
    /// 3.5 GHz mid-band cellular.
    Cellular3_5GHz,
    /// 5 GHz Wi-Fi (ScatterMIMO, RFlens, Diffract).
    WiFi5GHz,
    /// 0.9 GHz sub-GHz ISM (low edge of Scrolls' range).
    Ism900MHz,
    /// 24 GHz mmWave (mmWall, NR-Surface).
    MmWave24GHz,
    /// 28 GHz 5G NR mmWave.
    MmWave28GHz,
    /// 30 GHz satellite Ka-band downlink region (PMSat).
    Ka30GHz,
    /// 60 GHz WiGig (MilliMirror, AutoMS).
    MmWave60GHz,
}

impl NamedBand {
    /// The concrete [`Band`] for this name.
    pub fn band(self) -> Band {
        match self {
            NamedBand::Ism900MHz => Band::new(0.915e9, 26e6),
            NamedBand::Ism2_4GHz => Band::new(2.44e9, 80e6),
            NamedBand::Cellular3_5GHz => Band::new(3.5e9, 100e6),
            NamedBand::WiFi5GHz => Band::new(5.25e9, 160e6),
            NamedBand::MmWave24GHz => Band::new(24.25e9, 400e6),
            NamedBand::MmWave28GHz => Band::new(28.0e9, 400e6),
            NamedBand::Ka30GHz => Band::new(30.0e9, 500e6),
            NamedBand::MmWave60GHz => Band::new(60.48e9, 2.16e9),
        }
    }

    /// All named bands, ordered by frequency.
    pub const ALL: [NamedBand; 8] = [
        NamedBand::Ism900MHz,
        NamedBand::Ism2_4GHz,
        NamedBand::Cellular3_5GHz,
        NamedBand::WiFi5GHz,
        NamedBand::MmWave24GHz,
        NamedBand::MmWave28GHz,
        NamedBand::Ka30GHz,
        NamedBand::MmWave60GHz,
    ];

    /// Returns `true` for bands in the mmWave range (≥ 24 GHz) where
    /// blockage dominates and surfaces act as range extenders.
    pub fn is_mmwave(self) -> bool {
        self.band().center_hz >= 24e9
    }
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} GHz (BW {:.1} MHz)",
            self.center_hz / 1e9,
            self.bandwidth_hz / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_known_values() {
        let b = NamedBand::Ism2_4GHz.band();
        assert!((b.wavelength_m() - 0.1229).abs() < 0.001);
        let mm = NamedBand::MmWave60GHz.band();
        assert!((mm.wavelength_m() - 0.004957).abs() < 0.0001);
    }

    #[test]
    fn wavenumber_matches_wavelength() {
        let b = NamedBand::WiFi5GHz.band();
        assert!((b.wavenumber() * b.wavelength_m() - 2.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn overlap_detection() {
        let a = Band::new(2.44e9, 80e6);
        let b = Band::new(2.46e9, 80e6);
        let c = Band::new(5.25e9, 160e6);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn adjacent_bands_do_not_overlap() {
        let a = Band::new(2.40e9, 20e6);
        let b = Band::new(2.42e9, 20e6); // edges touch at 2.41 GHz
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn contains_edges() {
        let b = Band::new(2.44e9, 80e6);
        assert!(b.contains(b.low_hz()));
        assert!(b.contains(b.high_hz()));
        assert!(b.contains(2.44e9));
        assert!(!b.contains(2.5e9));
    }

    #[test]
    fn named_bands_are_ordered_and_valid() {
        let mut last = 0.0;
        for nb in NamedBand::ALL {
            let b = nb.band();
            assert!(b.center_hz > last, "{nb:?} out of order");
            last = b.center_hz;
        }
    }

    #[test]
    fn mmwave_classification() {
        assert!(NamedBand::MmWave60GHz.is_mmwave());
        assert!(NamedBand::MmWave24GHz.is_mmwave());
        assert!(!NamedBand::WiFi5GHz.is_mmwave());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Band::new(1e9, 0.0);
    }

    #[test]
    #[should_panic(expected = "band extends below 0 Hz")]
    fn band_below_zero_rejected() {
        let _ = Band::new(1e6, 10e6);
    }
}
