//! Planar array geometry and steering vectors.
//!
//! A metasurface is a planar array of sub-wavelength elements. This module
//! provides the geometry (element positions in the surface's local frame)
//! and the steering vectors used for beamforming and AoA estimation.
//!
//! Local frame convention: the surface lies in the local x–y plane with its
//! normal along +z. Directions are unit vectors `[x, y, z]` in that frame;
//! `z > 0` is in front of the surface.

use crate::complex::Complex;
use serde::{Deserialize, Serialize};

/// The layout of a rectangular planar array: `rows × cols` elements with
/// uniform spacing, centred on the local origin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// Number of rows (along local y).
    pub rows: usize,
    /// Number of columns (along local x).
    pub cols: usize,
    /// Element pitch along x in metres.
    pub dx: f64,
    /// Element pitch along y in metres.
    pub dy: f64,
}

impl ArrayGeometry {
    /// Creates a geometry; all dimensions must be non-zero/positive.
    ///
    /// # Panics
    /// Panics on zero rows/cols or non-positive pitch.
    pub fn new(rows: usize, cols: usize, dx: f64, dy: f64) -> Self {
        assert!(rows > 0 && cols > 0, "array must have at least one element");
        assert!(dx > 0.0 && dy > 0.0, "element pitch must be positive");
        ArrayGeometry { rows, cols, dx, dy }
    }

    /// A square array with half-wavelength pitch — the standard design point.
    pub fn half_wavelength(rows: usize, cols: usize, wavelength_m: f64) -> Self {
        Self::new(rows, cols, wavelength_m / 2.0, wavelength_m / 2.0)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Returns `true` if the array has no elements (never true by
    /// construction; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical aperture area in square metres (`rows·dy × cols·dx`).
    #[inline]
    pub fn area_m2(&self) -> f64 {
        (self.rows as f64 * self.dy) * (self.cols as f64 * self.dx)
    }

    /// Local-frame position `[x, y, 0]` of element `(row, col)`, with the
    /// array centred on the origin.
    ///
    /// # Panics
    /// Panics if the indices are out of range.
    pub fn element_position(&self, row: usize, col: usize) -> [f64; 3] {
        assert!(row < self.rows && col < self.cols, "element index oob");
        let x = (col as f64 - (self.cols as f64 - 1.0) / 2.0) * self.dx;
        let y = (row as f64 - (self.rows as f64 - 1.0) / 2.0) * self.dy;
        [x, y, 0.0]
    }

    /// Flat element index for `(row, col)` in row-major order.
    #[inline]
    pub fn flat_index(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    /// Inverse of [`flat_index`](Self::flat_index).
    #[inline]
    pub fn row_col(&self, index: usize) -> (usize, usize) {
        (index / self.cols, index % self.cols)
    }

    /// Iterates over all element local positions in row-major order.
    pub fn positions(&self) -> impl Iterator<Item = [f64; 3]> + '_ {
        (0..self.rows).flat_map(move |r| (0..self.cols).map(move |c| self.element_position(r, c)))
    }
}

/// A steering vector: the per-element unit phasors for a plane wave arriving
/// from (or departing towards) a given direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SteeringVector {
    /// One unit phasor per element, row-major.
    pub weights: Vec<Complex>,
}

impl SteeringVector {
    /// Computes the steering vector of `geometry` for plane-wave direction
    /// `dir` (a local-frame vector, not necessarily normalized) at wavenumber
    /// `k = 2π/λ`.
    ///
    /// The phase at element position `p` is `k · (p ⋅ û)` where `û` is the
    /// normalized direction. Phases are *relative*: the array centre has
    /// phase zero.
    ///
    /// # Panics
    /// Panics if `dir` is (numerically) the zero vector.
    pub fn compute(geometry: &ArrayGeometry, dir: [f64; 3], k: f64) -> Self {
        let n = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt();
        assert!(n > 1e-12, "steering direction must be non-zero");
        let u = [dir[0] / n, dir[1] / n, dir[2] / n];
        let weights = geometry
            .positions()
            .map(|p| {
                let dot = p[0] * u[0] + p[1] * u[1] + p[2] * u[2];
                Complex::cis(k * dot)
            })
            .collect();
        SteeringVector { weights }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The normalized correlation `|aᴴ·b| / N` between this steering vector
    /// and a channel (or another steering) vector. Equals 1 when the channel
    /// is a plane wave exactly from this direction.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn correlate(&self, channel: &[Complex]) -> f64 {
        assert_eq!(
            self.weights.len(),
            channel.len(),
            "steering/channel length mismatch"
        );
        let acc: Complex = self
            .weights
            .iter()
            .zip(channel)
            .map(|(w, h)| w.conj() * *h)
            .sum();
        acc.abs() / self.weights.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geom() -> ArrayGeometry {
        ArrayGeometry::new(4, 8, 0.005, 0.005)
    }

    #[test]
    fn len_and_area() {
        let g = geom();
        assert_eq!(g.len(), 32);
        assert!((g.area_m2() - (4.0 * 0.005) * (8.0 * 0.005)).abs() < 1e-12);
    }

    #[test]
    fn positions_centred() {
        let g = geom();
        let sum = g.positions().fold([0.0; 3], |acc, p| {
            [acc[0] + p[0], acc[1] + p[1], acc[2] + p[2]]
        });
        assert!(sum[0].abs() < 1e-12 && sum[1].abs() < 1e-12 && sum[2].abs() < 1e-12);
    }

    #[test]
    fn flat_index_roundtrip() {
        let g = geom();
        for i in 0..g.len() {
            let (r, c) = g.row_col(i);
            assert_eq!(g.flat_index(r, c), i);
        }
    }

    #[test]
    fn boresight_steering_is_uniform() {
        let g = geom();
        let sv = SteeringVector::compute(&g, [0.0, 0.0, 1.0], 100.0);
        for w in &sv.weights {
            assert!((*w - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn off_axis_steering_has_linear_phase() {
        let g = ArrayGeometry::new(1, 4, 0.01, 0.01);
        let k = 2.0 * std::f64::consts::PI / 0.02; // λ = 2 cm, pitch = λ/2
        let dir = [1.0, 0.0, 1.0]; // 45° in x-z plane
        let sv = SteeringVector::compute(&g, dir, k);
        // adjacent-element phase difference must be constant
        let d0 = (sv.weights[1] / sv.weights[0]).arg();
        let d1 = (sv.weights[2] / sv.weights[1]).arg();
        let d2 = (sv.weights[3] / sv.weights[2]).arg();
        assert!((d0 - d1).abs() < 1e-9);
        assert!((d1 - d2).abs() < 1e-9);
        // and equal to k·dx·sin(45°)
        let want = k * 0.01 * (std::f64::consts::FRAC_PI_4).sin();
        assert!((d0 - want).abs() < 1e-9);
    }

    #[test]
    fn correlation_peaks_at_true_direction() {
        let g = ArrayGeometry::half_wavelength(8, 8, 0.01);
        let k = 2.0 * std::f64::consts::PI / 0.01;
        let truth = [0.3, 0.1, 1.0];
        let channel = SteeringVector::compute(&g, truth, k).weights;
        let at_truth = SteeringVector::compute(&g, truth, k).correlate(&channel);
        let away = SteeringVector::compute(&g, [-0.4, 0.2, 1.0], k).correlate(&channel);
        assert!((at_truth - 1.0).abs() < 1e-9);
        assert!(away < at_truth);
    }

    #[test]
    #[should_panic(expected = "steering direction must be non-zero")]
    fn zero_direction_rejected() {
        let _ = SteeringVector::compute(&geom(), [0.0; 3], 1.0);
    }

    #[test]
    #[should_panic(expected = "element index oob")]
    fn oob_element_rejected() {
        let _ = geom().element_position(4, 0);
    }

    proptest! {
        #[test]
        fn prop_steering_weights_are_unit(
            dx in 0.001..0.1f64,
            ux in -1.0..1.0f64, uy in -1.0..1.0f64,
        ) {
            let g = ArrayGeometry::new(3, 3, dx, dx);
            let sv = SteeringVector::compute(&g, [ux, uy, 1.0], 50.0);
            for w in &sv.weights {
                prop_assert!((w.abs() - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_correlation_bounded(
            ux in -1.0..1.0f64, uy in -1.0..1.0f64,
            vx in -1.0..1.0f64, vy in -1.0..1.0f64,
        ) {
            let g = ArrayGeometry::half_wavelength(4, 4, 0.01);
            let k = 2.0 * std::f64::consts::PI / 0.01;
            let a = SteeringVector::compute(&g, [ux, uy, 1.0], k);
            let b = SteeringVector::compute(&g, [vx, vy, 1.0], k);
            let c = a.correlate(&b.weights);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        }
    }
}
