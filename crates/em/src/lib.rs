//! # surfos-em
//!
//! Electromagnetic and signal-level math substrate for SurfOS.
//!
//! This crate is the lowest layer of the SurfOS workspace. It provides the
//! numerical vocabulary every other crate speaks:
//!
//! - [`Complex`]: complex arithmetic for phasors and channel coefficients,
//! - [`units`]: decibel / linear / power conversions and physical constants,
//! - [`band`]: frequency bands and wavelengths,
//! - [`antenna`]: element and aperture gain patterns,
//! - [`mod@array`]: planar array geometry and steering vectors,
//! - [`propagation`]: free-space (Friis) propagation and scattering gains,
//! - [`noise`]: thermal noise, SNR and Shannon capacity,
//! - [`phase`]: phase wrapping and quantization,
//! - [`simd`]: a runtime-dispatched SIMD substrate for the tracing and
//!   re-phasing hot paths — native AVX2, portable SSE2 and scalar
//!   reference arms behind one `f32`/`f64` lane API (selected once via
//!   CPU detection, overridable with `SURFOS_SIMD`), plus SoA phasor
//!   kernels (plain-array build via the `scalar-fallback` feature),
//! - [`ulp`]: ULP-distance helpers backing the SIMD↔scalar equivalence
//!   tests.
//!
//! Everything here is deterministic, `no_std`-shaped (no allocation in hot
//! paths beyond `Vec` for arrays) and extensively unit-tested, in the spirit
//! of small, robust networking substrates.

pub mod antenna;
pub mod array;
pub mod band;
pub mod complex;
pub mod noise;
pub mod phase;
pub mod propagation;
pub mod simd;
pub mod ulp;
pub mod units;

pub use antenna::{ElementPattern, Pattern};
pub use array::{ArrayGeometry, SteeringVector};
pub use band::{Band, NamedBand};
pub use complex::Complex;
pub use noise::{noise_power_dbm, shannon_capacity_bps, snr_db};
pub use phase::{quantize_phase, wrap_phase};
pub use simd::{
    backend, Backend, F32x4, F32x8, F64x2, F64x4, Mask4, Mask8, MaskD2, MaskD4, SimdF32x8,
    SimdF64x4, SimdMask8, SimdMaskD4,
};
pub use ulp::{approx_eq_ulps_f64, ulp_distance_f32, ulp_distance_f64};
pub use units::{db_to_linear, dbm_to_watts, linear_to_db, watts_to_dbm, SPEED_OF_LIGHT};
