//! Antenna and surface-element gain patterns.
//!
//! Endpoints (APs, clients) and individual surface elements all weight
//! incident/emitted energy by direction. SurfOS models patterns as a gain
//! factor over the angle from boresight; this captures the qualitative
//! behaviour that matters for the paper's experiments (directional APs,
//! cosine-law surface elements) without a full 3-D pattern integration.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A directional gain pattern. Input is the angle from the pattern's
/// boresight in radians (`0` = boresight, `π/2` = endfire, `> π/2` = behind).
/// Output is a *linear amplitude* gain factor.
pub trait Pattern {
    /// Amplitude gain at `theta` radians off boresight.
    fn amplitude_gain(&self, theta: f64) -> f64;

    /// Power gain at `theta` radians off boresight (amplitude squared).
    fn power_gain(&self, theta: f64) -> f64 {
        let g = self.amplitude_gain(theta);
        g * g
    }
}

/// The standard element patterns used by SurfOS hardware models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ElementPattern {
    /// Uniform gain in all directions (reference / test pattern).
    Isotropic,
    /// `cos^q(θ)` forward hemisphere pattern — the standard metasurface
    /// element model. `q = 1` is a plain cosine (Lambertian) element; larger
    /// `q` narrows the element beam. Zero gain behind the surface.
    Cosine {
        /// Cosine exponent, must be ≥ 0.
        exponent: f64,
    },
    /// A sectoral pattern: constant high gain inside the half-power
    /// beamwidth, strong floor outside. Models phased-array APs coarsely.
    Sector {
        /// Boresight power gain in dBi.
        gain_dbi: f64,
        /// Full beamwidth in radians over which the boresight gain applies.
        beamwidth_rad: f64,
        /// Power gain in dBi outside the sector (side/back lobes).
        floor_dbi: f64,
    },
}

impl Pattern for ElementPattern {
    fn amplitude_gain(&self, theta: f64) -> f64 {
        let theta = theta.abs();
        match *self {
            ElementPattern::Isotropic => 1.0,
            ElementPattern::Cosine { exponent } => {
                if theta >= PI / 2.0 {
                    0.0
                } else {
                    theta.cos().powf(exponent).max(0.0)
                }
            }
            ElementPattern::Sector {
                gain_dbi,
                beamwidth_rad,
                floor_dbi,
            } => {
                let power_dbi = if theta <= beamwidth_rad / 2.0 {
                    gain_dbi
                } else {
                    floor_dbi
                };
                crate::units::db_to_amplitude(power_dbi)
            }
        }
    }
}

impl ElementPattern {
    /// The canonical metasurface element: `cos(θ)` with unit boresight gain.
    pub const LAMBERTIAN: ElementPattern = ElementPattern::Cosine { exponent: 1.0 };

    /// A typical indoor mmWave AP phased-array sector: 22 dBi over a 20°
    /// beam with a -10 dBi side/back floor.
    pub fn mmwave_ap() -> ElementPattern {
        ElementPattern::Sector {
            gain_dbi: 22.0,
            beamwidth_rad: 20f64.to_radians(),
            floor_dbi: -10.0,
        }
    }

    /// A near-omnidirectional client antenna (2 dBi).
    pub fn client() -> ElementPattern {
        ElementPattern::Sector {
            gain_dbi: 2.0,
            beamwidth_rad: 2.0 * PI,
            floor_dbi: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_is_uniform() {
        let p = ElementPattern::Isotropic;
        for k in 0..10 {
            assert_eq!(p.amplitude_gain(k as f64 * 0.3), 1.0);
        }
    }

    #[test]
    fn cosine_boresight_and_endfire() {
        let p = ElementPattern::LAMBERTIAN;
        assert!((p.amplitude_gain(0.0) - 1.0).abs() < 1e-12);
        assert!(p.amplitude_gain(PI / 2.0) < 1e-12);
        assert_eq!(p.amplitude_gain(PI * 0.75), 0.0); // behind
    }

    #[test]
    fn cosine_monotone_decreasing() {
        let p = ElementPattern::Cosine { exponent: 2.0 };
        let mut last = f64::INFINITY;
        for k in 0..=10 {
            let g = p.amplitude_gain(k as f64 * PI / 20.0);
            assert!(g <= last);
            last = g;
        }
    }

    #[test]
    fn higher_exponent_is_narrower() {
        let wide = ElementPattern::Cosine { exponent: 1.0 };
        let narrow = ElementPattern::Cosine { exponent: 4.0 };
        let theta = PI / 4.0;
        assert!(narrow.amplitude_gain(theta) < wide.amplitude_gain(theta));
        assert!((narrow.amplitude_gain(0.0) - wide.amplitude_gain(0.0)).abs() < 1e-12);
    }

    #[test]
    fn sector_inside_and_outside() {
        let p = ElementPattern::mmwave_ap();
        let inside = p.power_gain(8f64.to_radians());
        let outside = p.power_gain(40f64.to_radians());
        assert!((crate::units::linear_to_db(inside) - 22.0).abs() < 1e-9);
        assert!((crate::units::linear_to_db(outside) - (-10.0)).abs() < 1e-9);
    }

    #[test]
    fn pattern_symmetric_in_theta() {
        let p = ElementPattern::Cosine { exponent: 1.5 };
        assert_eq!(p.amplitude_gain(0.7), p.amplitude_gain(-0.7));
    }

    #[test]
    fn power_gain_is_amplitude_squared() {
        let p = ElementPattern::Cosine { exponent: 1.0 };
        let a = p.amplitude_gain(0.5);
        assert!((p.power_gain(0.5) - a * a).abs() < 1e-12);
    }
}
