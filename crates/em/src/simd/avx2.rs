//! Native AVX2 lane types and the fused phasor kernel.
//!
//! Everything here is reached **only** through a [`Backend::Avx2`](super::Backend::Avx2)
//! dispatch arm (or a test/bench that checks
//! [`avx2_available`](super::avx2_available) first), which requires
//! `is_x86_feature_detected!("avx2")` and `"fma"` to have returned
//! true. That one-time detection is the safety argument for the `avx!`
//! macro below and for the `#[target_feature]` kernel entry points.
//!
//! The lane types mirror the portable [`F32x8`](super::F32x8) /
//! [`F64x4`](super::F64x4) pair types **bit for bit**: same IEEE
//! lane-wise math, same `vminps`/`vmaxps` operand-order semantics under
//! NaN (AVX inherits them from SSE), compares via the ordered
//! non-signalling predicates (false on NaN, like `cmpltps`), an
//! **unfused** `mul_add`, and a `reduce_sum` that reproduces the
//! portable `((a0+a2)+(a1+a3)) + ((a4+a6)+(a5+a7))` association by
//! splitting the 256-bit register into its 128-bit halves and running
//! the exact SSE reduction on each. The only deliberately divergent
//! math in this module is the *fused* complex rotation inside
//! `sum_and_advance` / `weighted_sum_and_advance`, whose ULP budget
//! is documented in [`phasor`](super::phasor).
//!
//! Methods are `#[inline(always)]` rather than `#[target_feature]`
//! (trait/impl methods cannot carry the attribute): they flatten into
//! the `#[target_feature(enable = "avx2")]` kernel entry points their
//! callers compile, so the intrinsics inline into AVX2-enabled code.
//! Called outside such a kernel (tests do this after checking
//! `avx2_available()`), each intrinsic still executes correctly — the
//! CPU has the feature; only scheduling is pessimised.

use core::arch::x86_64::*;

use super::{SimdF32x8, SimdF64x4, SimdMask8, SimdMaskD4};

/// Wraps a value-based AVX2/FMA intrinsic call.
///
/// SAFETY: every public item in this module is documented to be reached
/// only behind the `Backend::Avx2` dispatch decision, which required
/// `is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")`
/// at process startup. All wrapped intrinsics are value-based (no
/// pointers), so no other precondition exists.
macro_rules! avx {
    ($e:expr) => {
        unsafe { $e }
    };
}

/// Eight `f32` lanes in one AVX2 `__m256` register — the native arm of
/// [`SimdF32x8`].
#[derive(Clone, Copy, Debug)]
pub struct F32x8A(__m256);

/// Lane mask for [`F32x8A`]: each lane is all-ones (true) or all-zeros.
#[derive(Clone, Copy, Debug)]
pub struct Mask8A(__m256);

/// Four `f64` lanes in one AVX2 `__m256d` register — the native arm of
/// [`SimdF64x4`].
#[derive(Clone, Copy, Debug)]
pub struct F64x4A(__m256d);

/// Lane mask for [`F64x4A`]: each lane is all-ones (true) or all-zeros.
#[derive(Clone, Copy, Debug)]
pub struct MaskD4A(__m256d);

#[inline(always)]
fn all_ones_256() -> __m256 {
    let z = avx!(_mm256_setzero_ps());
    avx!(_mm256_cmp_ps::<_CMP_EQ_OQ>(z, z))
}

#[inline(always)]
fn all_ones_256d() -> __m256d {
    let z = avx!(_mm256_setzero_pd());
    avx!(_mm256_cmp_pd::<_CMP_EQ_OQ>(z, z))
}

/// The exact SSE `reduce_sum` association on one 128-bit half:
/// `(a[0] + a[2]) + (a[1] + a[3])`.
#[inline(always)]
fn reduce_sum_128(v: __m128) -> f32 {
    let hi = avx!(_mm_movehl_ps(v, v));
    let pair = avx!(_mm_add_ps(v, hi));
    let odd = avx!(_mm_shuffle_ps::<0b01>(pair, pair));
    avx!(_mm_cvtss_f32(_mm_add_ss(pair, odd)))
}

impl SimdF32x8 for F32x8A {
    type Mask = Mask8A;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        F32x8A(avx!(_mm256_set1_ps(v)))
    }

    #[inline(always)]
    fn from_array(a: [f32; 8]) -> Self {
        F32x8A(avx!(_mm256_setr_ps(
            a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7]
        )))
    }

    #[inline(always)]
    fn to_array(self) -> [f32; 8] {
        let lo = avx!(_mm256_castps256_ps128(self.0));
        let hi = avx!(_mm256_extractf128_ps::<1>(self.0));
        let l = |v: __m128, i: i32| -> f32 {
            match i {
                0 => avx!(_mm_cvtss_f32(v)),
                1 => avx!(_mm_cvtss_f32(_mm_shuffle_ps::<0b01_01_01_01>(v, v))),
                2 => avx!(_mm_cvtss_f32(_mm_shuffle_ps::<0b10_10_10_10>(v, v))),
                _ => avx!(_mm_cvtss_f32(_mm_shuffle_ps::<0b11_11_11_11>(v, v))),
            }
        };
        [
            l(lo, 0),
            l(lo, 1),
            l(lo, 2),
            l(lo, 3),
            l(hi, 0),
            l(hi, 1),
            l(hi, 2),
            l(hi, 3),
        ]
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        F32x8A(avx!(_mm256_add_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        F32x8A(avx!(_mm256_sub_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        F32x8A(avx!(_mm256_mul_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn mul_add(self, b: Self, c: Self) -> Self {
        // Deliberately NOT vfmadd: the trait contract is two roundings
        // on every backend.
        F32x8A(avx!(_mm256_add_ps(_mm256_mul_ps(self.0, b.0), c.0)))
    }

    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        F32x8A(avx!(_mm256_div_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn abs(self) -> Self {
        F32x8A(avx!(_mm256_andnot_ps(_mm256_set1_ps(-0.0), self.0)))
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        F32x8A(avx!(_mm256_min_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        F32x8A(avx!(_mm256_max_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> Mask8A {
        Mask8A(avx!(_mm256_cmp_ps::<_CMP_LT_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_le(self, rhs: Self) -> Mask8A {
        Mask8A(avx!(_mm256_cmp_ps::<_CMP_LE_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_ge(self, rhs: Self) -> Mask8A {
        Mask8A(avx!(_mm256_cmp_ps::<_CMP_GE_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn select(self, mask: Mask8A, other: Self) -> Self {
        F32x8A(avx!(_mm256_blendv_ps(other.0, self.0, mask.0)))
    }

    #[inline(always)]
    fn reduce_sum(self) -> f32 {
        let lo = avx!(_mm256_castps256_ps128(self.0));
        let hi = avx!(_mm256_extractf128_ps::<1>(self.0));
        reduce_sum_128(lo) + reduce_sum_128(hi)
    }
}

impl SimdMask8 for Mask8A {
    #[inline(always)]
    fn splat(b: bool) -> Self {
        if b {
            Mask8A(all_ones_256())
        } else {
            Mask8A(avx!(_mm256_setzero_ps()))
        }
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        Mask8A(avx!(_mm256_and_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        Mask8A(avx!(_mm256_or_ps(self.0, rhs.0)))
    }

    #[inline(always)]
    fn not(self) -> Self {
        Mask8A(avx!(_mm256_andnot_ps(self.0, all_ones_256())))
    }

    #[inline(always)]
    fn bitmask(self) -> u8 {
        (avx!(_mm256_movemask_ps(self.0)) & 0xFF) as u8
    }
}

impl F64x4A {
    /// Lane-wise **fused** `self * b + c` (single rounding, `vfmadd`).
    ///
    /// Not part of [`SimdF64x4`] — fusion is confined to the phasor
    /// rotation; generic kernels must keep the unfused `mul_add`.
    #[inline(always)]
    pub fn mul_add_fused(self, b: Self, c: Self) -> Self {
        F64x4A(avx!(_mm256_fmadd_pd(self.0, b.0, c.0)))
    }

    /// Lane-wise **fused** `self * b - c` (single rounding, `vfmsub`).
    #[inline(always)]
    pub fn mul_sub_fused(self, b: Self, c: Self) -> Self {
        F64x4A(avx!(_mm256_fmsub_pd(self.0, b.0, c.0)))
    }
}

impl SimdF64x4 for F64x4A {
    type Mask = MaskD4A;

    #[inline(always)]
    fn splat(v: f64) -> Self {
        F64x4A(avx!(_mm256_set1_pd(v)))
    }

    #[inline(always)]
    fn from_array(a: [f64; 4]) -> Self {
        F64x4A(avx!(_mm256_setr_pd(a[0], a[1], a[2], a[3])))
    }

    #[inline(always)]
    fn to_array(self) -> [f64; 4] {
        let lo = avx!(_mm256_castpd256_pd128(self.0));
        let hi = avx!(_mm256_extractf128_pd::<1>(self.0));
        [
            avx!(_mm_cvtsd_f64(lo)),
            avx!(_mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo))),
            avx!(_mm_cvtsd_f64(hi)),
            avx!(_mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi))),
        ]
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        F64x4A(avx!(_mm256_add_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        F64x4A(avx!(_mm256_sub_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        F64x4A(avx!(_mm256_mul_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn mul_add(self, b: Self, c: Self) -> Self {
        // Two roundings, per the trait contract (see mul_add_fused for
        // the fused variant the phasor kernel uses).
        F64x4A(avx!(_mm256_add_pd(_mm256_mul_pd(self.0, b.0), c.0)))
    }

    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        F64x4A(avx!(_mm256_div_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn abs(self) -> Self {
        F64x4A(avx!(_mm256_andnot_pd(_mm256_set1_pd(-0.0), self.0)))
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        F64x4A(avx!(_mm256_min_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        F64x4A(avx!(_mm256_max_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_lt(self, rhs: Self) -> MaskD4A {
        MaskD4A(avx!(_mm256_cmp_pd::<_CMP_LT_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_le(self, rhs: Self) -> MaskD4A {
        MaskD4A(avx!(_mm256_cmp_pd::<_CMP_LE_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn simd_ge(self, rhs: Self) -> MaskD4A {
        MaskD4A(avx!(_mm256_cmp_pd::<_CMP_GE_OQ>(self.0, rhs.0)))
    }

    #[inline(always)]
    fn select(self, mask: MaskD4A, other: Self) -> Self {
        F64x4A(avx!(_mm256_blendv_pd(other.0, self.0, mask.0)))
    }
}

impl SimdMaskD4 for MaskD4A {
    #[inline(always)]
    fn splat(b: bool) -> Self {
        if b {
            MaskD4A(all_ones_256d())
        } else {
            MaskD4A(avx!(_mm256_setzero_pd()))
        }
    }

    #[inline(always)]
    fn and(self, rhs: Self) -> Self {
        MaskD4A(avx!(_mm256_and_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn or(self, rhs: Self) -> Self {
        MaskD4A(avx!(_mm256_or_pd(self.0, rhs.0)))
    }

    #[inline(always)]
    fn not(self) -> Self {
        MaskD4A(avx!(_mm256_andnot_pd(self.0, all_ones_256d())))
    }

    #[inline(always)]
    fn bitmask(self) -> u8 {
        (avx!(_mm256_movemask_pd(self.0)) & 0xF) as u8
    }
}

/// AVX2+FMA arm of [`phasor::sum_and_advance`](super::phasor::sum_and_advance).
///
/// The *sums* are bit-identical to the portable kernel: vector lane `j`
/// accumulates exactly the indices `i ≡ j (mod 4)` in ascending order —
/// the same buckets, in the same order, as the portable `ACC_LANES`
/// partial sums — and the final fold uses the same
/// `(s0+s2) + (s1+s3)` association. Only the *rotation* differs: it is
/// fused (`vfmsub`/`vfmadd`, one rounding instead of two), and the
/// scalar tail matches that fused semantics exactly via
/// `f64::mul_add`. See [`phasor`](super::phasor) for the resulting ULP
/// budget.
///
/// # Safety
/// Requires the `avx2` and `fma` CPU features; callers must have
/// checked [`avx2_available`](super::avx2_available) (the
/// `Backend::Avx2` dispatch arm does).
///
/// # Panics
/// Panics if the slice lengths differ.
#[target_feature(enable = "avx2,fma")]
pub(super) unsafe fn sum_and_advance(
    re: &mut [f64],
    im: &mut [f64],
    dre: &[f64],
    dim: &[f64],
) -> (f64, f64) {
    let n = re.len();
    assert!(im.len() == n && dre.len() == n && dim.len() == n);
    let mut sr = F64x4A::splat(0.0);
    let mut si = F64x4A::splat(0.0);
    let mut i = 0;
    while i + 4 <= n {
        let r = F64x4A::from_array(re[i..i + 4].try_into().unwrap());
        let m = F64x4A::from_array(im[i..i + 4].try_into().unwrap());
        let dr = F64x4A::from_array(dre[i..i + 4].try_into().unwrap());
        let dm = F64x4A::from_array(dim[i..i + 4].try_into().unwrap());
        sr = sr.add(r);
        si = si.add(m);
        let re2 = r.mul_sub_fused(dr, m.mul(dm));
        let im2 = r.mul_add_fused(dm, m.mul(dr));
        re[i..i + 4].copy_from_slice(&re2.to_array());
        im[i..i + 4].copy_from_slice(&im2.to_array());
        i += 4;
    }
    let mut srl = sr.to_array();
    let mut sil = si.to_array();
    while i < n {
        let (r, m) = (re[i], im[i]);
        srl[i % 4] += r;
        sil[i % 4] += m;
        re[i] = r.mul_add(dre[i], -(m * dim[i]));
        im[i] = r.mul_add(dim[i], m * dre[i]);
        i += 1;
    }
    (
        (srl[0] + srl[2]) + (srl[1] + srl[3]),
        (sil[0] + sil[2]) + (sil[1] + sil[3]),
    )
}

/// AVX2+FMA arm of
/// [`phasor::weighted_sum_and_advance`](super::phasor::weighted_sum_and_advance).
///
/// Weighted sums stay bit-identical to the portable kernel (the
/// `w[i] * value` product is a plain lane multiply followed by a plain
/// add — two roundings, exactly like the scalar `sr[j] += r * w[i]`);
/// only the rotation is fused, as in [`sum_and_advance`].
///
/// # Safety
/// Same contract as [`sum_and_advance`].
///
/// # Panics
/// Panics if the slice lengths differ.
#[target_feature(enable = "avx2,fma")]
pub(super) unsafe fn weighted_sum_and_advance(
    re: &mut [f64],
    im: &mut [f64],
    dre: &[f64],
    dim: &[f64],
    w: &[f64],
) -> (f64, f64) {
    let n = re.len();
    assert!(im.len() == n && dre.len() == n && dim.len() == n && w.len() == n);
    let mut sr = F64x4A::splat(0.0);
    let mut si = F64x4A::splat(0.0);
    let mut i = 0;
    while i + 4 <= n {
        let r = F64x4A::from_array(re[i..i + 4].try_into().unwrap());
        let m = F64x4A::from_array(im[i..i + 4].try_into().unwrap());
        let dr = F64x4A::from_array(dre[i..i + 4].try_into().unwrap());
        let dm = F64x4A::from_array(dim[i..i + 4].try_into().unwrap());
        let wv = F64x4A::from_array(w[i..i + 4].try_into().unwrap());
        sr = sr.add(r.mul(wv));
        si = si.add(m.mul(wv));
        let re2 = r.mul_sub_fused(dr, m.mul(dm));
        let im2 = r.mul_add_fused(dm, m.mul(dr));
        re[i..i + 4].copy_from_slice(&re2.to_array());
        im[i..i + 4].copy_from_slice(&im2.to_array());
        i += 4;
    }
    let mut srl = sr.to_array();
    let mut sil = si.to_array();
    while i < n {
        let (r, m) = (re[i], im[i]);
        srl[i % 4] += r * w[i];
        sil[i % 4] += m * w[i];
        re[i] = r.mul_add(dre[i], -(m * dim[i]));
        im[i] = r.mul_add(dim[i], m * dre[i]);
        i += 1;
    }
    (
        (srl[0] + srl[2]) + (srl[1] + srl[3]),
        (sil[0] + sil[2]) + (sil[1] + sil[3]),
    )
}
