//! Structure-of-arrays complex phasor kernels for the sweep hot loop.
//!
//! `ChannelTrace::sweep_evaluate` advances one unit phasor per path /
//! per element across a uniform frequency grid: at every probe it
//! sums the current values and multiplies each by a fixed per-step
//! rotation. The AoS form (`Vec<Complex>`) defeats autovectorization
//! because the complex-sum reduction carries a loop dependency LLVM
//! will not reassociate for floats. These kernels keep the phasors in
//! SoA `f64` slices and reassociate the reduction explicitly into
//! [`ACC_LANES`] partial sums.
//!
//! # Backends and the equivalence policy
//!
//! The public entry points dispatch on [`backend()`](super::backend):
//!
//! - **Scalar / Sse2** run the portable loop (the compiler
//!   autovectorizes the independent partial sums on x86_64; the shape —
//!   and therefore every result bit — is identical either way). Each
//!   phasor's *rotation* is bit-identical to the scalar `Complex`
//!   multiply (`re·dre − im·dim`, `re·dim + im·dre`, same operation
//!   order, two roundings per term).
//! - **Avx2** runs the native `__m256d` kernel in
//!   [`avx2`](super::avx2). Its **sums are bit-identical** to the
//!   portable loop (same [`ACC_LANES`] buckets, same visit order, same
//!   final `(s0+s2)+(s1+s3)` fold), but the rotation is **fused**:
//!   `re′ = fma(re, dre, −(im·dim))` and `im′ = fma(re, dim, im·dre)`
//!   round once where the portable form rounds twice.
//!
//! **ULP budget for the fused rotation**: each advance step changes a
//! phasor by at most 1 ULP of the subtracted/added product magnitude
//! relative to the portable form (the fused product is the
//! infinitely-precise one). With unit phasors and unit rotations every
//! term has magnitude ≤ 1, so after `k` steps the accumulated
//! divergence is ≤ `k · 2⁻⁵²` absolute per component — for the 64-probe
//! sweeps the channel crate runs, ≲ `2⁻⁴⁶ ≈ 1.4e-14`, far inside the
//! `~1e-11` relative deviation `sweep_evaluate` already documents
//! against point-wise evaluation, and inside the `2¹⁴`-ULP bound the
//! channel crate's `sweep_soa_matches_scalar_reference_within_ulp_bound`
//! test enforces. The *sum over paths* is reassociated identically on
//! every backend: deviation from the left-to-right scalar sum is at
//! most `O(n · ε · Σ|vᵢ|)` absolute, `≲ n²·2⁻⁵²` for unit phasors.

use super::Backend;

/// Number of independent accumulators used by the reassociated sums.
pub const ACC_LANES: usize = 4;

/// Sums the phasors `(re[i], im[i])`, each weighted by the *real*
/// scale `w[i]`, then advances every phasor by its per-step rotation
/// `(dre[i], dim[i])`. Returns the (reassociated) weighted sum.
///
/// Dispatches on [`backend()`](super::backend); see the module docs
/// for the per-backend equivalence policy. All slices must have equal
/// length.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn weighted_sum_and_advance(
    re: &mut [f64],
    im: &mut [f64],
    dre: &[f64],
    dim: &[f64],
    w: &[f64],
) -> (f64, f64) {
    weighted_sum_and_advance_with(super::backend(), re, im, dre, dim, w)
}

/// Sums the phasors `(re[i], im[i])` and advances each by its
/// per-step rotation; the unweighted special case of
/// [`weighted_sum_and_advance`].
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn sum_and_advance(re: &mut [f64], im: &mut [f64], dre: &[f64], dim: &[f64]) -> (f64, f64) {
    sum_and_advance_with(super::backend(), re, im, dre, dim)
}

/// [`sum_and_advance`] with an explicit kernel arm, for benches and
/// cross-backend equivalence tests.
///
/// # Panics
/// Panics if the slice lengths differ, or if `Backend::Avx2` is forced
/// on a host without AVX2+FMA.
pub fn sum_and_advance_with(
    backend: Backend,
    re: &mut [f64],
    im: &mut [f64],
    dre: &[f64],
    dim: &[f64],
) -> (f64, f64) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            assert!(
                super::avx2_available(),
                "Backend::Avx2 forced without AVX2+FMA support"
            );
            // SAFETY: avx2 + fma presence asserted just above.
            unsafe { super::avx2::sum_and_advance(re, im, dre, dim) }
        }
        _ => {
            let n = re.len();
            assert!(im.len() == n && dre.len() == n && dim.len() == n);
            let mut sr = [0.0f64; ACC_LANES];
            let mut si = [0.0f64; ACC_LANES];
            for i in 0..n {
                let (r, im_i) = (re[i], im[i]);
                sr[i % ACC_LANES] += r;
                si[i % ACC_LANES] += im_i;
                re[i] = r * dre[i] - im_i * dim[i];
                im[i] = r * dim[i] + im_i * dre[i];
            }
            (
                (sr[0] + sr[2]) + (sr[1] + sr[3]),
                (si[0] + si[2]) + (si[1] + si[3]),
            )
        }
    }
}

/// [`weighted_sum_and_advance`] with an explicit kernel arm, for
/// benches and cross-backend equivalence tests.
///
/// # Panics
/// Panics if the slice lengths differ, or if `Backend::Avx2` is forced
/// on a host without AVX2+FMA.
pub fn weighted_sum_and_advance_with(
    backend: Backend,
    re: &mut [f64],
    im: &mut [f64],
    dre: &[f64],
    dim: &[f64],
    w: &[f64],
) -> (f64, f64) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            assert!(
                super::avx2_available(),
                "Backend::Avx2 forced without AVX2+FMA support"
            );
            // SAFETY: avx2 + fma presence asserted just above.
            unsafe { super::avx2::weighted_sum_and_advance(re, im, dre, dim, w) }
        }
        _ => {
            let n = re.len();
            assert!(im.len() == n && dre.len() == n && dim.len() == n && w.len() == n);
            let mut sr = [0.0f64; ACC_LANES];
            let mut si = [0.0f64; ACC_LANES];
            for i in 0..n {
                let (r, im_i) = (re[i], im[i]);
                sr[i % ACC_LANES] += r * w[i];
                si[i % ACC_LANES] += im_i * w[i];
                re[i] = r * dre[i] - im_i * dim[i];
                im[i] = r * dim[i] + im_i * dre[i];
            }
            (
                (sr[0] + sr[2]) + (sr[1] + sr[3]),
                (si[0] + si[2]) + (si[1] + si[3]),
            )
        }
    }
}
