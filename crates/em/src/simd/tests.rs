use super::*;

const A: [f32; 8] = [1.0, -2.5, 3.25, 0.0, 7.5, -0.125, 42.0, 1e-3];
const B: [f32; 8] = [0.5, 2.5, -3.25, 1.0, -7.5, 0.25, 41.0, 2e-3];

const AD: [f64; 4] = [1.0, -2.5, 3.25, 1e-3];
const BD: [f64; 4] = [0.5, 2.5, -3.25, 2e-3];

#[test]
fn roundtrip_and_splat() {
    assert_eq!(F32x8::from_array(A).to_array(), A);
    assert_eq!(F32x8::splat(2.5).to_array(), [2.5; 8]);
    assert_eq!(
        F32x4::from_array([1.0, 2.0, 3.0, 4.0]).to_array(),
        [1.0, 2.0, 3.0, 4.0]
    );
    assert_eq!(F64x2::from_array([1.5, -2.5]).to_array(), [1.5, -2.5]);
    assert_eq!(F64x4::from_array(AD).to_array(), AD);
    assert_eq!(F64x4::splat(0.75).to_array(), [0.75; 4]);
}

#[test]
fn lanewise_arithmetic() {
    let a = F32x8::from_array(A);
    let b = F32x8::from_array(B);
    for i in 0..8 {
        assert_eq!(a.add(b).to_array()[i], A[i] + B[i]);
        assert_eq!(a.sub(b).to_array()[i], A[i] - B[i]);
        assert_eq!(a.mul(b).to_array()[i], A[i] * B[i]);
        assert_eq!(a.mul_add(b, a).to_array()[i], A[i] * B[i] + A[i]);
    }
    let ad = F64x4::from_array(AD);
    let bd = F64x4::from_array(BD);
    for i in 0..4 {
        assert_eq!(ad.add(bd).to_array()[i], AD[i] + BD[i]);
        assert_eq!(ad.sub(bd).to_array()[i], AD[i] - BD[i]);
        assert_eq!(ad.mul(bd).to_array()[i], AD[i] * BD[i]);
        assert_eq!(ad.mul_add(bd, ad).to_array()[i], AD[i] * BD[i] + AD[i]);
        assert_eq!(ad.div(bd).to_array()[i], AD[i] / BD[i]);
        assert_eq!(ad.abs().to_array()[i], AD[i].abs());
    }
}

#[test]
fn div_and_abs_are_lanewise_ieee() {
    let a = F32x8::from_array(A);
    let b = F32x8::from_array(B);
    for i in 0..8 {
        assert_eq!(a.div(b).to_array()[i], A[i] / B[i]);
        assert_eq!(a.abs().to_array()[i], A[i].abs());
    }
    // Division by zero and 0/0 follow IEEE semantics.
    let num = F32x4::from_array([1.0, -1.0, 0.0, 4.0]);
    let den = F32x4::from_array([0.0, 0.0, 0.0, 2.0]);
    let q = num.div(den).to_array();
    assert_eq!(q[0], f32::INFINITY);
    assert_eq!(q[1], f32::NEG_INFINITY);
    assert!(q[2].is_nan());
    assert_eq!(q[3], 2.0);
    // abs clears the sign bit, including on -0.0 and NaN.
    let x = F32x4::from_array([-0.0, -3.5, f32::NEG_INFINITY, f32::NAN]);
    let ax = x.abs().to_array();
    assert_eq!(ax[0].to_bits(), 0.0f32.to_bits());
    assert_eq!(ax[1], 3.5);
    assert_eq!(ax[2], f32::INFINITY);
    assert!(ax[3].is_nan());
    // Same IEEE behaviour on the f64 lanes.
    let numd = F64x2::from_array([1.0, 0.0]);
    let dend = F64x2::from_array([0.0, 0.0]);
    let qd = numd.div(dend).to_array();
    assert_eq!(qd[0], f64::INFINITY);
    assert!(qd[1].is_nan());
    let xd = F64x4::from_array([-0.0, -3.5, f64::NEG_INFINITY, f64::NAN]);
    let axd = xd.abs().to_array();
    assert_eq!(axd[0].to_bits(), 0.0f64.to_bits());
    assert_eq!(axd[1], 3.5);
    assert_eq!(axd[2], f64::INFINITY);
    assert!(axd[3].is_nan());
}

#[test]
fn min_max_follow_sse_operand_order_on_nan() {
    let nan = f32::NAN;
    let a = F32x4::from_array([nan, 1.0, 2.0, nan]);
    let b = F32x4::from_array([5.0, nan, 1.0, nan]);
    let min = a.min(b).to_array();
    let max = a.max(b).to_array();
    // Unordered lanes take the second operand.
    assert_eq!(min[0], 5.0);
    assert!(min[1].is_nan());
    assert_eq!(min[2], 1.0);
    assert!(min[3].is_nan());
    assert_eq!(max[0], 5.0);
    assert!(max[1].is_nan());
    assert_eq!(max[2], 2.0);
    assert!(max[3].is_nan());
    // f64 lanes follow the same minpd/maxpd operand-order rule.
    let nd = f64::NAN;
    let ad = F64x4::from_array([nd, 1.0, 2.0, nd]);
    let bd = F64x4::from_array([5.0, nd, 1.0, nd]);
    let mind = ad.min(bd).to_array();
    let maxd = ad.max(bd).to_array();
    assert_eq!(mind[0], 5.0);
    assert!(mind[1].is_nan());
    assert_eq!(mind[2], 1.0);
    assert!(mind[3].is_nan());
    assert_eq!(maxd[0], 5.0);
    assert!(maxd[1].is_nan());
    assert_eq!(maxd[2], 2.0);
    assert!(maxd[3].is_nan());
}

#[test]
fn compares_and_masks() {
    let a = F32x8::from_array(A);
    let b = F32x8::from_array(B);
    let lt = a.simd_lt(b);
    let le = a.simd_le(b);
    let ge = a.simd_ge(b);
    for i in 0..8 {
        assert_eq!(lt.bitmask() & (1 << i) != 0, A[i] < B[i], "lane {i}");
        assert_eq!(le.bitmask() & (1 << i) != 0, A[i] <= B[i], "lane {i}");
        assert_eq!(ge.bitmask() & (1 << i) != 0, A[i] >= B[i], "lane {i}");
    }
    assert_eq!(lt.or(ge).bitmask(), 0xFF); // no NaNs in A/B
    assert_eq!(lt.and(lt.not()).bitmask(), 0);
    assert!(lt.or(ge).all());
    assert!(!Mask8::splat(false).any());
    assert!(Mask8::splat(true).all());
    // f64 masks.
    let ad = F64x4::from_array(AD);
    let bd = F64x4::from_array(BD);
    let ltd = ad.simd_lt(bd);
    let ged = ad.simd_ge(bd);
    for i in 0..4 {
        assert_eq!(ltd.bitmask() & (1 << i) != 0, AD[i] < BD[i], "lane {i}");
        assert_eq!(ged.bitmask() & (1 << i) != 0, AD[i] >= BD[i], "lane {i}");
    }
    assert_eq!(ltd.or(ged).bitmask(), 0xF);
    assert_eq!(ltd.and(ltd.not()).bitmask(), 0);
    assert!(ltd.or(ged).all());
    assert!(!MaskD4::splat(false).any());
    assert!(MaskD4::splat(true).all());
    assert!(!MaskD2::splat(false).any());
    assert!(MaskD2::splat(true).all());
}

#[test]
fn compares_are_false_on_nan() {
    let a = F32x4::from_array([f32::NAN, 0.0, f32::NAN, 1.0]);
    let b = F32x4::splat(0.0);
    assert_eq!(a.simd_lt(b).bitmask(), 0b0000);
    assert_eq!(a.simd_le(b).bitmask(), 0b0010);
    assert_eq!(a.simd_ge(b).bitmask(), 0b1010);
    let ad = F64x4::from_array([f64::NAN, 0.0, f64::NAN, 1.0]);
    let bd = F64x4::splat(0.0);
    assert_eq!(ad.simd_lt(bd).bitmask(), 0b0000);
    assert_eq!(ad.simd_le(bd).bitmask(), 0b0010);
    assert_eq!(ad.simd_ge(bd).bitmask(), 0b1010);
}

#[test]
fn select_blends_per_lane() {
    let a = F32x8::from_array(A);
    let b = F32x8::from_array(B);
    let m = a.simd_lt(b);
    let out = a.select(m, b).to_array();
    for i in 0..8 {
        assert_eq!(out[i], if A[i] < B[i] { A[i] } else { B[i] });
    }
    let ad = F64x4::from_array(AD);
    let bd = F64x4::from_array(BD);
    let md = ad.simd_lt(bd);
    let outd = ad.select(md, bd).to_array();
    for i in 0..4 {
        assert_eq!(outd[i], if AD[i] < BD[i] { AD[i] } else { BD[i] });
    }
}

#[test]
fn first_n_masks_lead_lanes() {
    assert_eq!(Mask8::first_n(0).bitmask(), 0b0000_0000);
    assert_eq!(Mask8::first_n(1).bitmask(), 0b0000_0001);
    assert_eq!(Mask8::first_n(5).bitmask(), 0b0001_1111);
    assert_eq!(Mask8::first_n(8).bitmask(), 0b1111_1111);
    assert_eq!(Mask8::first_n(99).bitmask(), 0b1111_1111);
}

#[test]
fn reductions_match_documented_association() {
    let a = F32x4::from_array([1.0, 1e-8, -1.0, 2.0]);
    assert_eq!(a.reduce_sum(), (1.0 + -1.0) + (1e-8 + 2.0));
    assert_eq!(a.reduce_min(), -1.0);
    assert_eq!(a.reduce_max(), 2.0);
    let b = F32x8::from_array(A);
    let arr = b.to_array();
    let lo = (arr[0] + arr[2]) + (arr[1] + arr[3]);
    let hi = (arr[4] + arr[6]) + (arr[5] + arr[7]);
    assert_eq!(b.reduce_sum(), lo + hi);
    assert_eq!(b.reduce_min(), -2.5);
    assert_eq!(b.reduce_max(), 42.0);
}

/// `mul_add` must round twice on every backend — it is NOT a fused
/// multiply-add. These operands make the two differ: `a·b` rounds to
/// exactly 1.0, so the unfused result is 0.0 while the fused result
/// keeps the `-2⁻⁶⁰`-ish residual.
#[test]
fn mul_add_is_unfused_on_every_lane_type() {
    let a32 = 1.0f32 + 2.0f32.powi(-13);
    let b32 = 1.0f32 - 2.0f32.powi(-13);
    let unfused32 = a32 * b32 + (-1.0f32);
    let fused32 = a32.mul_add(b32, -1.0);
    assert_ne!(unfused32, fused32, "operands must distinguish fma");
    let va = F32x8::splat(a32);
    let vb = F32x8::splat(b32);
    let vc = F32x8::splat(-1.0);
    for lane in va.mul_add(vb, vc).to_array() {
        assert_eq!(lane, unfused32);
    }

    let a64 = 1.0f64 + 2.0f64.powi(-30);
    let b64 = 1.0f64 - 2.0f64.powi(-30);
    let unfused64 = a64 * b64 + (-1.0f64);
    let fused64 = a64.mul_add(b64, -1.0);
    assert_ne!(unfused64, fused64, "operands must distinguish fma");
    let da = F64x4::splat(a64);
    let db = F64x4::splat(b64);
    let dc = F64x4::splat(-1.0);
    for lane in da.mul_add(db, dc).to_array() {
        assert_eq!(lane, unfused64);
    }
    let ea = F64x2::splat(a64);
    let eb = F64x2::splat(b64);
    let ec = F64x2::splat(-1.0);
    for lane in ea.mul_add(eb, ec).to_array() {
        assert_eq!(lane, unfused64);
    }
}

/// Runs the full lane-semantics contract against any [`SimdF32x8`]
/// implementor: lane-wise IEEE arithmetic, NaN-rejecting compares, SSE
/// operand-order min/max, per-lane select, the backend-generic
/// `mask_first_n`, and the fixed `reduce_sum` association.
fn check_f32x8_semantics<V: SimdF32x8>() {
    let a = V::from_array(A);
    let b = V::from_array(B);
    assert_eq!(a.to_array(), A);
    assert_eq!(V::splat(2.5).to_array(), [2.5; 8]);
    for i in 0..8 {
        assert_eq!(a.add(b).to_array()[i], A[i] + B[i]);
        assert_eq!(a.sub(b).to_array()[i], A[i] - B[i]);
        assert_eq!(a.mul(b).to_array()[i], A[i] * B[i]);
        assert_eq!(a.mul_add(b, a).to_array()[i], A[i] * B[i] + A[i]);
        assert_eq!(a.div(b).to_array()[i], A[i] / B[i]);
        assert_eq!(a.abs().to_array()[i], A[i].abs());
    }
    // NaN semantics: compares false, min/max take the second operand.
    let nan = f32::NAN;
    let x = V::from_array([nan, 1.0, 2.0, nan, 0.0, nan, -1.0, 3.0]);
    let y = V::from_array([5.0, nan, 1.0, nan, 0.0, 2.0, nan, 3.0]);
    let min = x.min(y).to_array();
    let max = x.max(y).to_array();
    assert_eq!(min[0], 5.0);
    assert!(min[1].is_nan());
    assert_eq!(min[2], 1.0);
    assert!(min[3].is_nan());
    assert_eq!(max[0], 5.0);
    assert!(max[1].is_nan());
    assert!(max[6].is_nan());
    let lt = x.simd_lt(y).bitmask();
    let le = x.simd_le(y).bitmask();
    let ge = x.simd_ge(y).bitmask();
    let xa = x.to_array();
    let ya = y.to_array();
    for i in 0..8 {
        assert_eq!(lt & (1 << i) != 0, xa[i] < ya[i], "lt lane {i}");
        assert_eq!(le & (1 << i) != 0, xa[i] <= ya[i], "le lane {i}");
        assert_eq!(ge & (1 << i) != 0, xa[i] >= ya[i], "ge lane {i}");
    }
    // select blends per lane.
    let m = a.simd_lt(b);
    let out = a.select(m, b).to_array();
    for i in 0..8 {
        assert_eq!(out[i], if A[i] < B[i] { A[i] } else { B[i] });
    }
    // Mask boolean algebra.
    let ltm = a.simd_lt(b);
    let gem = a.simd_ge(b);
    assert_eq!(ltm.or(gem).bitmask(), 0xFF);
    assert_eq!(ltm.and(ltm.not()).bitmask(), 0);
    assert!(V::Mask::splat(true).all());
    assert!(!V::Mask::splat(false).any());
    // mask_first_n is backend-generic.
    for n in 0..=9usize {
        let expect = if n >= 8 { 0xFF } else { (1u16 << n) as u8 - 1 };
        assert_eq!(V::mask_first_n(n).bitmask(), expect, "first_n({n})");
    }
    // reduce_sum association.
    let arr = a.to_array();
    let lo = (arr[0] + arr[2]) + (arr[1] + arr[3]);
    let hi = (arr[4] + arr[6]) + (arr[5] + arr[7]);
    assert_eq!(a.reduce_sum(), lo + hi);
}

/// Runs the full lane-semantics contract against any [`SimdF64x4`]
/// implementor.
fn check_f64x4_semantics<V: SimdF64x4>() {
    let a = V::from_array(AD);
    let b = V::from_array(BD);
    assert_eq!(a.to_array(), AD);
    assert_eq!(V::splat(0.75).to_array(), [0.75; 4]);
    for i in 0..4 {
        assert_eq!(a.add(b).to_array()[i], AD[i] + BD[i]);
        assert_eq!(a.sub(b).to_array()[i], AD[i] - BD[i]);
        assert_eq!(a.mul(b).to_array()[i], AD[i] * BD[i]);
        assert_eq!(a.mul_add(b, a).to_array()[i], AD[i] * BD[i] + AD[i]);
        assert_eq!(a.div(b).to_array()[i], AD[i] / BD[i]);
        assert_eq!(a.abs().to_array()[i], AD[i].abs());
    }
    // mul_add stays unfused.
    let af = 1.0f64 + 2.0f64.powi(-30);
    let bf = 1.0f64 - 2.0f64.powi(-30);
    let unfused = af * bf + (-1.0f64);
    assert_ne!(unfused, af.mul_add(bf, -1.0));
    for lane in V::splat(af)
        .mul_add(V::splat(bf), V::splat(-1.0))
        .to_array()
    {
        assert_eq!(lane, unfused);
    }
    // NaN semantics.
    let nan = f64::NAN;
    let x = V::from_array([nan, 1.0, 2.0, nan]);
    let y = V::from_array([5.0, nan, 1.0, nan]);
    let min = x.min(y).to_array();
    let max = x.max(y).to_array();
    assert_eq!(min[0], 5.0);
    assert!(min[1].is_nan());
    assert_eq!(min[2], 1.0);
    assert!(min[3].is_nan());
    assert_eq!(max[0], 5.0);
    assert!(max[1].is_nan());
    assert_eq!(max[2], 2.0);
    let xa = x.to_array();
    let ya = y.to_array();
    let lt = x.simd_lt(y).bitmask();
    let le = x.simd_le(y).bitmask();
    let ge = x.simd_ge(y).bitmask();
    for i in 0..4 {
        assert_eq!(lt & (1 << i) != 0, xa[i] < ya[i], "lt lane {i}");
        assert_eq!(le & (1 << i) != 0, xa[i] <= ya[i], "le lane {i}");
        assert_eq!(ge & (1 << i) != 0, xa[i] >= ya[i], "ge lane {i}");
    }
    // select + mask algebra.
    let m = a.simd_lt(b);
    let out = a.select(m, b).to_array();
    for i in 0..4 {
        assert_eq!(out[i], if AD[i] < BD[i] { AD[i] } else { BD[i] });
    }
    let ltm = a.simd_lt(b);
    let gem = a.simd_ge(b);
    assert_eq!(ltm.or(gem).bitmask(), 0xF);
    assert_eq!(ltm.and(ltm.not()).bitmask(), 0);
    assert!(V::Mask::splat(true).all());
    assert!(!V::Mask::splat(false).any());
}

#[test]
fn portable_types_satisfy_trait_contract() {
    check_f32x8_semantics::<F32x8>();
    check_f64x4_semantics::<F64x4>();
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_types_satisfy_trait_contract() {
    if !avx2_available() {
        return; // nothing to check on this host / build
    }
    check_f32x8_semantics::<avx2::F32x8A>();
    check_f64x4_semantics::<avx2::F64x4A>();
}

/// Every [`SimdF32x8`] op must agree bit-for-bit with the portable
/// pair type — the cross-backend regression the dispatcher relies on.
#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_lanes_bit_identical_to_portable() {
    use avx2::{F32x8A, F64x4A};
    if !avx2_available() {
        return;
    }
    let cases32 = [A, B, [0.0, -0.0, 1e-30, -1e30, 0.5, 2.0, -3.5, 9.75]];
    for a in cases32 {
        for b in cases32 {
            let (pa, pb) = (F32x8::from_array(a), F32x8::from_array(b));
            let (na, nb) = (F32x8A::from_array(a), F32x8A::from_array(b));
            let eq = |p: F32x8, n: F32x8A| {
                for (x, y) in p.to_array().iter().zip(n.to_array()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            };
            eq(pa.add(pb), na.add(nb));
            eq(pa.sub(pb), na.sub(nb));
            eq(pa.mul(pb), na.mul(nb));
            eq(pa.mul_add(pb, pa), na.mul_add(nb, na));
            eq(pa.div(pb), na.div(nb));
            eq(pa.min(pb), na.min(nb));
            eq(pa.max(pb), na.max(nb));
            assert_eq!(pa.simd_lt(pb).bitmask(), na.simd_lt(nb).bitmask());
            assert_eq!(pa.simd_le(pb).bitmask(), na.simd_le(nb).bitmask());
            assert_eq!(pa.simd_ge(pb).bitmask(), na.simd_ge(nb).bitmask());
            assert_eq!(
                pa.reduce_sum().to_bits(),
                SimdF32x8::reduce_sum(na).to_bits()
            );
        }
    }
    let cases64 = [AD, BD, [0.0, -0.0, 1e-300, -1e300]];
    for a in cases64 {
        for b in cases64 {
            let (pa, pb) = (F64x4::from_array(a), F64x4::from_array(b));
            let (na, nb) = (F64x4A::from_array(a), F64x4A::from_array(b));
            let eq = |p: F64x4, n: F64x4A| {
                for (x, y) in p.to_array().iter().zip(n.to_array()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            };
            eq(pa.add(pb), na.add(nb));
            eq(pa.sub(pb), na.sub(nb));
            eq(pa.mul(pb), na.mul(nb));
            eq(pa.mul_add(pb, pa), na.mul_add(nb, na));
            eq(pa.div(pb), na.div(nb));
            eq(pa.min(pb), na.min(nb));
            eq(pa.max(pb), na.max(nb));
            assert_eq!(pa.simd_lt(pb).bitmask(), na.simd_lt(nb).bitmask());
            assert_eq!(pa.simd_le(pb).bitmask(), na.simd_le(nb).bitmask());
            assert_eq!(pa.simd_ge(pb).bitmask(), na.simd_ge(nb).bitmask());
        }
    }
}

#[test]
fn backend_dispatch_is_stable_and_legal() {
    let b = backend();
    assert!(matches!(b, Backend::Scalar | Backend::Sse2 | Backend::Avx2));
    // The decision is cached: repeated calls agree.
    assert_eq!(backend(), b);
    if b == Backend::Avx2 {
        assert!(avx2_available());
    }
    assert_eq!(Backend::Scalar.name(), "scalar");
    assert_eq!(Backend::Sse2.name(), "sse2");
    assert_eq!(Backend::Avx2.name(), "avx2");
    assert!(Backend::Avx2.fuses_rotation());
    assert!(!Backend::Sse2.fuses_rotation());
    assert!(!Backend::Scalar.fuses_rotation());
}

#[test]
fn phasor_rotation_matches_complex_multiply() {
    use crate::complex::Complex;
    let n = 13; // deliberately not a multiple of ACC_LANES
    let mut vals: Vec<Complex> = (0..n)
        .map(|i| Complex::from_polar(1.0, 0.37 * i as f64))
        .collect();
    let deltas: Vec<Complex> = (0..n)
        .map(|i| Complex::from_polar(1.0, -0.11 * i as f64))
        .collect();
    let mut re: Vec<f64> = vals.iter().map(|c| c.re).collect();
    let mut im: Vec<f64> = vals.iter().map(|c| c.im).collect();
    let dre: Vec<f64> = deltas.iter().map(|c| c.re).collect();
    let dim: Vec<f64> = deltas.iter().map(|c| c.im).collect();
    for _ in 0..50 {
        let scalar_sum: Complex = vals.iter().copied().fold(Complex::ZERO, |a, c| a + c);
        // The portable arm pins the rotation bit-identically to the
        // Complex multiply; the avx2 arm fuses it (covered by
        // avx2_phasor_matches_portable_within_fused_budget).
        let (sr, si) = phasor::sum_and_advance_with(Backend::Sse2, &mut re, &mut im, &dre, &dim);
        // Reassociated sum: tiny absolute deviation, not bit equality.
        assert!((sr - scalar_sum.re).abs() < 1e-12);
        assert!((si - scalar_sum.im).abs() < 1e-12);
        for (v, d) in vals.iter_mut().zip(&deltas) {
            *v *= *d;
        }
        // Rotation itself is pinned bit-identically.
        for i in 0..n {
            assert_eq!(re[i], vals[i].re, "re lane {i}");
            assert_eq!(im[i], vals[i].im, "im lane {i}");
        }
    }
}

#[test]
fn scalar_and_sse2_phasor_arms_agree_bitwise() {
    let n = 11;
    let mk = || {
        let re: Vec<f64> = (0..n).map(|i| (0.29 * i as f64).cos()).collect();
        let im: Vec<f64> = (0..n).map(|i| (0.29 * i as f64).sin()).collect();
        (re, im)
    };
    let dre: Vec<f64> = (0..n).map(|i| (-0.07 * i as f64).cos()).collect();
    let dim: Vec<f64> = (0..n).map(|i| (-0.07 * i as f64).sin()).collect();
    let w: Vec<f64> = (0..n).map(|i| 0.5 + 0.1 * i as f64).collect();
    let (mut re_a, mut im_a) = mk();
    let (mut re_b, mut im_b) = mk();
    for _ in 0..20 {
        let a = phasor::weighted_sum_and_advance_with(
            Backend::Scalar,
            &mut re_a,
            &mut im_a,
            &dre,
            &dim,
            &w,
        );
        let b = phasor::weighted_sum_and_advance_with(
            Backend::Sse2,
            &mut re_b,
            &mut im_b,
            &dre,
            &dim,
            &w,
        );
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_eq!(re_a, re_b);
        assert_eq!(im_a, im_b);
    }
}

/// The AVX2 phasor kernel: sums bit-identical to the portable arm,
/// rotation bit-identical to the *fused* scalar formula, and the
/// fused/unfused divergence bounded by the documented budget
/// (≤ k·2⁻⁵² absolute per component after k steps on unit phasors).
#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_phasor_matches_portable_within_fused_budget() {
    if !avx2_available() {
        return;
    }
    for n in [1usize, 4, 7, 13, 64] {
        let mk = |phase: f64| {
            let re: Vec<f64> = (0..n).map(|i| (phase * i as f64).cos()).collect();
            let im: Vec<f64> = (0..n).map(|i| (phase * i as f64).sin()).collect();
            (re, im)
        };
        let dre: Vec<f64> = (0..n).map(|i| (-0.11 * i as f64).cos()).collect();
        let dim: Vec<f64> = (0..n).map(|i| (-0.11 * i as f64).sin()).collect();
        let (mut re_p, mut im_p) = mk(0.37);
        let (mut re_v, mut im_v) = mk(0.37);
        // Fused-scalar reference state advanced with f64::mul_add.
        let (mut re_f, mut im_f) = mk(0.37);
        let steps = 50;
        for step in 0..steps {
            let p = phasor::sum_and_advance_with(Backend::Sse2, &mut re_p, &mut im_p, &dre, &dim);
            let v = phasor::sum_and_advance_with(Backend::Avx2, &mut re_v, &mut im_v, &dre, &dim);
            // Sums are over the *pre-advance* state, which diverges by
            // the fused-rotation budget; at the first step the states
            // are identical, so the sums must be bit-identical.
            if step == 0 {
                assert_eq!(p.0.to_bits(), v.0.to_bits());
                assert_eq!(p.1.to_bits(), v.1.to_bits());
            } else {
                let budget = (step * n) as f64 * 2.0f64.powi(-50);
                assert!((p.0 - v.0).abs() <= budget, "sum re diverged past budget");
                assert!((p.1 - v.1).abs() <= budget, "sum im diverged past budget");
            }
            // The avx2 rotation is pinned bit-identically to the
            // fused-scalar formula.
            for i in 0..n {
                let (r, m) = (re_f[i], im_f[i]);
                re_f[i] = r.mul_add(dre[i], -(m * dim[i]));
                im_f[i] = r.mul_add(dim[i], m * dre[i]);
            }
            assert_eq!(re_v, re_f, "fused rotation drifted from reference");
            assert_eq!(im_v, im_f, "fused rotation drifted from reference");
            // And the fused/unfused states stay within the documented
            // per-step ULP budget.
            let budget = (step + 1) as f64 * 2.0f64.powi(-50);
            for i in 0..n {
                assert!((re_p[i] - re_v[i]).abs() <= budget, "lane {i} re");
                assert!((im_p[i] - im_v[i]).abs() <= budget, "lane {i} im");
            }
        }
    }
}

#[test]
fn weighted_phasor_sum_applies_real_scales() {
    let mut re = vec![1.0, 0.0, -1.0];
    let mut im = vec![0.0, 1.0, 0.0];
    let dre = vec![1.0; 3];
    let dim = vec![0.0; 3];
    let w = vec![2.0, 3.0, 5.0];
    let (sr, si) = phasor::weighted_sum_and_advance(&mut re, &mut im, &dre, &dim, &w);
    assert_eq!(sr, (1.0 * 2.0 - 1.0 * 5.0) + 0.0);
    assert_eq!(si, 3.0);
    // Identity rotation leaves the phasors unchanged.
    assert_eq!(re, vec![1.0, 0.0, -1.0]);
    assert_eq!(im, vec![0.0, 1.0, 0.0]);
}

/// Weighted sums are bit-identical across ALL arms (the weighting is
/// unfused mul-then-add everywhere); only the rotation may fuse.
#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_weighted_sums_bit_identical_on_first_step() {
    if !avx2_available() {
        return;
    }
    let n = 13;
    let re0: Vec<f64> = (0..n).map(|i| (0.41 * i as f64).cos()).collect();
    let im0: Vec<f64> = (0..n).map(|i| (0.41 * i as f64).sin()).collect();
    let dre: Vec<f64> = (0..n).map(|i| (-0.05 * i as f64).cos()).collect();
    let dim: Vec<f64> = (0..n).map(|i| (-0.05 * i as f64).sin()).collect();
    let w: Vec<f64> = (0..n).map(|i| 0.25 + 0.5 * i as f64).collect();
    let (mut re_p, mut im_p) = (re0.clone(), im0.clone());
    let (mut re_v, mut im_v) = (re0, im0);
    let p =
        phasor::weighted_sum_and_advance_with(Backend::Sse2, &mut re_p, &mut im_p, &dre, &dim, &w);
    let v =
        phasor::weighted_sum_and_advance_with(Backend::Avx2, &mut re_v, &mut im_v, &dre, &dim, &w);
    assert_eq!(p.0.to_bits(), v.0.to_bits());
    assert_eq!(p.1.to_bits(), v.1.to_bits());
}
