//! Runtime-dispatched SIMD substrate for the packet-tracing hot path.
//!
//! SurfOS vendors its dependencies, so rather than pull in `wide` or wait
//! for `std::simd` we expose the handful of lane operations the tracing
//! and re-phasing kernels actually need: splat/load, add/sub/mul,
//! `mul_add`, min/max, compares producing lane masks, mask boolean
//! algebra with `bitmask`/`any`/`all`, blend/`select`, and horizontal
//! reductions.
//!
//! # Backends
//!
//! Three kernel arms sit behind one API, selected **once per process**
//! by [`backend()`] (see [`Backend`] for the dispatch and override
//! rules):
//!
//! - **AVX2** ([`Backend::Avx2`], the default on capable hosts): native
//!   8-lane `f32` ([`avx2::F32x8A`]) and 4-lane `f64`
//!   ([`avx2::F64x4A`]) registers, selected at startup via
//!   `is_x86_feature_detected!("avx2")` + `"fma"`. Only the dispatched
//!   kernels (phasor sweep, packet traversal, interval banks, the
//!   `crossing_t` batch solve) change instruction sets; every lane
//!   *semantic* stays bit-identical to the portable arm except the
//!   phasor rotation, which is allowed to fuse (see [`phasor`]).
//! - **SSE2** ([`Backend::Sse2`]): the portable wide-lane arm.
//!   [`F32x4`] wraps a `__m128` using intrinsics in the x86_64 baseline
//!   — no runtime feature detection needed; [`F32x8`] / [`F64x4`] are
//!   pairs of baseline registers. On non-x86_64 targets (or with
//!   `--features scalar-fallback`) the same types compile to plain
//!   arrays with loops shaped so the results are **bit-identical**,
//!   including the SSE operand-order semantics of `min`/`max` under NaN
//!   and the fixed `(a[0]+a[2]) + (a[1]+a[3])` association of
//!   [`F32x4::reduce_sum`].
//! - **Scalar** ([`Backend::Scalar`]): the reference arm. Dispatched
//!   kernels fall back to their per-candidate scalar loops (no packets,
//!   no prefilter banks), which is what every wide arm is tested
//!   against.
//!
//! The only `unsafe` in the workspace is the audited `sse!` / `avx!`
//! wrappers around **value-based** intrinsics (no pointers) plus the
//! `#[target_feature]` kernel entry points in [`avx2`], each guarded by
//! the one-time CPU detection.
//!
//! `mul_add` is **not fused** on any backend (it is `a * b + c` with
//! both roundings) so all arms agree bit-for-bit; fused math is confined
//! to the AVX2 phasor kernel, which documents its ULP budget.
//!
//! # f64 lanes
//!
//! [`F64x2`] / [`F64x4`] (and the native [`avx2::F64x4A`]) carry the
//! *exact* path math: the `crossing_t` segment-intersection solve in
//! `surfos-geometry` runs four walls at a time with lane-wise IEEE
//! operations in the same order as the scalar solve, so accepted
//! crossings are bit-identical to the per-wall reference.
//!
//! The [`SimdF32x8`] / [`SimdF64x4`] traits let those kernels be written
//! once, generic over the portable pair types and the native AVX2
//! registers; the provided [`SimdF32x8::mask_first_n`] is
//! backend-generic (an index-compare, not a layout hack).
//!
//! The [`phasor`] submodule holds the structure-of-arrays complex
//! helpers used by `ChannelTrace::sweep_evaluate`; see its docs for the
//! reassociation / ULP policy.

#![allow(clippy::should_implement_trait)]

use core::sync::atomic::{AtomicU8, Ordering};

#[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
mod backend {
    use core::arch::x86_64::*;

    /// Wraps a value-based SSE intrinsic call.
    ///
    /// SAFETY: SSE and SSE2 are unconditionally part of the `x86_64`
    /// baseline target features, so the wrapped intrinsics (all
    /// value-based — no pointers) can never execute on a CPU that lacks
    /// them when this backend is compiled in.
    macro_rules! sse {
        ($e:expr) => {
            unsafe { $e }
        };
    }

    /// Four `f32` lanes in one SSE register.
    #[derive(Clone, Copy, Debug)]
    pub struct F32x4(pub(super) __m128);

    /// Lane mask for [`F32x4`]: each lane is all-ones (true) or all-zeros.
    #[derive(Clone, Copy, Debug)]
    pub struct Mask4(pub(super) __m128);

    /// Two `f64` lanes in one SSE2 register.
    #[derive(Clone, Copy, Debug)]
    pub struct F64x2(pub(super) __m128d);

    /// Lane mask for [`F64x2`]: each lane is all-ones (true) or all-zeros.
    #[derive(Clone, Copy, Debug)]
    pub struct MaskD2(pub(super) __m128d);

    #[inline]
    fn all_ones() -> __m128 {
        let z = sse!(_mm_setzero_ps());
        sse!(_mm_cmpeq_ps(z, z))
    }

    #[inline]
    fn all_ones_pd() -> __m128d {
        let z = sse!(_mm_setzero_pd());
        sse!(_mm_cmpeq_pd(z, z))
    }

    impl F32x4 {
        /// Broadcasts `v` to all lanes.
        #[inline]
        pub fn splat(v: f32) -> Self {
            F32x4(sse!(_mm_set1_ps(v)))
        }

        /// Loads the four lanes from an array (`a[0]` is lane 0).
        #[inline]
        pub fn from_array(a: [f32; 4]) -> Self {
            F32x4(sse!(_mm_setr_ps(a[0], a[1], a[2], a[3])))
        }

        /// Stores the four lanes to an array (`a[0]` is lane 0).
        #[inline]
        pub fn to_array(self) -> [f32; 4] {
            let v = self.0;
            [
                sse!(_mm_cvtss_f32(v)),
                sse!(_mm_cvtss_f32(_mm_shuffle_ps::<0b01_01_01_01>(v, v))),
                sse!(_mm_cvtss_f32(_mm_shuffle_ps::<0b10_10_10_10>(v, v))),
                sse!(_mm_cvtss_f32(_mm_shuffle_ps::<0b11_11_11_11>(v, v))),
            ]
        }

        /// Lane-wise `self + rhs`.
        #[inline]
        pub fn add(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_add_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self - rhs`.
        #[inline]
        pub fn sub(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_sub_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self * rhs`.
        #[inline]
        pub fn mul(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_mul_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self * b + c`, rounded twice (**not** fused; see
        /// module docs).
        #[inline]
        pub fn mul_add(self, b: Self, c: Self) -> Self {
            F32x4(sse!(_mm_add_ps(_mm_mul_ps(self.0, b.0), c.0)))
        }

        /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on
        /// `0/0`).
        #[inline]
        pub fn div(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_div_ps(self.0, rhs.0)))
        }

        /// Lane-wise absolute value (clears the sign bit; `|NaN|` keeps
        /// its payload).
        #[inline]
        pub fn abs(self) -> Self {
            F32x4(sse!(_mm_andnot_ps(_mm_set1_ps(-0.0), self.0)))
        }

        /// Lane-wise minimum with SSE `minps` semantics: returns the
        /// *second* operand (`rhs`) when the lanes compare unordered
        /// (NaN) or equal.
        #[inline]
        pub fn min(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_min_ps(self.0, rhs.0)))
        }

        /// Lane-wise maximum with SSE `maxps` semantics (see [`Self::min`]).
        #[inline]
        pub fn max(self, rhs: Self) -> Self {
            F32x4(sse!(_mm_max_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self < rhs` (false on NaN).
        #[inline]
        pub fn simd_lt(self, rhs: Self) -> Mask4 {
            Mask4(sse!(_mm_cmplt_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self <= rhs` (false on NaN).
        #[inline]
        pub fn simd_le(self, rhs: Self) -> Mask4 {
            Mask4(sse!(_mm_cmple_ps(self.0, rhs.0)))
        }

        /// Lane-wise `self >= rhs` (false on NaN).
        #[inline]
        pub fn simd_ge(self, rhs: Self) -> Mask4 {
            Mask4(sse!(_mm_cmpge_ps(self.0, rhs.0)))
        }

        /// Picks `self` where `mask` is true, `other` where false.
        #[inline]
        pub fn select(self, mask: Mask4, other: Self) -> Self {
            F32x4(sse!(_mm_or_ps(
                _mm_and_ps(mask.0, self.0),
                _mm_andnot_ps(mask.0, other.0),
            )))
        }

        /// Horizontal sum with the fixed association
        /// `(a[0] + a[2]) + (a[1] + a[3])`.
        #[inline]
        pub fn reduce_sum(self) -> f32 {
            let v = self.0;
            let hi = sse!(_mm_movehl_ps(v, v));
            let pair = sse!(_mm_add_ps(v, hi));
            let odd = sse!(_mm_shuffle_ps::<0b01>(pair, pair));
            sse!(_mm_cvtss_f32(_mm_add_ss(pair, odd)))
        }

        /// Horizontal minimum (SSE `minps` NaN semantics per step).
        #[inline]
        pub fn reduce_min(self) -> f32 {
            let v = self.0;
            let hi = sse!(_mm_movehl_ps(v, v));
            let pair = sse!(_mm_min_ps(v, hi));
            let odd = sse!(_mm_shuffle_ps::<0b01>(pair, pair));
            sse!(_mm_cvtss_f32(_mm_min_ss(pair, odd)))
        }

        /// Horizontal maximum (SSE `maxps` NaN semantics per step).
        #[inline]
        pub fn reduce_max(self) -> f32 {
            let v = self.0;
            let hi = sse!(_mm_movehl_ps(v, v));
            let pair = sse!(_mm_max_ps(v, hi));
            let odd = sse!(_mm_shuffle_ps::<0b01>(pair, pair));
            sse!(_mm_cvtss_f32(_mm_max_ss(pair, odd)))
        }
    }

    impl Mask4 {
        /// Mask with every lane set to `b`.
        #[inline]
        pub fn splat(b: bool) -> Self {
            if b {
                Mask4(all_ones())
            } else {
                Mask4(sse!(_mm_setzero_ps()))
            }
        }

        /// Lane-wise AND.
        #[inline]
        pub fn and(self, rhs: Self) -> Self {
            Mask4(sse!(_mm_and_ps(self.0, rhs.0)))
        }

        /// Lane-wise OR.
        #[inline]
        pub fn or(self, rhs: Self) -> Self {
            Mask4(sse!(_mm_or_ps(self.0, rhs.0)))
        }

        /// Lane-wise NOT.
        #[inline]
        pub fn not(self) -> Self {
            Mask4(sse!(_mm_andnot_ps(self.0, all_ones())))
        }

        /// One bit per lane, lane 0 in bit 0.
        #[inline]
        pub fn bitmask(self) -> u8 {
            (sse!(_mm_movemask_ps(self.0)) & 0xF) as u8
        }
    }

    impl F64x2 {
        /// Broadcasts `v` to both lanes.
        #[inline]
        pub fn splat(v: f64) -> Self {
            F64x2(sse!(_mm_set1_pd(v)))
        }

        /// Loads the two lanes from an array (`a[0]` is lane 0).
        #[inline]
        pub fn from_array(a: [f64; 2]) -> Self {
            F64x2(sse!(_mm_setr_pd(a[0], a[1])))
        }

        /// Stores the two lanes to an array (`a[0]` is lane 0).
        #[inline]
        pub fn to_array(self) -> [f64; 2] {
            let v = self.0;
            [
                sse!(_mm_cvtsd_f64(v)),
                sse!(_mm_cvtsd_f64(_mm_unpackhi_pd(v, v))),
            ]
        }

        /// Lane-wise `self + rhs`.
        #[inline]
        pub fn add(self, rhs: Self) -> Self {
            F64x2(sse!(_mm_add_pd(self.0, rhs.0)))
        }

        /// Lane-wise `self - rhs`.
        #[inline]
        pub fn sub(self, rhs: Self) -> Self {
            F64x2(sse!(_mm_sub_pd(self.0, rhs.0)))
        }

        /// Lane-wise `self * rhs`.
        #[inline]
        pub fn mul(self, rhs: Self) -> Self {
            F64x2(sse!(_mm_mul_pd(self.0, rhs.0)))
        }

        /// Lane-wise `self * b + c`, rounded twice (**not** fused; see
        /// module docs).
        #[inline]
        pub fn mul_add(self, b: Self, c: Self) -> Self {
            F64x2(sse!(_mm_add_pd(_mm_mul_pd(self.0, b.0), c.0)))
        }

        /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on
        /// `0/0`).
        #[inline]
        pub fn div(self, rhs: Self) -> Self {
            F64x2(sse!(_mm_div_pd(self.0, rhs.0)))
        }

        /// Lane-wise absolute value (clears the sign bit; `|NaN|` keeps
        /// its payload).
        #[inline]
        pub fn abs(self) -> Self {
            F64x2(sse!(_mm_andnot_pd(_mm_set1_pd(-0.0), self.0)))
        }

        /// Lane-wise minimum with SSE2 `minpd` semantics: returns the
        /// *second* operand (`rhs`) when the lanes compare unordered
        /// (NaN) or equal.
        #[inline]
        pub fn min(self, rhs: Self) -> Self {
            F64x2(sse!(_mm_min_pd(self.0, rhs.0)))
        }

        /// Lane-wise maximum with SSE2 `maxpd` semantics (see
        /// [`Self::min`]).
        #[inline]
        pub fn max(self, rhs: Self) -> Self {
            F64x2(sse!(_mm_max_pd(self.0, rhs.0)))
        }

        /// Lane-wise `self < rhs` (false on NaN).
        #[inline]
        pub fn simd_lt(self, rhs: Self) -> MaskD2 {
            MaskD2(sse!(_mm_cmplt_pd(self.0, rhs.0)))
        }

        /// Lane-wise `self <= rhs` (false on NaN).
        #[inline]
        pub fn simd_le(self, rhs: Self) -> MaskD2 {
            MaskD2(sse!(_mm_cmple_pd(self.0, rhs.0)))
        }

        /// Lane-wise `self >= rhs` (false on NaN).
        #[inline]
        pub fn simd_ge(self, rhs: Self) -> MaskD2 {
            MaskD2(sse!(_mm_cmpge_pd(self.0, rhs.0)))
        }

        /// Picks `self` where `mask` is true, `other` where false.
        #[inline]
        pub fn select(self, mask: MaskD2, other: Self) -> Self {
            F64x2(sse!(_mm_or_pd(
                _mm_and_pd(mask.0, self.0),
                _mm_andnot_pd(mask.0, other.0),
            )))
        }
    }

    impl MaskD2 {
        /// Mask with every lane set to `b`.
        #[inline]
        pub fn splat(b: bool) -> Self {
            if b {
                MaskD2(all_ones_pd())
            } else {
                MaskD2(sse!(_mm_setzero_pd()))
            }
        }

        /// Lane-wise AND.
        #[inline]
        pub fn and(self, rhs: Self) -> Self {
            MaskD2(sse!(_mm_and_pd(self.0, rhs.0)))
        }

        /// Lane-wise OR.
        #[inline]
        pub fn or(self, rhs: Self) -> Self {
            MaskD2(sse!(_mm_or_pd(self.0, rhs.0)))
        }

        /// Lane-wise NOT.
        #[inline]
        pub fn not(self) -> Self {
            MaskD2(sse!(_mm_andnot_pd(self.0, all_ones_pd())))
        }

        /// One bit per lane, lane 0 in bit 0.
        #[inline]
        pub fn bitmask(self) -> u8 {
            (sse!(_mm_movemask_pd(self.0)) & 0x3) as u8
        }
    }
}

#[cfg(any(not(target_arch = "x86_64"), feature = "scalar-fallback"))]
mod backend {
    /// Four `f32` lanes in a plain array (scalar fallback backend).
    #[derive(Clone, Copy, Debug)]
    pub struct F32x4(pub(super) [f32; 4]);

    /// Lane mask for [`F32x4`], one bit per lane (lane 0 in bit 0).
    #[derive(Clone, Copy, Debug)]
    pub struct Mask4(pub(super) u8);

    /// Two `f64` lanes in a plain array (scalar fallback backend).
    #[derive(Clone, Copy, Debug)]
    pub struct F64x2(pub(super) [f64; 2]);

    /// Lane mask for [`F64x2`], one bit per lane (lane 0 in bit 0).
    #[derive(Clone, Copy, Debug)]
    pub struct MaskD2(pub(super) u8);

    /// SSE `minps` semantics: second operand on unordered or equal.
    #[inline]
    fn min_sse(a: f32, b: f32) -> f32 {
        if a < b {
            a
        } else {
            b
        }
    }

    /// SSE `maxps` semantics: second operand on unordered or equal.
    #[inline]
    fn max_sse(a: f32, b: f32) -> f32 {
        if a > b {
            a
        } else {
            b
        }
    }

    /// SSE2 `minpd` semantics: second operand on unordered or equal.
    #[inline]
    fn min_sse_d(a: f64, b: f64) -> f64 {
        if a < b {
            a
        } else {
            b
        }
    }

    /// SSE2 `maxpd` semantics: second operand on unordered or equal.
    #[inline]
    fn max_sse_d(a: f64, b: f64) -> f64 {
        if a > b {
            a
        } else {
            b
        }
    }

    impl F32x4 {
        /// Broadcasts `v` to all lanes.
        #[inline]
        pub fn splat(v: f32) -> Self {
            F32x4([v; 4])
        }

        /// Loads the four lanes from an array (`a[0]` is lane 0).
        #[inline]
        pub fn from_array(a: [f32; 4]) -> Self {
            F32x4(a)
        }

        /// Stores the four lanes to an array (`a[0]` is lane 0).
        #[inline]
        pub fn to_array(self) -> [f32; 4] {
            self.0
        }

        /// Lane-wise `self + rhs`.
        #[inline]
        pub fn add(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| self.0[i] + rhs.0[i]))
        }

        /// Lane-wise `self - rhs`.
        #[inline]
        pub fn sub(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| self.0[i] - rhs.0[i]))
        }

        /// Lane-wise `self * rhs`.
        #[inline]
        pub fn mul(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| self.0[i] * rhs.0[i]))
        }

        /// Lane-wise `self * b + c`, rounded twice (**not** fused; see
        /// module docs).
        #[inline]
        pub fn mul_add(self, b: Self, c: Self) -> Self {
            F32x4(core::array::from_fn(|i| self.0[i] * b.0[i] + c.0[i]))
        }

        /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on
        /// `0/0`).
        #[inline]
        pub fn div(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| self.0[i] / rhs.0[i]))
        }

        /// Lane-wise absolute value (clears the sign bit; `|NaN|` keeps
        /// its payload).
        #[inline]
        pub fn abs(self) -> Self {
            F32x4(core::array::from_fn(|i| {
                f32::from_bits(self.0[i].to_bits() & 0x7fff_ffff)
            }))
        }

        /// Lane-wise minimum with SSE `minps` semantics (see the SSE
        /// backend's docs).
        #[inline]
        pub fn min(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| min_sse(self.0[i], rhs.0[i])))
        }

        /// Lane-wise maximum with SSE `maxps` semantics.
        #[inline]
        pub fn max(self, rhs: Self) -> Self {
            F32x4(core::array::from_fn(|i| max_sse(self.0[i], rhs.0[i])))
        }

        /// Lane-wise `self < rhs` (false on NaN).
        #[inline]
        pub fn simd_lt(self, rhs: Self) -> Mask4 {
            let mut m = 0u8;
            for i in 0..4 {
                m |= u8::from(self.0[i] < rhs.0[i]) << i;
            }
            Mask4(m)
        }

        /// Lane-wise `self <= rhs` (false on NaN).
        #[inline]
        pub fn simd_le(self, rhs: Self) -> Mask4 {
            let mut m = 0u8;
            for i in 0..4 {
                m |= u8::from(self.0[i] <= rhs.0[i]) << i;
            }
            Mask4(m)
        }

        /// Lane-wise `self >= rhs` (false on NaN).
        #[inline]
        pub fn simd_ge(self, rhs: Self) -> Mask4 {
            let mut m = 0u8;
            for i in 0..4 {
                m |= u8::from(self.0[i] >= rhs.0[i]) << i;
            }
            Mask4(m)
        }

        /// Picks `self` where `mask` is true, `other` where false.
        #[inline]
        pub fn select(self, mask: Mask4, other: Self) -> Self {
            F32x4(core::array::from_fn(|i| {
                if mask.0 & (1 << i) != 0 {
                    self.0[i]
                } else {
                    other.0[i]
                }
            }))
        }

        /// Horizontal sum with the fixed association
        /// `(a[0] + a[2]) + (a[1] + a[3])` (matches the SSE backend).
        #[inline]
        pub fn reduce_sum(self) -> f32 {
            (self.0[0] + self.0[2]) + (self.0[1] + self.0[3])
        }

        /// Horizontal minimum (SSE `minps` NaN semantics per step).
        #[inline]
        pub fn reduce_min(self) -> f32 {
            min_sse(min_sse(self.0[0], self.0[2]), min_sse(self.0[1], self.0[3]))
        }

        /// Horizontal maximum (SSE `maxps` NaN semantics per step).
        #[inline]
        pub fn reduce_max(self) -> f32 {
            max_sse(max_sse(self.0[0], self.0[2]), max_sse(self.0[1], self.0[3]))
        }
    }

    impl Mask4 {
        /// Mask with every lane set to `b`.
        #[inline]
        pub fn splat(b: bool) -> Self {
            Mask4(if b { 0xF } else { 0 })
        }

        /// Lane-wise AND.
        #[inline]
        pub fn and(self, rhs: Self) -> Self {
            Mask4(self.0 & rhs.0)
        }

        /// Lane-wise OR.
        #[inline]
        pub fn or(self, rhs: Self) -> Self {
            Mask4(self.0 | rhs.0)
        }

        /// Lane-wise NOT.
        #[inline]
        pub fn not(self) -> Self {
            Mask4(!self.0 & 0xF)
        }

        /// One bit per lane, lane 0 in bit 0.
        #[inline]
        pub fn bitmask(self) -> u8 {
            self.0
        }
    }

    impl F64x2 {
        /// Broadcasts `v` to both lanes.
        #[inline]
        pub fn splat(v: f64) -> Self {
            F64x2([v; 2])
        }

        /// Loads the two lanes from an array (`a[0]` is lane 0).
        #[inline]
        pub fn from_array(a: [f64; 2]) -> Self {
            F64x2(a)
        }

        /// Stores the two lanes to an array (`a[0]` is lane 0).
        #[inline]
        pub fn to_array(self) -> [f64; 2] {
            self.0
        }

        /// Lane-wise `self + rhs`.
        #[inline]
        pub fn add(self, rhs: Self) -> Self {
            F64x2(core::array::from_fn(|i| self.0[i] + rhs.0[i]))
        }

        /// Lane-wise `self - rhs`.
        #[inline]
        pub fn sub(self, rhs: Self) -> Self {
            F64x2(core::array::from_fn(|i| self.0[i] - rhs.0[i]))
        }

        /// Lane-wise `self * rhs`.
        #[inline]
        pub fn mul(self, rhs: Self) -> Self {
            F64x2(core::array::from_fn(|i| self.0[i] * rhs.0[i]))
        }

        /// Lane-wise `self * b + c`, rounded twice (**not** fused; see
        /// module docs).
        #[inline]
        pub fn mul_add(self, b: Self, c: Self) -> Self {
            F64x2(core::array::from_fn(|i| self.0[i] * b.0[i] + c.0[i]))
        }

        /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on
        /// `0/0`).
        #[inline]
        pub fn div(self, rhs: Self) -> Self {
            F64x2(core::array::from_fn(|i| self.0[i] / rhs.0[i]))
        }

        /// Lane-wise absolute value (clears the sign bit; `|NaN|` keeps
        /// its payload).
        #[inline]
        pub fn abs(self) -> Self {
            F64x2(core::array::from_fn(|i| {
                f64::from_bits(self.0[i].to_bits() & 0x7fff_ffff_ffff_ffff)
            }))
        }

        /// Lane-wise minimum with SSE2 `minpd` semantics.
        #[inline]
        pub fn min(self, rhs: Self) -> Self {
            F64x2(core::array::from_fn(|i| min_sse_d(self.0[i], rhs.0[i])))
        }

        /// Lane-wise maximum with SSE2 `maxpd` semantics.
        #[inline]
        pub fn max(self, rhs: Self) -> Self {
            F64x2(core::array::from_fn(|i| max_sse_d(self.0[i], rhs.0[i])))
        }

        /// Lane-wise `self < rhs` (false on NaN).
        #[inline]
        pub fn simd_lt(self, rhs: Self) -> MaskD2 {
            let mut m = 0u8;
            for i in 0..2 {
                m |= u8::from(self.0[i] < rhs.0[i]) << i;
            }
            MaskD2(m)
        }

        /// Lane-wise `self <= rhs` (false on NaN).
        #[inline]
        pub fn simd_le(self, rhs: Self) -> MaskD2 {
            let mut m = 0u8;
            for i in 0..2 {
                m |= u8::from(self.0[i] <= rhs.0[i]) << i;
            }
            MaskD2(m)
        }

        /// Lane-wise `self >= rhs` (false on NaN).
        #[inline]
        pub fn simd_ge(self, rhs: Self) -> MaskD2 {
            let mut m = 0u8;
            for i in 0..2 {
                m |= u8::from(self.0[i] >= rhs.0[i]) << i;
            }
            MaskD2(m)
        }

        /// Picks `self` where `mask` is true, `other` where false.
        #[inline]
        pub fn select(self, mask: MaskD2, other: Self) -> Self {
            F64x2(core::array::from_fn(|i| {
                if mask.0 & (1 << i) != 0 {
                    self.0[i]
                } else {
                    other.0[i]
                }
            }))
        }
    }

    impl MaskD2 {
        /// Mask with every lane set to `b`.
        #[inline]
        pub fn splat(b: bool) -> Self {
            MaskD2(if b { 0x3 } else { 0 })
        }

        /// Lane-wise AND.
        #[inline]
        pub fn and(self, rhs: Self) -> Self {
            MaskD2(self.0 & rhs.0)
        }

        /// Lane-wise OR.
        #[inline]
        pub fn or(self, rhs: Self) -> Self {
            MaskD2(self.0 | rhs.0)
        }

        /// Lane-wise NOT.
        #[inline]
        pub fn not(self) -> Self {
            MaskD2(!self.0 & 0x3)
        }

        /// One bit per lane, lane 0 in bit 0.
        #[inline]
        pub fn bitmask(self) -> u8 {
            self.0
        }
    }
}

pub use backend::{F32x4, F64x2, Mask4, MaskD2};

#[cfg(target_arch = "x86_64")]
pub mod avx2;
pub mod phasor;

impl Mask4 {
    /// `true` if any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// `true` if every lane is set.
    #[inline]
    pub fn all(self) -> bool {
        self.bitmask() == 0xF
    }
}

impl MaskD2 {
    /// `true` if any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// `true` if every lane is set.
    #[inline]
    pub fn all(self) -> bool {
        self.bitmask() == 0x3
    }
}

/// Eight `f32` lanes as a pair of [`F32x4`] — the portable wide-lane arm
/// of the ray-packet width used by `surfos-geometry`'s packet traversal.
#[derive(Clone, Copy, Debug)]
pub struct F32x8(F32x4, F32x4);

/// Lane mask for [`F32x8`].
#[derive(Clone, Copy, Debug)]
pub struct Mask8(Mask4, Mask4);

impl F32x8 {
    /// Number of lanes.
    pub const LANES: usize = 8;

    /// Broadcasts `v` to all lanes.
    #[inline]
    pub fn splat(v: f32) -> Self {
        F32x8(F32x4::splat(v), F32x4::splat(v))
    }

    /// Loads the eight lanes from an array (`a[0]` is lane 0).
    #[inline]
    pub fn from_array(a: [f32; 8]) -> Self {
        F32x8(
            F32x4::from_array([a[0], a[1], a[2], a[3]]),
            F32x4::from_array([a[4], a[5], a[6], a[7]]),
        )
    }

    /// Stores the eight lanes to an array (`a[0]` is lane 0).
    #[inline]
    pub fn to_array(self) -> [f32; 8] {
        let lo = self.0.to_array();
        let hi = self.1.to_array();
        [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]]
    }

    /// Lane-wise `self + rhs`.
    #[inline]
    pub fn add(self, rhs: Self) -> Self {
        F32x8(self.0.add(rhs.0), self.1.add(rhs.1))
    }

    /// Lane-wise `self - rhs`.
    #[inline]
    pub fn sub(self, rhs: Self) -> Self {
        F32x8(self.0.sub(rhs.0), self.1.sub(rhs.1))
    }

    /// Lane-wise `self * rhs`.
    #[inline]
    pub fn mul(self, rhs: Self) -> Self {
        F32x8(self.0.mul(rhs.0), self.1.mul(rhs.1))
    }

    /// Lane-wise `self * b + c`, rounded twice (**not** fused).
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        F32x8(self.0.mul_add(b.0, c.0), self.1.mul_add(b.1, c.1))
    }

    /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on `0/0`).
    #[inline]
    pub fn div(self, rhs: Self) -> Self {
        F32x8(self.0.div(rhs.0), self.1.div(rhs.1))
    }

    /// Lane-wise absolute value (clears the sign bit; `|NaN|` keeps its payload).
    #[inline]
    pub fn abs(self) -> Self {
        F32x8(self.0.abs(), self.1.abs())
    }

    /// Lane-wise minimum with SSE `minps` semantics.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        F32x8(self.0.min(rhs.0), self.1.min(rhs.1))
    }

    /// Lane-wise maximum with SSE `maxps` semantics.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        F32x8(self.0.max(rhs.0), self.1.max(rhs.1))
    }

    /// Lane-wise `self < rhs` (false on NaN).
    #[inline]
    pub fn simd_lt(self, rhs: Self) -> Mask8 {
        Mask8(self.0.simd_lt(rhs.0), self.1.simd_lt(rhs.1))
    }

    /// Lane-wise `self <= rhs` (false on NaN).
    #[inline]
    pub fn simd_le(self, rhs: Self) -> Mask8 {
        Mask8(self.0.simd_le(rhs.0), self.1.simd_le(rhs.1))
    }

    /// Lane-wise `self >= rhs` (false on NaN).
    #[inline]
    pub fn simd_ge(self, rhs: Self) -> Mask8 {
        Mask8(self.0.simd_ge(rhs.0), self.1.simd_ge(rhs.1))
    }

    /// Picks `self` where `mask` is true, `other` where false.
    #[inline]
    pub fn select(self, mask: Mask8, other: Self) -> Self {
        F32x8(
            self.0.select(mask.0, other.0),
            self.1.select(mask.1, other.1),
        )
    }

    /// Horizontal sum: `lo.reduce_sum() + hi.reduce_sum()`.
    #[inline]
    pub fn reduce_sum(self) -> f32 {
        self.0.reduce_sum() + self.1.reduce_sum()
    }

    /// Horizontal minimum (SSE `minps` NaN semantics per step).
    #[inline]
    pub fn reduce_min(self) -> f32 {
        let a = self.0.reduce_min();
        let b = self.1.reduce_min();
        if a < b {
            a
        } else {
            b
        }
    }

    /// Horizontal maximum (SSE `maxps` NaN semantics per step).
    #[inline]
    pub fn reduce_max(self) -> f32 {
        let a = self.0.reduce_max();
        let b = self.1.reduce_max();
        if a > b {
            a
        } else {
            b
        }
    }
}

impl Mask8 {
    /// Mask with every lane set to `b`.
    #[inline]
    pub fn splat(b: bool) -> Self {
        Mask8(Mask4::splat(b), Mask4::splat(b))
    }

    /// Mask with the first `n` lanes set (`n` is clamped to 8) — the
    /// shape of a partially filled remainder packet. Delegates to the
    /// backend-generic [`SimdF32x8::mask_first_n`].
    #[inline]
    pub fn first_n(n: usize) -> Self {
        <F32x8 as SimdF32x8>::mask_first_n(n)
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(self, rhs: Self) -> Self {
        Mask8(self.0.and(rhs.0), self.1.and(rhs.1))
    }

    /// Lane-wise OR.
    #[inline]
    pub fn or(self, rhs: Self) -> Self {
        Mask8(self.0.or(rhs.0), self.1.or(rhs.1))
    }

    /// Lane-wise NOT.
    #[inline]
    pub fn not(self) -> Self {
        Mask8(self.0.not(), self.1.not())
    }

    /// One bit per lane, lane 0 in bit 0.
    #[inline]
    pub fn bitmask(self) -> u8 {
        self.0.bitmask() | (self.1.bitmask() << 4)
    }

    /// `true` if any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// `true` if every lane is set.
    #[inline]
    pub fn all(self) -> bool {
        self.bitmask() == 0xFF
    }
}

/// Four `f64` lanes as a pair of [`F64x2`] — the portable wide-lane arm
/// of the exact `crossing_t` batch solve in `surfos-geometry`.
#[derive(Clone, Copy, Debug)]
pub struct F64x4(F64x2, F64x2);

/// Lane mask for [`F64x4`].
#[derive(Clone, Copy, Debug)]
pub struct MaskD4(MaskD2, MaskD2);

impl F64x4 {
    /// Number of lanes.
    pub const LANES: usize = 4;

    /// Broadcasts `v` to all lanes.
    #[inline]
    pub fn splat(v: f64) -> Self {
        F64x4(F64x2::splat(v), F64x2::splat(v))
    }

    /// Loads the four lanes from an array (`a[0]` is lane 0).
    #[inline]
    pub fn from_array(a: [f64; 4]) -> Self {
        F64x4(
            F64x2::from_array([a[0], a[1]]),
            F64x2::from_array([a[2], a[3]]),
        )
    }

    /// Stores the four lanes to an array (`a[0]` is lane 0).
    #[inline]
    pub fn to_array(self) -> [f64; 4] {
        let lo = self.0.to_array();
        let hi = self.1.to_array();
        [lo[0], lo[1], hi[0], hi[1]]
    }

    /// Lane-wise `self + rhs`.
    #[inline]
    pub fn add(self, rhs: Self) -> Self {
        F64x4(self.0.add(rhs.0), self.1.add(rhs.1))
    }

    /// Lane-wise `self - rhs`.
    #[inline]
    pub fn sub(self, rhs: Self) -> Self {
        F64x4(self.0.sub(rhs.0), self.1.sub(rhs.1))
    }

    /// Lane-wise `self * rhs`.
    #[inline]
    pub fn mul(self, rhs: Self) -> Self {
        F64x4(self.0.mul(rhs.0), self.1.mul(rhs.1))
    }

    /// Lane-wise `self * b + c`, rounded twice (**not** fused).
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        F64x4(self.0.mul_add(b.0, c.0), self.1.mul_add(b.1, c.1))
    }

    /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on `0/0`).
    #[inline]
    pub fn div(self, rhs: Self) -> Self {
        F64x4(self.0.div(rhs.0), self.1.div(rhs.1))
    }

    /// Lane-wise absolute value (clears the sign bit; `|NaN|` keeps its payload).
    #[inline]
    pub fn abs(self) -> Self {
        F64x4(self.0.abs(), self.1.abs())
    }

    /// Lane-wise minimum with SSE2 `minpd` semantics.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        F64x4(self.0.min(rhs.0), self.1.min(rhs.1))
    }

    /// Lane-wise maximum with SSE2 `maxpd` semantics.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        F64x4(self.0.max(rhs.0), self.1.max(rhs.1))
    }

    /// Lane-wise `self < rhs` (false on NaN).
    #[inline]
    pub fn simd_lt(self, rhs: Self) -> MaskD4 {
        MaskD4(self.0.simd_lt(rhs.0), self.1.simd_lt(rhs.1))
    }

    /// Lane-wise `self <= rhs` (false on NaN).
    #[inline]
    pub fn simd_le(self, rhs: Self) -> MaskD4 {
        MaskD4(self.0.simd_le(rhs.0), self.1.simd_le(rhs.1))
    }

    /// Lane-wise `self >= rhs` (false on NaN).
    #[inline]
    pub fn simd_ge(self, rhs: Self) -> MaskD4 {
        MaskD4(self.0.simd_ge(rhs.0), self.1.simd_ge(rhs.1))
    }

    /// Picks `self` where `mask` is true, `other` where false.
    #[inline]
    pub fn select(self, mask: MaskD4, other: Self) -> Self {
        F64x4(
            self.0.select(mask.0, other.0),
            self.1.select(mask.1, other.1),
        )
    }
}

impl MaskD4 {
    /// Mask with every lane set to `b`.
    #[inline]
    pub fn splat(b: bool) -> Self {
        MaskD4(MaskD2::splat(b), MaskD2::splat(b))
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(self, rhs: Self) -> Self {
        MaskD4(self.0.and(rhs.0), self.1.and(rhs.1))
    }

    /// Lane-wise OR.
    #[inline]
    pub fn or(self, rhs: Self) -> Self {
        MaskD4(self.0.or(rhs.0), self.1.or(rhs.1))
    }

    /// Lane-wise NOT.
    #[inline]
    pub fn not(self) -> Self {
        MaskD4(self.0.not(), self.1.not())
    }

    /// One bit per lane, lane 0 in bit 0.
    #[inline]
    pub fn bitmask(self) -> u8 {
        self.0.bitmask() | (self.1.bitmask() << 2)
    }

    /// `true` if any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// `true` if every lane is set.
    #[inline]
    pub fn all(self) -> bool {
        self.bitmask() == 0xF
    }
}

/// Eight-lane `f32` vector abstraction: lets packet-traversal and
/// prefilter kernels be written once, generic over the portable
/// [`F32x8`] pair type and the native AVX2 [`avx2::F32x8A`] register.
///
/// Every operation has identical lane semantics on every implementor
/// (IEEE lane-wise math, SSE operand-order `min`/`max` under NaN,
/// compares false on NaN, **unfused** `mul_add`, and the fixed
/// `reduce_sum` association), so a generic kernel produces bit-identical
/// results regardless of which implementor it is instantiated with.
pub trait SimdF32x8: Copy + core::fmt::Debug {
    /// The mask type produced by this vector's compares.
    type Mask: SimdMask8;

    /// Number of lanes.
    const LANES: usize = 8;

    /// Broadcasts `v` to all lanes.
    fn splat(v: f32) -> Self;
    /// Loads the eight lanes from an array (`a[0]` is lane 0).
    fn from_array(a: [f32; 8]) -> Self;
    /// Stores the eight lanes to an array (`a[0]` is lane 0).
    fn to_array(self) -> [f32; 8];
    /// Lane-wise `self + rhs`.
    fn add(self, rhs: Self) -> Self;
    /// Lane-wise `self - rhs`.
    fn sub(self, rhs: Self) -> Self;
    /// Lane-wise `self * rhs`.
    fn mul(self, rhs: Self) -> Self;
    /// Lane-wise `self * b + c`, rounded twice (**not** fused).
    fn mul_add(self, b: Self, c: Self) -> Self;
    /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on `0/0`).
    fn div(self, rhs: Self) -> Self;
    /// Lane-wise absolute value (clears the sign bit).
    fn abs(self) -> Self;
    /// Lane-wise minimum with SSE `minps` operand-order semantics.
    fn min(self, rhs: Self) -> Self;
    /// Lane-wise maximum with SSE `maxps` operand-order semantics.
    fn max(self, rhs: Self) -> Self;
    /// Lane-wise `self < rhs` (false on NaN).
    fn simd_lt(self, rhs: Self) -> Self::Mask;
    /// Lane-wise `self <= rhs` (false on NaN).
    fn simd_le(self, rhs: Self) -> Self::Mask;
    /// Lane-wise `self >= rhs` (false on NaN).
    fn simd_ge(self, rhs: Self) -> Self::Mask;
    /// Picks `self` where `mask` is true, `other` where false.
    fn select(self, mask: Self::Mask, other: Self) -> Self;
    /// Horizontal sum with the fixed
    /// `((a0+a2)+(a1+a3)) + ((a4+a6)+(a5+a7))` association.
    fn reduce_sum(self) -> f32;

    /// Mask with the first `n` lanes set (`n` clamped to the lane
    /// count) — the shape of a partially filled remainder packet.
    ///
    /// Backend-generic by construction: an index-compare against the
    /// splat of `n`, with no assumption about the register layout.
    #[inline]
    fn mask_first_n(n: usize) -> Self::Mask {
        let lanes = Self::from_array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        lanes.simd_lt(Self::splat(n.min(Self::LANES) as f32))
    }
}

/// Mask abstraction paired with [`SimdF32x8`].
pub trait SimdMask8: Copy + core::fmt::Debug {
    /// Mask with every lane set to `b`.
    fn splat(b: bool) -> Self;
    /// Lane-wise AND.
    fn and(self, rhs: Self) -> Self;
    /// Lane-wise OR.
    fn or(self, rhs: Self) -> Self;
    /// Lane-wise NOT.
    fn not(self) -> Self;
    /// One bit per lane, lane 0 in bit 0.
    fn bitmask(self) -> u8;

    /// `true` if any lane is set.
    #[inline]
    fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// `true` if every lane is set.
    #[inline]
    fn all(self) -> bool {
        self.bitmask() == 0xFF
    }
}

/// Four-lane `f64` vector abstraction for the exact path math (the
/// `crossing_t` batch solve); implemented by the portable [`F64x4`]
/// pair type and the native AVX2 [`avx2::F64x4A`]. Same bit-identical
/// lane-semantics contract as [`SimdF32x8`].
pub trait SimdF64x4: Copy + core::fmt::Debug {
    /// The mask type produced by this vector's compares.
    type Mask: SimdMaskD4;

    /// Number of lanes.
    const LANES: usize = 4;

    /// Broadcasts `v` to all lanes.
    fn splat(v: f64) -> Self;
    /// Loads the four lanes from an array (`a[0]` is lane 0).
    fn from_array(a: [f64; 4]) -> Self;
    /// Stores the four lanes to an array (`a[0]` is lane 0).
    fn to_array(self) -> [f64; 4];
    /// Lane-wise `self + rhs`.
    fn add(self, rhs: Self) -> Self;
    /// Lane-wise `self - rhs`.
    fn sub(self, rhs: Self) -> Self;
    /// Lane-wise `self * rhs`.
    fn mul(self, rhs: Self) -> Self;
    /// Lane-wise `self * b + c`, rounded twice (**not** fused).
    fn mul_add(self, b: Self, c: Self) -> Self;
    /// Lane-wise `self / rhs` (IEEE: `±∞` on zero divisors, NaN on `0/0`).
    fn div(self, rhs: Self) -> Self;
    /// Lane-wise absolute value (clears the sign bit).
    fn abs(self) -> Self;
    /// Lane-wise minimum with SSE2 `minpd` operand-order semantics.
    fn min(self, rhs: Self) -> Self;
    /// Lane-wise maximum with SSE2 `maxpd` operand-order semantics.
    fn max(self, rhs: Self) -> Self;
    /// Lane-wise `self < rhs` (false on NaN).
    fn simd_lt(self, rhs: Self) -> Self::Mask;
    /// Lane-wise `self <= rhs` (false on NaN).
    fn simd_le(self, rhs: Self) -> Self::Mask;
    /// Lane-wise `self >= rhs` (false on NaN).
    fn simd_ge(self, rhs: Self) -> Self::Mask;
    /// Picks `self` where `mask` is true, `other` where false.
    fn select(self, mask: Self::Mask, other: Self) -> Self;
}

/// Mask abstraction paired with [`SimdF64x4`].
pub trait SimdMaskD4: Copy + core::fmt::Debug {
    /// Mask with every lane set to `b`.
    fn splat(b: bool) -> Self;
    /// Lane-wise AND.
    fn and(self, rhs: Self) -> Self;
    /// Lane-wise OR.
    fn or(self, rhs: Self) -> Self;
    /// Lane-wise NOT.
    fn not(self) -> Self;
    /// One bit per lane, lane 0 in bit 0.
    fn bitmask(self) -> u8;

    /// `true` if any lane is set.
    #[inline]
    fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// `true` if every lane is set.
    #[inline]
    fn all(self) -> bool {
        self.bitmask() == 0xF
    }
}

impl SimdF32x8 for F32x8 {
    type Mask = Mask8;

    #[inline]
    fn splat(v: f32) -> Self {
        F32x8::splat(v)
    }
    #[inline]
    fn from_array(a: [f32; 8]) -> Self {
        F32x8::from_array(a)
    }
    #[inline]
    fn to_array(self) -> [f32; 8] {
        F32x8::to_array(self)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        F32x8::add(self, rhs)
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        F32x8::sub(self, rhs)
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        F32x8::mul(self, rhs)
    }
    #[inline]
    fn mul_add(self, b: Self, c: Self) -> Self {
        F32x8::mul_add(self, b, c)
    }
    #[inline]
    fn div(self, rhs: Self) -> Self {
        F32x8::div(self, rhs)
    }
    #[inline]
    fn abs(self) -> Self {
        F32x8::abs(self)
    }
    #[inline]
    fn min(self, rhs: Self) -> Self {
        F32x8::min(self, rhs)
    }
    #[inline]
    fn max(self, rhs: Self) -> Self {
        F32x8::max(self, rhs)
    }
    #[inline]
    fn simd_lt(self, rhs: Self) -> Mask8 {
        F32x8::simd_lt(self, rhs)
    }
    #[inline]
    fn simd_le(self, rhs: Self) -> Mask8 {
        F32x8::simd_le(self, rhs)
    }
    #[inline]
    fn simd_ge(self, rhs: Self) -> Mask8 {
        F32x8::simd_ge(self, rhs)
    }
    #[inline]
    fn select(self, mask: Mask8, other: Self) -> Self {
        F32x8::select(self, mask, other)
    }
    #[inline]
    fn reduce_sum(self) -> f32 {
        F32x8::reduce_sum(self)
    }
}

impl SimdMask8 for Mask8 {
    #[inline]
    fn splat(b: bool) -> Self {
        Mask8::splat(b)
    }
    #[inline]
    fn and(self, rhs: Self) -> Self {
        Mask8::and(self, rhs)
    }
    #[inline]
    fn or(self, rhs: Self) -> Self {
        Mask8::or(self, rhs)
    }
    #[inline]
    fn not(self) -> Self {
        Mask8::not(self)
    }
    #[inline]
    fn bitmask(self) -> u8 {
        Mask8::bitmask(self)
    }
}

impl SimdF64x4 for F64x4 {
    type Mask = MaskD4;

    #[inline]
    fn splat(v: f64) -> Self {
        F64x4::splat(v)
    }
    #[inline]
    fn from_array(a: [f64; 4]) -> Self {
        F64x4::from_array(a)
    }
    #[inline]
    fn to_array(self) -> [f64; 4] {
        F64x4::to_array(self)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        F64x4::add(self, rhs)
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        F64x4::sub(self, rhs)
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        F64x4::mul(self, rhs)
    }
    #[inline]
    fn mul_add(self, b: Self, c: Self) -> Self {
        F64x4::mul_add(self, b, c)
    }
    #[inline]
    fn div(self, rhs: Self) -> Self {
        F64x4::div(self, rhs)
    }
    #[inline]
    fn abs(self) -> Self {
        F64x4::abs(self)
    }
    #[inline]
    fn min(self, rhs: Self) -> Self {
        F64x4::min(self, rhs)
    }
    #[inline]
    fn max(self, rhs: Self) -> Self {
        F64x4::max(self, rhs)
    }
    #[inline]
    fn simd_lt(self, rhs: Self) -> MaskD4 {
        F64x4::simd_lt(self, rhs)
    }
    #[inline]
    fn simd_le(self, rhs: Self) -> MaskD4 {
        F64x4::simd_le(self, rhs)
    }
    #[inline]
    fn simd_ge(self, rhs: Self) -> MaskD4 {
        F64x4::simd_ge(self, rhs)
    }
    #[inline]
    fn select(self, mask: MaskD4, other: Self) -> Self {
        F64x4::select(self, mask, other)
    }
}

impl SimdMaskD4 for MaskD4 {
    #[inline]
    fn splat(b: bool) -> Self {
        MaskD4::splat(b)
    }
    #[inline]
    fn and(self, rhs: Self) -> Self {
        MaskD4::and(self, rhs)
    }
    #[inline]
    fn or(self, rhs: Self) -> Self {
        MaskD4::or(self, rhs)
    }
    #[inline]
    fn not(self) -> Self {
        MaskD4::not(self)
    }
    #[inline]
    fn bitmask(self) -> u8 {
        MaskD4::bitmask(self)
    }
}

/// Which kernel arm the runtime-dispatched hot paths use.
///
/// Selected **once per process** by [`backend()`]: `Avx2` when the CPU
/// reports both `avx2` and `fma` (and the crate is built with its
/// x86_64 intrinsics backend), `Sse2` otherwise. The `SURFOS_SIMD`
/// environment variable overrides the choice for testing:
///
/// - `SURFOS_SIMD=scalar` — per-candidate scalar reference loops in the
///   dispatched kernels (no packets, no prefilter banks).
/// - `SURFOS_SIMD=sse2` — the portable wide-lane arm (SSE2 pair
///   registers on x86_64; bit-identical plain arrays elsewhere).
/// - `SURFOS_SIMD=avx2` — the native AVX2 arm; silently falls back to
///   the detected best when the CPU or build cannot run it.
///
/// The discriminants are the values reported by the
/// `em.simd.backend` gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Backend {
    /// Scalar reference loops (what every wide arm is tested against).
    Scalar = 1,
    /// Portable wide lanes: SSE2 registers on x86_64, plain arrays
    /// elsewhere — bit-identical either way.
    Sse2 = 2,
    /// Native AVX2 registers (requires `avx2` + `fma` at runtime).
    Avx2 = 3,
}

impl Backend {
    /// Lower-case name, matching the accepted `SURFOS_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// `true` if this arm's phasor kernel fuses the complex rotation
    /// (single-rounded multiply-add); see [`phasor`] for the ULP budget.
    pub fn fuses_rotation(self) -> bool {
        matches!(self, Backend::Avx2)
    }
}

/// Cached dispatch decision: 0 = not yet initialised, else the
/// `Backend` discriminant.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// `true` if the native AVX2 arm can run: x86_64 intrinsics backend
/// compiled in and the CPU reports both `avx2` and `fma`.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-fallback"))))]
    {
        false
    }
}

/// The kernel arm the dispatched hot paths use, deciding (and caching)
/// it on first call.
///
/// After the first call this is a single relaxed atomic load — cheap
/// enough to sit inside per-query dispatch without a function-pointer
/// table. The decision is logged once through `surfos-obs` (an
/// `em.simd.backend` gauge plus an `em.simd` journal event), so bench
/// and trace artifacts are attributable to a backend.
#[inline]
pub fn backend() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Sse2,
        3 => Backend::Avx2,
        _ => init_backend(),
    }
}

/// One-time dispatch: detect, apply the `SURFOS_SIMD` override, cache,
/// and log the decision.
#[cold]
fn init_backend() -> Backend {
    let detected = if avx2_available() {
        Backend::Avx2
    } else {
        Backend::Sse2
    };
    let (chosen, how) = match std::env::var("SURFOS_SIMD") {
        Ok(v) => match v.as_str() {
            "scalar" => (Backend::Scalar, "forced by SURFOS_SIMD"),
            "sse2" => (Backend::Sse2, "forced by SURFOS_SIMD"),
            "avx2" if detected == Backend::Avx2 => (Backend::Avx2, "forced by SURFOS_SIMD"),
            "avx2" => (
                detected,
                "SURFOS_SIMD=avx2 not runnable here; using detected",
            ),
            _ => (detected, "unrecognised SURFOS_SIMD value ignored; detected"),
        },
        Err(_) => (detected, "detected"),
    };
    if ACTIVE
        .compare_exchange(0, chosen as u8, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        // Only the thread that wins the race logs, so the journal gets
        // exactly one dispatch event per process. Best-effort: if obs
        // is not enabled yet the gauge is a no-op, so obs consumers
        // (obs_smoke, perf_smoke.sh) also report the backend
        // explicitly via `backend()`. Logged from a fresh thread
        // (joined, so the record is in place before the first SIMD op):
        // the record is process-global, and must not inherit whichever
        // caller thread's obs label scope happened to win the init race
        // — a `{shard=N}`-tagged backend gauge would be
        // scheduling-dependent.
        let name = chosen.name();
        std::thread::spawn(move || {
            surfos_obs::gauge("em.simd.backend", chosen as u8 as f64);
            surfos_obs::event!("em.simd", "dispatch: backend={} ({})", name, how);
        })
        .join()
        .ok();
        chosen
    } else {
        backend()
    }
}

#[cfg(test)]
mod tests;
