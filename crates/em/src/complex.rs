//! Minimal, dependency-free complex arithmetic.
//!
//! SurfOS works with narrowband channel coefficients, which are complex
//! phasors. Rather than pull in a numerics crate we provide the small,
//! fully-tested subset of complex arithmetic the system needs. The type is
//! `Copy` and all operations are branch-free so channel-simulation inner
//! loops stay cheap.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use surfos_em::complex::Complex;
///
/// // Coherent combining: aligning a coefficient's phase maximizes |sum|.
/// let coeff = Complex::from_polar(0.5, 1.2);
/// let aligned = coeff * Complex::cis(-coeff.arg());
/// assert!((aligned.arg()).abs() < 1e-12);
/// assert!((aligned.abs() - 0.5).abs() < 1e-12);
/// ```
///
/// Represents narrowband channel coefficients, per-element scattering
/// responses and beamforming weights throughout SurfOS.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar form: `r * e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Returns `e^{jθ}`: a unit phasor with phase `theta` radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude. Cheaper than [`abs`](Self::abs) — no square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` if either component is NaN or infinite.
    #[inline]
    pub fn is_invalid(self) -> bool {
        !self.re.is_finite() || !self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 4.0);
        assert!(close(a + b - b, a));
    }

    #[test]
    fn mul_matches_polar() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(3.0, -1.1);
        let p = a * b;
        assert!((p.abs() - 6.0).abs() < EPS);
        assert!((p.arg() - (0.3 - 1.1)).abs() < 1e-9);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(3.0, -1.0);
        let b = Complex::new(0.5, 2.0);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex::new(1.0, 2.0);
        assert_eq!(a.conj().conj(), a);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < EPS);
        assert!((a * a.conj()).im.abs() < EPS);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..32 {
            let theta = k as f64 * 0.41;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn arg_of_axes() {
        assert!((Complex::new(1.0, 0.0).arg() - 0.0).abs() < EPS);
        assert!((Complex::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!((Complex::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < EPS);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex = (0..10).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert!(close(total, Complex::new(45.0, 10.0)));
    }

    #[test]
    fn invalid_detection() {
        assert!(Complex::new(f64::NAN, 0.0).is_invalid());
        assert!(Complex::new(0.0, f64::INFINITY).is_invalid());
        assert!(!Complex::new(1.0, -1.0).is_invalid());
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex::new(1.0, -1.0)), "1.000000-1.000000j");
        assert_eq!(format!("{}", Complex::new(1.0, 1.0)), "1.000000+1.000000j");
    }

    proptest! {
        #[test]
        fn prop_abs_is_multiplicative(
            ar in -1e3..1e3f64, ai in -1e3..1e3f64,
            br in -1e3..1e3f64, bi in -1e3..1e3f64,
        ) {
            let a = Complex::new(ar, ai);
            let b = Complex::new(br, bi);
            let lhs = (a * b).abs();
            let rhs = a.abs() * b.abs();
            prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + rhs));
        }

        #[test]
        fn prop_polar_roundtrip(r in 0.001..1e3f64, theta in -3.1..3.1f64) {
            let c = Complex::from_polar(r, theta);
            prop_assert!((c.abs() - r).abs() < 1e-9 * (1.0 + r));
            prop_assert!((c.arg() - theta).abs() < 1e-9);
        }

        #[test]
        fn prop_distributive(
            ar in -1e2..1e2f64, ai in -1e2..1e2f64,
            br in -1e2..1e2f64, bi in -1e2..1e2f64,
            cr in -1e2..1e2f64, ci in -1e2..1e2f64,
        ) {
            let a = Complex::new(ar, ai);
            let b = Complex::new(br, bi);
            let c = Complex::new(cr, ci);
            let lhs = a * (b + c);
            let rhs = a * b + a * c;
            prop_assert!((lhs - rhs).abs() < 1e-6);
        }
    }
}
