//! Phase wrapping and quantization.
//!
//! Programmable metasurfaces implement phase shifts with a small number of
//! discrete states (1-bit: {0, π}; 2-bit: {0, π/2, π, 3π/2}; …). The
//! hardware manager quantizes the continuous phases the optimizer produces
//! down to what each design can actually realize, so quantization is a
//! first-class, well-tested operation here.

use std::f64::consts::{PI, TAU};

/// Wraps a phase in radians into `[0, 2π)`.
#[inline]
pub fn wrap_phase(phi: f64) -> f64 {
    let r = phi.rem_euclid(TAU);
    // rem_euclid can return TAU itself for tiny negative inputs due to
    // rounding; fold that back to 0.
    if r >= TAU {
        0.0
    } else {
        r
    }
}

/// Wraps a phase in radians into `(-π, π]`.
#[inline]
pub fn wrap_phase_signed(phi: f64) -> f64 {
    let w = wrap_phase(phi);
    if w > PI {
        w - TAU
    } else {
        w
    }
}

/// Quantizes `phi` to the nearest of `2^bits` uniformly spaced phase states
/// in `[0, 2π)`, returning the quantized phase.
///
/// ```
/// use surfos_em::phase::quantize_phase;
/// use std::f64::consts::PI;
///
/// // 1-bit hardware only knows 0 and π:
/// assert_eq!(quantize_phase(0.3, 1), 0.0);
/// assert!((quantize_phase(2.8, 1) - PI).abs() < 1e-12);
/// ```
///
/// `bits == 0` models a surface with no phase control (always 0).
///
/// # Panics
/// Panics if `bits > 16` (no real hardware exceeds a few bits; a huge value
/// indicates a unit error upstream).
pub fn quantize_phase(phi: f64, bits: u8) -> f64 {
    assert!(bits <= 16, "phase control beyond 16 bits is not physical");
    if bits == 0 {
        return 0.0;
    }
    let levels = (1u32 << bits) as f64;
    let step = TAU / levels;
    let idx = (wrap_phase(phi) / step).round() % levels;
    wrap_phase(idx * step)
}

/// Returns the index (0-based) of the quantized state `phi` maps to, for
/// `2^bits` states. Companion to [`quantize_phase`] for driver encodings.
pub fn phase_state_index(phi: f64, bits: u8) -> u32 {
    assert!(bits <= 16, "phase control beyond 16 bits is not physical");
    if bits == 0 {
        return 0;
    }
    let levels = 1u32 << bits;
    let step = TAU / levels as f64;
    ((wrap_phase(phi) / step).round() as u32) % levels
}

/// Reconstructs the phase value of a driver state index produced by
/// [`phase_state_index`].
pub fn phase_from_state_index(index: u32, bits: u8) -> f64 {
    assert!(bits <= 16, "phase control beyond 16 bits is not physical");
    if bits == 0 {
        return 0.0;
    }
    let levels = 1u32 << bits;
    let step = TAU / levels as f64;
    wrap_phase((index % levels) as f64 * step)
}

/// The worst-case beamforming power loss factor (linear, ≤ 1) caused by
/// `bits`-bit phase quantization, from the classic sinc² bound:
/// `loss = sinc²(π / 2^bits)` where `sinc(x) = sin(x)/x`.
///
/// 1-bit ≈ 0.405 (-3.9 dB), 2-bit ≈ 0.81 (-0.9 dB), 3-bit ≈ 0.95 (-0.2 dB).
pub fn quantization_loss(bits: u8) -> f64 {
    if bits == 0 {
        return 0.0;
    }
    let x = PI / (1u64 << bits) as f64;
    let sinc = x.sin() / x;
    sinc * sinc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wrap_basics() {
        assert!((wrap_phase(0.0) - 0.0).abs() < 1e-12);
        assert!((wrap_phase(TAU) - 0.0).abs() < 1e-12);
        assert!((wrap_phase(-PI) - PI).abs() < 1e-12);
        assert!((wrap_phase(3.0 * PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn wrap_signed_basics() {
        assert!((wrap_phase_signed(PI) - PI).abs() < 1e-12);
        assert!((wrap_phase_signed(PI + 0.1) - (-PI + 0.1)).abs() < 1e-9);
        assert!((wrap_phase_signed(-0.1) - (-0.1)).abs() < 1e-12);
    }

    #[test]
    fn one_bit_quantization() {
        assert_eq!(quantize_phase(0.3, 1), 0.0);
        assert!((quantize_phase(PI - 0.3, 1) - PI).abs() < 1e-12);
        // exactly half-way rounds away from zero state
        assert!((quantize_phase(PI / 2.0, 1) - PI).abs() < 1e-12);
    }

    #[test]
    fn two_bit_states() {
        for (phi, want) in [
            (0.1, 0.0),
            (PI / 2.0 + 0.05, PI / 2.0),
            (PI + 0.2, PI),
            (3.0 * PI / 2.0 - 0.1, 3.0 * PI / 2.0),
        ] {
            assert!(
                (quantize_phase(phi, 2) - want).abs() < 1e-12,
                "phi={phi} want={want}"
            );
        }
    }

    #[test]
    fn zero_bits_means_no_control() {
        assert_eq!(quantize_phase(1.234, 0), 0.0);
        assert_eq!(phase_state_index(1.234, 0), 0);
        assert_eq!(phase_from_state_index(7, 0), 0.0);
    }

    #[test]
    fn state_index_roundtrip() {
        for bits in 1..=4u8 {
            let levels = 1u32 << bits;
            for idx in 0..levels {
                let phi = phase_from_state_index(idx, bits);
                assert_eq!(phase_state_index(phi, bits), idx, "bits={bits} idx={idx}");
            }
        }
    }

    #[test]
    fn quantization_loss_known_values() {
        assert!((quantization_loss(1) - 0.405).abs() < 0.005);
        assert!((quantization_loss(2) - 0.81).abs() < 0.01);
        assert!(quantization_loss(3) > 0.94);
        assert_eq!(quantization_loss(0), 0.0);
    }

    #[test]
    fn loss_monotone_in_bits() {
        let mut last = 0.0;
        for bits in 1..=8u8 {
            let l = quantization_loss(bits);
            assert!(l > last);
            last = l;
        }
        assert!(last < 1.0);
    }

    proptest! {
        #[test]
        fn prop_wrap_in_range(phi in -1e6..1e6f64) {
            let w = wrap_phase(phi);
            prop_assert!((0.0..TAU).contains(&w), "w={w}");
        }

        #[test]
        fn prop_wrap_preserves_phasor(phi in -1e3..1e3f64) {
            let a = crate::complex::Complex::cis(phi);
            let b = crate::complex::Complex::cis(wrap_phase(phi));
            prop_assert!((a - b).abs() < 1e-9);
        }

        #[test]
        fn prop_quantize_error_bounded(phi in -100.0..100.0f64, bits in 1u8..8) {
            let q = quantize_phase(phi, bits);
            let step = TAU / (1u64 << bits) as f64;
            // distance on the circle
            let d = wrap_phase_signed(q - phi).abs();
            prop_assert!(d <= step / 2.0 + 1e-9, "d={d} step={step}");
        }

        #[test]
        fn prop_quantize_idempotent(phi in -100.0..100.0f64, bits in 1u8..8) {
            let q = quantize_phase(phi, bits);
            prop_assert!((quantize_phase(q, bits) - q).abs() < 1e-9);
        }
    }
}
