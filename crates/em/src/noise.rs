//! Thermal noise, SNR and link capacity.

use crate::units::{linear_to_db, BOLTZMANN, T0_KELVIN};

/// Thermal noise power in dBm over `bandwidth_hz` with receiver noise figure
/// `noise_figure_db`: `kT0B` plus the noise figure.
///
/// At 290 K this is the familiar `-174 dBm/Hz + 10·log10(B) + NF`.
pub fn noise_power_dbm(bandwidth_hz: f64, noise_figure_db: f64) -> f64 {
    assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
    let watts = BOLTZMANN * T0_KELVIN * bandwidth_hz;
    crate::units::watts_to_dbm(watts) + noise_figure_db
}

/// SNR in dB given a received power and a noise power, both in dBm.
#[inline]
pub fn snr_db(rx_power_dbm: f64, noise_dbm: f64) -> f64 {
    rx_power_dbm - noise_dbm
}

/// Shannon capacity in bits/s for an SNR given in dB over `bandwidth_hz`.
///
/// Negative-infinite SNR (no signal) yields zero capacity.
pub fn shannon_capacity_bps(snr_db: f64, bandwidth_hz: f64) -> f64 {
    assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
    if snr_db == f64::NEG_INFINITY {
        return 0.0;
    }
    let snr = crate::units::db_to_linear(snr_db);
    bandwidth_hz * (1.0 + snr).log2()
}

/// Spectral efficiency in bits/s/Hz for an SNR in dB (capacity per hertz).
pub fn spectral_efficiency(snr_db: f64) -> f64 {
    shannon_capacity_bps(snr_db, 1.0)
}

/// Converts a target capacity (bits/s) over a bandwidth to the minimum SNR
/// in dB that achieves it — the inverse of [`shannon_capacity_bps`].
pub fn required_snr_db(capacity_bps: f64, bandwidth_hz: f64) -> f64 {
    assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
    assert!(capacity_bps >= 0.0, "capacity must be non-negative");
    let se = capacity_bps / bandwidth_hz;
    linear_to_db(2f64.powf(se) - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn noise_floor_known_value() {
        // -174 dBm/Hz + 10 log10(20 MHz) ≈ -101 dBm at NF = 0
        let n = noise_power_dbm(20e6, 0.0);
        assert!((n - (-100.97)).abs() < 0.1, "n={n}");
    }

    #[test]
    fn noise_figure_adds_directly() {
        let a = noise_power_dbm(1e6, 0.0);
        let b = noise_power_dbm(1e6, 7.0);
        assert!((b - a - 7.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_known_points() {
        // SNR 0 dB => 1 bit/s/Hz
        assert!((spectral_efficiency(0.0) - 1.0).abs() < 1e-12);
        // SNR ~ 30 dB => log2(1001) ≈ 9.97 bit/s/Hz
        assert!((spectral_efficiency(30.0) - 9.97).abs() < 0.01);
    }

    #[test]
    fn zero_signal_zero_capacity() {
        assert_eq!(shannon_capacity_bps(f64::NEG_INFINITY, 1e6), 0.0);
    }

    #[test]
    fn required_snr_inverts_capacity() {
        let bw = 100e6;
        for snr in [-10.0, 0.0, 10.0, 25.0] {
            let cap = shannon_capacity_bps(snr, bw);
            let back = required_snr_db(cap, bw);
            assert!((back - snr).abs() < 1e-6, "snr={snr} back={back}");
        }
    }

    proptest! {
        #[test]
        fn prop_capacity_monotone_in_snr(a in -30.0..50.0f64, delta in 0.1..30.0f64) {
            prop_assert!(spectral_efficiency(a + delta) > spectral_efficiency(a));
        }

        #[test]
        fn prop_capacity_scales_with_bandwidth(snr in -20.0..40.0f64, bw in 1e3..1e9f64) {
            let c1 = shannon_capacity_bps(snr, bw);
            let c2 = shannon_capacity_bps(snr, 2.0 * bw);
            prop_assert!((c2 / c1 - 2.0).abs() < 1e-9);
        }
    }
}
