//! Differentiable service objectives over surface configurations.
//!
//! Each objective scores a full multi-surface configuration (one complex
//! response vector per deployed surface) and provides the analytic
//! gradient of its loss with respect to every element phase. The paper's
//! joint multitasking (§3.2, Figure 5) is a weighted sum of these
//! ([`MultiObjective`]), minimized by [`crate::optimizer`].
//!
//! Loss conventions (matching §4):
//! - coverage: the negative sum of link capacity across locations,
//! - localization: cross-entropy between estimated and true AoA,
//! - powering: negative log delivered power,
//! - suppression (security): positive log leaked power.

use surfos_channel::linear::Linearization;
use surfos_channel::par;
use surfos_channel::trace::ChannelTrace;
use surfos_channel::{ChannelSim, Endpoint};
use surfos_em::band::Band;
use surfos_em::complex::Complex;
use surfos_em::units::{db_to_linear, dbm_to_watts};
use surfos_geometry::Vec3;
use surfos_sensing::aoa::{AngleGrid, AoaEstimator, AoaLinearization};
use surfos_sensing::sounding::ap_calibration;

/// A differentiable loss over multi-surface configurations.
///
/// `Sync` so optimizers may score candidates on worker threads; the
/// per-location objectives below also fan their own link loops out
/// (deterministically — see [`surfos_channel::par`]).
pub trait Objective: Send + Sync {
    /// The loss at the given per-surface responses.
    fn loss(&self, responses: &[Vec<Complex>]) -> f64;

    /// `∂loss/∂φ` for every element of every surface (same shape as
    /// `responses`), assuming elements keep their current magnitudes.
    fn grad_phase(&self, responses: &[Vec<Complex>]) -> Vec<Vec<f64>>;
}

fn as_slices(responses: &[Vec<Complex>]) -> Vec<&[Complex]> {
    responses.iter().map(Vec::as_slice).collect()
}

fn zero_grads(responses: &[Vec<Complex>]) -> Vec<Vec<f64>> {
    responses.iter().map(|r| vec![0.0; r.len()]).collect()
}

/// `P_tx / N` in linear units at `band`: multiplying `|h|²` yields SNR.
fn snr_scale_at(band: &Band, tx_power_dbm: f64, noise_figure_db: f64) -> f64 {
    let noise_dbm = surfos_em::noise::noise_power_dbm(band.bandwidth_hz, noise_figure_db);
    dbm_to_watts(tx_power_dbm) / dbm_to_watts(noise_dbm)
}

/// Coverage: maximize summed Shannon capacity over a set of locations.
///
/// `loss(r) = − Σ_i log2(1 + SNR_i(r))`, `SNR_i = |h_i(r)|² · scale`.
pub struct CoverageObjective {
    /// One linearized channel per evaluation location.
    pub links: Vec<Linearization>,
    /// `P_tx / N` in linear units: multiplying `|h|²` yields the SNR.
    pub snr_scale: f64,
    /// The band-independent traces behind `links`, kept so a band change
    /// is a cheap re-phasing ([`Self::rephase`]) instead of a re-trace.
    traces: Vec<ChannelTrace>,
    tx_power_dbm: f64,
    noise_figure_db: f64,
}

impl CoverageObjective {
    /// Builds the objective for a transmitter over grid points, using the
    /// receiver template's antenna/noise figure.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn new(sim: &ChannelSim, tx: &Endpoint, points: &[Vec3], rx_template: &Endpoint) -> Self {
        assert!(!points.is_empty(), "coverage objective needs locations");
        // Per-location ray traces are independent; the sweep resolves the
        // scene index once and fans out chunk-ordered (bit-identical to a
        // serial per-point linearize). Traces are retained for rephasing.
        let traces = sim.trace_sweep(tx, points, rx_template);
        let links = par::par_map(&traces, |t| t.linearize_at(&sim.band));
        CoverageObjective {
            links,
            snr_scale: snr_scale_at(&sim.band, tx.tx_power_dbm, rx_template.noise_figure_db),
            traces,
            tx_power_dbm: tx.tx_power_dbm,
            noise_figure_db: rx_template.noise_figure_db,
        }
    }

    /// Re-evaluates the objective at a new band without touching the
    /// environment: the retained traces are re-phased (`O(elements)` per
    /// link) and the noise scale recomputed. Bit-identical to rebuilding
    /// via [`Self::new`] against the same geometry retuned to `band` — a
    /// wideband objective sweep is one trace + N cheap rephasings.
    pub fn rephase(&mut self, band: &Band) {
        self.links = par::par_map(&self.traces, |t| t.linearize_at(band));
        self.snr_scale = snr_scale_at(band, self.tx_power_dbm, self.noise_figure_db);
    }

    /// Per-location SNRs in dB at the given responses.
    pub fn snrs_db(&self, responses: &[Vec<Complex>]) -> Vec<f64> {
        let slices = as_slices(responses);
        par::par_map(&self.links, |l| {
            let p = l.evaluate(&slices).norm_sqr() * self.snr_scale;
            surfos_em::units::linear_to_db(p)
        })
    }

    /// Median SNR in dB (the Figure 4 metric).
    pub fn median_snr_db(&self, responses: &[Vec<Complex>]) -> f64 {
        let mut snrs = self.snrs_db(responses);
        snrs.sort_by(f64::total_cmp);
        let n = snrs.len();
        if n % 2 == 1 {
            snrs[n / 2]
        } else {
            (snrs[n / 2 - 1] + snrs[n / 2]) / 2.0
        }
    }
}

impl Objective for CoverageObjective {
    fn loss(&self, responses: &[Vec<Complex>]) -> f64 {
        let slices = as_slices(responses);
        let terms = par::par_map(&self.links, |l| {
            let snr = l.evaluate(&slices).norm_sqr() * self.snr_scale;
            (1.0 + snr).log2()
        });
        // In-order serial sum: same association as the serial loop.
        -terms.iter().sum::<f64>()
    }

    fn grad_phase(&self, responses: &[Vec<Complex>]) -> Vec<Vec<f64>> {
        let slices = as_slices(responses);
        let ln2 = std::f64::consts::LN_2;
        let n_surfaces = responses.len();
        // Per-link factor and gradients in parallel …
        let contribs = par::par_map(&self.links, |l| {
            let snr = l.evaluate(&slices).norm_sqr() * self.snr_scale;
            let factor = -self.snr_scale / ((1.0 + snr) * ln2);
            let dps: Vec<Option<Vec<f64>>> = (0..n_surfaces)
                .map(|s| {
                    if l.linear.iter().any(|t| t.surface == s)
                        || l.bilinear.iter().any(|b| b.first == s || b.second == s)
                    {
                        Some(l.grad_power_wrt_phase(s, &slices))
                    } else {
                        None
                    }
                })
                .collect();
            (factor, dps)
        });
        // … accumulated serially in link order: bit-identical to serial.
        let mut grads = zero_grads(responses);
        for (factor, dps) in contribs {
            for (grad_s, dp) in grads.iter_mut().zip(dps) {
                if let Some(dp) = dp {
                    for (g, d) in grad_s.iter_mut().zip(dp) {
                        *g += factor * d;
                    }
                }
            }
        }
        grads
    }
}

/// Localization: minimize the mean AoA cross-entropy over probe locations,
/// for one sensing surface.
pub struct LocalizationObjective {
    /// Per-probe AoA linearizations (over the sensing surface's elements).
    pub probes: Vec<AoaLinearization>,
    /// Which surface (simulator index) does the sensing.
    pub surface: usize,
}

impl LocalizationObjective {
    /// Builds the objective: clients at `probe_points` are localized
    /// through surface `surface_idx` by `ap`, over `grid` candidate
    /// angles. Probe locations the surface cannot serve are skipped.
    ///
    /// # Panics
    /// Panics if no probe location is servable (the sensing task is
    /// infeasible — callers must check geometry first).
    pub fn new(
        sim: &ChannelSim,
        surface_idx: usize,
        ap: &Endpoint,
        client_template: &Endpoint,
        probe_points: &[Vec3],
        grid: AngleGrid,
    ) -> Self {
        let surf = &sim.surfaces()[surface_idx];
        let estimator = AoaEstimator::new(&surf.geometry, sim.band.wavenumber(), grid);
        let cal = ap_calibration(sim, surface_idx, ap);
        // All probe links share one scene index and fan out together;
        // results come back in probe order for the zip below.
        let clients: Vec<Endpoint> = probe_points
            .iter()
            .map(|p| {
                let mut client = client_template.clone();
                client.pose.position = *p;
                client
            })
            .collect();
        let pairs: Vec<(&Endpoint, &Endpoint)> = clients.iter().map(|c| (c, ap)).collect();
        let probes: Vec<AoaLinearization> = sim
            .linearize_batch(&pairs)
            .iter()
            .zip(probe_points)
            .filter_map(|(lin, p)| {
                let term = lin.linear.iter().find(|t| t.surface == surface_idx)?;
                let true_az = AngleGrid::azimuth_of(&surf.pose, *p);
                Some(estimator.linearize(&term.coeffs, &cal, true_az))
            })
            .collect();
        assert!(
            !probes.is_empty(),
            "no probe location is servable by surface {surface_idx}"
        );
        LocalizationObjective {
            probes,
            surface: surface_idx,
        }
    }

    /// Per-probe cross-entropy losses.
    pub fn losses(&self, responses: &[Vec<Complex>]) -> Vec<f64> {
        let r = &responses[self.surface];
        self.probes.iter().map(|p| p.loss(r)).collect()
    }
}

impl Objective for LocalizationObjective {
    fn loss(&self, responses: &[Vec<Complex>]) -> f64 {
        let l = self.losses(responses);
        l.iter().sum::<f64>() / l.len() as f64
    }

    fn grad_phase(&self, responses: &[Vec<Complex>]) -> Vec<Vec<f64>> {
        let mut grads = zero_grads(responses);
        let r = &responses[self.surface];
        let n = self.probes.len() as f64;
        for p in &self.probes {
            for (g, d) in grads[self.surface].iter_mut().zip(p.grad_phase(r)) {
                *g += d / n;
            }
        }
        grads
    }
}

/// Powering: maximize delivered power on one link.
/// `loss = −ln(|h|² + ε)`.
pub struct PoweringObjective {
    /// The linearized channel to the powered device.
    pub link: Linearization,
    /// The trace behind `link`, for band rephasing.
    trace: ChannelTrace,
}

impl PoweringObjective {
    /// Builds the objective for a tx → device link.
    pub fn new(sim: &ChannelSim, tx: &Endpoint, device: &Endpoint) -> Self {
        let trace = sim.trace(tx, device);
        PoweringObjective {
            link: trace.linearize_at(&sim.band),
            trace,
        }
    }

    /// Re-phases the retained trace at a new band (see
    /// [`CoverageObjective::rephase`]).
    pub fn rephase(&mut self, band: &Band) {
        self.link = self.trace.linearize_at(band);
    }

    /// Delivered power in dBm at the given responses for a transmit power.
    pub fn delivered_dbm(&self, responses: &[Vec<Complex>], tx_power_dbm: f64) -> f64 {
        let h = self.link.evaluate(&as_slices(responses));
        tx_power_dbm + surfos_em::units::amplitude_to_db(h.abs())
    }
}

const POWER_EPS: f64 = 1e-30;

impl Objective for PoweringObjective {
    fn loss(&self, responses: &[Vec<Complex>]) -> f64 {
        let p = self.link.evaluate(&as_slices(responses)).norm_sqr();
        -(p + POWER_EPS).ln()
    }

    fn grad_phase(&self, responses: &[Vec<Complex>]) -> Vec<Vec<f64>> {
        let slices = as_slices(responses);
        let p = self.link.evaluate(&slices).norm_sqr();
        let factor = -1.0 / (p + POWER_EPS);
        let mut grads = zero_grads(responses);
        for (s, grad_s) in grads.iter_mut().enumerate() {
            let dp = self.link.grad_power_wrt_phase(s, &slices);
            for (g, d) in grad_s.iter_mut().zip(dp) {
                *g += factor * d;
            }
        }
        grads
    }
}

/// Security suppression: minimize leaked power into protected locations,
/// down to a floor. `loss = Σ_i ln(max(|h_i|², floor) + ε)` — once a
/// point's leak is below the floor the term (and its gradient) saturates,
/// so joint objectives stop paying for suppression the goal doesn't need.
pub struct SuppressionObjective {
    /// Linearized channels into the protected region.
    pub leaks: Vec<Linearization>,
    /// Leak power (|h|², linear) below which the loss saturates.
    /// Zero = suppress without limit.
    pub floor: f64,
    /// Band-independent traces behind `leaks`, for band rephasing.
    traces: Vec<ChannelTrace>,
}

impl SuppressionObjective {
    /// Builds the objective over protected points (no floor).
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn new(sim: &ChannelSim, tx: &Endpoint, points: &[Vec3], rx_template: &Endpoint) -> Self {
        assert!(!points.is_empty(), "suppression objective needs locations");
        let traces = sim.trace_sweep(tx, points, rx_template);
        let leaks = par::par_map(&traces, |t| t.linearize_at(&sim.band));
        SuppressionObjective {
            leaks,
            floor: 0.0,
            traces,
        }
    }

    /// Re-phases the retained traces at a new band (see
    /// [`CoverageObjective::rephase`]); the floor is a power ratio and
    /// carries over unchanged.
    pub fn rephase(&mut self, band: &Band) {
        self.leaks = par::par_map(&self.traces, |t| t.linearize_at(band));
    }

    /// Saturates the loss once the leaked RSS falls below
    /// `max_leak_dbm` for a transmitter at `tx_power_dbm` — the
    /// [`crate::service::ServiceGoal::Suppression`] target.
    pub fn with_goal(mut self, max_leak_dbm: f64, tx_power_dbm: f64) -> Self {
        self.floor = db_to_linear(max_leak_dbm - tx_power_dbm);
        self
    }

    /// Worst (highest) leaked RSS over the region, dBm.
    pub fn worst_leak_dbm(&self, responses: &[Vec<Complex>], tx_power_dbm: f64) -> f64 {
        let slices = as_slices(responses);
        self.leaks
            .iter()
            .map(|l| tx_power_dbm + surfos_em::units::amplitude_to_db(l.evaluate(&slices).abs()))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl Objective for SuppressionObjective {
    fn loss(&self, responses: &[Vec<Complex>]) -> f64 {
        let slices = as_slices(responses);
        let terms = par::par_map(&self.leaks, |l| {
            (l.evaluate(&slices).norm_sqr().max(self.floor) + POWER_EPS).ln()
        });
        terms.iter().sum()
    }

    fn grad_phase(&self, responses: &[Vec<Complex>]) -> Vec<Vec<f64>> {
        let slices = as_slices(responses);
        let n_surfaces = responses.len();
        let contribs = par::par_map(&self.leaks, |l| {
            let p = l.evaluate(&slices).norm_sqr();
            if p <= self.floor {
                return None; // saturated: goal met at this point
            }
            let factor = 1.0 / (p + POWER_EPS);
            let dps: Vec<Vec<f64>> = (0..n_surfaces)
                .map(|s| l.grad_power_wrt_phase(s, &slices))
                .collect();
            Some((factor, dps))
        });
        let mut grads = zero_grads(responses);
        for (factor, dps) in contribs.into_iter().flatten() {
            for (grad_s, dp) in grads.iter_mut().zip(dps) {
                for (g, d) in grad_s.iter_mut().zip(dp) {
                    *g += factor * d;
                }
            }
        }
        grads
    }
}

/// A weighted sum of objectives — the joint multitasking loss of §4:
/// "we minimize the sum of localization loss and coverage loss".
#[derive(Default)]
pub struct MultiObjective {
    terms: Vec<(Box<dyn Objective>, f64)>,
}

impl MultiObjective {
    /// An empty objective (zero loss).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a weighted term (builder style).
    ///
    /// # Panics
    /// Panics on non-finite or negative weights.
    pub fn with(mut self, objective: Box<dyn Objective>, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and non-negative"
        );
        self.terms.push((objective, weight));
        self
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been added.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

impl Objective for MultiObjective {
    fn loss(&self, responses: &[Vec<Complex>]) -> f64 {
        // One worker per term: joint tasks (e.g. Figure 5's coverage +
        // localization) score concurrently. The generic heuristic would
        // serialize a 2-term list, so the thread count is pinned. Results
        // come back in term order; the sum is the serial association.
        let losses = par::par_map_with_threads(
            &self.terms,
            self.terms.len(),
            || (),
            |(), (o, w)| w * o.loss(responses),
        );
        losses.iter().sum()
    }

    fn grad_phase(&self, responses: &[Vec<Complex>]) -> Vec<Vec<f64>> {
        // Per-term gradients concurrently, accumulated serially in term
        // order — bit-identical to the sequential loop.
        let grads = par::par_map_with_threads(
            &self.terms,
            self.terms.len(),
            || (),
            |(), (o, w)| (o.grad_phase(responses), *w),
        );
        let mut total = zero_grads(responses);
        for (g, w) in grads {
            for (ts, gs) in total.iter_mut().zip(g) {
                for (t, gi) in ts.iter_mut().zip(gs) {
                    *t += w * gi;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_channel::{OperationMode, SurfaceInstance};
    use surfos_em::antenna::ElementPattern;
    use surfos_em::array::ArrayGeometry;
    use surfos_em::band::NamedBand;
    use surfos_geometry::{FloorPlan, Pose};

    fn setup() -> (ChannelSim, Endpoint, Endpoint) {
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(FloorPlan::new(), band);
        let pose = Pose::wall_mounted(Vec3::new(0.0, 0.0, 1.5), Vec3::X);
        let geom = ArrayGeometry::half_wavelength(8, 8, band.wavelength_m());
        sim.add_surface(SurfaceInstance::new(
            "s0",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(Vec3::new(5.0, -3.0, 2.0), Vec3::new(-1.0, 0.6, 0.0)),
        );
        let mut client = Endpoint::client("c0", Vec3::new(5.0, 3.0, 1.2));
        client.pattern = ElementPattern::Isotropic;
        (sim, ap, client)
    }

    fn grid_points() -> Vec<Vec3> {
        vec![
            Vec3::new(4.0, 2.0, 1.2),
            Vec3::new(5.0, 3.0, 1.2),
            Vec3::new(6.0, 2.5, 1.2),
            Vec3::new(4.5, 3.5, 1.2),
        ]
    }

    fn finite_diff_check(obj: &dyn Objective, responses: &[Vec<Complex>], elems: &[usize]) {
        let grads = obj.grad_phase(responses);
        let base = obj.loss(responses);
        let eps = 1e-6;
        for &e in elems {
            let mut r = responses.to_vec();
            r[0][e] *= Complex::cis(eps);
            let fd = (obj.loss(&r) - base) / eps;
            let g = grads[0][e];
            assert!(
                (fd - g).abs() < 1e-3 * (1.0 + fd.abs().max(g.abs())),
                "elem {e}: fd={fd} grad={g}"
            );
        }
    }

    #[test]
    fn coverage_gradient_matches_fd() {
        let (sim, ap, client) = setup();
        let obj = CoverageObjective::new(&sim, &ap, &grid_points(), &client);
        let responses: Vec<Vec<Complex>> =
            vec![(0..64).map(|i| Complex::cis(i as f64 * 0.13)).collect()];
        finite_diff_check(&obj, &responses, &[0, 17, 63]);
    }

    #[test]
    fn coverage_descent_direction_improves_capacity() {
        let (sim, ap, client) = setup();
        let obj = CoverageObjective::new(&sim, &ap, &grid_points(), &client);
        let responses: Vec<Vec<Complex>> = vec![vec![Complex::ONE; 64]];
        let g = obj.grad_phase(&responses);
        let step = 0.05;
        let stepped: Vec<Vec<Complex>> = vec![responses[0]
            .iter()
            .zip(&g[0])
            .map(|(r, gi)| *r * Complex::cis(-step * gi))
            .collect()];
        assert!(obj.loss(&stepped) <= obj.loss(&responses) + 1e-12);
    }

    #[test]
    fn median_snr_reported() {
        let (sim, ap, client) = setup();
        let obj = CoverageObjective::new(&sim, &ap, &grid_points(), &client);
        let responses: Vec<Vec<Complex>> = vec![vec![Complex::ONE; 64]];
        let snrs = obj.snrs_db(&responses);
        assert_eq!(snrs.len(), 4);
        let med = obj.median_snr_db(&responses);
        let mut sorted = snrs.clone();
        sorted.sort_by(f64::total_cmp);
        assert!(med >= sorted[1] - 1e-9 && med <= sorted[2] + 1e-9);
    }

    #[test]
    fn localization_gradient_matches_fd() {
        let (sim, ap, client) = setup();
        let obj = LocalizationObjective::new(
            &sim,
            0,
            &ap,
            &client,
            &grid_points(),
            AngleGrid::uniform(21, 1.2),
        );
        let responses: Vec<Vec<Complex>> = vec![(0..64)
            .map(|i| Complex::cis((i * i) as f64 * 0.05))
            .collect()];
        finite_diff_check(&obj, &responses, &[3, 32]);
    }

    #[test]
    fn powering_gradient_matches_fd() {
        let (sim, ap, client) = setup();
        let obj = PoweringObjective::new(&sim, &ap, &client);
        let responses: Vec<Vec<Complex>> =
            vec![(0..64).map(|i| Complex::cis(i as f64 * 0.4)).collect()];
        finite_diff_check(&obj, &responses, &[5, 40]);
    }

    #[test]
    fn suppression_prefers_nulls() {
        let (sim, ap, client) = setup();
        let obj = SuppressionObjective::new(&sim, &ap, &grid_points(), &client);
        // Focusing the surface on a protected point must raise the loss
        // relative to an anti-focused (scrambled) configuration.
        let lin = sim.linearize(&ap, &{
            let mut rx = client.clone();
            rx.pose.position = grid_points()[0];
            rx
        });
        let term = &lin.linear[0];
        let focused: Vec<Vec<Complex>> =
            vec![term.coeffs.iter().map(|c| Complex::cis(-c.arg())).collect()];
        let scrambled: Vec<Vec<Complex>> = vec![(0..64)
            .map(|i| Complex::cis((i * 37 % 64) as f64))
            .collect()];
        assert!(obj.loss(&focused) > obj.loss(&scrambled));
    }

    #[test]
    fn multiobjective_weights_sum() {
        let (sim, ap, client) = setup();
        let cov = CoverageObjective::new(&sim, &ap, &grid_points(), &client);
        let pow = PoweringObjective::new(&sim, &ap, &client);
        let responses: Vec<Vec<Complex>> = vec![vec![Complex::ONE; 64]];
        let l_cov = cov.loss(&responses);
        let l_pow = pow.loss(&responses);
        let multi = MultiObjective::new()
            .with(Box::new(cov), 2.0)
            .with(Box::new(pow), 0.5);
        assert!((multi.loss(&responses) - (2.0 * l_cov + 0.5 * l_pow)).abs() < 1e-9);
        assert_eq!(multi.len(), 2);
    }

    #[test]
    fn multiobjective_gradient_matches_fd() {
        let (sim, ap, client) = setup();
        let multi = MultiObjective::new()
            .with(
                Box::new(CoverageObjective::new(&sim, &ap, &grid_points(), &client)),
                1.0,
            )
            .with(
                Box::new(LocalizationObjective::new(
                    &sim,
                    0,
                    &ap,
                    &client,
                    &grid_points(),
                    AngleGrid::uniform(15, 1.2),
                )),
                0.3,
            );
        let responses: Vec<Vec<Complex>> =
            vec![(0..64).map(|i| Complex::cis(i as f64 * 0.09)).collect()];
        finite_diff_check(&multi, &responses, &[11, 50]);
    }

    #[test]
    fn coverage_rephase_matches_rebuild_at_new_band() {
        let (sim, ap, client) = setup();
        let mut obj = CoverageObjective::new(&sim, &ap, &grid_points(), &client);
        // Retune the environment and rebuild from scratch for reference.
        let mut retuned = sim.clone();
        retuned.band = NamedBand::MmWave60GHz.band();
        retuned.invalidate_cache();
        let reference = CoverageObjective::new(&retuned, &ap, &grid_points(), &client);
        // Re-phasing the retained traces must match bit-for-bit.
        obj.rephase(&retuned.band);
        assert_eq!(obj.snr_scale, reference.snr_scale);
        assert_eq!(obj.links.len(), reference.links.len());
        for (a, b) in obj.links.iter().zip(&reference.links) {
            assert_eq!(a.constant, b.constant);
            assert_eq!(a.linear.len(), b.linear.len());
            for (ta, tb) in a.linear.iter().zip(&b.linear) {
                assert_eq!(ta.coeffs, tb.coeffs);
            }
        }
        // And back: a full band round-trip restores the original exactly.
        let original = CoverageObjective::new(&sim, &ap, &grid_points(), &client);
        obj.rephase(&sim.band);
        for (a, b) in obj.links.iter().zip(&original.links) {
            assert_eq!(a.constant, b.constant);
        }
    }

    #[test]
    fn suppression_rephase_matches_rebuild_at_new_band() {
        let (sim, ap, client) = setup();
        let mut obj =
            SuppressionObjective::new(&sim, &ap, &grid_points(), &client).with_goal(-60.0, 20.0);
        let mut retuned = sim.clone();
        retuned.band = NamedBand::MmWave60GHz.band();
        retuned.invalidate_cache();
        let reference = SuppressionObjective::new(&retuned, &ap, &grid_points(), &client);
        let floor = obj.floor;
        obj.rephase(&retuned.band);
        assert_eq!(obj.floor, floor, "floor is band-free");
        for (a, b) in obj.leaks.iter().zip(&reference.leaks) {
            assert_eq!(a.constant, b.constant);
        }
    }

    #[test]
    fn multiobjective_parallel_terms_match_serial_sum() {
        let (sim, ap, client) = setup();
        let cov = CoverageObjective::new(&sim, &ap, &grid_points(), &client);
        let pow = PoweringObjective::new(&sim, &ap, &client);
        let responses: Vec<Vec<Complex>> =
            vec![(0..64).map(|i| Complex::cis(i as f64 * 0.21)).collect()];
        let serial = 2.0 * cov.loss(&responses) + 0.5 * pow.loss(&responses);
        let serial_grad = {
            let mut total = zero_grads(&responses);
            for (o, w) in [(&cov as &dyn Objective, 2.0), (&pow as &dyn Objective, 0.5)] {
                for (ts, gs) in total.iter_mut().zip(o.grad_phase(&responses)) {
                    for (t, gi) in ts.iter_mut().zip(gs) {
                        *t += w * gi;
                    }
                }
            }
            total
        };
        let multi = MultiObjective::new()
            .with(Box::new(cov), 2.0)
            .with(Box::new(pow), 0.5);
        // Concurrent term evaluation is bit-identical to the serial loop.
        assert_eq!(multi.loss(&responses), serial);
        assert_eq!(multi.grad_phase(&responses), serial_grad);
    }

    #[test]
    #[should_panic(expected = "needs locations")]
    fn empty_coverage_rejected() {
        let (sim, ap, client) = setup();
        let _ = CoverageObjective::new(&sim, &ap, &[], &client);
    }

    #[test]
    #[should_panic(expected = "weight must be finite")]
    fn bad_weight_rejected() {
        let (sim, ap, client) = setup();
        let cov = CoverageObjective::new(&sim, &ap, &grid_points(), &client);
        let _ = MultiObjective::new().with(Box::new(cov), -1.0);
    }
}
