//! # surfos-orchestrator
//!
//! The SurfOS **surface orchestrator** (paper §3.2): the universal central
//! control plane that turns service requests into scheduled tasks and
//! optimized surface configurations.
//!
//! - [`service`]: the service request APIs — `enhance_link()`,
//!   `optimize_coverage()`, `enable_sensing()`, `init_powering()`,
//!   `protect_link()` — environment-wide abstractions that never name
//!   hardware.
//! - [`task`]: tasks (the OS-process analogue) with states, priorities and
//!   lifecycles.
//! - [`mod@slice`]: the minimal resource unit — a slice of time × frequency ×
//!   space — and assignments of slices to tasks.
//! - [`scheduler`]: admission, priority scheduling, preemption, idle
//!   reclamation and isolation across slices.
//! - [`objective`]: differentiable service objectives over surface
//!   configurations (coverage capacity, localization cross-entropy,
//!   powering, weighted multitask sums).
//! - [`optimizer`]: the configuration optimizer — Adam gradient descent on
//!   analytic gradients, with random-search and greedy quantized
//!   coordinate-descent baselines, and granularity tying for column-/row-
//!   wise hardware.
//! - [`orchestrator`]: the facade that owns the channel simulator, task
//!   table and scheduler, and exposes the service API.

pub mod objective;
pub mod optimizer;
pub mod orchestrator;
pub mod scheduler;
pub mod service;
pub mod slice;
pub mod task;

pub use objective::{
    CoverageObjective, LocalizationObjective, MultiObjective, Objective, PoweringObjective,
};
pub use optimizer::{adam, greedy_quantized, random_search, AdamOptions, OptimizeResult};
pub use orchestrator::Orchestrator;
pub use scheduler::Scheduler;
pub use service::{ServiceGoal, ServiceKind, ServiceRequest};
pub use task::{Task, TaskId, TaskState};
