//! Resource slices: the minimal scheduling unit (paper §3.2).
//!
//! "The minimal resource scheduling unit assigned to a task would be a
//! slice of time, frequency, and space." A [`Slice`] is one cell of that
//! 3-D resource grid: a time slot within the schedule frame, a frequency
//! band index, and a surface. Multiple tasks may share a slice only as a
//! *multitask group* whose configuration is jointly optimized — the
//! paper's surface-wide configuration multiplexing.

use crate::task::TaskId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One cell of the time × frequency × space resource grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Slice {
    /// Time slot index within the schedule frame.
    pub slot: usize,
    /// Frequency band index (into the orchestrator's band list).
    pub band: usize,
    /// Surface index (into the simulator's surface list).
    pub surface: usize,
}

/// Tasks sharing one slice under joint optimization.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MultitaskGroup {
    /// Member tasks (sorted, deduplicated).
    pub tasks: Vec<TaskId>,
}

impl MultitaskGroup {
    /// A group of one.
    pub fn solo(task: TaskId) -> Self {
        MultitaskGroup { tasks: vec![task] }
    }

    /// Adds a task (keeps the list sorted and unique).
    pub fn add(&mut self, task: TaskId) {
        if let Err(pos) = self.tasks.binary_search(&task) {
            self.tasks.insert(pos, task);
        }
    }

    /// Removes a task; returns `true` if the group is now empty.
    pub fn remove(&mut self, task: TaskId) -> bool {
        if let Ok(pos) = self.tasks.binary_search(&task) {
            self.tasks.remove(pos);
        }
        self.tasks.is_empty()
    }

    /// Whether the task is a member.
    pub fn contains(&self, task: TaskId) -> bool {
        self.tasks.binary_search(&task).is_ok()
    }
}

/// The allocation state of the whole resource grid.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SliceMap {
    assignments: BTreeMap<Slice, MultitaskGroup>,
}

impl SliceMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The group holding a slice, if any.
    pub fn group(&self, slice: Slice) -> Option<&MultitaskGroup> {
        self.assignments.get(&slice)
    }

    /// Assigns a slice to a task, joining any existing group
    /// (joint-optimization sharing).
    pub fn assign(&mut self, slice: Slice, task: TaskId) {
        self.assignments.entry(slice).or_default().add(task);
    }

    /// Releases every slice held by a task. Returns the slices freed
    /// entirely (group became empty).
    pub fn release_task(&mut self, task: TaskId) -> Vec<Slice> {
        let mut freed = Vec::new();
        self.assignments.retain(|slice, group| {
            if group.contains(task) && group.remove(task) {
                freed.push(*slice);
                false
            } else {
                true
            }
        });
        freed
    }

    /// All slices a task holds.
    pub fn slices_of(&self, task: TaskId) -> Vec<Slice> {
        self.assignments
            .iter()
            .filter(|(_, g)| g.contains(task))
            .map(|(s, _)| *s)
            .collect()
    }

    /// All assigned slices with their groups.
    pub fn iter(&self) -> impl Iterator<Item = (&Slice, &MultitaskGroup)> {
        self.assignments.iter()
    }

    /// Number of assigned slices.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when no slice is assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Isolation invariant: every slice has exactly one group and no group
    /// is empty. (Multiple *tasks* per slice are legal only through a
    /// group; the map cannot represent two groups on one slice, so the
    /// check is that no empty group lingers.)
    pub fn check_isolation(&self) -> Result<(), String> {
        for (slice, group) in &self.assignments {
            if group.tasks.is_empty() {
                return Err(format!("empty group left on {slice:?}"));
            }
            let mut sorted = group.tasks.clone();
            sorted.dedup();
            if sorted.len() != group.tasks.len() {
                return Err(format!("duplicate task in group on {slice:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(slot: usize, band: usize, surface: usize) -> Slice {
        Slice {
            slot,
            band,
            surface,
        }
    }

    #[test]
    fn assign_and_lookup() {
        let mut m = SliceMap::new();
        m.assign(s(0, 0, 0), 7);
        assert!(m.group(s(0, 0, 0)).unwrap().contains(7));
        assert!(m.group(s(1, 0, 0)).is_none());
        assert_eq!(m.slices_of(7), vec![s(0, 0, 0)]);
    }

    #[test]
    fn sharing_builds_group() {
        let mut m = SliceMap::new();
        m.assign(s(0, 0, 0), 1);
        m.assign(s(0, 0, 0), 2);
        let g = m.group(s(0, 0, 0)).unwrap();
        assert_eq!(g.tasks, vec![1, 2]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn release_frees_only_emptied_slices() {
        let mut m = SliceMap::new();
        m.assign(s(0, 0, 0), 1);
        m.assign(s(0, 0, 0), 2);
        m.assign(s(1, 0, 0), 1);
        let freed = m.release_task(1);
        assert_eq!(freed, vec![s(1, 0, 0)]);
        assert_eq!(m.len(), 1);
        assert!(m.group(s(0, 0, 0)).unwrap().contains(2));
        assert!(!m.group(s(0, 0, 0)).unwrap().contains(1));
    }

    #[test]
    fn group_add_is_idempotent() {
        let mut g = MultitaskGroup::solo(3);
        g.add(3);
        g.add(1);
        assert_eq!(g.tasks, vec![1, 3]);
    }

    #[test]
    fn isolation_check_passes_normal_use() {
        let mut m = SliceMap::new();
        for task in 0..5 {
            for slot in 0..3 {
                m.assign(s(slot, 0, task as usize % 2), task);
            }
        }
        assert_eq!(m.check_isolation(), Ok(()));
    }

    proptest! {
        #[test]
        fn prop_assign_release_preserves_isolation(
            ops in prop::collection::vec(
                (0usize..4, 0usize..2, 0usize..3, 0u64..6, prop::bool::ANY),
                0..60
            )
        ) {
            let mut m = SliceMap::new();
            for (slot, band, surface, task, release) in ops {
                if release {
                    m.release_task(task);
                } else {
                    m.assign(s(slot, band, surface), task);
                }
                prop_assert_eq!(m.check_isolation(), Ok(()));
            }
        }

        #[test]
        fn prop_release_removes_all_traces(
            assigns in prop::collection::vec((0usize..4, 0usize..2, 0u64..5), 1..40),
            victim in 0u64..5,
        ) {
            let mut m = SliceMap::new();
            for (slot, band, task) in assigns {
                m.assign(s(slot, band, 0), task);
            }
            m.release_task(victim);
            prop_assert!(m.slices_of(victim).is_empty());
            for (_, g) in m.iter() {
                prop_assert!(!g.contains(victim));
            }
        }
    }
}
