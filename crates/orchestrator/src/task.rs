//! Tasks: the OS-process analogue for surface services (paper §3.2).

use crate::service::ServiceRequest;
use serde::{Deserialize, Serialize};

/// Task identifier (monotonically assigned by the task table).
pub type TaskId = u64;

/// Lifecycle states. The transitions mirror a conventional process table:
/// `Pending → Running ↔ Idle → Completed`, with `Failed` reachable from
/// any live state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    /// Admitted but not yet scheduled onto any slice.
    Pending,
    /// Holding slices and actively served.
    Running,
    /// Alive but not currently using its slices (resources reclaimable).
    Idle,
    /// Finished normally (duration elapsed or goal permanently met).
    Completed,
    /// Could not be (or no longer can be) served.
    Failed,
}

/// One task: an admitted service request plus its runtime state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Identifier.
    pub id: TaskId,
    /// The request that created the task.
    pub request: ServiceRequest,
    /// Current state.
    pub state: TaskState,
    /// Simulation time the task was admitted, milliseconds.
    pub admitted_at_ms: u64,
    /// Most recent measured service metric (meaning depends on the goal:
    /// SNR dB, localization error m, delivered power dBm…).
    pub last_metric: Option<f64>,
}

impl Task {
    /// Time the task expires, if it has a duration.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.request
            .duration_s
            .map(|d| self.admitted_at_ms + (d * 1000.0) as u64)
    }

    /// Whether the task has outlived its requested duration at `now`.
    pub fn expired(&self, now_ms: u64) -> bool {
        self.deadline_ms().is_some_and(|d| now_ms >= d)
    }

    /// Whether the task currently holds (or may hold) resources.
    pub fn is_live(&self) -> bool {
        matches!(
            self.state,
            TaskState::Pending | TaskState::Running | TaskState::Idle
        )
    }
}

/// The task table: admission and lifecycle management.
#[derive(Debug, Default)]
pub struct TaskTable {
    tasks: Vec<Task>,
    next_id: TaskId,
}

impl TaskTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a request; returns the new task's id.
    pub fn admit(&mut self, request: ServiceRequest, now_ms: u64) -> TaskId {
        let id = self.next_id;
        self.next_id += 1;
        self.tasks.push(Task {
            id,
            request,
            state: TaskState::Pending,
            admitted_at_ms: now_ms,
            last_metric: None,
        });
        id
    }

    /// Looks a task up.
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: TaskId) -> Option<&mut Task> {
        self.tasks.iter_mut().find(|t| t.id == id)
    }

    /// All tasks.
    pub fn all(&self) -> &[Task] {
        &self.tasks
    }

    /// Live tasks (pending, running or idle), highest priority first;
    /// ties broken by admission order (earlier first).
    pub fn live_by_priority(&self) -> Vec<&Task> {
        let mut live: Vec<&Task> = self.tasks.iter().filter(|t| t.is_live()).collect();
        live.sort_by(|a, b| {
            b.request
                .priority
                .cmp(&a.request.priority)
                .then(a.id.cmp(&b.id))
        });
        live
    }

    /// Transitions a task's state.
    ///
    /// # Panics
    /// Panics on an illegal transition (e.g. reviving a completed task) —
    /// scheduler logic owns transitions, so an illegal one is a kernel bug.
    pub fn set_state(&mut self, id: TaskId, state: TaskState) {
        let task = self.get_mut(id).expect("unknown task id");
        let legal = match (task.state, state) {
            (a, b) if a == b => true,
            (TaskState::Pending, TaskState::Running | TaskState::Failed) => true,
            (
                TaskState::Running,
                TaskState::Idle | TaskState::Completed | TaskState::Failed | TaskState::Pending,
            ) => true,
            (TaskState::Idle, TaskState::Running | TaskState::Completed | TaskState::Failed) => {
                true
            }
            _ => false,
        };
        assert!(
            legal,
            "illegal task transition {:?} -> {:?} for task {}",
            task.state, state, id
        );
        task.state = state;
    }

    /// Marks expired tasks completed; returns their ids (the paper's
    /// "setting a task idle when not used and releasing resources" —
    /// expiry is the strongest form).
    pub fn reap_expired(&mut self, now_ms: u64) -> Vec<TaskId> {
        let mut reaped = Vec::new();
        for t in &mut self.tasks {
            if t.is_live() && t.expired(now_ms) {
                t.state = TaskState::Completed;
                reaped.push(t.id);
            }
        }
        reaped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceRequest;

    fn table() -> TaskTable {
        let mut t = TaskTable::new();
        t.admit(ServiceRequest::optimize_coverage("bedroom", 25.0), 0);
        t.admit(ServiceRequest::enhance_link("vr", 30.0, 10.0), 10);
        t.admit(ServiceRequest::enable_sensing("bedroom", 2.0), 20);
        t
    }

    #[test]
    fn ids_are_monotonic() {
        let t = table();
        let ids: Vec<TaskId> = t.all().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn priority_ordering() {
        let t = table();
        let order: Vec<TaskId> = t.live_by_priority().iter().map(|t| t.id).collect();
        // enhance_link (5) > sensing (4) > coverage (3)
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn priority_ties_broken_by_admission() {
        let mut t = TaskTable::new();
        let a = t.admit(ServiceRequest::optimize_coverage("a", 10.0), 0);
        let b = t.admit(ServiceRequest::optimize_coverage("b", 10.0), 5);
        let order: Vec<TaskId> = t.live_by_priority().iter().map(|t| t.id).collect();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn lifecycle_transitions() {
        let mut t = table();
        t.set_state(0, TaskState::Running);
        t.set_state(0, TaskState::Idle);
        t.set_state(0, TaskState::Running);
        t.set_state(0, TaskState::Completed);
        assert_eq!(t.get(0).unwrap().state, TaskState::Completed);
        assert!(!t.get(0).unwrap().is_live());
    }

    #[test]
    #[should_panic(expected = "illegal task transition")]
    fn cannot_revive_completed() {
        let mut t = table();
        t.set_state(0, TaskState::Running);
        t.set_state(0, TaskState::Completed);
        t.set_state(0, TaskState::Running);
    }

    #[test]
    fn expiry_reaping() {
        let mut t = table();
        // Task 2 (sensing) has a 2 s duration from t=20 ms.
        assert!(t.reap_expired(1000).is_empty());
        let reaped = t.reap_expired(2020);
        assert_eq!(reaped, vec![2]);
        assert_eq!(t.get(2).unwrap().state, TaskState::Completed);
        // Tasks without duration never expire.
        assert!(t.reap_expired(u64::MAX / 2).is_empty());
    }

    #[test]
    fn deadline_computation() {
        let t = table();
        assert_eq!(t.get(2).unwrap().deadline_ms(), Some(2020));
        assert_eq!(t.get(0).unwrap().deadline_ms(), None);
        assert!(t.get(2).unwrap().expired(2020));
        assert!(!t.get(2).unwrap().expired(2019));
    }
}
