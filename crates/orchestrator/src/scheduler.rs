//! The slice scheduler: admission, priority, sharing, preemption.
//!
//! Scheduling is recomputed per frame from the live task set in priority
//! order, so preemption falls out naturally: when a high-priority task
//! arrives, the next frame's schedule simply allocates to it first and
//! lower-priority tasks keep whatever is left (possibly nothing — they
//! stay pending until resources free up). Tasks marked *shareable* can be
//! co-scheduled on the same slice as a multitask group whose configuration
//! the optimizer solves jointly (§3.2's configuration multiplexing);
//! non-shareable tasks get exclusive slices.

use crate::slice::{Slice, SliceMap};
use crate::task::TaskId;
use std::collections::BTreeMap;

/// The schedulable resource grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceModel {
    /// Time slots per schedule frame.
    pub slots_per_frame: usize,
    /// Number of frequency bands managed.
    pub bands: usize,
    /// Number of deployed surfaces.
    pub surfaces: usize,
}

/// One task's resource requirement for the coming frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Requirement {
    /// The task.
    pub task: TaskId,
    /// Scheduling priority (higher first).
    pub priority: u8,
    /// Which band the task operates on.
    pub band: usize,
    /// Surfaces that can serve the task (the orchestrator computes
    /// serviceability from geometry); all of them are claimed together.
    pub surfaces: Vec<usize>,
    /// Minimum time slots per frame the task needs to be admitted.
    pub min_slots: usize,
    /// Whether the task tolerates sharing a slice via joint optimization.
    pub shareable: bool,
}

/// The outcome of scheduling one frame.
#[derive(Debug, Clone, Default)]
pub struct ScheduleOutcome {
    /// The slice assignments.
    pub map: SliceMap,
    /// Tasks that could not receive their minimum slots.
    pub rejected: Vec<TaskId>,
}

/// The frame scheduler.
#[derive(Debug, Default)]
pub struct Scheduler;

impl Scheduler {
    /// Schedules a frame. Requirements are served in priority order
    /// (ties: lower task id first, for determinism).
    ///
    /// # Panics
    /// Panics if a requirement references a band/surface outside the
    /// resource model, or requests zero surfaces or more slots than the
    /// frame has — malformed requirements are orchestrator bugs.
    pub fn schedule(requirements: &[Requirement], model: &ResourceModel) -> ScheduleOutcome {
        for r in requirements {
            assert!(r.band < model.bands, "band {} out of range", r.band);
            assert!(
                r.surfaces.iter().all(|s| *s < model.surfaces),
                "surface out of range in task {}",
                r.task
            );
            assert!(
                !r.surfaces.is_empty(),
                "task {} requests no surfaces",
                r.task
            );
            assert!(
                r.min_slots >= 1 && r.min_slots <= model.slots_per_frame,
                "task {} min_slots {} outside frame",
                r.task,
                r.min_slots
            );
        }

        let mut order: Vec<&Requirement> = requirements.iter().collect();
        order.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.task.cmp(&b.task)));

        let mut map = SliceMap::new();
        // Occupancy bookkeeping: slice → (all members shareable?).
        let mut shareable_at: BTreeMap<Slice, bool> = BTreeMap::new();
        let mut rejected = Vec::new();

        for req in order {
            // A slot is usable if *every* slice (one per claimed surface)
            // in the task's band is either free, or shareable-with-us.
            let usable: Vec<usize> = (0..model.slots_per_frame)
                .filter(|&slot| {
                    req.surfaces.iter().all(|&surface| {
                        let slice = Slice {
                            slot,
                            band: req.band,
                            surface,
                        };
                        match shareable_at.get(&slice) {
                            None => true,
                            Some(&everyone_shares) => everyone_shares && req.shareable,
                        }
                    })
                })
                .collect();

            if usable.len() < req.min_slots {
                rejected.push(req.task);
                continue;
            }
            for &slot in usable.iter().take(req.min_slots) {
                for &surface in &req.surfaces {
                    let slice = Slice {
                        slot,
                        band: req.band,
                        surface,
                    };
                    map.assign(slice, req.task);
                    shareable_at
                        .entry(slice)
                        .and_modify(|s| *s &= req.shareable)
                        .or_insert(req.shareable);
                }
            }
        }

        debug_assert_eq!(map.check_isolation(), Ok(()));
        ScheduleOutcome { map, rejected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> ResourceModel {
        ResourceModel {
            slots_per_frame: 4,
            bands: 2,
            surfaces: 2,
        }
    }

    fn req(
        task: TaskId,
        priority: u8,
        surfaces: Vec<usize>,
        min_slots: usize,
        shareable: bool,
    ) -> Requirement {
        Requirement {
            task,
            priority,
            band: 0,
            surfaces,
            min_slots,
            shareable,
        }
    }

    #[test]
    fn single_task_gets_slots() {
        let out = Scheduler::schedule(&[req(1, 5, vec![0], 2, false)], &model());
        assert!(out.rejected.is_empty());
        assert_eq!(out.map.slices_of(1).len(), 2);
    }

    #[test]
    fn exclusive_tasks_split_the_frame() {
        let out = Scheduler::schedule(
            &[req(1, 5, vec![0], 2, false), req(2, 4, vec![0], 2, false)],
            &model(),
        );
        assert!(out.rejected.is_empty());
        let s1 = out.map.slices_of(1);
        let s2 = out.map.slices_of(2);
        assert_eq!(s1.len(), 2);
        assert_eq!(s2.len(), 2);
        assert!(s1.iter().all(|s| !s2.contains(s)), "no overlap");
    }

    #[test]
    fn shareable_tasks_stack_on_same_slices() {
        let out = Scheduler::schedule(
            &[req(1, 5, vec![0], 4, true), req(2, 4, vec![0], 4, true)],
            &model(),
        );
        assert!(out.rejected.is_empty());
        // Both fit the whole frame by sharing.
        assert_eq!(out.map.slices_of(1).len(), 4);
        assert_eq!(out.map.slices_of(2).len(), 4);
        for (_, group) in out.map.iter() {
            assert_eq!(group.tasks, vec![1, 2]);
        }
    }

    #[test]
    fn nonshareable_blocks_sharing() {
        let out = Scheduler::schedule(
            &[
                req(1, 5, vec![0], 4, false), // exclusive, takes whole frame
                req(2, 4, vec![0], 1, true),
            ],
            &model(),
        );
        assert_eq!(out.rejected, vec![2]);
    }

    #[test]
    fn priority_preempts_lower() {
        // Low priority first in the list — order must not matter.
        let out = Scheduler::schedule(
            &[req(1, 1, vec![0], 3, false), req(2, 9, vec![0], 3, false)],
            &model(),
        );
        // High priority task 2 gets its 3 slots; task 1 can only find 1
        // free slot, below its minimum → rejected.
        assert_eq!(out.rejected, vec![1]);
        assert_eq!(out.map.slices_of(2).len(), 3);
    }

    #[test]
    fn different_bands_do_not_conflict() {
        let mut r2 = req(2, 4, vec![0], 4, false);
        r2.band = 1;
        let out = Scheduler::schedule(&[req(1, 5, vec![0], 4, false), r2], &model());
        assert!(out.rejected.is_empty());
    }

    #[test]
    fn different_surfaces_do_not_conflict() {
        let out = Scheduler::schedule(
            &[req(1, 5, vec![0], 4, false), req(2, 4, vec![1], 4, false)],
            &model(),
        );
        assert!(out.rejected.is_empty());
    }

    #[test]
    fn multi_surface_claim_needs_all_surfaces_free() {
        let out = Scheduler::schedule(
            &[
                req(1, 5, vec![0], 2, false),    // surface 0, slots 0–1
                req(2, 4, vec![0, 1], 2, false), // both surfaces together
            ],
            &model(),
        );
        assert!(out.rejected.is_empty());
        // Task 2 can only use slots where surface 0 is also free (2, 3),
        // and it claims a slice on each surface per slot: 2 slots × 2
        // surfaces = 4 slices.
        let s2 = out.map.slices_of(2);
        assert_eq!(s2.len(), 4);
        assert!(s2.iter().all(|s| s.slot >= 2));
    }

    #[test]
    fn multi_surface_claim_rejected_when_short() {
        let out = Scheduler::schedule(
            &[
                req(1, 5, vec![0], 3, false),
                req(2, 4, vec![0, 1], 2, false),
            ],
            &model(),
        );
        assert_eq!(out.rejected, vec![2]);
    }

    #[test]
    fn deterministic_tiebreak_by_task_id() {
        let out = Scheduler::schedule(
            &[req(7, 5, vec![0], 3, false), req(3, 5, vec![0], 3, false)],
            &model(),
        );
        // Same priority: lower id (3) wins the contended slots.
        assert_eq!(out.rejected, vec![7]);
        assert_eq!(out.map.slices_of(3).len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_band_panics() {
        let mut r = req(1, 5, vec![0], 1, false);
        r.band = 7;
        let _ = Scheduler::schedule(&[r], &model());
    }

    proptest! {
        #[test]
        fn prop_schedule_respects_isolation_and_minimums(
            reqs in prop::collection::vec(
                (0u64..20, 0u8..10, 0usize..2, 1usize..4, prop::bool::ANY),
                1..12
            )
        ) {
            // Unique task ids.
            let mut seen = std::collections::BTreeSet::new();
            let requirements: Vec<Requirement> = reqs
                .into_iter()
                .filter(|(t, ..)| seen.insert(*t))
                .map(|(task, priority, surface, min_slots, shareable)| Requirement {
                    task, priority, band: 0,
                    surfaces: vec![surface],
                    min_slots, shareable,
                })
                .collect();
            let out = Scheduler::schedule(&requirements, &model());
            prop_assert_eq!(out.map.check_isolation(), Ok(()));
            for r in &requirements {
                let held = out.map.slices_of(r.task).len();
                if out.rejected.contains(&r.task) {
                    prop_assert_eq!(held, 0, "rejected task holds slices");
                } else {
                    prop_assert!(held >= r.min_slots, "admitted below minimum");
                }
            }
            // Sharing only among shareable tasks.
            for (_, group) in out.map.iter() {
                if group.tasks.len() > 1 {
                    for t in &group.tasks {
                        let r = requirements.iter().find(|r| r.task == *t).unwrap();
                        prop_assert!(r.shareable, "non-shareable task in group");
                    }
                }
            }
        }
    }
}
