//! The configuration optimizer.
//!
//! The paper's prototype "uses gradient descent, while other algorithms
//! can be easily supported". Accordingly:
//!
//! - [`adam`] — gradient descent with Adam over element phases, driven by
//!   the analytic gradients of [`crate::objective`]; the workhorse.
//! - [`random_search`] — a sampling baseline (how much does the gradient
//!   buy?).
//! - [`greedy_quantized`] — per-element coordinate descent over a design's
//!   discrete phase states; the realistic algorithm for 1–2-bit hardware
//!   and the ablation for quantization losses.
//!
//! All optimizers support *granularity tying*: a surface whose hardware is
//! column-/row-wise reconfigurable exposes fewer degrees of freedom, and
//! the optimizer must respect that rather than let the hardware silently
//! project (and wreck) its solution.

use crate::objective::Objective;
use rand::{Rng, RngExt};
use surfos_channel::par;
use surfos_em::complex::Complex;
use surfos_em::phase::wrap_phase;

/// Ties element phases into shared groups per surface: `groups[s]` lists,
/// for each degree of freedom, the element indices sharing that state.
/// `None` for a surface means element-wise control.
#[derive(Debug, Clone, Default)]
pub struct Tying {
    /// Per-surface grouping; indexed like the response vectors.
    pub groups: Vec<Option<Vec<Vec<usize>>>>,
}

impl Tying {
    /// Element-wise control on every one of `n` surfaces.
    pub fn element_wise(n: usize) -> Self {
        Tying {
            groups: vec![None; n],
        }
    }

    /// Column-wise tying for surface `s` with a `rows × cols` grid.
    pub fn tie_columns(&mut self, s: usize, rows: usize, cols: usize) {
        let groups = (0..cols)
            .map(|c| (0..rows).map(|r| r * cols + c).collect())
            .collect();
        self.groups[s] = Some(groups);
    }

    /// Row-wise tying for surface `s` with a `rows × cols` grid.
    pub fn tie_rows(&mut self, s: usize, rows: usize, cols: usize) {
        let groups = (0..rows)
            .map(|r| (0..cols).map(|c| r * cols + c).collect())
            .collect();
        self.groups[s] = Some(groups);
    }

    /// Degrees of freedom for surface `s` given `n_elements`.
    pub fn dof(&self, s: usize, n_elements: usize) -> usize {
        match &self.groups[s] {
            None => n_elements,
            Some(g) => g.len(),
        }
    }

    /// Expands per-group phases to per-element phases for surface `s`.
    fn expand(&self, s: usize, params: &[f64], n_elements: usize) -> Vec<f64> {
        match &self.groups[s] {
            None => params.to_vec(),
            Some(groups) => {
                let mut out = vec![0.0; n_elements];
                for (g, &phase) in groups.iter().zip(params) {
                    for &e in g {
                        out[e] = phase;
                    }
                }
                out
            }
        }
    }

    /// Reduces per-element gradients to per-group gradients for surface `s`.
    fn reduce(&self, s: usize, grad: &[f64]) -> Vec<f64> {
        match &self.groups[s] {
            None => grad.to_vec(),
            Some(groups) => groups
                .iter()
                .map(|g| g.iter().map(|&e| grad[e]).sum())
                .collect(),
        }
    }
}

/// Options for [`adam`].
#[derive(Debug, Clone, Copy)]
pub struct AdamOptions {
    /// Number of gradient steps.
    pub iters: usize,
    /// Learning rate (radians per step scale).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
}

impl Default for AdamOptions {
    fn default() -> Self {
        AdamOptions {
            iters: 300,
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
        }
    }
}

/// The result of a configuration search.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// Optimized per-surface element phases.
    pub phases: Vec<Vec<f64>>,
    /// Final loss.
    pub loss: f64,
    /// Loss after every iteration (for convergence plots/benches).
    pub history: Vec<f64>,
}

fn to_responses(phases: &[Vec<f64>]) -> Vec<Vec<Complex>> {
    phases
        .iter()
        .map(|p| p.iter().map(|&x| Complex::cis(x)).collect())
        .collect()
}

/// Adam gradient descent over (possibly tied) element phases.
///
/// `initial` holds per-surface *per-element* phases; with tying, the
/// group value is taken from the first member element.
///
/// # Panics
/// Panics if `initial` shape disagrees with `tying`, or options are
/// degenerate.
pub fn adam(
    objective: &dyn Objective,
    initial: &[Vec<f64>],
    tying: &Tying,
    opts: AdamOptions,
) -> OptimizeResult {
    let _span = surfos_obs::span!("orchestrator.adam");
    assert!(opts.iters > 0, "need at least one iteration");
    assert!(opts.lr > 0.0, "learning rate must be positive");
    assert_eq!(initial.len(), tying.groups.len(), "tying shape mismatch");
    let n_elements: Vec<usize> = initial.iter().map(Vec::len).collect();

    // Parameters: per-surface group phases.
    let mut params: Vec<Vec<f64>> = initial
        .iter()
        .enumerate()
        .map(|(s, elems)| match &tying.groups[s] {
            None => elems.clone(),
            Some(groups) => groups.iter().map(|g| elems[g[0]]).collect(),
        })
        .collect();

    let mut m: Vec<Vec<f64>> = params.iter().map(|p| vec![0.0; p.len()]).collect();
    let mut v: Vec<Vec<f64>> = params.iter().map(|p| vec![0.0; p.len()]).collect();
    let mut history = Vec::with_capacity(opts.iters);
    let eps = 1e-8;

    let mut best_loss = f64::INFINITY;
    let mut best_params = params.clone();

    for t in 1..=opts.iters {
        let _iter_span = surfos_obs::span!("orchestrator.adam.iter");
        let element_phases: Vec<Vec<f64>> = params
            .iter()
            .enumerate()
            .map(|(s, p)| tying.expand(s, p, n_elements[s]))
            .collect();
        let responses = to_responses(&element_phases);
        let loss = objective.loss(&responses);
        if loss < best_loss {
            best_loss = loss;
            best_params = params.clone();
        }
        history.push(loss);

        let elem_grads = objective.grad_phase(&responses);
        if surfos_obs::enabled() {
            // The norm is only worth its O(elements) sweep when someone is
            // watching. Milli-units keep sub-1.0 norms out of bucket zero.
            let norm = elem_grads
                .iter()
                .flatten()
                .map(|g| g * g)
                .sum::<f64>()
                .sqrt();
            surfos_obs::observe("orchestrator.adam.grad_norm_milli", (norm * 1e3) as u64);
            surfos_obs::gauge("orchestrator.adam.loss", loss);
        }
        for s in 0..params.len() {
            let g = tying.reduce(s, &elem_grads[s]);
            for i in 0..params[s].len() {
                m[s][i] = opts.beta1 * m[s][i] + (1.0 - opts.beta1) * g[i];
                v[s][i] = opts.beta2 * v[s][i] + (1.0 - opts.beta2) * g[i] * g[i];
                let m_hat = m[s][i] / (1.0 - opts.beta1.powi(t as i32));
                let v_hat = v[s][i] / (1.0 - opts.beta2.powi(t as i32));
                params[s][i] = wrap_phase(params[s][i] - opts.lr * m_hat / (v_hat.sqrt() + eps));
            }
        }
    }

    // Evaluate the final point too; keep the best seen.
    let final_phases: Vec<Vec<f64>> = params
        .iter()
        .enumerate()
        .map(|(s, p)| tying.expand(s, p, n_elements[s]))
        .collect();
    let final_loss = objective.loss(&to_responses(&final_phases));
    if final_loss < best_loss {
        best_loss = final_loss;
        best_params = params;
    }
    history.push(final_loss);

    surfos_obs::add("orchestrator.adam.iters", opts.iters as u64);
    surfos_obs::gauge("orchestrator.adam.loss", best_loss);
    let phases = best_params
        .iter()
        .enumerate()
        .map(|(s, p)| tying.expand(s, p, n_elements[s]))
        .collect();
    OptimizeResult {
        phases,
        loss: best_loss,
        history,
    }
}

/// Random-search baseline: `samples` uniform configurations, keep the best.
pub fn random_search<R: Rng>(
    objective: &dyn Objective,
    shape: &[usize],
    samples: usize,
    rng: &mut R,
) -> OptimizeResult {
    let _span = surfos_obs::span!("orchestrator.random_search");
    surfos_obs::add("orchestrator.random_search.samples", samples as u64);
    assert!(samples > 0, "need at least one sample");
    // Draw every candidate up front, serially: the rng is consumed in
    // exactly the order the sequential loop used, so results are
    // reproducible regardless of worker count.
    let candidates: Vec<Vec<Vec<f64>>> = (0..samples)
        .map(|_| {
            shape
                .iter()
                .map(|&n| {
                    (0..n)
                        .map(|_| rng.random::<f64>() * std::f64::consts::TAU)
                        .collect()
                })
                .collect()
        })
        .collect();
    // Score in parallel, then fold serially in draw order — the same
    // first-strictly-better winner as the sequential loop (including its
    // all-NaN behavior: no candidate selected, zero phases returned).
    let losses = par::par_map(&candidates, |c| objective.loss(&to_responses(c)));
    let mut best_loss = f64::INFINITY;
    let mut best_idx: Option<usize> = None;
    let mut history = Vec::with_capacity(samples);
    for (i, &loss) in losses.iter().enumerate() {
        if loss < best_loss {
            best_loss = loss;
            best_idx = Some(i);
        }
        history.push(best_loss);
    }
    surfos_obs::gauge("orchestrator.random_search.loss", best_loss);
    let phases = match best_idx {
        Some(i) => candidates.into_iter().nth(i).expect("index in range"),
        None => shape.iter().map(|&n| vec![0.0; n]).collect(),
    };
    OptimizeResult {
        phases,
        loss: best_loss,
        history,
    }
}

/// Greedy quantized coordinate descent: sweeps every element (or tied
/// group), trying each of the `2^bits` discrete phase states and keeping
/// the best, for `passes` full sweeps. This is how real 1–2-bit hardware
/// is configured.
pub fn greedy_quantized(
    objective: &dyn Objective,
    shape: &[usize],
    tying: &Tying,
    bits: u8,
    passes: usize,
) -> OptimizeResult {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8");
    assert!(passes > 0, "need at least one pass");
    let levels = 1u32 << bits;
    let states: Vec<f64> = (0..levels)
        .map(|i| surfos_em::phase::phase_from_state_index(i, bits))
        .collect();

    let mut params: Vec<Vec<f64>> = shape
        .iter()
        .enumerate()
        .map(|(s, &n)| vec![0.0; tying.dof(s, n)])
        .collect();
    let expand_all = |params: &[Vec<f64>]| -> Vec<Vec<f64>> {
        params
            .iter()
            .enumerate()
            .map(|(s, p)| tying.expand(s, p, shape[s]))
            .collect()
    };
    let mut best_loss = objective.loss(&to_responses(&expand_all(&params)));
    let mut history = vec![best_loss];

    for _ in 0..passes {
        for s in 0..params.len() {
            for i in 0..params[s].len() {
                let original = params[s][i];
                let mut best_state = original;
                for &st in &states {
                    if st == original {
                        continue;
                    }
                    params[s][i] = st;
                    let loss = objective.loss(&to_responses(&expand_all(&params)));
                    if loss < best_loss {
                        best_loss = loss;
                        best_state = st;
                    }
                }
                params[s][i] = best_state;
            }
        }
        history.push(best_loss);
    }
    OptimizeResult {
        phases: expand_all(&params),
        loss: best_loss,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A toy objective with a known optimum: align every element's phase
    /// with a target phasor pattern, across two "surfaces".
    struct Align {
        targets: Vec<Vec<Complex>>,
    }

    impl Align {
        fn new() -> Self {
            Align {
                targets: vec![
                    (0..16).map(|i| Complex::cis(i as f64 * 0.39)).collect(),
                    (0..8).map(|i| Complex::cis(-(i as f64) * 0.7)).collect(),
                ],
            }
        }
        fn shape(&self) -> Vec<usize> {
            self.targets.iter().map(Vec::len).collect()
        }
    }

    impl Objective for Align {
        fn loss(&self, responses: &[Vec<Complex>]) -> f64 {
            // Maximize Re(conj(target)·r) per element — loss is negative
            // alignment; optimum −(16+8) = −24.
            -self
                .targets
                .iter()
                .zip(responses)
                .map(|(t, r)| {
                    t.iter()
                        .zip(r)
                        .map(|(ti, ri)| (ti.conj() * *ri).re)
                        .sum::<f64>()
                })
                .sum::<f64>()
        }

        fn grad_phase(&self, responses: &[Vec<Complex>]) -> Vec<Vec<f64>> {
            self.targets
                .iter()
                .zip(responses)
                .map(|(t, r)| {
                    t.iter()
                        .zip(r)
                        .map(|(ti, ri)| -(ti.conj() * Complex::J * *ri).re)
                        .collect()
                })
                .collect()
        }
    }

    #[test]
    fn adam_reaches_known_optimum() {
        let obj = Align::new();
        let initial = vec![vec![0.0; 16], vec![0.0; 8]];
        let res = adam(
            &obj,
            &initial,
            &Tying::element_wise(2),
            AdamOptions {
                iters: 400,
                lr: 0.1,
                ..Default::default()
            },
        );
        assert!(res.loss < -23.8, "loss={}", res.loss);
        // History is monotone-ish towards the optimum at the end.
        assert!(res.history.last().unwrap() < &res.history[0]);
    }

    #[test]
    fn adam_gradient_check_on_align() {
        // The Align test objective's own gradient must be consistent.
        let obj = Align::new();
        let responses: Vec<Vec<Complex>> = vec![
            (0..16).map(|i| Complex::cis(i as f64 * 0.2)).collect(),
            (0..8).map(|i| Complex::cis(i as f64 * 0.5)).collect(),
        ];
        let g = obj.grad_phase(&responses);
        let eps = 1e-6;
        let base = obj.loss(&responses);
        let mut r2 = responses.clone();
        r2[1][3] *= Complex::cis(eps);
        let fd = (obj.loss(&r2) - base) / eps;
        assert!((fd - g[1][3]).abs() < 1e-5);
    }

    #[test]
    fn random_search_improves_with_samples() {
        let obj = Align::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let few = random_search(&obj, &obj.shape(), 5, &mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let many = random_search(&obj, &obj.shape(), 200, &mut rng);
        assert!(many.loss <= few.loss);
        // But far from the gradient optimum in this 24-dim space.
        let initial = vec![vec![0.0; 16], vec![0.0; 8]];
        let grad = adam(
            &obj,
            &initial,
            &Tying::element_wise(2),
            AdamOptions::default(),
        );
        assert!(
            grad.loss < many.loss,
            "adam {} vs random {}",
            grad.loss,
            many.loss
        );
    }

    #[test]
    fn random_search_history_monotone() {
        let obj = Align::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let res = random_search(&obj, &obj.shape(), 50, &mut rng);
        for w in res.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn greedy_quantized_beats_identity_and_respects_lattice() {
        let obj = Align::new();
        let tying = Tying::element_wise(2);
        let res = greedy_quantized(&obj, &obj.shape(), &tying, 2, 2);
        let identity = obj.loss(&to_responses(&[vec![0.0; 16], vec![0.0; 8]]));
        assert!(res.loss < identity);
        // All phases on the 2-bit lattice.
        for surf in &res.phases {
            for &p in surf {
                let q = surfos_em::phase::quantize_phase(p, 2);
                assert!((p - q).abs() < 1e-9, "{p} off-lattice");
            }
        }
        // 2-bit quantization bound: within sinc²(π/4) of optimal power is
        // not directly checkable on this toy loss, but it must approach the
        // optimum within the quantization penalty (~19 % per element).
        assert!(res.loss < -19.0, "loss={}", res.loss);
    }

    #[test]
    fn greedy_history_monotone_nonincreasing() {
        let obj = Align::new();
        let res = greedy_quantized(&obj, &obj.shape(), &Tying::element_wise(2), 1, 3);
        for w in res.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn tying_reduces_dof_and_constrains_solution() {
        let obj = Align::new();
        let mut tying = Tying::element_wise(2);
        // Surface 0 is a 4×4 grid, tie columns: 4 DoF instead of 16.
        tying.tie_columns(0, 4, 4);
        assert_eq!(tying.dof(0, 16), 4);
        let initial = vec![vec![0.0; 16], vec![0.0; 8]];
        let res = adam(&obj, &initial, &tying, AdamOptions::default());
        // Tied solution: elements in the same column share a phase.
        for c in 0..4 {
            for r in 1..4 {
                assert!(
                    (res.phases[0][r * 4 + c] - res.phases[0][c]).abs() < 1e-12,
                    "column {c} not tied"
                );
            }
        }
        // And the constrained optimum is worse than element-wise.
        let free = adam(
            &obj,
            &initial,
            &Tying::element_wise(2),
            AdamOptions::default(),
        );
        assert!(res.loss > free.loss);
    }

    #[test]
    fn tie_rows_groups_rows() {
        let mut tying = Tying::element_wise(1);
        tying.tie_rows(0, 2, 3);
        let groups = tying.groups[0].as_ref().unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 1, 2]);
        assert_eq!(groups[1], vec![3, 4, 5]);
    }

    #[test]
    fn expand_reduce_are_adjoint() {
        // reduce(grad)·params == grad·expand(params): group-sum vs copy.
        let mut tying = Tying::element_wise(1);
        tying.tie_columns(0, 2, 2);
        let params = [0.3, 0.7];
        let grad = [1.0, 2.0, 3.0, 4.0];
        let expanded = tying.expand(0, &params, 4);
        let reduced = tying.reduce(0, &grad);
        let lhs: f64 = params.iter().zip(&reduced).map(|(p, g)| p * g).sum();
        let rhs: f64 = expanded.iter().zip(&grad).map(|(p, g)| p * g).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn bad_lr_rejected() {
        let obj = Align::new();
        let _ = adam(
            &obj,
            &[vec![0.0; 16], vec![0.0; 8]],
            &Tying::element_wise(2),
            AdamOptions {
                lr: 0.0,
                ..Default::default()
            },
        );
    }
}
