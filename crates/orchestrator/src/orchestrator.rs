//! The orchestrator facade: service calls in, scheduled tasks and
//! optimized configurations out.
//!
//! This type owns the channel simulator (the paper's "wireless channel
//! simulator to model the interactions between surfaces"), the task table
//! and the slice map, and drives the schedule → optimize → actuate loop.
//! Hardware drivers live one layer down (in `surfos-hw`, glued by the
//! `surfos` kernel crate); the orchestrator works on the *physical*
//! configurations the simulator understands.

use crate::objective::{
    CoverageObjective, LocalizationObjective, MultiObjective, Objective, PoweringObjective,
    SuppressionObjective,
};
use crate::optimizer::{adam, AdamOptions, Tying};
use crate::scheduler::{Requirement, ResourceModel, ScheduleOutcome, Scheduler};
use crate::service::{ServiceKind, ServiceRequest};
use crate::slice::SliceMap;
use crate::task::{TaskId, TaskState, TaskTable};
use std::collections::BTreeMap;
use surfos_channel::paths::surface_serves;
use surfos_channel::{ChannelSim, Endpoint};
use surfos_sensing::aoa::AngleGrid;

/// Evaluation-grid resolution for room-scoped objectives.
const ROOM_GRID: (usize, usize) = (6, 6);
/// Probe height for room grids (typical device height, metres).
const GRID_HEIGHT_M: f64 = 1.2;
/// Inset from walls for room grids (metres).
const GRID_MARGIN_M: f64 = 0.4;

/// The central control plane.
pub struct Orchestrator {
    /// The environment + surface model.
    pub sim: ChannelSim,
    /// Admitted tasks.
    pub tasks: TaskTable,
    /// Current frame's slice assignments.
    pub slices: SliceMap,
    /// Time slots per schedule frame.
    pub slots_per_frame: usize,
    /// Optimizer options used by [`optimize_slot`](Self::optimize_slot).
    pub adam_options: AdamOptions,
    /// Granularity tying (set from hardware specs by the kernel layer).
    pub tying: Tying,
    endpoints: BTreeMap<String, Endpoint>,
    ap_id: Option<String>,
    now_ms: u64,
}

impl Orchestrator {
    /// Creates an orchestrator over a simulator.
    pub fn new(sim: ChannelSim) -> Self {
        let n = sim.surfaces().len();
        Orchestrator {
            sim,
            tasks: TaskTable::new(),
            slices: SliceMap::new(),
            slots_per_frame: 4,
            adam_options: AdamOptions::default(),
            tying: Tying::element_wise(n),
            endpoints: BTreeMap::new(),
            ap_id: None,
            now_ms: 0,
        }
    }

    /// Registers an endpoint. The first access point registered becomes
    /// the serving AP for coverage/sensing objectives.
    ///
    /// # Panics
    /// Panics on duplicate endpoint ids.
    pub fn add_endpoint(&mut self, endpoint: Endpoint) {
        assert!(
            !self.endpoints.contains_key(&endpoint.id),
            "duplicate endpoint id {:?}",
            endpoint.id
        );
        if self.ap_id.is_none() && endpoint.kind == surfos_channel::EndpointKind::AccessPoint {
            self.ap_id = Some(endpoint.id.clone());
        }
        self.endpoints.insert(endpoint.id.clone(), endpoint);
    }

    /// Looks up an endpoint.
    pub fn endpoint(&self, id: &str) -> Option<&Endpoint> {
        self.endpoints.get(id)
    }

    /// Moves an endpoint (user mobility); returns false if unknown.
    pub fn move_endpoint(&mut self, id: &str, position: surfos_geometry::Vec3) -> bool {
        match self.endpoints.get_mut(id) {
            Some(e) => {
                e.pose.position = position;
                true
            }
            None => false,
        }
    }

    /// Current simulation time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// The serving access point.
    ///
    /// # Panics
    /// Panics when no AP has been registered — every service needs one.
    pub fn ap(&self) -> &Endpoint {
        let id = self.ap_id.as_ref().expect("no access point registered");
        &self.endpoints[id]
    }

    // --- Service API (paper §3.2 / Figure 6) ---------------------------

    /// `enhance_link(device, snr, latency)`.
    pub fn enhance_link(&mut self, device: &str, snr_db: f64, latency_ms: f64) -> TaskId {
        self.submit(ServiceRequest::enhance_link(device, snr_db, latency_ms))
    }

    /// `optimize_coverage(room, median_snr)`.
    pub fn optimize_coverage(&mut self, room: &str, median_snr_db: f64) -> TaskId {
        self.submit(ServiceRequest::optimize_coverage(room, median_snr_db))
    }

    /// `enable_sensing(room, duration)`.
    pub fn enable_sensing(&mut self, room: &str, duration_s: f64) -> TaskId {
        self.submit(ServiceRequest::enable_sensing(room, duration_s))
    }

    /// `init_powering(device, duration)`.
    pub fn init_powering(&mut self, device: &str, duration_s: f64) -> TaskId {
        self.submit(ServiceRequest::init_powering(device, duration_s))
    }

    /// `protect_link(room, max_leak)`.
    pub fn protect_link(&mut self, room: &str, max_leak_dbm: f64) -> TaskId {
        self.submit(ServiceRequest::protect_link(room, max_leak_dbm))
    }

    /// Admits an arbitrary request.
    pub fn submit(&mut self, request: ServiceRequest) -> TaskId {
        self.tasks.admit(request, self.now_ms)
    }

    // --- Scheduling -----------------------------------------------------

    /// The geometric target(s) of a task: the subject device's position or
    /// the subject room's centre. Empty when the subject doesn't exist.
    fn task_targets(&self, task: &crate::task::Task) -> Vec<surfos_geometry::Vec3> {
        match task.request.kind {
            ServiceKind::Connectivity | ServiceKind::Powering => {
                match self.endpoints.get(&task.request.subject) {
                    Some(e) => vec![e.position()],
                    None => Vec::new(),
                }
            }
            ServiceKind::Coverage | ServiceKind::Sensing | ServiceKind::Security => {
                match self.sim.plan.room(&task.request.subject) {
                    Some(room) => vec![room.center(GRID_HEIGHT_M)],
                    None => Vec::new(),
                }
            }
        }
    }

    /// Amplitude-scale score of how well an AP can reach a target, either
    /// directly or relayed through any one deployed surface (where the
    /// surface's element count stands in for its focusing gain).
    fn ap_score(&self, ap: &Endpoint, target: surfos_geometry::Vec3) -> f64 {
        let band = &self.sim.band;
        let d_direct = ap.position().distance(target).max(0.1);
        let direct = self
            .sim
            .plan
            .transmission_amplitude(ap.position(), target, band)
            / d_direct;
        let via_surface = self
            .sim
            .surfaces()
            .iter()
            .filter(|s| surface_serves(s, ap.position(), target))
            .map(|s| {
                let c = s.pose.position;
                let d1 = ap.position().distance(c).max(0.1);
                let d2 = c.distance(target).max(0.1);
                let t1 = self.sim.plan.transmission_amplitude(ap.position(), c, band);
                let t2 = self.sim.plan.transmission_amplitude(c, target, band);
                s.len() as f64 * s.element_area_m2() * t1 * t2 / (d1 * d2)
            })
            .fold(0.0f64, f64::max);
        direct.max(via_surface)
    }

    /// The access point that serves a task best (multi-AP deployments);
    /// falls back to the default AP when the task has no resolvable
    /// target. With a single AP this is always that AP.
    pub fn serving_ap_for(&self, task: TaskId) -> &Endpoint {
        let Some(task) = self.tasks.get(task) else {
            return self.ap();
        };
        let targets = self.task_targets(task);
        let Some(target) = targets.first().copied() else {
            return self.ap();
        };
        self.endpoints
            .values()
            .filter(|e| e.kind == surfos_channel::EndpointKind::AccessPoint)
            .max_by(|a, b| {
                self.ap_score(a, target)
                    .total_cmp(&self.ap_score(b, target))
            })
            .unwrap_or_else(|| self.ap())
    }

    /// Which surfaces can serve a task, from geometry and operation modes.
    pub fn servable_surfaces(&self, task: TaskId) -> Vec<usize> {
        let ap_pos = self.serving_ap_for(task).position();
        let Some(task) = self.tasks.get(task) else {
            return Vec::new();
        };
        let targets = self.task_targets(task);
        if targets.is_empty() {
            return Vec::new();
        }
        // A surface is servable when its operation mode covers the
        // geometry AND the whole relay path (AP → surface → target) is not
        // buried in walls: the product of the two legs' transmission
        // amplitudes must stay above ~40 dB of total penetration loss.
        const MIN_RELAY_AMPLITUDE: f64 = 1e-2;
        (0..self.sim.surfaces().len())
            .filter(|&s| {
                let surf = &self.sim.surfaces()[s];
                let t_ap = self.sim.plan.transmission_amplitude(
                    ap_pos,
                    surf.pose.position,
                    &self.sim.band,
                );
                targets.iter().all(|t| {
                    surface_serves(surf, ap_pos, *t)
                        && t_ap
                            * self.sim.plan.transmission_amplitude(
                                surf.pose.position,
                                *t,
                                &self.sim.band,
                            )
                            > MIN_RELAY_AMPLITUDE
                })
            })
            .collect()
    }

    /// Builds this frame's requirements and schedules it. Granted tasks
    /// move to `Running`; rejected or unservable tasks stay `Pending`.
    pub fn schedule_frame(&mut self) -> ScheduleOutcome {
        let model = ResourceModel {
            slots_per_frame: self.slots_per_frame,
            bands: 1,
            surfaces: self.sim.surfaces().len(),
        };
        let mut requirements = Vec::new();
        let live: Vec<TaskId> = self.tasks.live_by_priority().iter().map(|t| t.id).collect();
        for id in live {
            let surfaces = self.servable_surfaces(id);
            let task = self.tasks.get(id).expect("live task");
            if surfaces.is_empty() {
                continue; // unservable right now; stays pending
            }
            // Security tasks need exclusive control (nulls are fragile);
            // everything else can share via joint optimization.
            let shareable = task.request.kind != ServiceKind::Security;
            requirements.push(Requirement {
                task: id,
                priority: task.request.priority,
                band: 0,
                surfaces,
                min_slots: 1,
                shareable,
            });
        }
        let outcome = Scheduler::schedule(&requirements, &model);
        surfos_obs::add("orchestrator.frames", 1);
        surfos_obs::add(
            "orchestrator.tasks_granted",
            (requirements.len() - outcome.rejected.len()) as u64,
        );
        surfos_obs::add("orchestrator.tasks_rejected", outcome.rejected.len() as u64);

        // State transitions.
        for r in &requirements {
            let granted = !outcome.rejected.contains(&r.task);
            let state = if granted {
                TaskState::Running
            } else {
                TaskState::Pending
            };
            let current = self.tasks.get(r.task).expect("task exists").state;
            if current != state
                && matches!(
                    current,
                    TaskState::Pending | TaskState::Running | TaskState::Idle
                )
            {
                // Running → Pending is a preemption; Pending → Running a grant.
                surfos_obs::event!(
                    "scheduler",
                    "task {:?} {current:?} -> {state:?} (frame at {} ms)",
                    r.task,
                    self.now_ms
                );
                self.tasks.set_state(r.task, state);
            }
        }
        self.slices = outcome.map.clone();
        outcome
    }

    // --- Objectives and optimization -------------------------------------

    /// Builds the differentiable objective for one task, or `None` when
    /// the subject no longer exists.
    pub fn objective_for(&self, task: TaskId) -> Option<Box<dyn Objective>> {
        let ap = self.serving_ap_for(task).clone();
        let task = self.tasks.get(task)?;
        match task.request.kind {
            ServiceKind::Connectivity => {
                let device = self.endpoints.get(&task.request.subject)?;
                Some(Box::new(CoverageObjective::new(
                    &self.sim,
                    &ap,
                    &[device.position()],
                    device,
                )))
            }
            ServiceKind::Coverage => {
                let room = self.sim.plan.room(&task.request.subject)?;
                let grid = room.sample_grid(ROOM_GRID.0, ROOM_GRID.1, GRID_HEIGHT_M, GRID_MARGIN_M);
                let template = Endpoint::client("probe", grid[0]);
                Some(Box::new(CoverageObjective::new(
                    &self.sim, &ap, &grid, &template,
                )))
            }
            ServiceKind::Sensing => {
                let room = self.sim.plan.room(&task.request.subject)?;
                let grid = room.sample_grid(4, 4, GRID_HEIGHT_M, GRID_MARGIN_M);
                let template = Endpoint::client("probe", grid[0]);
                let surface = *self.servable_surfaces(task.id).first()?;
                Some(Box::new(LocalizationObjective::new(
                    &self.sim,
                    surface,
                    &ap,
                    &template,
                    &grid,
                    AngleGrid::uniform(41, 1.2),
                )))
            }
            ServiceKind::Powering => {
                let device = self.endpoints.get(&task.request.subject)?;
                Some(Box::new(PoweringObjective::new(&self.sim, &ap, device)))
            }
            ServiceKind::Security => {
                let room = self.sim.plan.room(&task.request.subject)?;
                let grid = room.sample_grid(4, 4, GRID_HEIGHT_M, GRID_MARGIN_M);
                let template = Endpoint::client("probe", grid[0]);
                let mut obj = SuppressionObjective::new(&self.sim, &ap, &grid, &template);
                if let crate::service::ServiceGoal::Suppression { max_leak_dbm } = task.request.goal
                {
                    obj = obj.with_goal(max_leak_dbm, ap.tx_power_dbm);
                }
                Some(Box::new(obj))
            }
        }
    }

    /// Jointly optimizes the configuration for all tasks scheduled in a
    /// time slot and applies it to the simulator's surfaces. Returns the
    /// achieved loss, or `None` when the slot is empty.
    pub fn optimize_slot(&mut self, slot: usize) -> Option<f64> {
        let _span = surfos_obs::span!("orchestrator.optimize_slot");
        let latency_t0 = surfos_obs::enabled().then(std::time::Instant::now);
        let mut task_ids: Vec<TaskId> = self
            .slices
            .iter()
            .filter(|(s, _)| s.slot == slot)
            .flat_map(|(_, g)| g.tasks.iter().copied())
            .collect();
        task_ids.sort_unstable();
        task_ids.dedup();
        if task_ids.is_empty() {
            return None;
        }

        let mut multi = MultiObjective::new();
        for id in &task_ids {
            if let Some(obj) = self.objective_for(*id) {
                multi = multi.with(obj, 1.0);
            }
        }
        if multi.is_empty() {
            return None;
        }

        let initial: Vec<Vec<f64>> = self
            .sim
            .surfaces()
            .iter()
            .map(|s| s.response().iter().map(|r| r.arg()).collect())
            .collect();
        let result = adam(&multi, &initial, &self.tying, self.adam_options);
        for (s, phases) in result.phases.iter().enumerate() {
            self.sim.set_surface_phases(s, phases);
        }
        surfos_obs::gauge("orchestrator.slot.loss", result.loss);
        if let Some(t0) = latency_t0 {
            // Per-service-class latency: label by the slot's service kind
            // (or "mixed" for shared slots) so the HDR timer exposes e.g.
            // orchestrator.optimize.latency_ns{service=Coverage} p99.
            let mut kinds: Vec<&'static str> = task_ids
                .iter()
                .filter_map(|id| self.tasks.get(*id))
                .map(|t| kind_name(t.request.kind))
                .collect();
            kinds.sort_unstable();
            kinds.dedup();
            let label = if kinds.len() == 1 { kinds[0] } else { "mixed" };
            let _svc = surfos_obs::scoped(&[("service", label)]);
            surfos_obs::observe_ns(
                "orchestrator.optimize.latency_ns",
                t0.elapsed().as_nanos() as u64,
            );
        }
        Some(result.loss)
    }

    /// Advances time: reaps expired tasks and releases their slices.
    /// Returns the ids of tasks completed by expiry.
    pub fn tick(&mut self, dt_ms: u64) -> Vec<TaskId> {
        self.now_ms += dt_ms;
        let reaped = self.tasks.reap_expired(self.now_ms);
        for id in &reaped {
            self.slices.release_task(*id);
        }
        reaped
    }

    /// Marks a task idle, releasing its slices for reuse (the paper's
    /// "setting a task idle when not used and releasing resources").
    pub fn set_idle(&mut self, task: TaskId) {
        self.tasks.set_state(task, TaskState::Idle);
        self.slices.release_task(task);
    }

    /// Measured service metric for a task with the current configuration.
    pub fn measure(&mut self, task: TaskId) -> Option<f64> {
        let _span = surfos_obs::span!("orchestrator.measure");
        let ap = self.serving_ap_for(task).clone();
        let t = self.tasks.get(task)?;
        let metric = match t.request.kind {
            ServiceKind::Connectivity => {
                let device = self.endpoints.get(&t.request.subject)?;
                self.sim.link_budget(&ap, device).snr_db
            }
            ServiceKind::Powering => {
                // Delivered RF power at the device, dBm.
                let device = self.endpoints.get(&t.request.subject)?;
                self.sim.rss_dbm(&ap, device)
            }
            ServiceKind::Coverage => {
                let room = self.sim.plan.room(&t.request.subject)?;
                let grid = room.sample_grid(ROOM_GRID.0, ROOM_GRID.1, GRID_HEIGHT_M, GRID_MARGIN_M);
                let template = Endpoint::client("probe", grid[0]);
                self.sim.snr_heatmap(&ap, &grid, &template).median()
            }
            ServiceKind::Security => {
                // Worst (highest) leaked RSS into the protected region,
                // dBm — lower is better.
                let room = self.sim.plan.room(&t.request.subject)?;
                let grid = room.sample_grid(ROOM_GRID.0, ROOM_GRID.1, GRID_HEIGHT_M, GRID_MARGIN_M);
                let template = Endpoint::client("probe", grid[0]);
                self.sim.rss_heatmap(&ap, &grid, &template).max()
            }
            ServiceKind::Sensing => {
                let obj = self.objective_for(task)?;
                let responses: Vec<Vec<surfos_em::complex::Complex>> = self
                    .sim
                    .surfaces()
                    .iter()
                    .map(|s| s.response().to_vec())
                    .collect();
                obj.loss(&responses)
            }
        };
        self.tasks.get_mut(task)?.last_metric = Some(metric);
        Some(metric)
    }
}

/// Static label value for a service kind — bounded, never formatted on the
/// hot path (see `surfos_obs::scoped`).
fn kind_name(kind: ServiceKind) -> &'static str {
    match kind {
        ServiceKind::Connectivity => "Connectivity",
        ServiceKind::Coverage => "Coverage",
        ServiceKind::Sensing => "Sensing",
        ServiceKind::Powering => "Powering",
        ServiceKind::Security => "Security",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_channel::{OperationMode, SurfaceInstance};
    use surfos_em::array::ArrayGeometry;
    use surfos_em::band::NamedBand;
    use surfos_geometry::scenario::two_room_apartment;
    use surfos_geometry::{Pose, Vec3};

    fn build() -> Orchestrator {
        let scen = two_room_apartment();
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(scen.plan.clone(), band);
        let pose = *scen.anchor("bedroom-north").unwrap();
        let geom = ArrayGeometry::half_wavelength(16, 16, band.wavelength_m());
        sim.add_surface(SurfaceInstance::new(
            "prog0",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        let mut orch = Orchestrator::new(sim);
        // AP aimed at the surface.
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
        );
        orch.add_endpoint(ap);
        orch.add_endpoint(Endpoint::client("laptop", Vec3::new(6.5, 1.5, 1.2)));
        orch.adam_options.iters = 60;
        orch
    }

    #[test]
    fn service_calls_admit_tasks() {
        let mut o = build();
        let a = o.optimize_coverage("bedroom", 25.0);
        let b = o.enhance_link("laptop", 20.0, 50.0);
        assert_ne!(a, b);
        assert_eq!(o.tasks.all().len(), 2);
        assert_eq!(o.tasks.get(a).unwrap().state, TaskState::Pending);
    }

    #[test]
    fn servable_surfaces_from_geometry() {
        let mut o = build();
        let t = o.optimize_coverage("bedroom", 25.0);
        assert_eq!(o.servable_surfaces(t), vec![0]);
        // A room that doesn't exist is unservable.
        let t2 = o.optimize_coverage("garage", 25.0);
        assert!(o.servable_surfaces(t2).is_empty());
    }

    #[test]
    fn schedule_grants_and_runs() {
        let mut o = build();
        let t = o.optimize_coverage("bedroom", 25.0);
        let out = o.schedule_frame();
        assert!(out.rejected.is_empty());
        assert_eq!(o.tasks.get(t).unwrap().state, TaskState::Running);
        assert!(!o.slices.slices_of(t).is_empty());
    }

    #[test]
    fn optimizing_coverage_slot_improves_room_snr() {
        let mut o = build();
        let t = o.optimize_coverage("bedroom", 25.0);
        o.schedule_frame();
        let before = o.measure(t).unwrap();
        let slot = o.slices.slices_of(t)[0].slot;
        let loss = o.optimize_slot(slot).expect("slot occupied");
        assert!(loss.is_finite());
        let after = o.measure(t).unwrap();
        assert!(
            after > before + 10.0,
            "optimization should add >10 dB median SNR: before={before:.1} after={after:.1}"
        );
    }

    #[test]
    fn joint_slot_shares_surface_between_tasks() {
        let mut o = build();
        let cov = o.optimize_coverage("bedroom", 25.0);
        let sense = o.enable_sensing("bedroom", 600.0);
        let out = o.schedule_frame();
        assert!(out.rejected.is_empty());
        // Both shareable tasks land on slot 0 of surface 0 together.
        let s_cov = o.slices.slices_of(cov);
        let s_sense = o.slices.slices_of(sense);
        assert!(s_cov.iter().any(|s| s_sense.contains(s)));
        let slot = s_cov[0].slot;
        assert!(o.optimize_slot(slot).is_some());
    }

    #[test]
    fn expiry_releases_slices() {
        let mut o = build();
        let t = o.enable_sensing("bedroom", 1.0); // 1 second
        o.schedule_frame();
        assert!(!o.slices.slices_of(t).is_empty());
        let reaped = o.tick(1500);
        assert_eq!(reaped, vec![t]);
        assert!(o.slices.slices_of(t).is_empty());
        assert_eq!(o.tasks.get(t).unwrap().state, TaskState::Completed);
    }

    #[test]
    fn idle_releases_but_keeps_task() {
        let mut o = build();
        let t = o.optimize_coverage("bedroom", 25.0);
        o.schedule_frame();
        o.set_idle(t);
        assert!(o.slices.slices_of(t).is_empty());
        assert_eq!(o.tasks.get(t).unwrap().state, TaskState::Idle);
        // Next frame it can be scheduled again.
        let out = o.schedule_frame();
        assert!(out.rejected.is_empty());
        assert_eq!(o.tasks.get(t).unwrap().state, TaskState::Running);
    }

    #[test]
    fn multi_ap_serving_selection() {
        let mut o = build();
        // A second AP inside the bedroom, near the client.
        o.add_endpoint(Endpoint::access_point(
            "ap-bedroom",
            Pose::wall_mounted(Vec3::new(8.7, 2.0, 2.2), Vec3::new(-1.0, 0.0, 0.0)),
        ));
        // The default AP is still the first one registered.
        assert_eq!(o.ap().id, "ap0");

        // A bedroom link should be served by the bedroom AP (direct LOS
        // beats relaying through the doorway surface).
        let t = o.enhance_link("laptop", 20.0, 50.0);
        assert_eq!(o.serving_ap_for(t).id, "ap-bedroom");

        // A living-room client is served by the living-room AP.
        o.add_endpoint(Endpoint::client("desktop", Vec3::new(2.0, 1.5, 1.0)));
        let t2 = o.enhance_link("desktop", 20.0, 50.0);
        assert_eq!(o.serving_ap_for(t2).id, "ap0");

        // Unknown subjects fall back to the default AP.
        let t3 = o.enhance_link("ghost", 20.0, 50.0);
        assert_eq!(o.serving_ap_for(t3).id, "ap0");
    }

    #[test]
    fn measure_uses_serving_ap() {
        let mut o = build();
        o.add_endpoint(Endpoint::access_point(
            "ap-bedroom",
            Pose::wall_mounted(Vec3::new(8.7, 2.0, 2.2), Vec3::new(-1.0, 0.0, 0.0)),
        ));
        let t = o.enhance_link("laptop", 20.0, 50.0);
        // Direct bedroom AP → laptop link is strong without any surface.
        let snr = o.measure(t).unwrap();
        assert!(snr > 20.0, "bedroom AP should serve directly: {snr:.1}");
    }

    #[test]
    fn endpoint_mobility() {
        let mut o = build();
        assert!(o.move_endpoint("laptop", Vec3::new(7.0, 2.0, 1.2)));
        assert_eq!(
            o.endpoint("laptop").unwrap().position(),
            Vec3::new(7.0, 2.0, 1.2)
        );
        assert!(!o.move_endpoint("ghost", Vec3::ZERO));
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint id")]
    fn duplicate_endpoint_rejected() {
        let mut o = build();
        o.add_endpoint(Endpoint::client("laptop", Vec3::ZERO));
    }
}
