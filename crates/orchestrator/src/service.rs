//! Service request APIs (paper §3.2).
//!
//! These are environment-wide abstractions: a request names *what* is
//! wanted (a link, a room, a device, a quality target), never *which*
//! surface provides it. Each accepted request becomes a [`crate::task::Task`].

use serde::{Deserialize, Serialize};

/// The classes of low-level capability surfaces provide (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Per-link connectivity enhancement.
    Connectivity,
    /// Area coverage extension.
    Coverage,
    /// Localization / tracking / motion sensing.
    Sensing,
    /// Wireless power delivery.
    Powering,
    /// Physical-layer security protection (beam nulling towards
    /// eavesdropping regions).
    Security,
}

/// The quantitative goal of a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceGoal {
    /// Reach at least this SNR (dB) on a link, with a latency budget (ms).
    LinkQuality {
        /// Minimum SNR in dB.
        min_snr_db: f64,
        /// Maximum tolerable latency in milliseconds.
        max_latency_ms: f64,
    },
    /// Reach at least this median SNR (dB) over a room.
    AreaCoverage {
        /// Target median SNR in dB.
        median_snr_db: f64,
    },
    /// Keep localization error below this bound (metres).
    LocalizationAccuracy {
        /// Maximum localization error in metres.
        max_error_m: f64,
    },
    /// Deliver at least this RF power (dBm) at the device.
    DeliveredPower {
        /// Minimum delivered power in dBm.
        min_power_dbm: f64,
    },
    /// Suppress signal below this level (dBm) in a protected region.
    Suppression {
        /// Maximum leaked power in dBm.
        max_leak_dbm: f64,
    },
}

/// A service request — the argument of one service API call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceRequest {
    /// Service class.
    pub kind: ServiceKind,
    /// The subject: an endpoint id (`"VR_headset"`) or room name
    /// (`"bedroom"`), depending on the service.
    pub subject: String,
    /// Quantitative goal.
    pub goal: ServiceGoal,
    /// Requested duration in seconds (`None` = until cancelled).
    pub duration_s: Option<f64>,
    /// Priority: higher wins contention. 0 is background.
    pub priority: u8,
}

/// ```
/// use surfos_orchestrator::service::ServiceRequest;
///
/// let r = ServiceRequest::enhance_link("VR_headset", 30.0, 10.0);
/// assert_eq!(r.to_string(), r#"enhance_link("VR_headset", snr=30, latency=10)"#);
/// ```
impl ServiceRequest {
    /// `enhance_link(subject, snr, latency)` — the paper's Figure 6 call.
    pub fn enhance_link(subject: impl Into<String>, snr_db: f64, latency_ms: f64) -> Self {
        ServiceRequest {
            kind: ServiceKind::Connectivity,
            subject: subject.into(),
            goal: ServiceGoal::LinkQuality {
                min_snr_db: snr_db,
                max_latency_ms: latency_ms,
            },
            duration_s: None,
            priority: 5,
        }
    }

    /// `optimize_coverage(room, median_snr)`.
    pub fn optimize_coverage(room: impl Into<String>, median_snr_db: f64) -> Self {
        ServiceRequest {
            kind: ServiceKind::Coverage,
            subject: room.into(),
            goal: ServiceGoal::AreaCoverage { median_snr_db },
            duration_s: None,
            priority: 3,
        }
    }

    /// `enable_sensing(room, duration)` — tracking-grade localization.
    pub fn enable_sensing(room: impl Into<String>, duration_s: f64) -> Self {
        ServiceRequest {
            kind: ServiceKind::Sensing,
            subject: room.into(),
            goal: ServiceGoal::LocalizationAccuracy { max_error_m: 0.5 },
            duration_s: Some(duration_s),
            priority: 4,
        }
    }

    /// `init_powering(device, duration)`.
    pub fn init_powering(device: impl Into<String>, duration_s: f64) -> Self {
        ServiceRequest {
            kind: ServiceKind::Powering,
            subject: device.into(),
            goal: ServiceGoal::DeliveredPower {
                min_power_dbm: -10.0,
            },
            duration_s: Some(duration_s),
            priority: 2,
        }
    }

    /// `protect_link(region, max_leak)` — security suppression.
    pub fn protect_link(region: impl Into<String>, max_leak_dbm: f64) -> Self {
        ServiceRequest {
            kind: ServiceKind::Security,
            subject: region.into(),
            goal: ServiceGoal::Suppression { max_leak_dbm },
            duration_s: None,
            priority: 6,
        }
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

impl std::fmt::Display for ServiceRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.kind, &self.goal) {
            (
                ServiceKind::Connectivity,
                ServiceGoal::LinkQuality {
                    min_snr_db,
                    max_latency_ms,
                },
            ) => {
                write!(
                    f,
                    "enhance_link({:?}, snr={min_snr_db}, latency={max_latency_ms})",
                    self.subject
                )
            }
            (ServiceKind::Coverage, ServiceGoal::AreaCoverage { median_snr_db }) => {
                write!(
                    f,
                    "optimize_coverage({:?}, median_snr={median_snr_db})",
                    self.subject
                )
            }
            (ServiceKind::Sensing, _) => {
                let d = self.duration_s.unwrap_or(f64::INFINITY);
                write!(
                    f,
                    "enable_sensing({:?}, type=\"tracking\", duration={d})",
                    self.subject
                )
            }
            (ServiceKind::Powering, _) => {
                let d = self.duration_s.unwrap_or(f64::INFINITY);
                write!(f, "init_powering({:?}, duration={d})", self.subject)
            }
            (ServiceKind::Security, ServiceGoal::Suppression { max_leak_dbm }) => {
                write!(
                    f,
                    "protect_link({:?}, max_leak={max_leak_dbm})",
                    self.subject
                )
            }
            _ => write!(f, "{:?}({:?})", self.kind, self.subject),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_match_paper_calls() {
        let r = ServiceRequest::enhance_link("VR_headset", 30.0, 10.0);
        assert_eq!(r.kind, ServiceKind::Connectivity);
        assert_eq!(
            r.to_string(),
            "enhance_link(\"VR_headset\", snr=30, latency=10)"
        );

        let r = ServiceRequest::optimize_coverage("room_id", 25.0);
        assert_eq!(
            r.to_string(),
            "optimize_coverage(\"room_id\", median_snr=25)"
        );

        let r = ServiceRequest::enable_sensing("meeting_room", 3600.0);
        assert_eq!(
            r.to_string(),
            "enable_sensing(\"meeting_room\", type=\"tracking\", duration=3600)"
        );

        let r = ServiceRequest::init_powering("phone", 3600.0);
        assert_eq!(r.to_string(), "init_powering(\"phone\", duration=3600)");
    }

    #[test]
    fn priority_builder() {
        let r = ServiceRequest::optimize_coverage("x", 20.0).with_priority(9);
        assert_eq!(r.priority, 9);
    }

    #[test]
    fn security_outranks_default_connectivity() {
        let sec = ServiceRequest::protect_link("vault", -90.0);
        let link = ServiceRequest::enhance_link("laptop", 20.0, 50.0);
        assert!(sec.priority > link.priority);
    }
}
