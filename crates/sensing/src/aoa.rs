//! Angle-of-arrival estimation and the differentiable AoA loss.
//!
//! Estimation follows the md-Track matched-filter principle: scan a grid
//! of candidate directions, correlating the element-domain observation
//! with each direction's steering vector; the normalized spectrum is the
//! AoA likelihood. The cross-entropy between that spectrum and the true
//! direction is the paper's localization loss — and because the spectrum
//! is a quadratic form in the surface's element responses, its gradient
//! with respect to the element phases is analytic.

use surfos_em::array::{ArrayGeometry, SteeringVector};
use surfos_em::complex::Complex;
use surfos_geometry::{Pose, Vec3};

/// A grid of candidate azimuth directions in a surface's local frame
/// (directions `[sin φ, 0, cos φ]`, `φ = 0` on boresight).
#[derive(Debug, Clone, PartialEq)]
pub struct AngleGrid {
    /// Candidate azimuths in radians.
    pub azimuths: Vec<f64>,
}

impl AngleGrid {
    /// A uniform grid of `n` azimuths spanning `[-span, span]` radians.
    ///
    /// # Panics
    /// Panics if `n < 2` or span not in `(0, π/2)`.
    pub fn uniform(n: usize, span: f64) -> Self {
        assert!(n >= 2, "angle grid needs at least two bins");
        assert!(
            span > 0.0 && span < std::f64::consts::FRAC_PI_2,
            "span must be in (0, π/2)"
        );
        let azimuths = (0..n)
            .map(|i| -span + 2.0 * span * i as f64 / (n - 1) as f64)
            .collect();
        AngleGrid { azimuths }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.azimuths.len()
    }

    /// True if the grid is empty (cannot happen via [`uniform`](Self::uniform)).
    pub fn is_empty(&self) -> bool {
        self.azimuths.is_empty()
    }

    /// Local-frame unit direction of bin `i`.
    pub fn direction(&self, i: usize) -> [f64; 3] {
        let az = self.azimuths[i];
        [az.sin(), 0.0, az.cos()]
    }

    /// The bin whose azimuth is closest to `az`.
    pub fn nearest_bin(&self, az: f64) -> usize {
        self.azimuths
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - az).abs().total_cmp(&(b.1 - az).abs()))
            .map(|(i, _)| i)
            .expect("grid non-empty")
    }

    /// The true azimuth of a world point as seen by a surface: the angle of
    /// the local direction projected into the local x–z plane.
    pub fn azimuth_of(pose: &Pose, p: Vec3) -> f64 {
        let local = pose.world_to_local(p);
        local.x.atan2(local.z)
    }
}

/// The matched-filter AoA estimator for one surface aperture.
#[derive(Debug, Clone)]
pub struct AoaEstimator {
    /// Steering vectors of every grid bin (conjugated at use).
    steering: Vec<SteeringVector>,
    /// The angle grid.
    pub grid: AngleGrid,
}

impl AoaEstimator {
    /// Builds an estimator for an aperture at wavenumber `k` over a grid.
    pub fn new(geometry: &ArrayGeometry, k: f64, grid: AngleGrid) -> Self {
        let steering = (0..grid.len())
            .map(|i| SteeringVector::compute(geometry, grid.direction(i), k))
            .collect();
        AoaEstimator { steering, grid }
    }

    /// The normalized AoA spectrum (sums to 1) of an element-domain
    /// observation `y` (one complex sample per element).
    ///
    /// # Panics
    /// Panics if `y`'s length does not match the aperture.
    pub fn spectrum(&self, y: &[Complex]) -> Vec<f64> {
        let raw: Vec<f64> = self
            .steering
            .iter()
            .map(|s| {
                let z: Complex = s.weights.iter().zip(y).map(|(w, yi)| w.conj() * *yi).sum();
                z.norm_sqr()
            })
            .collect();
        normalize(raw)
    }

    /// The maximum-likelihood bin and its azimuth.
    pub fn estimate(&self, y: &[Complex]) -> (usize, f64) {
        let spec = self.spectrum(y);
        let best = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty spectrum");
        (best, self.grid.azimuths[best])
    }

    /// Builds the linear-in-response form of the spectrum for a surface
    /// whose (response-independent) element channel coefficients towards
    /// the observer are `coeffs` and whose AP-side calibration phasors are
    /// `calibration` (see [`crate::sounding`]): bin `i`'s complex statistic
    /// is `z_i(r) = Σ_e conj(s_{i,e}) · conj(cal_e) · coeffs_e · r_e`.
    pub fn linearize(
        &self,
        coeffs: &[Complex],
        calibration: &[Complex],
        true_azimuth: f64,
    ) -> AoaLinearization {
        assert_eq!(coeffs.len(), calibration.len(), "length mismatch");
        let bin_weights = self
            .steering
            .iter()
            .map(|s| {
                s.weights
                    .iter()
                    .zip(coeffs)
                    .zip(calibration)
                    .map(|((w, c), cal)| w.conj() * cal.conj() * *c)
                    .collect()
            })
            .collect();
        AoaLinearization {
            bin_weights,
            true_bin: self.grid.nearest_bin(true_azimuth),
        }
    }
}

fn normalize(mut raw: Vec<f64>) -> Vec<f64> {
    let total: f64 = raw.iter().sum();
    if total <= 1e-300 {
        // No energy at all: maximum-entropy (uniform) spectrum.
        let u = 1.0 / raw.len() as f64;
        raw.iter_mut().for_each(|v| *v = u);
    } else {
        raw.iter_mut().for_each(|v| *v /= total);
    }
    raw
}

/// The AoA cross-entropy loss as an explicit function of one surface's
/// element responses — the localization term of the paper's multitask
/// objective, with analytic phase gradients.
///
/// `loss(r) = −log q_t(r)` where `q_i = |z_i|² / Σ_j |z_j|²` and
/// `z_i(r) = Σ_e w_{i,e} · r_e`.
#[derive(Debug, Clone)]
pub struct AoaLinearization {
    /// Per-bin linear weights over the surface's elements.
    pub bin_weights: Vec<Vec<Complex>>,
    /// The grid bin containing the true direction.
    pub true_bin: usize,
}

impl AoaLinearization {
    fn statistics(&self, r: &[Complex]) -> Vec<Complex> {
        self.bin_weights
            .iter()
            .map(|w| w.iter().zip(r).map(|(wi, ri)| *wi * *ri).sum())
            .collect()
    }

    /// The normalized spectrum at responses `r`.
    pub fn spectrum(&self, r: &[Complex]) -> Vec<f64> {
        normalize(self.statistics(r).iter().map(|z| z.norm_sqr()).collect())
    }

    /// The cross-entropy loss at responses `r` (natural log).
    pub fn loss(&self, r: &[Complex]) -> f64 {
        let q = self.spectrum(r)[self.true_bin];
        -(q.max(1e-300)).ln()
    }

    /// Analytic gradient of the loss with respect to each element's phase
    /// (elements assumed to keep their current magnitude).
    ///
    /// `∂loss/∂φ_e = −d|z_t|²/dφ_e / |z_t|² + Σ_j d|z_j|²/dφ_e / Σ_j |z_j|²`
    /// with `d|z_i|²/dφ_e = 2·Re(conj(z_i)·j·w_{i,e}·r_e)`.
    pub fn grad_phase(&self, r: &[Complex]) -> Vec<f64> {
        let z = self.statistics(r);
        let total: f64 = z.iter().map(|zi| zi.norm_sqr()).sum();
        let zt = z[self.true_bin];
        let zt_sq = zt.norm_sqr().max(1e-300);
        let total = total.max(1e-300);
        (0..r.len())
            .map(|e| {
                let mut sum_all = 0.0;
                for (i, zi) in z.iter().enumerate() {
                    sum_all += 2.0 * (zi.conj() * Complex::J * self.bin_weights[i][e] * r[e]).re;
                }
                let d_true =
                    2.0 * (zt.conj() * Complex::J * self.bin_weights[self.true_bin][e] * r[e]).re;
                -d_true / zt_sq + sum_all / total
            })
            .collect()
    }

    /// Number of elements this linearization covers.
    pub fn element_count(&self) -> usize {
        self.bin_weights.first().map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_em::array::ArrayGeometry;

    const LAMBDA: f64 = 0.0107; // 28 GHz
    fn k() -> f64 {
        2.0 * std::f64::consts::PI / LAMBDA
    }

    fn estimator(n_bins: usize) -> AoaEstimator {
        let geom = ArrayGeometry::half_wavelength(8, 8, LAMBDA);
        AoaEstimator::new(&geom, k(), AngleGrid::uniform(n_bins, 1.2))
    }

    #[test]
    fn grid_construction() {
        let g = AngleGrid::uniform(5, 1.0);
        assert_eq!(g.len(), 5);
        assert!((g.azimuths[0] + 1.0).abs() < 1e-12);
        assert!((g.azimuths[4] - 1.0).abs() < 1e-12);
        assert!((g.azimuths[2]).abs() < 1e-12);
        assert_eq!(g.nearest_bin(0.05), 2);
        assert_eq!(g.nearest_bin(-2.0), 0);
    }

    #[test]
    fn direction_is_unit() {
        let g = AngleGrid::uniform(9, 1.2);
        for i in 0..g.len() {
            let d = g.direction(i);
            let n = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!((n - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn azimuth_of_world_point() {
        let pose = Pose::wall_mounted(Vec3::new(0.0, 0.0, 1.5), Vec3::X);
        // Straight ahead: azimuth 0.
        assert!(AngleGrid::azimuth_of(&pose, Vec3::new(5.0, 0.0, 1.5)).abs() < 1e-9);
        // To the local right (world... right = up×normal = Z×X = Y).
        let az = AngleGrid::azimuth_of(&pose, Vec3::new(3.0, 3.0, 1.5));
        assert!((az - std::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn plane_wave_estimated_at_true_bin() {
        let est = estimator(41);
        let geom = ArrayGeometry::half_wavelength(8, 8, LAMBDA);
        let true_az: f64 = 0.42;
        let y = SteeringVector::compute(&geom, [true_az.sin(), 0.0, true_az.cos()], k()).weights;
        let (bin, az) = est.estimate(&y);
        assert_eq!(bin, est.grid.nearest_bin(true_az));
        assert!((az - true_az).abs() < 0.05, "az={az}");
    }

    #[test]
    fn spectrum_is_probability() {
        let est = estimator(21);
        let geom = ArrayGeometry::half_wavelength(8, 8, LAMBDA);
        let y = SteeringVector::compute(&geom, [0.3, 0.0, 1.0], k()).weights;
        let spec = est.spectrum(&y);
        assert_eq!(spec.len(), 21);
        assert!((spec.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(spec.iter().all(|p| *p >= 0.0));
    }

    #[test]
    fn zero_observation_gives_uniform_spectrum() {
        let est = estimator(10);
        let spec = est.spectrum(&vec![Complex::ZERO; 64]);
        for p in spec {
            assert!((p - 0.1).abs() < 1e-12);
        }
    }

    fn toy_linearization() -> (AoaLinearization, Vec<Complex>) {
        // Small real construction through the estimator so the quadratic
        // structure is genuine.
        let est = estimator(15);
        let geom = ArrayGeometry::half_wavelength(8, 8, LAMBDA);
        let true_az: f64 = -0.3;
        // Client-side coefficients: plane wave from the true direction with
        // mild amplitude taper.
        let sv = SteeringVector::compute(&geom, [true_az.sin(), 0.0, true_az.cos()], k());
        let coeffs: Vec<Complex> = sv
            .weights
            .iter()
            .enumerate()
            .map(|(i, w)| *w * (0.5 + 0.5 / (1.0 + i as f64 / 64.0)))
            .collect();
        let cal = vec![Complex::ONE; 64];
        let lin = est.linearize(&coeffs, &cal, true_az);
        let r: Vec<Complex> = (0..64).map(|i| Complex::cis(i as f64 * 0.21)).collect();
        (lin, r)
    }

    #[test]
    fn identity_response_localizes_perfectly() {
        let (lin, _) = toy_linearization();
        let r = vec![Complex::ONE; 64];
        let spec = lin.spectrum(&r);
        let best = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, lin.true_bin);
        assert!(lin.loss(&r) < 1.5, "loss={}", lin.loss(&r));
    }

    #[test]
    fn scrambled_response_degrades_loss() {
        let (lin, scrambled) = toy_linearization();
        let identity = vec![Complex::ONE; 64];
        assert!(
            lin.loss(&scrambled) > lin.loss(&identity),
            "scrambled {} vs identity {}",
            lin.loss(&scrambled),
            lin.loss(&identity)
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (lin, r) = toy_linearization();
        let grad = lin.grad_phase(&r);
        let phases: Vec<f64> = r.iter().map(|c| c.arg()).collect();
        let loss_at = |p: &[f64]| {
            let rr: Vec<Complex> = p.iter().map(|&x| Complex::cis(x)).collect();
            lin.loss(&rr)
        };
        let eps = 1e-6;
        for e in [0usize, 7, 31, 63] {
            let mut p = phases.clone();
            p[e] += eps;
            let fd = (loss_at(&p) - loss_at(&phases)) / eps;
            assert!(
                (fd - grad[e]).abs() < 1e-3 * (1.0 + fd.abs()),
                "e={e} fd={fd} grad={}",
                grad[e]
            );
        }
    }

    #[test]
    fn loss_is_nonnegative_for_probabilities() {
        let (lin, r) = toy_linearization();
        // q_t ≤ 1 always, so −ln q_t ≥ 0.
        assert!(lin.loss(&r) >= 0.0);
        assert!(lin.loss(&vec![Complex::ONE; 64]) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two bins")]
    fn tiny_grid_rejected() {
        let _ = AngleGrid::uniform(1, 1.0);
    }
}
