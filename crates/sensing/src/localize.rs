//! AoA + ToF → position.
//!
//! The paper's conversion (§4): the estimated AoA at the surface is
//! combined with an accurate ToF (range) to produce a position; the
//! localization error is the distance to the client's true position.

use surfos_geometry::{Pose, Vec3};

/// Converts an estimated azimuth (surface local frame, see
/// [`crate::aoa::AngleGrid`]) and a range into a world-frame position
/// estimate, at the height implied by the local x–z plane.
pub fn localize(pose: &Pose, azimuth: f64, range_m: f64) -> Vec3 {
    assert!(range_m > 0.0, "range must be positive");
    let local = Vec3::new(azimuth.sin() * range_m, 0.0, azimuth.cos() * range_m);
    pose.local_to_world(local)
}

/// Localization error for a client at `truth`, given the estimated azimuth
/// and assuming an exact ToF range (the paper's assumption).
pub fn localization_error_m(pose: &Pose, estimated_azimuth: f64, truth: Vec3) -> f64 {
    let range = pose.position.distance(truth);
    let estimate = localize(pose, estimated_azimuth, range);
    estimate.distance(truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aoa::AngleGrid;
    use proptest::prelude::*;

    fn pose() -> Pose {
        Pose::wall_mounted(Vec3::new(0.0, 0.0, 1.5), Vec3::X)
    }

    #[test]
    fn perfect_azimuth_small_error() {
        let p = pose();
        let truth = Vec3::new(3.0, 2.0, 1.5); // same height as surface
        let az = AngleGrid::azimuth_of(&p, truth);
        let err = localization_error_m(&p, az, truth);
        assert!(err < 1e-9, "err={err}");
    }

    #[test]
    fn height_mismatch_bounded_error() {
        // Client below the surface plane: the azimuth-only model leaves a
        // small residual, bounded by the height difference.
        let p = pose();
        let truth = Vec3::new(3.0, 2.0, 1.2);
        let az = AngleGrid::azimuth_of(&p, truth);
        let err = localization_error_m(&p, az, truth);
        assert!(err < 0.5, "err={err}");
        assert!(err > 0.0);
    }

    #[test]
    fn angle_error_scales_with_range() {
        let p = pose();
        let near = Vec3::new(2.0, 0.0, 1.5);
        let far = Vec3::new(8.0, 0.0, 1.5);
        let offset = 0.1; // rad of azimuth error
        let near_err = localization_error_m(&p, offset, near);
        let far_err = localization_error_m(&p, offset, far);
        assert!(far_err > 3.0 * near_err, "near={near_err} far={far_err}");
        // Chord approximation: err ≈ range·offset for small offsets.
        assert!((near_err - 2.0 * offset).abs() < 0.05);
    }

    #[test]
    fn localize_inverts_azimuth_of() {
        let p = Pose::wall_mounted(Vec3::new(2.0, 3.0, 1.0), Vec3::new(-0.5, 1.0, 0.0));
        let truth = Vec3::new(1.0, 6.0, 1.0);
        let az = AngleGrid::azimuth_of(&p, truth);
        let range = p.position.distance(truth);
        let back = localize(&p, az, range);
        // truth lies in the surface's local x–z plane only if it shares the
        // pose height component; here it does (z matches pose plane).
        assert!(back.distance(truth) < 1e-6, "{back} vs {truth}");
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_rejected() {
        let _ = localize(&pose(), 0.1, 0.0);
    }

    proptest! {
        #[test]
        fn prop_error_nonnegative_and_bounded_by_diameter(
            az_err in -0.5..0.5f64,
            tx in 1.0..8.0f64, ty in -3.0..3.0f64,
        ) {
            let p = pose();
            let truth = Vec3::new(tx, ty, 1.5);
            let true_az = AngleGrid::azimuth_of(&p, truth);
            let err = localization_error_m(&p, true_az + az_err, truth);
            let range = p.position.distance(truth);
            prop_assert!(err >= 0.0);
            // Estimate lies on a sphere of the same range: error ≤ 2·range.
            prop_assert!(err <= 2.0 * range + 1e-9);
        }
    }
}
