//! End-to-end localization evaluation over a set of client positions.
//!
//! This is the measurement loop behind the paper's Figure 2 (localization
//! error heatmap) and Figure 5 (localization error CDF): for each probe
//! position, sound the client → surface → AP element channel under the
//! surface's *current* configuration, estimate the AoA by matched-filter
//! beam scan, and convert to a position error with exact ToF.

use crate::aoa::{AngleGrid, AoaEstimator};
use crate::localize::localization_error_m;
use crate::sounding::{calibrated, sound};
use rand::Rng;
use surfos_channel::{ChannelSim, Endpoint};
use surfos_geometry::Vec3;

/// Localization errors (metres) for clients at `points`, sensed through
/// surface `surface_idx` by `ap`, with the simulator's current surface
/// responses. Positions the surface cannot serve get `f64::INFINITY`
/// (unlocalizable), matching how heatmaps render dead zones.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_localization<R: Rng>(
    sim: &ChannelSim,
    surface_idx: usize,
    ap: &Endpoint,
    client_template: &Endpoint,
    points: &[Vec3],
    grid: AngleGrid,
    noise_std: f64,
    rng: &mut R,
) -> Vec<f64> {
    let surf = &sim.surfaces()[surface_idx];
    let estimator = AoaEstimator::new(&surf.geometry, sim.band.wavenumber(), grid);
    points
        .iter()
        .map(|p| {
            let mut client = client_template.clone();
            client.pose.position = *p;
            match sound(sim, surface_idx, &client, ap, noise_std, rng) {
                None => f64::INFINITY,
                Some(obs) => {
                    let y = calibrated(&obs);
                    let (_, az) = estimator.estimate(&y);
                    localization_error_m(&surf.pose, az, *p)
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use surfos_channel::{OperationMode, SurfaceInstance};
    use surfos_em::antenna::ElementPattern;
    use surfos_em::array::ArrayGeometry;
    use surfos_em::band::NamedBand;
    use surfos_geometry::{FloorPlan, Pose};

    fn setup() -> (ChannelSim, Endpoint, Endpoint) {
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(FloorPlan::new(), band);
        let pose = Pose::wall_mounted(Vec3::new(0.0, 0.0, 1.5), Vec3::X);
        let geom = ArrayGeometry::half_wavelength(16, 16, band.wavelength_m());
        sim.add_surface(SurfaceInstance::new(
            "s0",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(Vec3::new(4.0, -3.0, 1.5), Vec3::new(-0.8, 0.6, 0.0)),
        );
        let mut client = Endpoint::client("c", Vec3::ZERO);
        client.pattern = ElementPattern::Isotropic;
        (sim, ap, client)
    }

    #[test]
    fn identity_surface_localizes_clients_at_surface_height() {
        let (sim, ap, client) = setup();
        let points = vec![
            Vec3::new(3.0, 1.0, 1.5),
            Vec3::new(4.0, 2.0, 1.5),
            Vec3::new(2.5, -1.0, 1.5),
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let errs = evaluate_localization(
            &sim,
            0,
            &ap,
            &client,
            &points,
            AngleGrid::uniform(81, 1.3),
            0.0,
            &mut rng,
        );
        for (e, p) in errs.iter().zip(&points) {
            assert!(*e < 0.3, "error {e} at {p}");
        }
    }

    #[test]
    fn scrambled_surface_degrades_localization() {
        let (mut sim, ap, client) = setup();
        let points = vec![Vec3::new(3.0, 1.0, 1.5), Vec3::new(4.0, 2.0, 1.5)];
        let grid = AngleGrid::uniform(81, 1.3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let good: f64 =
            evaluate_localization(&sim, 0, &ap, &client, &points, grid.clone(), 0.0, &mut rng)
                .iter()
                .sum();
        // Scramble phases pseudo-randomly with strong spatial decorrelation.
        let phases: Vec<f64> = (0..256)
            .map(|i| ((i * 7919) % 628) as f64 / 100.0)
            .collect();
        sim.surface_mut(0).set_phases(&phases);
        let bad: f64 = evaluate_localization(&sim, 0, &ap, &client, &points, grid, 0.0, &mut rng)
            .iter()
            .sum();
        assert!(bad > good, "bad={bad} good={good}");
    }

    #[test]
    fn unservable_points_are_infinite() {
        let (sim, ap, client) = setup();
        let behind = vec![Vec3::new(-2.0, 0.0, 1.5)];
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let errs = evaluate_localization(
            &sim,
            0,
            &ap,
            &client,
            &behind,
            AngleGrid::uniform(41, 1.2),
            0.0,
            &mut rng,
        );
        assert_eq!(errs, vec![f64::INFINITY]);
    }
}
