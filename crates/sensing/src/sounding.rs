//! Element-domain channel sounding through a configured surface.
//!
//! The observation model behind the paper's localization study: a client
//! transmits pilots; the path client → surface element `e` → AP carries
//! the (response-independent) coefficient `c_e` from the channel
//! simulator, weighted by the element's programmed response `r_e`. After
//! md-Track-style decomposition the AP holds one complex sample per
//! element,
//!
//! `y_e = c_e · r_e + n_e`,
//!
//! with receiver noise `n_e`. The AP knows the (static) surface→AP leg
//! exactly — infrastructure is calibrated — so it removes that phase with
//! [`ap_calibration`] before beam-scanning. What it *cannot* remove is the
//! configuration weighting: a coverage beam pointed elsewhere starves the
//! observation of SNR and scrambles the aperture taper — the Figure 2
//! effect.

use rand::{Rng, RngExt};
use surfos_channel::{ChannelSim, Endpoint};
use surfos_em::complex::Complex;

/// One element-domain sounding observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementSounding {
    /// Per-element complex samples `y_e` (calibration *not* yet applied).
    pub samples: Vec<Complex>,
    /// The AP-side calibration phasors `e^{-jk·d(elem, AP)}` the estimator
    /// divides out (multiplies by conjugate).
    pub calibration: Vec<Complex>,
}

/// The AP-side calibration phasors for a surface: the known propagation
/// phase of each element→AP leg.
pub fn ap_calibration(sim: &ChannelSim, surface_idx: usize, ap: &Endpoint) -> Vec<Complex> {
    let k = sim.band.wavenumber();
    let s = &sim.surfaces()[surface_idx];
    (0..s.len())
        .map(|e| {
            let d = s.element_world_position(e).distance(ap.position());
            Complex::cis(-k * d)
        })
        .collect()
}

/// Sounds the client → surface → AP element channel with the surface's
/// *current* response, adding complex Gaussian receiver noise of standard
/// deviation `noise_std` per real dimension.
///
/// Returns `None` when the surface cannot serve the client–AP pair at all
/// (mode/side gating) — there is nothing to sound.
pub fn sound<R: Rng>(
    sim: &ChannelSim,
    surface_idx: usize,
    client: &Endpoint,
    ap: &Endpoint,
    noise_std: f64,
    rng: &mut R,
) -> Option<ElementSounding> {
    assert!(noise_std >= 0.0, "noise std must be non-negative");
    let lin = sim.linearize(client, ap);
    let term = lin.linear.iter().find(|t| t.surface == surface_idx)?;
    let response = sim.surfaces()[surface_idx].response();
    let samples = term
        .coeffs
        .iter()
        .zip(response)
        .map(|(c, r)| {
            let noise = Complex::new(gaussian(rng) * noise_std, gaussian(rng) * noise_std);
            *c * *r + noise
        })
        .collect();
    Some(ElementSounding {
        samples,
        calibration: ap_calibration(sim, surface_idx, ap),
    })
}

/// The calibrated observation: `y_e · conj(cal_e)` — input to the AoA
/// estimator.
pub fn calibrated(sounding: &ElementSounding) -> Vec<Complex> {
    sounding
        .samples
        .iter()
        .zip(&sounding.calibration)
        .map(|(y, cal)| *y * cal.conj())
        .collect()
}

/// A standard Gaussian sample via Box–Muller (keeps the dependency surface
/// to `rand`'s core `Rng` trait).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > 1e-300 {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use surfos_channel::{OperationMode, SurfaceInstance};
    use surfos_em::antenna::ElementPattern;
    use surfos_em::array::ArrayGeometry;
    use surfos_em::band::NamedBand;
    use surfos_geometry::{FloorPlan, Pose, Vec3};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn setup() -> (ChannelSim, Endpoint, Endpoint, usize) {
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(FloorPlan::new(), band);
        let pose = Pose::wall_mounted(Vec3::new(0.0, 0.0, 1.5), Vec3::X);
        let geom = ArrayGeometry::half_wavelength(8, 8, band.wavelength_m());
        let idx = sim.add_surface(SurfaceInstance::new(
            "s0",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        let mut client = Endpoint::client("c0", Vec3::new(4.0, 2.0, 1.2));
        client.pattern = ElementPattern::Isotropic;
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(Vec3::new(4.0, -2.0, 2.0), Vec3::new(-1.0, 0.5, 0.0)),
        );
        (sim, client, ap, idx)
    }

    #[test]
    fn noiseless_sounding_matches_coeffs_times_response() {
        let (sim, client, ap, idx) = setup();
        let s = sound(&sim, idx, &client, &ap, 0.0, &mut rng()).expect("serves");
        let lin = sim.linearize(&client, &ap);
        let term = lin.linear.iter().find(|t| t.surface == idx).unwrap();
        for ((y, c), r) in s
            .samples
            .iter()
            .zip(&term.coeffs)
            .zip(sim.surfaces()[idx].response())
        {
            assert!((*y - *c * *r).abs() < 1e-18);
        }
    }

    #[test]
    fn calibration_phasors_are_unit() {
        let (sim, _, ap, idx) = setup();
        for c in ap_calibration(&sim, idx, &ap) {
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn calibrated_observation_exposes_client_aoa() {
        // After calibration, the residual per-element phase must match the
        // client-side steering (up to a common offset): adjacent-element
        // phase deltas agree with the steering vector's.
        let (sim, client, ap, idx) = setup();
        let s = sound(&sim, idx, &client, &ap, 0.0, &mut rng()).unwrap();
        let y = calibrated(&s);
        let surf = &sim.surfaces()[idx];
        let k = sim.band.wavenumber();
        // Expected client-side phase for elements 0 and 1.
        let d0 = surf.element_world_position(0).distance(client.position());
        let d1 = surf.element_world_position(1).distance(client.position());
        let expected_delta = -k * (d1 - d0);
        let got_delta = (y[1] / y[0]).arg();
        let diff = surfos_em::phase::wrap_phase_signed(got_delta - expected_delta);
        assert!(diff.abs() < 1e-6, "diff={diff}");
    }

    #[test]
    fn noise_perturbs_but_seeded_reproducibly() {
        let (sim, client, ap, idx) = setup();
        let a = sound(&sim, idx, &client, &ap, 1e-9, &mut rng()).unwrap();
        let b = sound(&sim, idx, &client, &ap, 1e-9, &mut rng()).unwrap();
        assert_eq!(a, b, "same seed, same observation");
        let clean = sound(&sim, idx, &client, &ap, 0.0, &mut rng()).unwrap();
        assert_ne!(a, clean);
    }

    #[test]
    fn ungated_surface_yields_none() {
        let (sim, client, _, idx) = setup();
        // An "AP" behind the reflective surface cannot be served.
        let behind = Endpoint::access_point(
            "ap1",
            Pose::wall_mounted(Vec3::new(-3.0, 0.0, 1.5), Vec3::X),
        );
        assert!(sound(&sim, idx, &client, &behind, 0.0, &mut rng()).is_none());
    }

    #[test]
    fn gaussian_moments_sane() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }
}
