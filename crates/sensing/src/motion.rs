//! Channel-delta motion detection.
//!
//! A second sensing service that shares surface hardware with
//! communication: movement in the environment perturbs the multipath
//! channel, so the magnitude of successive channel differences is a motion
//! statistic. Thresholding it gives a presence/motion detector — the
//! "motion detection" service of the paper's Figure 1.

use surfos_em::complex::Complex;

/// A sliding-window motion detector over complex channel samples.
#[derive(Debug, Clone)]
pub struct MotionDetector {
    /// Detection threshold on the normalized delta (0..).
    pub threshold: f64,
    last: Option<Complex>,
    /// Exponential moving average of the channel magnitude, used to
    /// normalize deltas so the detector is transmit-power independent.
    avg_mag: f64,
}

impl MotionDetector {
    /// Creates a detector with a normalized-delta threshold (typical 0.1).
    ///
    /// # Panics
    /// Panics on a non-positive threshold.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        MotionDetector {
            threshold,
            last: None,
            avg_mag: 0.0,
        }
    }

    /// Feeds one channel observation; returns `Some(delta)` when motion is
    /// detected (normalized delta above threshold), `None` otherwise.
    pub fn observe(&mut self, h: Complex) -> Option<f64> {
        let result = match self.last {
            None => None,
            Some(prev) => {
                let delta = (h - prev).abs();
                let scale = self.avg_mag.max(1e-15);
                let normalized = delta / scale;
                (normalized > self.threshold).then_some(normalized)
            }
        };
        self.last = Some(h);
        self.avg_mag = if self.avg_mag == 0.0 {
            h.abs()
        } else {
            0.9 * self.avg_mag + 0.1 * h.abs()
        };
        result
    }

    /// Resets detector state (e.g. after a deliberate reconfiguration,
    /// which would otherwise register as motion).
    pub fn reset(&mut self) {
        self.last = None;
        self.avg_mag = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_channel_no_detection() {
        let mut d = MotionDetector::new(0.1);
        let h = Complex::new(1e-6, 2e-6);
        assert!(d.observe(h).is_none()); // first sample primes
        for _ in 0..10 {
            assert!(d.observe(h).is_none());
        }
    }

    #[test]
    fn step_change_detected() {
        let mut d = MotionDetector::new(0.1);
        let h = Complex::new(1e-6, 0.0);
        d.observe(h);
        d.observe(h);
        let moved = d.observe(Complex::new(0.2e-6, 0.5e-6));
        assert!(moved.is_some());
        assert!(moved.unwrap() > 0.1);
    }

    #[test]
    fn detection_is_scale_invariant() {
        let mut small = MotionDetector::new(0.1);
        let mut large = MotionDetector::new(0.1);
        // Same relative perturbation at very different absolute levels.
        small.observe(Complex::new(1e-9, 0.0));
        large.observe(Complex::new(1e-3, 0.0));
        let a = small.observe(Complex::new(1.5e-9, 0.0));
        let b = large.observe(Complex::new(1.5e-3, 0.0));
        assert_eq!(a.is_some(), b.is_some());
    }

    #[test]
    fn reset_reprimes() {
        let mut d = MotionDetector::new(0.1);
        d.observe(Complex::new(1e-6, 0.0));
        d.reset();
        // First sample after reset never triggers, even if very different.
        assert!(d.observe(Complex::new(9e-6, 0.0)).is_none());
    }

    #[test]
    fn small_drift_below_threshold_ignored() {
        let mut d = MotionDetector::new(0.2);
        let mut h = Complex::new(1e-6, 0.0);
        d.observe(h);
        for _ in 0..20 {
            h *= Complex::cis(0.01); // slow phase drift, |Δ| ≈ 1 %
            assert!(d.observe(h).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn bad_threshold_rejected() {
        let _ = MotionDetector::new(0.0);
    }
}
