//! # surfos-sensing
//!
//! The sensing substrate for SurfOS: how surfaces turn channels into
//! spatial information.
//!
//! The paper's localization pipeline (§4, following md-Track): the AoA
//! between a client and a metasurface is estimated from the channel
//! information observed at the AP, then converted to a position with an
//! accurate ToF (range). The surface's configuration *weights the
//! aperture* the estimator sees, which is exactly why a coverage-optimized
//! configuration can wreck localization (Figure 2) and why joint
//! optimization (Figure 5) is needed.
//!
//! - [`aoa`]: angle grids, beam-scan (matched-filter) AoA spectra, and the
//!   differentiable cross-entropy AoA loss with analytic phase gradients —
//!   the localization term the orchestrator's multitask optimizer
//!   minimizes.
//! - [`sounding`]: element-domain channel sounding through a configured
//!   surface, with receiver noise.
//! - [`mod@localize`]: AoA + ToF → position, and error metrics.
//! - [`motion`]: channel-delta motion detection (a second sensing service
//!   sharing the same hardware).

pub mod aoa;
pub mod eval;
pub mod localize;
pub mod motion;
pub mod sounding;

pub use aoa::{AngleGrid, AoaEstimator, AoaLinearization};
pub use localize::{localization_error_m, localize};
pub use sounding::ElementSounding;
