//! Design automation (paper §5): locate an appropriate design in the
//! design database, adjust its parameters when no existing design fits
//! (e.g. a new operating band), and emit the datasheet a driver is
//! generated from.
//!
//! The paper assigns these steps to an LLM over a design database plus EM
//! simulation; this reproduction implements the deterministic core the
//! LLM would orchestrate: requirement matching, scaling laws for band
//! retargeting (element pitch ∝ λ), and datasheet serialization that
//! round-trips through [`crate::drivergen::parse_datasheet`].

use crate::drivergen::parse_datasheet;
use surfos_em::band::Band;
use surfos_hw::spec::{HardwareSpec, SurfaceMode};

/// What the requester needs from a design.
#[derive(Debug, Clone)]
pub struct DesignRequirements {
    /// The operating band.
    pub band: Band,
    /// Required operation mode, if constrained.
    pub mode: Option<SurfaceMode>,
    /// Control primitives that must be supported (names as in
    /// [`surfos_hw::spec::ControlCapability::name`]).
    pub required_controls: Vec<String>,
    /// Must be runtime-reconfigurable?
    pub needs_reconfiguration: bool,
    /// Hardware budget in USD, if constrained.
    pub max_cost_usd: Option<f64>,
    /// Maximum aperture area in m², if constrained.
    pub max_area_m2: Option<f64>,
}

/// Why no design could be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    /// No database entry supports the required controls/mode at any band.
    NoCandidate {
        /// Human-readable explanation.
        why: String,
    },
    /// A candidate exists but violates a hard budget.
    OverBudget {
        /// The best candidate's model name.
        model: String,
        /// Its cost in USD.
        cost_usd: f64,
    },
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::NoCandidate { why } => write!(f, "no candidate design: {why}"),
            DesignError::OverBudget { model, cost_usd } => {
                write!(
                    f,
                    "best candidate {model} costs ${cost_usd:.0}, over budget"
                )
            }
        }
    }
}

impl std::error::Error for DesignError {}

fn matches_static(spec: &HardwareSpec, req: &DesignRequirements) -> bool {
    if let Some(mode) = req.mode {
        if spec.mode != mode {
            return false;
        }
    }
    if req.needs_reconfiguration && spec.is_passive() {
        return false;
    }
    req.required_controls.iter().all(|c| spec.supports(c))
}

/// Retargets a design to a new band: the element pattern scales with the
/// wavelength, so pitch (and thus area) scales by `λ_new/λ_old` while the
/// element count, circuitry and economics carry over.
pub fn retarget_band(template: &HardwareSpec, band: Band) -> HardwareSpec {
    let scale = band.wavelength_m() / template.band.wavelength_m();
    let mut spec = template.clone();
    spec.model = format!("{}@{:.1}GHz", template.model, band.center_hz / 1e9);
    spec.band = band;
    spec.pitch_m = template.pitch_m * scale;
    debug_assert_eq!(spec.validate(), Ok(()));
    spec
}

/// Every matching design from `database`, retargeted to the required band
/// where needed, in preference order (proven in-band first, then by
/// cost). Budget constraints are *not* applied — placement search decides
/// feasibility — but the list is empty if nothing supports the controls.
pub fn candidate_designs(database: &[HardwareSpec], req: &DesignRequirements) -> Vec<HardwareSpec> {
    let (in_band, off_band): (Vec<&HardwareSpec>, Vec<&HardwareSpec>) = database
        .iter()
        .filter(|s| matches_static(s, req))
        .partition(|s| s.band.contains(req.band.center_hz));
    let mut out: Vec<HardwareSpec> = in_band.into_iter().cloned().collect();
    out.sort_by(|a, b| a.total_cost_usd().total_cmp(&b.total_cost_usd()));
    let mut retargeted: Vec<HardwareSpec> = off_band
        .into_iter()
        .map(|s| retarget_band(s, req.band))
        .collect();
    retargeted.sort_by(|a, b| a.total_cost_usd().total_cmp(&b.total_cost_usd()));
    out.extend(retargeted);
    out
}

/// Selects (and if needed retargets) a design from `database` for the
/// requirements. Prefers exact in-band designs, then the cheapest
/// retargeted one.
pub fn select_design(
    database: &[HardwareSpec],
    req: &DesignRequirements,
) -> Result<HardwareSpec, DesignError> {
    let candidates: Vec<&HardwareSpec> =
        database.iter().filter(|s| matches_static(s, req)).collect();
    if candidates.is_empty() {
        return Err(DesignError::NoCandidate {
            why: format!(
                "no design supports controls {:?} with mode {:?} (reconfigurable: {})",
                req.required_controls, req.mode, req.needs_reconfiguration
            ),
        });
    }

    // Proven in-band designs are preferred over retargeted ones (band
    // retargeting means new fabrication and validation); within each
    // class, cheapest first.
    let (in_band, off_band): (Vec<&HardwareSpec>, Vec<&HardwareSpec>) = candidates
        .iter()
        .partition(|s| s.band.contains(req.band.center_hz));
    let mut sized: Vec<HardwareSpec> = in_band.into_iter().cloned().collect();
    sized.sort_by(|a, b| a.total_cost_usd().total_cmp(&b.total_cost_usd()));
    let mut retargeted: Vec<HardwareSpec> = off_band
        .into_iter()
        .map(|s| retarget_band(s, req.band))
        .collect();
    retargeted.sort_by(|a, b| a.total_cost_usd().total_cmp(&b.total_cost_usd()));
    sized.extend(retargeted);

    // Apply hard constraints in preference order.
    for spec in &sized {
        let cost_ok = req.max_cost_usd.is_none_or(|m| spec.total_cost_usd() <= m);
        let area_ok = req.max_area_m2.is_none_or(|m| spec.area_m2() <= m);
        if cost_ok && area_ok {
            return Ok(spec.clone());
        }
    }
    let best = &sized[0];
    Err(DesignError::OverBudget {
        model: best.model.clone(),
        cost_usd: best.total_cost_usd(),
    })
}

/// Serializes a spec into the datasheet format
/// [`parse_datasheet`] consumes — the artefact handed to driver
/// generation or to a fabrication workflow.
pub fn write_datasheet(spec: &HardwareSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!("model: {}\n", spec.model));
    out.push_str(&format!("band: {} GHz\n", spec.band.center_hz / 1e9));
    out.push_str(&format!(
        "bandwidth: {} MHz\n",
        spec.band.bandwidth_hz / 1e6
    ));
    out.push_str(&format!(
        "mode: {}\n",
        match spec.mode {
            SurfaceMode::Reflective => "reflective",
            SurfaceMode::Transmissive => "transmissive",
            SurfaceMode::Transflective => "transflective",
        }
    ));
    for cap in &spec.capabilities {
        use surfos_hw::spec::ControlCapability as C;
        match cap {
            C::Phase { bits } => out.push_str(&format!("control: phase {bits}bit\n")),
            C::Amplitude { levels } => {
                out.push_str(&format!("control: amplitude {levels}levels\n"))
            }
            C::Polarization => out.push_str("control: polarization\n"),
            C::Frequency { tunable_range_hz } => out.push_str(&format!(
                "control: frequency {} GHz\n",
                tunable_range_hz / 1e9
            )),
        }
    }
    use surfos_hw::granularity::Reconfigurability as R;
    out.push_str(&format!(
        "granularity: {}\n",
        match spec.reconfigurability {
            R::ElementWise => "element",
            R::ColumnWise => "column",
            R::RowWise => "row",
            R::Passive => "passive",
        }
    ));
    out.push_str(&format!("elements: {} x {}\n", spec.rows, spec.cols));
    out.push_str(&format!("pitch: {} mm\n", spec.pitch_m * 1e3));
    out.push_str(&format!("efficiency: {}\n", spec.efficiency));
    if let Some(delay) = spec.control_delay_us {
        out.push_str(&format!("control-delay: {delay} us\n"));
        out.push_str(&format!("slots: {}\n", spec.config_slots));
    } else {
        out.push_str("control-delay: none\n");
    }
    out.push_str(&format!(
        "cost-per-element: {} USD\n",
        spec.cost_per_element_usd
    ));
    out.push_str(&format!("base-cost: {} USD\n", spec.base_cost_usd));
    if spec.power_mw > 0.0 {
        out.push_str(&format!("power: {} mW\n", spec.power_mw));
    }
    out
}

/// The end-to-end automation step: requirements → selected/adjusted
/// design → datasheet text ready for driver generation.
pub fn design_to_datasheet(
    database: &[HardwareSpec],
    req: &DesignRequirements,
) -> Result<String, DesignError> {
    let spec = select_design(database, req)?;
    let sheet = write_datasheet(&spec);
    debug_assert!(parse_datasheet(&sheet).is_ok(), "datasheet must round-trip");
    Ok(sheet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_em::band::NamedBand;
    use surfos_hw::designs::all_designs;

    fn req(band: Band) -> DesignRequirements {
        DesignRequirements {
            band,
            mode: Some(SurfaceMode::Reflective),
            required_controls: vec!["phase".into()],
            needs_reconfiguration: false,
            max_cost_usd: None,
            max_area_m2: None,
        }
    }

    #[test]
    fn in_band_design_preferred() {
        // 60 GHz reflective phase: AutoMS (cheapest) should win as-is.
        let spec = select_design(&all_designs(), &req(NamedBand::MmWave60GHz.band())).unwrap();
        assert_eq!(spec.model, "AutoMS");
    }

    #[test]
    fn reconfiguration_requirement_filters_passives() {
        let mut r = req(NamedBand::MmWave24GHz.band());
        r.needs_reconfiguration = true;
        let spec = select_design(&all_designs(), &r).unwrap();
        assert!(!spec.is_passive());
        // NR-Surface is the cheap reconfigurable 24 GHz design.
        assert_eq!(spec.model, "NR-Surface");
    }

    #[test]
    fn new_band_triggers_retargeting() {
        // 28 GHz: no Table-1 design covers it; the cheapest reflective
        // phase design gets retargeted with λ-scaled pitch.
        let spec = select_design(&all_designs(), &req(NamedBand::MmWave28GHz.band())).unwrap();
        assert!(spec.model.contains("@28.0GHz"), "{}", spec.model);
        assert!(spec.band.contains(28.0e9));
        assert!(
            spec.pitch_m < spec.band.wavelength_m(),
            "sub-wavelength pitch"
        );
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn budget_constraints_respected() {
        let mut r = req(NamedBand::MmWave24GHz.band());
        r.needs_reconfiguration = true;
        r.max_cost_usd = Some(100.0); // below NR-Surface's $600
        let err = select_design(&all_designs(), &r).unwrap_err();
        assert!(matches!(err, DesignError::OverBudget { .. }));
    }

    #[test]
    fn impossible_controls_rejected() {
        let mut r = req(NamedBand::Ism2_4GHz.band());
        r.required_controls = vec!["phase".into(), "polarization".into()];
        let err = select_design(&all_designs(), &r).unwrap_err();
        assert!(matches!(err, DesignError::NoCandidate { .. }));
    }

    #[test]
    fn candidate_designs_ordered_and_complete() {
        let mut r = req(NamedBand::MmWave28GHz.band());
        r.needs_reconfiguration = true;
        let candidates = candidate_designs(&all_designs(), &r);
        assert!(
            candidates.len() >= 3,
            "several reconfigurable reflective phase designs"
        );
        // Costs non-decreasing within the retargeted block (all are
        // retargeted here: nothing covers 28 GHz natively).
        for w in candidates.windows(2) {
            assert!(w[0].total_cost_usd() <= w[1].total_cost_usd() + 1e-9);
        }
        for c in &candidates {
            assert!(c.band.contains(28e9));
            assert_eq!(c.validate(), Ok(()));
        }
    }

    #[test]
    fn datasheet_roundtrips_for_every_table1_design() {
        for spec in all_designs() {
            let sheet = write_datasheet(&spec);
            let parsed =
                parse_datasheet(&sheet).unwrap_or_else(|e| panic!("{}: {e}\n{sheet}", spec.model));
            assert_eq!(parsed.model, spec.model);
            assert_eq!(parsed.rows, spec.rows);
            assert_eq!(parsed.cols, spec.cols);
            assert!((parsed.pitch_m - spec.pitch_m).abs() < 1e-9);
            assert!((parsed.band.center_hz - spec.band.center_hz).abs() < 1.0);
            assert_eq!(parsed.reconfigurability, spec.reconfigurability);
            assert_eq!(parsed.is_passive(), spec.is_passive());
            assert!((parsed.total_cost_usd() - spec.total_cost_usd()).abs() < 0.01);
        }
    }

    #[test]
    fn end_to_end_requirements_to_datasheet() {
        let sheet =
            design_to_datasheet(&all_designs(), &req(NamedBand::MmWave28GHz.band())).unwrap();
        // The sheet drives driver generation directly.
        let driver = crate::drivergen::generate_driver(&sheet).unwrap();
        assert!(driver.spec().band.contains(28e9));
    }
}
