//! # surfos-broker
//!
//! The SurfOS **service broker** (paper §3.3–3.4): the daemon between user
//! applications and the surface orchestrator.
//!
//! Existing applications are not surface-aware; the broker watches their
//! demands and invokes surface services on their behalf. New, surface-
//! native applications call the orchestrator directly; the broker coexists
//! with them.
//!
//! - [`demand`]: the application demand model (throughput, latency,
//!   sensing, security, powering) with presets for the paper's example
//!   applications (VR gaming, video streaming, smart home, …).
//! - [`translate`]: demand → service requests, including the non-linear
//!   throughput→SNR mapping across stack layers the paper calls out.
//! - [`intent`]: natural-language intent translation. The
//!   [`intent::IntentTranslator`] trait is the LLM seam; the bundled
//!   [`intent::RuleBasedTranslator`] is a deterministic, offline engine
//!   that regenerates the paper's Figure 6 examples. A production
//!   deployment would drop an LLM client behind the same trait.
//! - [`drivergen`]: hardware driver generation from textual datasheets —
//!   the paper's "LLMs parse datasheets into specifications, then
//!   synthesize driver code", reproduced as a deterministic parser +
//!   driver factory.
//! - [`monitor`]: inferring application demands from observed traffic.
//! - [`registry`]: per-tenant service leases and quota admission for the
//!   networked service plane (`surfosd serve`).

pub mod demand;
pub mod designgen;
pub mod drivergen;
pub mod intent;
pub mod monitor;
pub mod registry;
pub mod translate;

pub use demand::{AppClass, AppDemand};
pub use designgen::{select_design, write_datasheet, DesignRequirements};
pub use drivergen::generate_driver;
pub use intent::{IntentContext, IntentTranslator, RuleBasedTranslator};
pub use registry::{Lease, RegistryError, TenantRegistry};
pub use translate::translate_demand;
