//! Demand → service translation.
//!
//! "It is challenging to translate user demands or application performance
//! targets to low-level service targets for surfaces … involving multiple
//! non-linear mappings across network stack layers" (paper §3.3). This
//! module implements that mapping chain explicitly:
//!
//! 1. application throughput → PHY goodput (protocol efficiency),
//! 2. goodput → spectral efficiency over the serving band,
//! 3. spectral efficiency → required SNR (inverse Shannon),
//! 4. plus a fade margin that *grows* as the latency budget shrinks
//!    (tighter budgets leave no time for retransmissions).

use crate::demand::AppDemand;
use surfos_em::noise::required_snr_db;
use surfos_orchestrator::service::ServiceRequest;

/// Fraction of PHY capacity an application actually sees after MAC and
/// transport overheads (typical indoor mmWave stacks).
const PROTOCOL_EFFICIENCY: f64 = 0.65;

/// No link target below this: real links need a minimum SNR to associate
/// and hold a modulation scheme at all, however small the demand.
const MIN_LINK_SNR_DB: f64 = 10.0;

/// The SNR margin in dB for a latency budget in milliseconds: 3 dB floor,
/// growing to 9 dB as budgets tighten below ~10 ms (no retry headroom).
fn fade_margin_db(latency_ms: f64) -> f64 {
    assert!(latency_ms > 0.0, "latency budget must be positive");
    3.0 + 6.0 / (1.0 + latency_ms / 10.0)
}

/// The minimum SNR (dB) that sustains an application throughput over a
/// band — the paper's non-linear demand mapping.
pub fn required_link_snr_db(throughput_mbps: f64, bandwidth_hz: f64, latency_ms: f64) -> f64 {
    assert!(throughput_mbps >= 0.0, "throughput must be non-negative");
    let phy_rate_bps = throughput_mbps * 1e6 / PROTOCOL_EFFICIENCY;
    (required_snr_db(phy_rate_bps, bandwidth_hz) + fade_margin_db(latency_ms)).max(MIN_LINK_SNR_DB)
}

/// Translates an application demand into surface service requests, for a
/// serving band of `bandwidth_hz`.
pub fn translate_demand(demand: &AppDemand, bandwidth_hz: f64) -> Vec<ServiceRequest> {
    let mut requests = Vec::new();

    let snr = required_link_snr_db(demand.throughput_mbps, bandwidth_hz, demand.latency_ms);
    requests.push(ServiceRequest::enhance_link(
        demand.device.clone(),
        (snr * 10.0).round() / 10.0,
        demand.latency_ms,
    ));

    if demand.needs_tracking {
        requests.push(ServiceRequest::enable_sensing(
            demand.room.clone(),
            demand.session_s,
        ));
    }
    if demand.needs_security {
        requests.push(ServiceRequest::protect_link(demand.room.clone(), -85.0));
    }
    if let Some(duration) = demand.needs_powering {
        requests.push(ServiceRequest::init_powering(
            demand.device.clone(),
            duration,
        ));
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::AppClass;
    use proptest::prelude::*;
    use surfos_orchestrator::service::ServiceKind;

    const BW: f64 = 400e6; // 28 GHz NR channel

    #[test]
    fn snr_mapping_is_nonlinear_in_throughput() {
        // Doubling throughput must cost *more* than a fixed SNR increment
        // at the top of the curve (log2(1+snr) saturation).
        let s100 = required_link_snr_db(100.0, BW, 100.0);
        let s800 = required_link_snr_db(800.0, BW, 100.0);
        let s1600 = required_link_snr_db(1600.0, BW, 100.0);
        assert!(s800 > s100);
        assert!(s1600 - s800 > (s800 - s100) / 3.0); // strictly increasing cost
    }

    #[test]
    fn tighter_latency_needs_more_margin() {
        // High enough throughput that the association floor is not binding.
        let tight = required_link_snr_db(800.0, BW, 5.0);
        let loose = required_link_snr_db(800.0, BW, 500.0);
        assert!(tight > loose + 2.0, "tight={tight} loose={loose}");
    }

    #[test]
    fn vr_demand_produces_link_and_sensing() {
        let d = AppDemand::preset(AppClass::VrGaming, "VR_headset", "den");
        let reqs = translate_demand(&d, BW);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].kind, ServiceKind::Connectivity);
        assert_eq!(reqs[0].subject, "VR_headset");
        assert_eq!(reqs[1].kind, ServiceKind::Sensing);
        assert_eq!(reqs[1].subject, "den");
        // VR's 800 Mb/s over 400 MHz needs a demanding SNR.
        if let surfos_orchestrator::service::ServiceGoal::LinkQuality { min_snr_db, .. } =
            reqs[0].goal
        {
            assert!(min_snr_db > 10.0, "snr={min_snr_db}");
        } else {
            panic!("wrong goal");
        }
    }

    #[test]
    fn sensitive_transfer_adds_security() {
        let d = AppDemand::preset(AppClass::SensitiveTransfer, "laptop", "office");
        let reqs = translate_demand(&d, BW);
        assert!(reqs.iter().any(|r| r.kind == ServiceKind::Security));
    }

    #[test]
    fn powering_request_appended() {
        let d = AppDemand::preset(AppClass::OnlineMeeting, "phone", "office").with_powering(3600.0);
        let reqs = translate_demand(&d, BW);
        let p = reqs
            .iter()
            .find(|r| r.kind == ServiceKind::Powering)
            .expect("powering present");
        assert_eq!(p.subject, "phone");
        assert_eq!(p.duration_s, Some(3600.0));
    }

    #[test]
    fn smart_home_is_cheap_in_snr() {
        let d = AppDemand::preset(AppClass::SmartHome, "hub", "kitchen");
        let reqs = translate_demand(&d, BW);
        if let surfos_orchestrator::service::ServiceGoal::LinkQuality { min_snr_db, .. } =
            reqs[0].goal
        {
            // Tiny demands bottom out at the association floor.
            assert_eq!(min_snr_db, 10.0);
        } else {
            panic!("wrong goal");
        }
    }

    proptest! {
        #[test]
        fn prop_snr_monotone_in_throughput(
            t1 in 1.0..500.0f64, extra in 1.0..500.0f64, lat in 1.0..1000.0f64
        ) {
            let lo = required_link_snr_db(t1, BW, lat);
            let hi = required_link_snr_db(t1 + extra, BW, lat);
            prop_assert!(hi >= lo, "non-decreasing with the association floor");
        }

        #[test]
        fn prop_margin_bounded(lat in 0.1..10_000.0f64) {
            let m = fade_margin_db(lat);
            prop_assert!((3.0..=9.0).contains(&m));
        }
    }
}
