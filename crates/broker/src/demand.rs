//! The application demand model.
//!
//! "Application demands vary. VR/AR gaming needs high throughput and low
//! latency, smart home applications need sensing capability, while
//! sensitive data transmission necessitates added security protection"
//! (paper §2.1). [`AppDemand`] is that variation as data.

use serde::{Deserialize, Serialize};

/// Recognized application classes (used by presets and the traffic
/// monitor's classifier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppClass {
    /// VR/AR gaming: very high throughput, very low latency, tracking.
    VrGaming,
    /// Video streaming: sustained throughput, tolerant latency, stability.
    VideoStreaming,
    /// Interactive video meeting: moderate symmetric throughput, low-ish
    /// latency.
    OnlineMeeting,
    /// Smart-home automation: tiny throughput, sensing-centric.
    SmartHome,
    /// Bulk file transfer: throughput-hungry, latency-insensitive.
    FileTransfer,
    /// Sensitive data transmission: modest throughput plus security.
    SensitiveTransfer,
}

/// What an application needs from the radio environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppDemand {
    /// The demanding application's class.
    pub class: AppClass,
    /// The device running it (endpoint id).
    pub device: String,
    /// The room the user is in.
    pub room: String,
    /// Downlink throughput needed, Mbit/s.
    pub throughput_mbps: f64,
    /// Latency budget, milliseconds.
    pub latency_ms: f64,
    /// Needs motion/position tracking.
    pub needs_tracking: bool,
    /// Needs eavesdropping protection.
    pub needs_security: bool,
    /// Needs wireless charging, with a duration in seconds.
    pub needs_powering: Option<f64>,
    /// How long the session is expected to last, seconds.
    pub session_s: f64,
}

impl AppDemand {
    /// The preset demand for an application class on a device in a room.
    pub fn preset(class: AppClass, device: impl Into<String>, room: impl Into<String>) -> Self {
        let device = device.into();
        let room = room.into();
        match class {
            AppClass::VrGaming => AppDemand {
                class,
                device,
                room,
                throughput_mbps: 800.0,
                latency_ms: 10.0,
                needs_tracking: true,
                needs_security: false,
                needs_powering: None,
                session_s: 3600.0,
            },
            AppClass::VideoStreaming => AppDemand {
                class,
                device,
                room,
                throughput_mbps: 50.0,
                latency_ms: 200.0,
                needs_tracking: false,
                needs_security: false,
                needs_powering: None,
                session_s: 7200.0,
            },
            AppClass::OnlineMeeting => AppDemand {
                class,
                device,
                room,
                throughput_mbps: 20.0,
                latency_ms: 50.0,
                needs_tracking: false,
                needs_security: false,
                needs_powering: None,
                session_s: 3600.0,
            },
            AppClass::SmartHome => AppDemand {
                class,
                device,
                room,
                throughput_mbps: 1.0,
                latency_ms: 500.0,
                needs_tracking: true,
                needs_security: false,
                needs_powering: None,
                session_s: 86_400.0,
            },
            AppClass::FileTransfer => AppDemand {
                class,
                device,
                room,
                throughput_mbps: 400.0,
                latency_ms: 1000.0,
                needs_tracking: false,
                needs_security: false,
                needs_powering: None,
                session_s: 600.0,
            },
            AppClass::SensitiveTransfer => AppDemand {
                class,
                device,
                room,
                throughput_mbps: 30.0,
                latency_ms: 100.0,
                needs_tracking: false,
                needs_security: true,
                needs_powering: None,
                session_s: 900.0,
            },
        }
    }

    /// Adds a charging need (builder style).
    pub fn with_powering(mut self, duration_s: f64) -> Self {
        self.needs_powering = Some(duration_s);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_reflect_paper_characterization() {
        let vr = AppDemand::preset(AppClass::VrGaming, "hmd", "den");
        let stream = AppDemand::preset(AppClass::VideoStreaming, "tv", "den");
        let smart = AppDemand::preset(AppClass::SmartHome, "hub", "den");
        let secret = AppDemand::preset(AppClass::SensitiveTransfer, "laptop", "den");

        // VR: high throughput AND low latency.
        assert!(vr.throughput_mbps > stream.throughput_mbps);
        assert!(vr.latency_ms < stream.latency_ms);
        assert!(vr.needs_tracking);
        // Smart home: sensing-centric.
        assert!(smart.needs_tracking);
        assert!(smart.throughput_mbps < 10.0);
        // Sensitive: security.
        assert!(secret.needs_security);
        assert!(!stream.needs_security);
    }

    #[test]
    fn powering_builder() {
        let d = AppDemand::preset(AppClass::OnlineMeeting, "phone", "office").with_powering(1800.0);
        assert_eq!(d.needs_powering, Some(1800.0));
    }
}
