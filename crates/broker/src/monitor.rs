//! Traffic-based demand inference and service health monitoring.
//!
//! "We can potentially sense or monitor wireless traffic to understand
//! user demands" (paper §3.3). This module watches per-flow statistics
//! and classifies the application class driving them, so the broker can
//! invoke services for legacy applications that never ask.
//!
//! It also implements the broker's other monitoring duty: tracking each
//! running service's measured metric against its requested target.
//! [`ServiceMonitor`] is a per-task health state machine
//! (`Unknown → Healthy ↔ Degraded ↔ Failed`) that records every
//! transition in the `surfos-obs` event journal, so an operator can
//! replay *when* a service degraded, not just see that it is degraded
//! now.

use crate::demand::AppClass;
use serde::{Deserialize, Serialize};

/// Aggregated statistics of one flow over an observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Mean downlink rate, Mbit/s.
    pub rate_mbps: f64,
    /// Ratio of uplink to downlink volume (symmetry).
    pub ul_dl_ratio: f64,
    /// Mean packet inter-arrival jitter, milliseconds.
    pub jitter_ms: f64,
    /// Fraction of traffic in bursts (vs paced).
    pub burstiness: f64,
}

impl FlowStats {
    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.rate_mbps < 0.0 || !self.rate_mbps.is_finite() {
            return Err("rate must be non-negative".into());
        }
        if !(0.0..=10.0).contains(&self.ul_dl_ratio) {
            return Err("ul/dl ratio implausible".into());
        }
        if self.jitter_ms < 0.0 {
            return Err("jitter must be non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.burstiness) {
            return Err("burstiness is a fraction".into());
        }
        Ok(())
    }
}

/// Classifies the application class behind a flow, or `None` when the
/// signature is too ambiguous to act on (acting on a wrong guess costs
/// hardware, so the classifier abstains rather than stretches).
pub fn classify(stats: &FlowStats) -> Option<AppClass> {
    stats.validate().ok()?;
    let s = stats;
    // Decision list, most distinctive signatures first.
    if s.rate_mbps > 300.0 && s.jitter_ms < 5.0 {
        return Some(AppClass::VrGaming);
    }
    if s.rate_mbps > 200.0 && s.burstiness > 0.6 {
        return Some(AppClass::FileTransfer);
    }
    if s.rate_mbps > 10.0 && s.burstiness < 0.4 && s.ul_dl_ratio < 0.2 {
        return Some(AppClass::VideoStreaming);
    }
    if s.rate_mbps > 2.0 && (0.5..=2.0).contains(&s.ul_dl_ratio) && s.jitter_ms < 30.0 {
        return Some(AppClass::OnlineMeeting);
    }
    if s.rate_mbps < 2.0 && s.burstiness > 0.5 {
        return Some(AppClass::SmartHome);
    }
    None
}

/// Health of one monitored service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Health {
    /// No observation yet.
    Unknown,
    /// Metric meets the target.
    Healthy,
    /// Metric misses the target, but within the degraded margin (or not
    /// yet persistently enough to be declared failed).
    Degraded,
    /// Metric has missed the target by more than the margin for
    /// `fail_after` consecutive observations.
    Failed,
}

/// When a shortfall becomes `Degraded` vs `Failed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Shortfall (in the metric's own unit, e.g. dB) tolerated as merely
    /// degraded. Beyond it the observation counts towards failure.
    pub degraded_margin: f64,
    /// Consecutive beyond-margin observations before declaring `Failed`
    /// (transient fades should not flap a service to failed).
    pub fail_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degraded_margin: 10.0,
            fail_after: 3,
        }
    }
}

/// A health state change, returned by [`ServiceMonitor::observe`] and
/// journaled under the `broker.monitor` category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    pub from: Health,
    pub to: Health,
}

/// Per-service health tracker: feed it the measured metric after each
/// kernel step; it compares against the requested target and walks the
/// `Unknown → Healthy ↔ Degraded ↔ Failed` state machine. Every
/// transition is appended to the observability event journal (when
/// enabled) with the monitor's label.
#[derive(Debug, Clone)]
pub struct ServiceMonitor {
    label: String,
    target: f64,
    /// `true` for floor targets (SNR, delivered power), `false` for
    /// ceiling targets (leaked power).
    higher_is_better: bool,
    policy: HealthPolicy,
    health: Health,
    consecutive_beyond_margin: u32,
}

impl ServiceMonitor {
    /// A monitor with the default [`HealthPolicy`]. `label` names the
    /// service in journal events (e.g. `task#3 enhance_link`).
    pub fn new(label: impl Into<String>, target: f64, higher_is_better: bool) -> Self {
        ServiceMonitor {
            label: label.into(),
            target,
            higher_is_better,
            policy: HealthPolicy::default(),
            health: Health::Unknown,
            consecutive_beyond_margin: 0,
        }
    }

    /// Overrides the degradation/failure policy (builder style).
    pub fn with_policy(mut self, policy: HealthPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Current health.
    pub fn health(&self) -> Health {
        self.health
    }

    /// Feeds one measurement; returns the transition if health changed.
    pub fn observe(&mut self, metric: f64) -> Option<HealthTransition> {
        let shortfall = if self.higher_is_better {
            self.target - metric
        } else {
            metric - self.target
        };
        let next = if !shortfall.is_finite() || shortfall > self.policy.degraded_margin {
            self.consecutive_beyond_margin += 1;
            if self.consecutive_beyond_margin >= self.policy.fail_after {
                Health::Failed
            } else {
                Health::Degraded
            }
        } else {
            self.consecutive_beyond_margin = 0;
            if shortfall <= 0.0 {
                Health::Healthy
            } else {
                Health::Degraded
            }
        };
        if next == self.health {
            return None;
        }
        let transition = HealthTransition {
            from: self.health,
            to: next,
        };
        self.health = next;
        {
            // Per-service transition counter: the label scope keys it as
            // broker.monitor.transitions{service=<label>} alongside the
            // flat total (bounded by the monitor count, which the label
            // interner caps anyway).
            let _svc = surfos_obs::scoped(&[("service", &self.label)]);
            surfos_obs::add("broker.monitor.transitions", 1);
        }
        surfos_obs::event!(
            "broker.monitor",
            "{}: {:?} -> {:?} (metric {:.2}, target {:.2})",
            self.label,
            transition.from,
            transition.to,
            metric,
            self.target
        );
        Some(transition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rate: f64, ratio: f64, jitter: f64, burst: f64) -> FlowStats {
        FlowStats {
            rate_mbps: rate,
            ul_dl_ratio: ratio,
            jitter_ms: jitter,
            burstiness: burst,
        }
    }

    #[test]
    fn vr_signature() {
        assert_eq!(
            classify(&stats(600.0, 0.1, 2.0, 0.2)),
            Some(AppClass::VrGaming)
        );
    }

    #[test]
    fn streaming_signature() {
        assert_eq!(
            classify(&stats(40.0, 0.05, 15.0, 0.2)),
            Some(AppClass::VideoStreaming)
        );
    }

    #[test]
    fn meeting_signature_is_symmetric() {
        assert_eq!(
            classify(&stats(15.0, 1.0, 10.0, 0.3)),
            Some(AppClass::OnlineMeeting)
        );
    }

    #[test]
    fn bulk_transfer_signature() {
        assert_eq!(
            classify(&stats(450.0, 0.05, 40.0, 0.9)),
            Some(AppClass::FileTransfer)
        );
    }

    #[test]
    fn iot_signature() {
        assert_eq!(
            classify(&stats(0.3, 1.0, 100.0, 0.9)),
            Some(AppClass::SmartHome)
        );
    }

    #[test]
    fn ambiguity_yields_none() {
        // Mid-rate, paced, asymmetric-but-not-very: no confident match.
        assert_eq!(classify(&stats(5.0, 0.3, 60.0, 0.45)), None);
    }

    #[test]
    fn invalid_stats_yield_none() {
        assert_eq!(classify(&stats(-1.0, 0.1, 1.0, 0.1)), None);
        assert_eq!(classify(&stats(10.0, 0.1, 1.0, 1.5)), None);
    }

    #[test]
    fn monitor_walks_healthy_degraded_failed() {
        let mut m = ServiceMonitor::new("link", 20.0, true).with_policy(HealthPolicy {
            degraded_margin: 5.0,
            fail_after: 2,
        });
        assert_eq!(m.health(), Health::Unknown);

        // Meets target: Unknown -> Healthy.
        let t = m.observe(22.0).expect("transition");
        assert_eq!((t.from, t.to), (Health::Unknown, Health::Healthy));

        // Within margin: Healthy -> Degraded.
        let t = m.observe(17.0).expect("transition");
        assert_eq!((t.from, t.to), (Health::Healthy, Health::Degraded));

        // Beyond margin once: still Degraded (no transition), not Failed yet.
        assert_eq!(m.observe(10.0), None);
        assert_eq!(m.health(), Health::Degraded);

        // Beyond margin a second consecutive time: Failed.
        let t = m.observe(9.0).expect("transition");
        assert_eq!((t.from, t.to), (Health::Degraded, Health::Failed));

        // Recovery is immediate once the target is met again.
        let t = m.observe(25.0).expect("transition");
        assert_eq!((t.from, t.to), (Health::Failed, Health::Healthy));
    }

    #[test]
    fn monitor_respects_lower_is_better_direction() {
        // Suppression-style ceiling target: leaking *less* is healthy.
        let mut m = ServiceMonitor::new("suppress", -40.0, false);
        m.observe(-55.0);
        assert_eq!(m.health(), Health::Healthy);
        m.observe(-35.0); // 5 dB over the ceiling: within default margin.
        assert_eq!(m.health(), Health::Degraded);
    }

    #[test]
    fn failure_requires_consecutive_misses() {
        let mut m = ServiceMonitor::new("link", 20.0, true).with_policy(HealthPolicy {
            degraded_margin: 5.0,
            fail_after: 2,
        });
        m.observe(0.0); // one big miss
        m.observe(16.0); // recovers into the margin: resets the streak
        m.observe(0.0); // another big miss, but not consecutive
        assert_eq!(m.health(), Health::Degraded);
    }

    #[test]
    fn non_finite_metric_counts_as_miss() {
        let mut m = ServiceMonitor::new("link", 20.0, true).with_policy(HealthPolicy {
            degraded_margin: 5.0,
            fail_after: 1,
        });
        m.observe(f64::NAN);
        assert_eq!(m.health(), Health::Failed);
    }

    #[test]
    fn transitions_are_journaled_when_obs_enabled() {
        surfos_obs::set_enabled(true);
        let mut m = ServiceMonitor::new("journal-probe-task", 20.0, true);
        m.observe(25.0);
        m.observe(-100.0);
        let snap = surfos_obs::snapshot();
        surfos_obs::set_enabled(false);
        // Other tests share the journal; look only for our unique label.
        let ours: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.category == "broker.monitor" && e.message.contains("journal-probe-task"))
            .collect();
        assert!(
            ours.iter()
                .any(|e| e.message.contains("Unknown -> Healthy")),
            "missing Unknown -> Healthy event: {ours:?}"
        );
        assert!(
            ours.iter()
                .any(|e| e.message.contains("Healthy -> Degraded")),
            "missing Healthy -> Degraded event: {ours:?}"
        );
    }
}
