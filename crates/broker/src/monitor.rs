//! Traffic-based demand inference.
//!
//! "We can potentially sense or monitor wireless traffic to understand
//! user demands" (paper §3.3). This module watches per-flow statistics
//! and classifies the application class driving them, so the broker can
//! invoke services for legacy applications that never ask.

use crate::demand::AppClass;
use serde::{Deserialize, Serialize};

/// Aggregated statistics of one flow over an observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Mean downlink rate, Mbit/s.
    pub rate_mbps: f64,
    /// Ratio of uplink to downlink volume (symmetry).
    pub ul_dl_ratio: f64,
    /// Mean packet inter-arrival jitter, milliseconds.
    pub jitter_ms: f64,
    /// Fraction of traffic in bursts (vs paced).
    pub burstiness: f64,
}

impl FlowStats {
    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.rate_mbps < 0.0 || !self.rate_mbps.is_finite() {
            return Err("rate must be non-negative".into());
        }
        if !(0.0..=10.0).contains(&self.ul_dl_ratio) {
            return Err("ul/dl ratio implausible".into());
        }
        if self.jitter_ms < 0.0 {
            return Err("jitter must be non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.burstiness) {
            return Err("burstiness is a fraction".into());
        }
        Ok(())
    }
}

/// Classifies the application class behind a flow, or `None` when the
/// signature is too ambiguous to act on (acting on a wrong guess costs
/// hardware, so the classifier abstains rather than stretches).
pub fn classify(stats: &FlowStats) -> Option<AppClass> {
    stats.validate().ok()?;
    let s = stats;
    // Decision list, most distinctive signatures first.
    if s.rate_mbps > 300.0 && s.jitter_ms < 5.0 {
        return Some(AppClass::VrGaming);
    }
    if s.rate_mbps > 200.0 && s.burstiness > 0.6 {
        return Some(AppClass::FileTransfer);
    }
    if s.rate_mbps > 10.0 && s.burstiness < 0.4 && s.ul_dl_ratio < 0.2 {
        return Some(AppClass::VideoStreaming);
    }
    if s.rate_mbps > 2.0 && (0.5..=2.0).contains(&s.ul_dl_ratio) && s.jitter_ms < 30.0 {
        return Some(AppClass::OnlineMeeting);
    }
    if s.rate_mbps < 2.0 && s.burstiness > 0.5 {
        return Some(AppClass::SmartHome);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rate: f64, ratio: f64, jitter: f64, burst: f64) -> FlowStats {
        FlowStats {
            rate_mbps: rate,
            ul_dl_ratio: ratio,
            jitter_ms: jitter,
            burstiness: burst,
        }
    }

    #[test]
    fn vr_signature() {
        assert_eq!(classify(&stats(600.0, 0.1, 2.0, 0.2)), Some(AppClass::VrGaming));
    }

    #[test]
    fn streaming_signature() {
        assert_eq!(
            classify(&stats(40.0, 0.05, 15.0, 0.2)),
            Some(AppClass::VideoStreaming)
        );
    }

    #[test]
    fn meeting_signature_is_symmetric() {
        assert_eq!(
            classify(&stats(15.0, 1.0, 10.0, 0.3)),
            Some(AppClass::OnlineMeeting)
        );
    }

    #[test]
    fn bulk_transfer_signature() {
        assert_eq!(
            classify(&stats(450.0, 0.05, 40.0, 0.9)),
            Some(AppClass::FileTransfer)
        );
    }

    #[test]
    fn iot_signature() {
        assert_eq!(classify(&stats(0.3, 1.0, 100.0, 0.9)), Some(AppClass::SmartHome));
    }

    #[test]
    fn ambiguity_yields_none() {
        // Mid-rate, paced, asymmetric-but-not-very: no confident match.
        assert_eq!(classify(&stats(5.0, 0.3, 60.0, 0.45)), None);
    }

    #[test]
    fn invalid_stats_yield_none() {
        assert_eq!(classify(&stats(-1.0, 0.1, 1.0, 0.1)), None);
        assert_eq!(classify(&stats(10.0, 0.1, 1.0, 1.5)), None);
    }
}
