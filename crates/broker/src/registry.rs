//! Per-tenant service registration and quota accounting.
//!
//! The service plane multiplexes many clients over one kernel, so the
//! broker needs a ledger of *who owns what*: every admitted service is a
//! [`Lease`] held by a named tenant, and admission enforces both a
//! per-tenant cap and a global capacity before the kernel ever sees the
//! request. Over-demand therefore fails fast with a structured
//! [`RegistryError`] — the daemon turns it into a `Rejected{reason}`
//! response — instead of queueing work the resource grid can never run.
//!
//! The registry is deliberately kernel-agnostic: it stores opaque `u64`
//! task handles and leaves scheduling to the orchestrator. It is also
//! single-threaded by design — the daemon serializes kernel access, and
//! the ledger lives with the kernel.

use std::collections::BTreeMap;

/// One admitted service held by a tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Registry-assigned lease id (what clients release by).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Kernel task backing the lease.
    pub task: u64,
    /// Service class label (e.g. `"coverage"`), for metrics and `top`.
    pub kind: String,
}

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The tenant already holds its maximum number of live leases.
    TenantQuota {
        /// The tenant that hit its cap.
        tenant: String,
        /// Live leases the tenant holds.
        live: usize,
        /// The per-tenant cap.
        cap: usize,
    },
    /// The registry as a whole is at capacity.
    Capacity {
        /// Live leases across all tenants.
        live: usize,
        /// The global cap.
        cap: usize,
    },
    /// A release named a lease that does not exist or belongs to another
    /// tenant (releases are owner-only; a tenant cannot drop a peer's
    /// service).
    NotOwner {
        /// The lease id named in the release.
        lease: u64,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::TenantQuota { tenant, live, cap } => write!(
                f,
                "tenant {tenant:?} quota exhausted: {live} live services (cap {cap})"
            ),
            RegistryError::Capacity { live, cap } => {
                write!(f, "registry at capacity: {live} live services (cap {cap})")
            }
            RegistryError::NotOwner { lease } => {
                write!(f, "no such lease {lease} owned by this tenant")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The tenant ledger: lease bookkeeping + quota admission.
#[derive(Debug)]
pub struct TenantRegistry {
    leases: BTreeMap<u64, Lease>,
    next_lease: u64,
    per_tenant_cap: usize,
    capacity: usize,
}

impl TenantRegistry {
    /// A registry admitting at most `capacity` live leases overall and
    /// `per_tenant_cap` per tenant. Zero caps are honoured (everything
    /// rejects) — useful for drain mode.
    pub fn new(capacity: usize, per_tenant_cap: usize) -> Self {
        TenantRegistry {
            leases: BTreeMap::new(),
            next_lease: 1,
            per_tenant_cap,
            capacity,
        }
    }

    /// Live leases across all tenants.
    pub fn live(&self) -> usize {
        self.leases.len()
    }

    /// Live leases held by one tenant.
    pub fn live_of(&self, tenant: &str) -> usize {
        self.leases.values().filter(|l| l.tenant == tenant).count()
    }

    /// Checks quotas without admitting. `Ok` means a subsequent
    /// [`register`](Self::register) for the same tenant would currently
    /// succeed.
    pub fn admit(&self, tenant: &str) -> Result<(), RegistryError> {
        if self.leases.len() >= self.capacity {
            return Err(RegistryError::Capacity {
                live: self.leases.len(),
                cap: self.capacity,
            });
        }
        let live = self.live_of(tenant);
        if live >= self.per_tenant_cap {
            return Err(RegistryError::TenantQuota {
                tenant: tenant.to_owned(),
                live,
                cap: self.per_tenant_cap,
            });
        }
        Ok(())
    }

    /// Admits a service for `tenant`, recording the kernel `task` behind
    /// it. Returns the new lease id.
    pub fn register(&mut self, tenant: &str, kind: &str, task: u64) -> Result<u64, RegistryError> {
        self.admit(tenant)?;
        let id = self.next_lease;
        self.next_lease += 1;
        self.leases.insert(
            id,
            Lease {
                id,
                tenant: tenant.to_owned(),
                task,
                kind: kind.to_owned(),
            },
        );
        Ok(id)
    }

    /// Releases a lease, owner-checked. Returns the lease so the caller
    /// can retire its kernel task.
    pub fn release(&mut self, tenant: &str, lease: u64) -> Result<Lease, RegistryError> {
        match self.leases.get(&lease) {
            Some(l) if l.tenant == tenant => Ok(self.leases.remove(&lease).expect("just found")),
            _ => Err(RegistryError::NotOwner { lease }),
        }
    }

    /// Drops every lease a tenant holds (connection teardown), returning
    /// them for task retirement.
    pub fn release_tenant(&mut self, tenant: &str) -> Vec<Lease> {
        let ids: Vec<u64> = self
            .leases
            .values()
            .filter(|l| l.tenant == tenant)
            .map(|l| l.id)
            .collect();
        ids.iter()
            .map(|id| self.leases.remove(id).expect("just listed"))
            .collect()
    }

    /// All live leases, in lease-id order.
    pub fn leases(&self) -> impl Iterator<Item = &Lease> {
        self.leases.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_release_round_trip() {
        let mut reg = TenantRegistry::new(8, 4);
        let a = reg.register("alice", "coverage", 10).unwrap();
        let b = reg.register("alice", "link", 11).unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.live(), 2);
        assert_eq!(reg.live_of("alice"), 2);
        let lease = reg.release("alice", a).unwrap();
        assert_eq!(lease.task, 10);
        assert_eq!(lease.kind, "coverage");
        assert_eq!(reg.live(), 1);
    }

    #[test]
    fn per_tenant_quota_enforced() {
        let mut reg = TenantRegistry::new(100, 2);
        reg.register("t", "coverage", 1).unwrap();
        reg.register("t", "coverage", 2).unwrap();
        let err = reg.register("t", "coverage", 3).unwrap_err();
        assert_eq!(
            err,
            RegistryError::TenantQuota {
                tenant: "t".into(),
                live: 2,
                cap: 2
            }
        );
        // Another tenant is unaffected.
        reg.register("u", "coverage", 4).unwrap();
        // Releasing frees quota.
        let lease = reg.leases().next().unwrap().id;
        reg.release("t", lease).unwrap();
        reg.register("t", "coverage", 5).unwrap();
    }

    #[test]
    fn global_capacity_enforced() {
        let mut reg = TenantRegistry::new(2, 10);
        reg.register("a", "x", 1).unwrap();
        reg.register("b", "x", 2).unwrap();
        let err = reg.register("c", "x", 3).unwrap_err();
        assert_eq!(err, RegistryError::Capacity { live: 2, cap: 2 });
        assert!(err.to_string().contains("capacity"));
    }

    #[test]
    fn releases_are_owner_only() {
        let mut reg = TenantRegistry::new(8, 4);
        let lease = reg.register("alice", "coverage", 10).unwrap();
        assert_eq!(
            reg.release("mallory", lease),
            Err(RegistryError::NotOwner { lease })
        );
        assert_eq!(
            reg.release("alice", lease + 99),
            Err(RegistryError::NotOwner { lease: lease + 99 })
        );
        assert_eq!(reg.live(), 1);
        reg.release("alice", lease).unwrap();
    }

    #[test]
    fn tenant_teardown_drops_only_its_leases() {
        let mut reg = TenantRegistry::new(8, 4);
        reg.register("a", "coverage", 1).unwrap();
        reg.register("a", "sensing", 2).unwrap();
        reg.register("b", "coverage", 3).unwrap();
        let dropped = reg.release_tenant("a");
        let mut tasks: Vec<u64> = dropped.iter().map(|l| l.task).collect();
        tasks.sort_unstable();
        assert_eq!(tasks, vec![1, 2]);
        assert_eq!(reg.live(), 1);
        assert_eq!(reg.live_of("b"), 1);
        assert!(reg.release_tenant("a").is_empty());
    }

    #[test]
    fn zero_caps_reject_everything() {
        let mut reg = TenantRegistry::new(0, 4);
        assert!(matches!(
            reg.register("t", "x", 1),
            Err(RegistryError::Capacity { .. })
        ));
    }
}
