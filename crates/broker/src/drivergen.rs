//! Driver generation from textual datasheets (paper §3.4).
//!
//! The paper proposes LLMs that "parse and summarize long text, such as
//! datasheets or research papers, to generate surface hardware
//! specifications … then synthesize the driver code". SurfOS reproduces
//! the pipeline deterministically: a forgiving `key: value` datasheet
//! format (the artefact an LLM extraction pass would emit) is parsed into
//! a validated [`HardwareSpec`], from which a working driver is
//! instantiated. The parser is the contract; an LLM front-end would
//! produce the same intermediate text.
//!
//! Datasheet example:
//!
//! ```text
//! model: LabSurface-1
//! band: 28 GHz
//! bandwidth: 400 MHz
//! mode: reflective
//! control: phase 2bit
//! granularity: element
//! elements: 16 x 32
//! pitch: 5.3 mm
//! efficiency: 0.8
//! control-delay: 150 us
//! slots: 8
//! cost-per-element: 2.1 USD
//! base-cost: 120 USD
//! power: 400 mW
//! ```

use surfos_em::band::Band;
use surfos_hw::driver::{PassiveDriver, ProgrammableDriver};
use surfos_hw::granularity::Reconfigurability;
use surfos_hw::spec::{ControlCapability, HardwareSpec, SurfaceMode};
use surfos_hw::SurfaceDriver;

/// A datasheet parsing failure: which line and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for document-level errors).
    pub line: usize,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "datasheet line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, what: impl Into<String>) -> ParseError {
    ParseError {
        line,
        what: what.into(),
    }
}

/// Parses a quantity with a unit suffix into a base value
/// (`"28 GHz"` → 28e9, `"5.3 mm"` → 0.0053, `"150 us"` → 150e-6 s…).
fn parse_quantity(s: &str, line: usize) -> Result<f64, ParseError> {
    let s = s.trim();
    let split = s.find(|c: char| c.is_ascii_alphabetic()).unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let value: f64 = num
        .trim()
        .parse()
        .map_err(|_| err(line, format!("bad number {num:?}")))?;
    let scale = match unit.trim().to_ascii_lowercase().as_str() {
        "" => 1.0,
        "ghz" => 1e9,
        "mhz" => 1e6,
        "khz" => 1e3,
        "hz" => 1.0,
        "m" => 1.0,
        "cm" => 1e-2,
        "mm" => 1e-3,
        "s" => 1.0,
        "ms" => 1e-3,
        "us" => 1e-6,
        "w" => 1e3, // power is stored in mW
        "mw" => 1.0,
        "uw" => 1e-3,
        "usd" | "$" => 1.0,
        other => return Err(err(line, format!("unknown unit {other:?}"))),
    };
    Ok(value * scale)
}

/// Parses a datasheet into a validated hardware specification.
pub fn parse_datasheet(text: &str) -> Result<HardwareSpec, ParseError> {
    let mut model = None;
    let mut band_center = None;
    let mut bandwidth = None;
    let mut mode = None;
    let mut capabilities: Vec<ControlCapability> = Vec::new();
    let mut granularity = None;
    let mut rows_cols = None;
    let mut pitch = None;
    let mut efficiency = 0.8;
    let mut control_delay_us: Option<u64> = None;
    let mut passive = false;
    let mut slots = 1usize;
    let mut cost_per_element = 0.0;
    let mut base_cost = 0.0;
    let mut power_mw = 0.0;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| err(line_no, "expected `key: value`"))?;
        let key = key.trim().to_ascii_lowercase();
        let value = value.trim();
        match key.as_str() {
            "model" => model = Some(value.to_string()),
            "band" => band_center = Some(parse_quantity(value, line_no)?),
            "bandwidth" => bandwidth = Some(parse_quantity(value, line_no)?),
            "mode" => {
                mode = Some(match value.to_ascii_lowercase().as_str() {
                    "reflective" | "r" => SurfaceMode::Reflective,
                    "transmissive" | "t" => SurfaceMode::Transmissive,
                    "transflective" | "t&r" | "tr" => SurfaceMode::Transflective,
                    other => return Err(err(line_no, format!("unknown mode {other:?}"))),
                })
            }
            "control" => {
                let v = value.to_ascii_lowercase();
                if let Some(rest) = v.strip_prefix("phase") {
                    let bits = rest
                        .trim()
                        .trim_end_matches("bit")
                        .trim()
                        .parse::<u8>()
                        .map_err(|_| err(line_no, "phase control needs e.g. `phase 2bit`"))?;
                    capabilities.push(ControlCapability::Phase { bits });
                } else if let Some(rest) = v.strip_prefix("amplitude") {
                    let levels = rest
                        .trim()
                        .trim_end_matches("levels")
                        .trim()
                        .parse::<u8>()
                        .unwrap_or(2);
                    capabilities.push(ControlCapability::Amplitude { levels });
                } else if v.starts_with("polarization") {
                    capabilities.push(ControlCapability::Polarization);
                } else if let Some(rest) = v.strip_prefix("frequency") {
                    let range = parse_quantity(rest, line_no)?;
                    capabilities.push(ControlCapability::Frequency {
                        tunable_range_hz: range,
                    });
                } else {
                    return Err(err(line_no, format!("unknown control {value:?}")));
                }
            }
            "granularity" => {
                granularity = Some(match value.to_ascii_lowercase().as_str() {
                    "element" | "element-wise" => Reconfigurability::ElementWise,
                    "column" | "column-wise" => Reconfigurability::ColumnWise,
                    "row" | "row-wise" => Reconfigurability::RowWise,
                    "passive" | "fixed" => Reconfigurability::Passive,
                    other => return Err(err(line_no, format!("unknown granularity {other:?}"))),
                })
            }
            "elements" => {
                let (r, c) = value
                    .split_once(['x', 'X', '×'])
                    .ok_or_else(|| err(line_no, "elements needs `ROWS x COLS`"))?;
                let rows = r
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| err(line_no, "bad rows"))?;
                let cols = c
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| err(line_no, "bad cols"))?;
                rows_cols = Some((rows, cols));
            }
            "pitch" => pitch = Some(parse_quantity(value, line_no)?),
            "efficiency" => {
                efficiency = value.parse().map_err(|_| err(line_no, "bad efficiency"))?
            }
            "control-delay" => {
                if value.eq_ignore_ascii_case("none") || value.eq_ignore_ascii_case("infinite") {
                    passive = true;
                } else {
                    let seconds = parse_quantity(value, line_no)?;
                    control_delay_us = Some((seconds * 1e6).round() as u64);
                }
            }
            "slots" => slots = value.parse().map_err(|_| err(line_no, "bad slot count"))?,
            "cost-per-element" => cost_per_element = parse_quantity(value, line_no)?,
            "base-cost" => base_cost = parse_quantity(value, line_no)?,
            "power" => power_mw = parse_quantity(value, line_no)?,
            other => return Err(err(line_no, format!("unknown key {other:?}"))),
        }
    }

    let model = model.ok_or_else(|| err(0, "missing `model`"))?;
    let band_center = band_center.ok_or_else(|| err(0, "missing `band`"))?;
    let bandwidth = bandwidth.unwrap_or(band_center * 0.02);
    let (rows, cols) = rows_cols.ok_or_else(|| err(0, "missing `elements`"))?;
    let pitch_m = pitch.ok_or_else(|| err(0, "missing `pitch`"))?;
    let mode = mode.ok_or_else(|| err(0, "missing `mode`"))?;
    let granularity = granularity.unwrap_or(if passive {
        Reconfigurability::Passive
    } else {
        Reconfigurability::ElementWise
    });
    let passive = passive || granularity == Reconfigurability::Passive;

    let spec = HardwareSpec {
        model,
        band: Band::new(band_center, bandwidth),
        mode,
        capabilities,
        reconfigurability: granularity,
        rows,
        cols,
        pitch_m,
        efficiency,
        control_delay_us: if passive {
            None
        } else {
            control_delay_us.or(Some(1000))
        },
        config_slots: if passive { 1 } else { slots },
        cost_per_element_usd: cost_per_element,
        base_cost_usd: base_cost,
        power_mw: if passive { 0.0 } else { power_mw },
    };
    spec.validate().map_err(|what| err(0, what))?;
    Ok(spec)
}

/// Generates a ready-to-register driver from a datasheet — the full
/// "datasheet in, driver out" pipeline.
pub fn generate_driver(datasheet: &str) -> Result<Box<dyn SurfaceDriver>, ParseError> {
    let spec = parse_datasheet(datasheet)?;
    Ok(if spec.is_passive() {
        Box::new(PassiveDriver::new(spec))
    } else {
        Box::new(ProgrammableDriver::new(spec))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHEET: &str = "
# Example extracted by an upstream summarization pass
model: LabSurface-1
band: 28 GHz
bandwidth: 400 MHz
mode: reflective
control: phase 2bit
granularity: element
elements: 16 x 32
pitch: 5.3 mm
efficiency: 0.8
control-delay: 150 us
slots: 8
cost-per-element: 2.1 USD
base-cost: 120 USD
power: 400 mW
";

    #[test]
    fn full_datasheet_parses() {
        let spec = parse_datasheet(SHEET).expect("parse");
        assert_eq!(spec.model, "LabSurface-1");
        assert!((spec.band.center_hz - 28e9).abs() < 1.0);
        assert!((spec.band.bandwidth_hz - 400e6).abs() < 1.0);
        assert_eq!(spec.rows, 16);
        assert_eq!(spec.cols, 32);
        assert!((spec.pitch_m - 0.0053).abs() < 1e-9);
        assert_eq!(spec.phase_bits(), Some(2));
        assert_eq!(spec.control_delay_us, Some(150));
        assert_eq!(spec.config_slots, 8);
        assert!((spec.total_cost_usd() - (120.0 + 512.0 * 2.1)).abs() < 1e-6);
    }

    #[test]
    fn generated_driver_works_end_to_end() {
        let mut driver = generate_driver(SHEET).expect("driver");
        let n = driver.spec().element_count();
        driver.shift_phase(0, &vec![1.0; n], 0).unwrap();
        assert_eq!(driver.tick(1), 1); // 150 us rounds up to 1 ms
        assert_eq!(driver.realized_response().len(), n);
    }

    #[test]
    fn passive_datasheet_yields_passive_driver() {
        let sheet = "
model: CheapMirror
band: 60 GHz
mode: reflective
control: phase 2bit
granularity: passive
elements: 100 x 100
pitch: 1.25 mm
cost-per-element: 0.0001 USD
base-cost: 1 USD
";
        let mut driver = generate_driver(sheet).expect("driver");
        assert!(driver.spec().is_passive());
        let n = driver.spec().element_count();
        driver.shift_phase(0, &vec![0.5; n], 0).unwrap();
        // Passive: commits immediately, no pending writes.
        assert_eq!(driver.tick(1_000_000), 0);
        assert!(driver.stored_config(0).unwrap().is_some());
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(parse_quantity("2.4 GHz", 1).unwrap(), 2.4e9);
        assert_eq!(parse_quantity("80 MHz", 1).unwrap(), 80e6);
        assert_eq!(parse_quantity("5.3 mm", 1).unwrap(), 0.0053);
        assert_eq!(parse_quantity("2 cm", 1).unwrap(), 0.02);
        assert_eq!(parse_quantity("150 us", 1).unwrap(), 150e-6);
        assert_eq!(parse_quantity("2 ms", 1).unwrap(), 2e-3);
        assert_eq!(parse_quantity("1.5 W", 1).unwrap(), 1500.0); // mW
        assert_eq!(parse_quantity("42", 1).unwrap(), 42.0);
    }

    #[test]
    fn error_reports_line_numbers() {
        let sheet = "model: X\nband: twenty GHz\n";
        let e = parse_datasheet(sheet).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_key_rejected() {
        let e = parse_datasheet("model: X\nwarp-factor: 9\n").unwrap_err();
        assert!(e.what.contains("warp-factor"));
    }

    #[test]
    fn missing_required_fields_rejected() {
        let e = parse_datasheet("band: 28 GHz\n").unwrap_err();
        assert!(e.what.contains("model"));
        let e = parse_datasheet("model: X\nband: 28 GHz\nmode: reflective\n").unwrap_err();
        assert!(e.what.contains("elements"));
    }

    #[test]
    fn invalid_spec_rejected_at_validation() {
        // Element-wise "passive" contradiction: efficiency out of range.
        let sheet = "
model: Bad
band: 28 GHz
mode: reflective
control: phase 2bit
elements: 4 x 4
pitch: 5 mm
efficiency: 1.7
";
        let e = parse_datasheet(sheet).unwrap_err();
        assert!(e.what.contains("efficiency"));
    }

    #[test]
    fn frequency_and_polarization_controls_parse() {
        let sheet = "
model: Poly
band: 2.4 GHz
mode: transflective
control: polarization
control: frequency 5 GHz
elements: 8 x 8
pitch: 55 mm
control-delay: 2 ms
slots: 4
";
        let spec = parse_datasheet(sheet).unwrap();
        assert!(spec.supports("polarization"));
        assert!(spec.supports("frequency"));
    }
}
