//! Natural-language intent translation (paper §3.4, Figure 6).
//!
//! The paper prompts GPT-4o with "You are a programmer who writes code to
//! control metasurfaces to meet user demands… You can call the following
//! python functions…" and shows the calls it emits. SurfOS keeps that
//! architecture but makes the backend pluggable: [`IntentTranslator`] is
//! the seam an LLM client implements; [`RuleBasedTranslator`] is the
//! bundled deterministic engine (lexicon + demand presets) that reproduces
//! the Figure 6 examples offline. Swapping in a real LLM changes no
//! caller.

use crate::demand::{AppClass, AppDemand};
use crate::translate::translate_demand;
use surfos_orchestrator::service::ServiceRequest;

/// The situational context the translator grounds references in ("this
/// room", "my phone").
#[derive(Debug, Clone, PartialEq)]
pub struct IntentContext {
    /// The room the user is in.
    pub room: String,
    /// Device ids known to belong to the user, e.g.
    /// `["VR_headset", "laptop", "phone"]`.
    pub devices: Vec<String>,
    /// The serving band's width in Hz (for the SNR mapping).
    pub bandwidth_hz: f64,
}

impl IntentContext {
    /// Finds a known device whose id contains `needle` (case-insensitive).
    fn device_like(&self, needle: &str) -> Option<String> {
        let needle = needle.to_ascii_lowercase();
        self.devices
            .iter()
            .find(|d| d.to_ascii_lowercase().contains(&needle))
            .cloned()
    }
}

/// Something that turns an utterance into service calls.
///
/// `Send` is a supertrait so a boxed translator — and therefore the kernel
/// that owns it — can move onto the sharded kernel's worker threads.
pub trait IntentTranslator: Send {
    /// Translates `utterance` into service requests under `context`.
    /// An empty vector means the intent was not understood.
    fn translate(&self, utterance: &str, context: &IntentContext) -> Vec<ServiceRequest>;
}

/// The bundled deterministic translator: keyword lexicon → application
/// demands → service requests. Not a language model — a reproducible
/// stand-in that exercises the same interface and covers the paper's
/// demonstrated intents.
/// ```
/// use surfos_broker::intent::{IntentContext, IntentTranslator, RuleBasedTranslator};
///
/// let ctx = IntentContext {
///     room: "den".into(),
///     devices: vec!["laptop".into()],
///     bandwidth_hz: 400e6,
/// };
/// let calls = RuleBasedTranslator.translate("let's watch a movie", &ctx);
/// assert!(!calls.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuleBasedTranslator;

/// An activity the lexicon can spot, with its trigger words.
struct Activity {
    keywords: &'static [&'static str],
    class: AppClass,
    device_hint: &'static [&'static str],
}

const ACTIVITIES: &[Activity] = &[
    Activity {
        keywords: &["vr", "virtual reality", "ar ", "augmented"],
        class: AppClass::VrGaming,
        device_hint: &["headset", "vr"],
    },
    Activity {
        keywords: &["meeting", "call", "conference", "zoom"],
        class: AppClass::OnlineMeeting,
        device_hint: &["laptop"],
    },
    Activity {
        keywords: &["stream", "movie", "video", "watch"],
        class: AppClass::VideoStreaming,
        device_hint: &["tv", "laptop"],
    },
    Activity {
        keywords: &["download", "upload", "transfer", "backup"],
        class: AppClass::FileTransfer,
        device_hint: &["laptop"],
    },
    Activity {
        keywords: &["secure", "sensitive", "confidential", "private"],
        class: AppClass::SensitiveTransfer,
        device_hint: &["laptop"],
    },
    Activity {
        keywords: &["track", "motion", "presence", "monitor the room", "sensing"],
        class: AppClass::SmartHome,
        device_hint: &["hub", "sensor"],
    },
];

const CHARGE_WORDS: &[&str] = &["charge", "charging", "power my", "powering"];

impl IntentTranslator for RuleBasedTranslator {
    fn translate(&self, utterance: &str, context: &IntentContext) -> Vec<ServiceRequest> {
        let text = utterance.to_ascii_lowercase();
        let mut requests = Vec::new();

        for activity in ACTIVITIES {
            if activity.keywords.iter().any(|k| text.contains(k)) {
                let device = activity
                    .device_hint
                    .iter()
                    .find_map(|h| context.device_like(h))
                    .or_else(|| context.devices.first().cloned())
                    .unwrap_or_else(|| "device".to_string());
                let demand = AppDemand::preset(activity.class, device, context.room.clone());
                requests.extend(translate_demand(&demand, context.bandwidth_hz));
                break; // one primary activity per utterance
            }
        }

        if CHARGE_WORDS.iter().any(|k| text.contains(k)) {
            let device = context
                .device_like("phone")
                .or_else(|| context.devices.first().cloned())
                .unwrap_or_else(|| "device".to_string());
            requests.push(ServiceRequest::init_powering(device, 3600.0));
        }

        // Coverage intent, either explicit ("coverage", "signal") or
        // implied by a demanding activity.
        if text.contains("coverage") || text.contains("signal") || text.contains("vr") {
            requests.push(ServiceRequest::optimize_coverage(
                context.room.clone(),
                25.0,
            ));
        }

        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_orchestrator::service::ServiceKind;

    fn context() -> IntentContext {
        IntentContext {
            room: "room_id".into(),
            devices: vec!["VR_headset".into(), "laptop".into(), "phone".into()],
            bandwidth_hz: 400e6,
        }
    }

    #[test]
    fn figure6_vr_example() {
        // "I want to start VR gaming in this room." →
        // enhance_link("VR_headset", …) + enable_sensing(room, tracking) +
        // optimize_coverage(room, 25) — the paper's first example.
        let reqs =
            RuleBasedTranslator.translate("I want to start VR gaming in this room.", &context());
        let kinds: Vec<ServiceKind> = reqs.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&ServiceKind::Connectivity));
        assert!(kinds.contains(&ServiceKind::Sensing));
        assert!(kinds.contains(&ServiceKind::Coverage));
        let link = reqs
            .iter()
            .find(|r| r.kind == ServiceKind::Connectivity)
            .unwrap();
        assert_eq!(link.subject, "VR_headset");
        let cov = reqs
            .iter()
            .find(|r| r.kind == ServiceKind::Coverage)
            .unwrap();
        assert_eq!(cov.subject, "room_id");
    }

    #[test]
    fn figure6_meeting_example() {
        // "I want to have an online meeting while charging my phone." →
        // enhance_link("laptop", …) + init_powering("phone", 3600) — the
        // paper's second example (its sensing line comes from the meeting
        // room preset; we emit link + powering).
        let mut ctx = context();
        ctx.room = "meeting_room".into();
        let reqs = RuleBasedTranslator.translate(
            "I want to have an online meeting while charging my phone.",
            &ctx,
        );
        let link = reqs
            .iter()
            .find(|r| r.kind == ServiceKind::Connectivity)
            .expect("link request");
        assert_eq!(link.subject, "laptop");
        let power = reqs
            .iter()
            .find(|r| r.kind == ServiceKind::Powering)
            .expect("powering request");
        assert_eq!(power.subject, "phone");
        assert_eq!(power.duration_s, Some(3600.0));
    }

    #[test]
    fn security_intent() {
        let reqs = RuleBasedTranslator.translate(
            "I need to send a confidential report from my laptop.",
            &context(),
        );
        assert!(reqs.iter().any(|r| r.kind == ServiceKind::Security));
        let link = reqs
            .iter()
            .find(|r| r.kind == ServiceKind::Connectivity)
            .unwrap();
        assert_eq!(link.subject, "laptop");
    }

    #[test]
    fn tracking_intent() {
        let reqs = RuleBasedTranslator.translate(
            "Please monitor the room for motion while I'm away.",
            &context(),
        );
        assert!(reqs.iter().any(|r| r.kind == ServiceKind::Sensing));
    }

    #[test]
    fn gibberish_yields_nothing() {
        let reqs = RuleBasedTranslator.translate("colorless green ideas", &context());
        assert!(reqs.is_empty());
    }

    #[test]
    fn unknown_device_falls_back_gracefully() {
        let ctx = IntentContext {
            room: "lab".into(),
            devices: vec![],
            bandwidth_hz: 400e6,
        };
        let reqs = RuleBasedTranslator.translate("start a video call", &ctx);
        assert!(!reqs.is_empty());
        assert_eq!(reqs[0].subject, "device");
    }

    #[test]
    fn translator_is_object_safe() {
        let t: Box<dyn IntentTranslator> = Box::new(RuleBasedTranslator);
        assert!(!t.translate("watch a movie", &context()).is_empty());
    }
}
