//! The SurfOS operator shell: a line-oriented command interpreter over the
//! kernel, in the tradition of network-OS consoles (NOX, ONOS).
//!
//! The paper positions SurfOS as "a service from ISPs, a module of Cloud
//! RAN, or a standalone system" — all of which need an operator surface.
//! [`Shell`] is that surface: deploy hardware, register endpoints, submit
//! service requests (or plain-language intents), run the kernel clock and
//! inspect the radio environment, one command per line. The `surfosd`
//! binary wraps it over stdin or a script file.
//!
//! ```text
//! scenario apartment
//! band 28ghz
//! deploy wall0 scattermimo bedroom-north
//! ap ap0 aim bedroom-north
//! client laptop 6.5 1.5 1.2
//! say I want to watch a movie on my laptop
//! step 10 3
//! budget ap0 laptop
//! diagnose ap0 laptop
//! heatmap bedroom
//! telemetry
//! ```

use crate::kernel::SurfOS;
use surfos_channel::{diagnose_link, ChannelSim, Endpoint};
use surfos_em::band::{Band, NamedBand};
use surfos_geometry::scenario::{corridor, open_office, two_room_apartment, Scenario};
use surfos_geometry::{Pose, Vec3};
use surfos_hw::designs;
use surfos_hw::driver::{PassiveDriver, ProgrammableDriver, SurfaceDriver};

/// A shell error: which line failed and why.
#[derive(Debug, Clone, PartialEq)]
pub struct ShellError {
    /// 1-based line number in the script.
    pub line: usize,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for ShellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ShellError {}

/// The interpreter state: a scenario being assembled, then a live kernel.
pub struct Shell {
    scenario: Option<Scenario>,
    band: Band,
    os: Option<SurfOS>,
    line: usize,
    /// Baseline for the `top` command: the previous snapshot and when it
    /// was taken. `top` renders counter *rates* between two calls.
    top_baseline: Option<(std::time::Instant, surfos_obs::Snapshot)>,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

impl Shell {
    /// A fresh shell (no scenario loaded; band defaults to 28 GHz).
    pub fn new() -> Self {
        Shell {
            scenario: None,
            band: NamedBand::MmWave28GHz.band(),
            os: None,
            line: 0,
            top_baseline: None,
        }
    }

    /// Consumes the shell, yielding the kernel it built (if any command
    /// booted one). `surfosd serve` runs its `--setup` script through a
    /// shell, then lifts the kernel out to serve it over the wire.
    pub fn into_kernel(self) -> Option<SurfOS> {
        self.os
    }

    fn err(&self, what: impl Into<String>) -> ShellError {
        ShellError {
            line: self.line,
            what: what.into(),
        }
    }

    fn scenario(&self) -> Result<&Scenario, ShellError> {
        self.scenario.as_ref().ok_or_else(|| {
            self.err("no scenario loaded (use `scenario apartment|office|corridor`)")
        })
    }

    fn os_mut(&mut self) -> Result<&mut SurfOS, ShellError> {
        if self.os.is_none() {
            let scen = self.scenario()?.clone();
            let sim = ChannelSim::new(scen.plan.clone(), self.band);
            let mut os = SurfOS::new(sim);
            os.set_user_room(scen.target_room.clone());
            self.os = Some(os);
        }
        Ok(self.os.as_mut().expect("just initialized"))
    }

    fn parse_f64(&self, s: &str, what: &str) -> Result<f64, ShellError> {
        s.parse()
            .map_err(|_| self.err(format!("bad {what}: {s:?}")))
    }

    fn anchor_pose(&self, name: &str) -> Result<Pose, ShellError> {
        self.scenario()?
            .anchor(name)
            .copied()
            .ok_or_else(|| self.err(format!("unknown anchor {name:?}")))
    }

    fn parse_band(&self, spec: &str) -> Result<Band, ShellError> {
        Ok(match spec.to_lowercase().as_str() {
            "2.4ghz" => NamedBand::Ism2_4GHz.band(),
            "3.5ghz" => NamedBand::Cellular3_5GHz.band(),
            "5ghz" => NamedBand::WiFi5GHz.band(),
            "24ghz" => NamedBand::MmWave24GHz.band(),
            "28ghz" => NamedBand::MmWave28GHz.band(),
            "60ghz" => NamedBand::MmWave60GHz.band(),
            other => return Err(self.err(format!("unknown band {other:?}"))),
        })
    }

    fn design_by_name(&self, name: &str) -> Result<surfos_hw::HardwareSpec, ShellError> {
        let norm = name.to_lowercase().replace(['-', '_'], "");
        designs::all_designs()
            .into_iter()
            .find(|s| s.model.to_lowercase().replace(['-', '_'], "") == norm)
            .ok_or_else(|| self.err(format!("unknown design {name:?} (see `designs`)")))
    }

    /// Executes one command line; returns its output text (may be empty).
    pub fn execute(&mut self, input: &str) -> Result<String, ShellError> {
        self.line += 1;
        let input = input.trim();
        if input.is_empty() || input.starts_with('#') {
            return Ok(String::new());
        }
        let mut parts = input.split_whitespace();
        let cmd = parts.next().expect("non-empty");
        let args: Vec<&str> = parts.collect();

        match cmd {
            "scenario" => {
                let name = args.first().ok_or_else(|| self.err("scenario <name>"))?;
                self.scenario = Some(match *name {
                    "apartment" => two_room_apartment(),
                    "office" => open_office(),
                    "corridor" => corridor(),
                    other => return Err(self.err(format!("unknown scenario {other:?}"))),
                });
                self.os = None;
                Ok(format!("scenario {name} loaded"))
            }
            "band" => {
                let spec = args.first().ok_or_else(|| self.err("band <e.g. 28ghz>"))?;
                self.band = self.parse_band(spec)?;
                if self.os.is_some() {
                    return Err(self.err("band must be set before the first deployment"));
                }
                Ok(format!("band set to {}", self.band))
            }
            "designs" => {
                let names: Vec<String> = designs::all_designs()
                    .into_iter()
                    .map(|s| s.model)
                    .collect();
                Ok(names.join(", "))
            }
            "anchors" => {
                let names: Vec<String> = self
                    .scenario()?
                    .anchors
                    .iter()
                    .map(|(n, _)| n.clone())
                    .collect();
                Ok(names.join(", "))
            }
            "deploy" => {
                let [id, design, anchor] = args[..] else {
                    return Err(self.err("deploy <id> <design> <anchor>"));
                };
                let mut spec = self.design_by_name(design)?;
                // Retarget the design to the session band (pitch ∝ λ).
                let scale = self.band.wavelength_m() / spec.band.wavelength_m();
                spec.pitch_m *= scale;
                spec.band = self.band;
                let pose = self.anchor_pose(anchor)?;
                let driver: Box<dyn SurfaceDriver> = if spec.is_passive() {
                    Box::new(PassiveDriver::new(spec.clone()))
                } else {
                    Box::new(ProgrammableDriver::new(spec.clone()))
                };
                let idx = self.os_mut()?.deploy_surface(id, driver, pose);
                Ok(format!(
                    "deployed {id} ({}, {} elements) at {anchor} as surface {idx}",
                    spec.model,
                    spec.element_count()
                ))
            }
            "ap" => {
                let id = *args
                    .first()
                    .ok_or_else(|| self.err("ap <id> [aim <anchor>]"))?;
                let scen = self.scenario()?.clone();
                let pose = if args.len() >= 3 && args[1] == "aim" {
                    let target = self.anchor_pose(args[2])?.position;
                    Pose::wall_mounted(scen.ap_pose.position, target - scen.ap_pose.position)
                } else {
                    scen.ap_pose
                };
                self.os_mut()?
                    .add_endpoint(Endpoint::access_point(id, pose));
                Ok(format!("access point {id} registered"))
            }
            "client" | "tag" => {
                let [id, x, y, z] = args[..] else {
                    return Err(self.err(format!("{cmd} <id> <x> <y> <z>")));
                };
                let p = Vec3::new(
                    self.parse_f64(x, "x")?,
                    self.parse_f64(y, "y")?,
                    self.parse_f64(z, "z")?,
                );
                let endpoint = if cmd == "client" {
                    Endpoint::client(id, p)
                } else {
                    Endpoint::sensor_tag(id, p)
                };
                self.os_mut()?.add_endpoint(endpoint);
                Ok(format!("{cmd} {id} at {p}"))
            }
            "say" => {
                if args.is_empty() {
                    return Err(self.err("say <utterance>"));
                }
                let utterance = args.join(" ");
                let tasks = self.os_mut()?.handle_utterance(&utterance);
                if tasks.is_empty() {
                    Ok("no service invoked".into())
                } else {
                    let os = self.os.as_ref().expect("live");
                    let lines: Vec<String> = tasks
                        .iter()
                        .map(|t| {
                            let task = os.orchestrator().tasks.get(*t).expect("task");
                            format!("task {} ← {}", task.id, task.request)
                        })
                        .collect();
                    Ok(lines.join("\n"))
                }
            }
            "request" => {
                let [kind, subject, value] = args[..] else {
                    return Err(self.err(
                        "request <coverage|link|sensing|powering|protect> <subject> <value>",
                    ));
                };
                let value = self.parse_f64(value, "value")?;
                let req = match kind {
                    "coverage" => {
                        surfos_orchestrator::ServiceRequest::optimize_coverage(subject, value)
                    }
                    "link" => {
                        surfos_orchestrator::ServiceRequest::enhance_link(subject, value, 50.0)
                    }
                    "sensing" => {
                        surfos_orchestrator::ServiceRequest::enable_sensing(subject, value)
                    }
                    "powering" => {
                        surfos_orchestrator::ServiceRequest::init_powering(subject, value)
                    }
                    "protect" => surfos_orchestrator::ServiceRequest::protect_link(subject, value),
                    other => return Err(self.err(format!("unknown request kind {other:?}"))),
                };
                let id = self.os_mut()?.submit(req);
                Ok(format!("task {id} admitted"))
            }
            "step" => {
                let dt: u64 = args
                    .first()
                    .map(|s| s.parse().map_err(|_| self.err("bad dt")))
                    .transpose()?
                    .unwrap_or(10);
                let times: usize = args
                    .get(1)
                    .map(|s| s.parse().map_err(|_| self.err("bad repeat count")))
                    .transpose()?
                    .unwrap_or(1);
                let os = self.os_mut()?;
                let mut optimized = 0;
                let mut reaped = 0;
                for _ in 0..times {
                    let r = os.step(dt);
                    optimized += r.optimized_slots.len();
                    reaped += r.reaped.len();
                    if let Some((id, e)) = r.push_errors.first() {
                        return Err(ShellError {
                            line: 0,
                            what: format!("driver push failed on {id}: {e}"),
                        });
                    }
                }
                Ok(format!(
                    "stepped {times}×{dt} ms: {optimized} slot optimizations, {reaped} tasks reaped"
                ))
            }
            "measure" => {
                let id = args.first().ok_or_else(|| self.err("measure <task-id>"))?;
                let task: u64 = id.parse().map_err(|_| self.err("bad task id"))?;
                let os = self.os_mut()?;
                match os.measure(task) {
                    Some(v) => Ok(format!("task {task} metric: {v:.2}")),
                    None => Err(ShellError {
                        line: 0,
                        what: format!("task {task} not measurable"),
                    }),
                }
            }
            "budget" => {
                let [tx, rx] = args[..] else {
                    return Err(self.err("budget <tx-id> <rx-id>"));
                };
                let os = self.os_mut()?;
                let tx = os
                    .orchestrator()
                    .endpoint(tx)
                    .ok_or_else(|| ShellError {
                        line: 0,
                        what: format!("unknown endpoint {tx:?}"),
                    })?
                    .clone();
                let rx = os
                    .orchestrator()
                    .endpoint(rx)
                    .ok_or_else(|| ShellError {
                        line: 0,
                        what: format!("unknown endpoint {rx:?}"),
                    })?
                    .clone();
                let b = os.sim().link_budget(&tx, &rx);
                Ok(format!(
                    "RSS {:.1} dBm | noise {:.1} dBm | SNR {:.1} dB | capacity {:.0} Mb/s",
                    b.rss_dbm,
                    b.noise_dbm,
                    b.snr_db,
                    b.capacity_bps / 1e6
                ))
            }
            "diagnose" => {
                let [tx, rx] = args[..] else {
                    return Err(self.err("diagnose <tx-id> <rx-id>"));
                };
                let os = self.os_mut()?;
                let (Some(tx), Some(rx)) = (
                    os.orchestrator().endpoint(tx).cloned(),
                    os.orchestrator().endpoint(rx).cloned(),
                ) else {
                    return Err(ShellError {
                        line: 0,
                        what: "unknown endpoint".into(),
                    });
                };
                let d = diagnose_link(os.sim(), &tx, &rx);
                let mut out = vec![format!("total {:.1} dB", d.total_db)];
                for c in d.contributions.iter().take(5) {
                    out.push(format!(
                        "  {:<28} {:>7.1} dB rel",
                        c.mechanism, c.solo_rel_db
                    ));
                }
                Ok(out.join("\n"))
            }
            "heatmap" => {
                let room = args.first().ok_or_else(|| self.err("heatmap <room>"))?;
                let os = self.os_mut()?;
                let Some(room) = os.sim().plan.room(room).cloned() else {
                    return Err(ShellError {
                        line: 0,
                        what: format!("unknown room {room:?}"),
                    });
                };
                let grid = room.sample_grid(12, 8, 1.2, 0.3);
                let ap = os.orchestrator().ap().clone();
                let probe = Endpoint::client("probe", grid[0]);
                let map = os.sim().snr_heatmap(&ap, &grid, &probe);
                Ok(format!(
                    "{}median SNR {:.1} dB (min {:.1}, max {:.1})",
                    map.ascii(36, 10),
                    map.median(),
                    map.min(),
                    map.max()
                ))
            }
            "crossband" => {
                // §2.1 interference check: how this deployment affects a
                // *different* network's link.
                let [band, tx, rx] = args[..] else {
                    return Err(self.err("crossband <band> <tx-id> <rx-id>"));
                };
                let foreign_band = self.parse_band(band)?;
                let os = self.os_mut()?;
                let (Some(tx), Some(rx)) = (
                    os.orchestrator().endpoint(tx).cloned(),
                    os.orchestrator().endpoint(rx).cloned(),
                ) else {
                    return Err(ShellError {
                        line: 0,
                        what: "unknown endpoint".into(),
                    });
                };
                let foreign = os.foreign_band_view(foreign_band);
                let with_surfaces = foreign.rss_dbm(&tx, &rx);
                let clear = ChannelSim::new(foreign.plan.clone(), foreign_band).rss_dbm(&tx, &rx);
                Ok(format!(
                    "foreign link at {foreign_band}: {with_surfaces:.1} dBm (deployment costs it {:.2} dB)",
                    clear - with_surfaces
                ))
            }
            "autodeploy" => {
                // §5 deployment automation: cheapest single surface
                // meeting a coverage goal.
                let [room, target] = args[..] else {
                    return Err(self.err("autodeploy <room> <median-snr-db>"));
                };
                let target: f64 = target.parse().map_err(|_| self.err("bad SNR target"))?;
                let scen = self.scenario()?.clone();
                let Some(room) = scen.plan.room(room).cloned() else {
                    return Err(self.err(format!("unknown room {room:?}")));
                };
                let anchors: Vec<crate::autodeploy::Anchor> = scen
                    .anchors
                    .iter()
                    .map(|(name, pose)| crate::autodeploy::Anchor {
                        name: name.clone(),
                        pose: *pose,
                    })
                    .collect();
                // Templates: the cheapest reflective programmable design
                // retargeted to the session band, plus a printed passive.
                let mut prog = designs::scatter_mimo();
                prog.pitch_m *= self.band.wavelength_m() / prog.band.wavelength_m();
                prog.band = self.band;
                let mut passive = designs::autos_ms();
                passive.pitch_m = self.band.wavelength_m() / 2.0;
                passive.band = self.band;
                passive.rows = 16;
                passive.cols = 16;
                let goal = crate::autodeploy::CoverageGoal {
                    points: room.sample_grid(4, 4, 1.2, 0.4),
                    validation_points: Some(room.sample_grid(6, 6, 1.2, 0.4)),
                    median_snr_db: target,
                };
                match crate::autodeploy::plan_deployment(
                    &scen.plan,
                    scen.ap_pose.position,
                    &anchors,
                    &[prog, passive],
                    &goal,
                ) {
                    Some(plan) => Ok(format!(
                        "deploy {} {}×{} at {} → predicted median {:.1} dB for ${:.0}",
                        plan.spec.model,
                        plan.spec.rows,
                        plan.spec.cols,
                        plan.anchor,
                        plan.median_snr_db,
                        plan.cost_usd
                    )),
                    None => Ok("goal not reachable with a single surface ≤64×64".into()),
                }
            }
            "telemetry" => {
                let os = self.os_mut()?;
                Ok(os.telemetry().to_string())
            }
            "campus" => {
                // Campus-scale sharded kernel demo: one zone per building,
                // per-building coverage services, a street walker crossing
                // zone boundaries. Aggregates land under `kernel.shard.*`
                // when metrics are on (see `surfosd --metrics-json`).
                let buildings: usize = args
                    .first()
                    .map(|s| s.parse().map_err(|_| self.err("bad building count")))
                    .transpose()?
                    .unwrap_or(2);
                let steps: usize = args
                    .get(1)
                    .map(|s| s.parse().map_err(|_| self.err("bad step count")))
                    .transpose()?
                    .unwrap_or(2);
                if buildings == 0 || buildings > 16 {
                    return Err(self.err("campus <buildings 1..=16> [steps]"));
                }
                let demo = crate::shard::demo_campus(buildings);
                let mut kernel = demo.kernel;
                let (mut granted, mut rejected) = (0, 0);
                for _ in 0..steps {
                    let r = kernel.step(100);
                    granted += r.granted.len();
                    rejected += r.rejected.len();
                }
                // A replay window long enough for the street walker to
                // cross at least one zone boundary.
                for _ in 0..60 {
                    kernel.replay_tick(500);
                }
                let cs = kernel.cache_stats();
                Ok(format!(
                    "campus: {buildings} buildings / {} shards, {} walls\n\
                     services: {granted} granted, {rejected} rejected; {} walker handoffs\n\
                     lincache: {} hits, {} misses, {} refreshes\n\
                     {}",
                    kernel.shard_count(),
                    demo.walls,
                    kernel.handoffs(),
                    cs.hits,
                    cs.misses,
                    cs.refreshes,
                    kernel.telemetry()
                ))
            }
            "metrics" => match args.first().copied() {
                // Observability control + inspection: spans/counters are
                // only collected between `metrics on` and `metrics off`.
                Some("on") => {
                    surfos_obs::set_enabled(true);
                    Ok("metrics collection enabled".into())
                }
                Some("off") => {
                    surfos_obs::set_enabled(false);
                    Ok("metrics collection disabled".into())
                }
                Some("json") => Ok(surfos_obs::snapshot().to_json()),
                None => Ok(surfos_obs::snapshot().render()),
                Some(other) => Err(self.err(format!("metrics [on|off|json], not {other:?}"))),
            },
            "top" => {
                if !surfos_obs::enabled() {
                    return Err(self.err("metrics are off (use `metrics on` first)"));
                }
                let now = std::time::Instant::now();
                let snap = surfos_obs::snapshot();
                let out = match self.top_baseline.take() {
                    None => "top: baseline captured; run `top` again for rates".into(),
                    Some((t0, prev)) => render_top(&prev, &snap, now - t0),
                };
                self.top_baseline = Some((now, snap));
                Ok(out)
            }
            "tasks" => {
                let os = self.os_mut()?;
                let lines: Vec<String> = os
                    .orchestrator()
                    .tasks
                    .all()
                    .iter()
                    .map(|t| format!("task {} [{:?}] {}", t.id, t.state, t.request))
                    .collect();
                Ok(if lines.is_empty() {
                    "no tasks".into()
                } else {
                    lines.join("\n")
                })
            }
            "help" => Ok(
                "commands: scenario band designs anchors deploy ap client tag say \
                          request step measure budget diagnose heatmap crossband autodeploy \
                          campus telemetry metrics top tasks help"
                    .into(),
            ),
            other => Err(self.err(format!("unknown command {other:?} (try `help`)"))),
        }
    }

    /// Runs a whole script; stops at the first error.
    pub fn run_script(&mut self, script: &str) -> Result<String, ShellError> {
        let mut out = Vec::new();
        for line in script.lines() {
            let result = self.execute(line)?;
            if !result.is_empty() {
                out.push(result);
            }
        }
        Ok(out.join("\n"))
    }
}

/// Renders the `top` table: counter and span-count deltas between two
/// snapshots, as rates over the elapsed window. Labeled series
/// (`kernel.steps{shard=2}`) sort directly under their flat total, so the
/// per-shard breakdown reads as an indented group.
fn render_top(
    prev: &surfos_obs::Snapshot,
    cur: &surfos_obs::Snapshot,
    window: std::time::Duration,
) -> String {
    let secs = window.as_secs_f64().max(1e-9);
    let mut rows: Vec<(&str, u64)> = Vec::new();
    for (key, &now) in &cur.counters {
        let before = prev.counters.get(key).copied().unwrap_or(0);
        let delta = now.saturating_sub(before);
        if delta > 0 {
            rows.push((key, delta));
        }
    }
    for (key, span) in &cur.spans {
        let before = prev.spans.get(key).map(|s| s.count).unwrap_or(0);
        let delta = span.count.saturating_sub(before);
        if delta > 0 {
            rows.push((key, delta));
        }
    }
    if rows.is_empty() {
        return format!("top: no activity in the last {secs:.2}s window");
    }
    rows.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = format!(
        "top: {secs:.2}s window\n{:<44} {:>10} {:>12}",
        "key", "delta", "rate"
    );
    for (key, delta) in rows {
        // Indent labeled breakdowns under their flat total.
        let display = if surfos_obs::label_body(key).is_some() {
            format!("  {key}")
        } else {
            key.to_string()
        };
        out.push_str(&format!(
            "\n{display:<44} {delta:>10} {:>10.1}/s",
            delta as f64 / secs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "
# boot the apartment
scenario apartment
band 28ghz
deploy wall0 scattermimo bedroom-north
ap ap0 aim bedroom-north
client laptop 6.5 1.5 1.2
request coverage bedroom 25
step 10 2
budget ap0 laptop
telemetry
";

    #[test]
    fn script_runs_end_to_end() {
        let mut shell = Shell::new();
        let out = shell.run_script(SCRIPT).expect("script runs");
        assert!(out.contains("scenario apartment loaded"));
        assert!(out.contains("deployed wall0"));
        assert!(out.contains("task 0 admitted"));
        assert!(out.contains("SNR"));
        assert!(out.contains("steps=2"));
    }

    #[test]
    fn say_creates_tasks() {
        let mut shell = Shell::new();
        shell.run_script(
            "scenario apartment\ndeploy wall0 scattermimo bedroom-north\nap ap0\nclient laptop 6.5 1.5 1.2",
        )
        .unwrap();
        let out = shell
            .execute("say I want to watch a movie on my laptop")
            .unwrap();
        assert!(out.contains("enhance_link(\"laptop\""), "{out}");
    }

    #[test]
    fn diagnose_and_heatmap_render() {
        let mut shell = Shell::new();
        shell.run_script(
            "scenario apartment\ndeploy wall0 scattermimo bedroom-north\nap ap0 aim bedroom-north\nclient laptop 6.5 1.5 1.2\nrequest coverage bedroom 25\nstep 10 2",
        )
        .unwrap();
        let d = shell.execute("diagnose ap0 laptop").unwrap();
        assert!(d.contains("surface:wall0"), "{d}");
        let h = shell.execute("heatmap bedroom").unwrap();
        assert!(h.contains("median SNR"), "{h}");
    }

    #[test]
    fn campus_reports_shards_grants_and_handoffs() {
        let mut shell = Shell::new();
        let out = shell.execute("campus 2 1").unwrap();
        assert!(out.contains("2 buildings / 2 shards"), "{out}");
        assert!(out.contains("2 granted, 0 rejected"), "{out}");
        assert!(out.contains("walker handoffs"), "{out}");
        assert!(out.contains("lincache:"), "{out}");
        assert!(shell.execute("campus 0").is_err());
        assert!(shell.execute("campus nope").is_err());
    }

    #[test]
    fn errors_identify_the_line() {
        let mut shell = Shell::new();
        let err = shell
            .run_script("scenario apartment\nfrobnicate\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.what.contains("frobnicate"));
    }

    #[test]
    fn deploy_requires_scenario() {
        let mut shell = Shell::new();
        let err = shell
            .execute("deploy a scattermimo bedroom-north")
            .unwrap_err();
        assert!(err.what.contains("no scenario"));
    }

    #[test]
    fn unknown_design_and_anchor_rejected() {
        let mut shell = Shell::new();
        shell.execute("scenario apartment").unwrap();
        assert!(shell
            .execute("deploy a warpdrive bedroom-north")
            .unwrap_err()
            .what
            .contains("unknown design"));
        assert!(shell
            .execute("deploy a scattermimo garage")
            .unwrap_err()
            .what
            .contains("unknown anchor"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let mut shell = Shell::new();
        assert_eq!(shell.execute("# nothing").unwrap(), "");
        assert_eq!(shell.execute("   ").unwrap(), "");
    }

    #[test]
    fn designs_and_anchors_listing() {
        let mut shell = Shell::new();
        shell.execute("scenario apartment").unwrap();
        let d = shell.execute("designs").unwrap();
        assert!(d.contains("AutoMS") && d.contains("mmWall"));
        let a = shell.execute("anchors").unwrap();
        assert!(a.contains("bedroom-north") && a.contains("living-wall"));
    }

    #[test]
    fn band_locked_after_deployment() {
        let mut shell = Shell::new();
        shell
            .run_script("scenario apartment\ndeploy wall0 scattermimo bedroom-north")
            .unwrap();
        assert!(shell
            .execute("band 60ghz")
            .unwrap_err()
            .what
            .contains("before"));
    }

    #[test]
    fn crossband_command_reports_interference() {
        let mut shell = Shell::new();
        shell
            .run_script(
                "scenario apartment
band 2.4ghz
deploy laia0 laia living-wall
ap ap0
client laptop 3.0 3.0 1.2",
            )
            .unwrap();
        let out = shell.execute("crossband 3.5ghz ap0 laptop").unwrap();
        assert!(out.contains("deployment costs it"), "{out}");
    }

    #[test]
    fn autodeploy_command_plans() {
        let mut shell = Shell::new();
        shell.execute("scenario apartment").unwrap();
        let out = shell.execute("autodeploy bedroom 15").unwrap();
        assert!(
            out.contains("deploy ") && out.contains("bedroom-north"),
            "{out}"
        );
    }

    #[test]
    fn metrics_command_toggles_and_renders() {
        let mut shell = Shell::new();
        assert!(shell.execute("metrics on").unwrap().contains("enabled"));
        shell
            .run_script(
                "scenario apartment\ndeploy wall0 scattermimo bedroom-north\nap ap0\nclient laptop 6.5 1.5 1.2\nrequest coverage bedroom 25\nstep 10 1",
            )
            .unwrap();
        let report = shell.execute("metrics").unwrap();
        assert!(shell.execute("metrics off").unwrap().contains("disabled"));
        assert!(report.contains("kernel.steps"), "{report}");
        let json = shell.execute("metrics json").unwrap();
        assert!(json.starts_with('{'), "{json}");
        assert!(shell.execute("metrics bogus").is_err());
    }

    #[test]
    fn top_renders_labeled_rate_deltas() {
        let mut prev = surfos_obs::Snapshot::default();
        prev.counters.insert("kernel.steps".into(), 10);
        let mut cur = surfos_obs::Snapshot::default();
        cur.counters.insert("kernel.steps".into(), 30);
        cur.counters.insert("kernel.steps{shard=1}".into(), 20);
        let out = render_top(&prev, &cur, std::time::Duration::from_secs(2));
        assert!(out.contains("kernel.steps"), "{out}");
        // Labeled breakdown indents under the flat total.
        assert!(out.contains("  kernel.steps{shard=1}"), "{out}");
        assert!(out.contains("10.0/s"), "{out}");
        // Identical snapshots: nothing moved.
        let idle = render_top(&cur, &cur, std::time::Duration::from_secs(1));
        assert!(idle.contains("no activity"), "{idle}");
    }

    #[test]
    fn top_captures_baseline_then_reports() {
        let mut shell = Shell::new();
        shell.execute("metrics on").unwrap();
        let first = shell.execute("top").unwrap();
        assert!(first.contains("baseline"), "{first}");
        surfos_obs::add("shell.top.probe", 5);
        let second = shell.execute("top").unwrap();
        assert!(second.contains("shell.top.probe"), "{second}");
    }

    #[test]
    fn passive_design_deploys_too() {
        let mut shell = Shell::new();
        shell.execute("scenario apartment").unwrap();
        let out = shell.execute("deploy m automs bedroom-north").unwrap();
        assert!(out.contains("AutoMS"), "{out}");
    }
}
