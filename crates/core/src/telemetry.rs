//! Kernel telemetry: the counters an operator dashboards.

use serde::ser::SerializeStruct;

/// Monotonic counters accumulated by the kernel loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Kernel steps executed.
    pub steps: u64,
    /// Schedule frames computed.
    pub frames_scheduled: u64,
    /// Joint optimizations run.
    pub optimizations: u64,
    /// Configurations pushed to drivers.
    pub configs_pushed: u64,
    /// Bytes of configuration traffic on the control channel.
    pub wire_bytes: u64,
    /// Driver writes committed after their control delay.
    pub writes_committed: u64,
    /// Tasks completed by expiry.
    pub tasks_reaped: u64,
}

impl serde::Serialize for Telemetry {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut st = s.serialize_struct("Telemetry", 7)?;
        st.serialize_field("steps", &self.steps)?;
        st.serialize_field("frames_scheduled", &self.frames_scheduled)?;
        st.serialize_field("optimizations", &self.optimizations)?;
        st.serialize_field("configs_pushed", &self.configs_pushed)?;
        st.serialize_field("wire_bytes", &self.wire_bytes)?;
        st.serialize_field("writes_committed", &self.writes_committed)?;
        st.serialize_field("tasks_reaped", &self.tasks_reaped)?;
        st.end()
    }
}

impl std::fmt::Display for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps={} frames={} opts={} pushes={} wire={}B commits={} reaped={}",
            self.steps,
            self.frames_scheduled,
            self.optimizations,
            self.configs_pushed,
            self.wire_bytes,
            self.writes_committed,
            self.tasks_reaped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_displays() {
        let t = Telemetry::default();
        assert_eq!(t.steps, 0);
        let s = t.to_string();
        assert!(s.contains("steps=0"));
        assert!(s.contains("wire=0B"));
    }
}
