//! Kernel telemetry: the counters an operator dashboards.
//!
//! The struct, its serde impl and its registry-view constructor are all
//! generated from one field list by the private `telemetry_counters!`
//! macro, so the
//! serialized field count can never drift from the definition (the old
//! hand-written impl hard-coded `serialize_struct("Telemetry", 7)` and
//! would have silently lied the moment a field was added).
//!
//! The kernel also mirrors every increment into the `surfos-obs` registry
//! under `kernel.<field>`; [`Telemetry::from_snapshot`] reconstructs the
//! struct from a snapshot, making these counters a *view* over the
//! registry whenever observability is enabled.

use serde::ser::SerializeStruct;

/// Defines the telemetry struct plus its serde and registry-view impls
/// from a single field list.
macro_rules! telemetry_counters {
    (
        $(#[$struct_meta:meta])*
        pub struct $name:ident {
            $( $(#[$field_meta:meta])* pub $field:ident: u64, )+
        }
    ) => {
        $(#[$struct_meta])*
        pub struct $name {
            $( $(#[$field_meta])* pub $field: u64, )+
        }

        impl serde::Serialize for $name {
            fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                const FIELDS: usize = [$(stringify!($field)),+].len();
                let mut st = s.serialize_struct(stringify!($name), FIELDS)?;
                $( st.serialize_field(stringify!($field), &self.$field)?; )+
                st.end()
            }
        }

        impl $name {
            /// The serialized field count (generated, not hand-counted).
            pub const FIELD_COUNT: usize = [$(stringify!($field)),+].len();

            /// The obs-registry counter name mirroring each field, in
            /// field order.
            pub const COUNTER_NAMES: &'static [&'static str] =
                &[$( concat!("kernel.", stringify!($field)) ),+];

            /// Reconstructs the counters from an obs snapshot. Matches the
            /// struct the kernel accumulated exactly when observability was
            /// enabled for the whole run (the kernel mirrors every
            /// increment); absent counters read as zero.
            pub fn from_snapshot(snapshot: &surfos_obs::Snapshot) -> Self {
                $name {
                    $( $field: snapshot
                        .counters
                        .get(concat!("kernel.", stringify!($field)))
                        .copied()
                        .unwrap_or(0), )+
                }
            }

            /// Field-wise saturating sum — how the sharded kernel folds
            /// per-shard counters into one campus view. Generated from the
            /// same field list, so a new counter can't be missed here.
            pub fn merge(&mut self, other: &Self) {
                $( self.$field = self.$field.saturating_add(other.$field); )+
            }
        }
    };
}

telemetry_counters! {
    /// Monotonic counters accumulated by the kernel loop.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct Telemetry {
        /// Kernel steps executed.
        pub steps: u64,
        /// Schedule frames computed.
        pub frames_scheduled: u64,
        /// Joint optimizations run.
        pub optimizations: u64,
        /// Configurations pushed to drivers.
        pub configs_pushed: u64,
        /// Configuration pushes skipped because the encoded frame was
        /// identical to the last one pushed to that surface/slot.
        pub configs_skipped: u64,
        /// Bytes of configuration traffic on the control channel.
        pub wire_bytes: u64,
        /// Driver writes committed after their control delay.
        pub writes_committed: u64,
        /// Tasks completed by expiry.
        pub tasks_reaped: u64,
        /// Scene-index full rebuilds (structure mutations: walls,
        /// surfaces, band).
        pub index_rebuilds: u64,
        /// Scene-index blocker refits (walk ticks; the incremental path).
        pub index_refits: u64,
    }
}

impl std::fmt::Display for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps={} frames={} opts={} pushes={} skips={} wire={}B commits={} reaped={} rebuilds={} refits={}",
            self.steps,
            self.frames_scheduled,
            self.optimizations,
            self.configs_pushed,
            self.configs_skipped,
            self.wire_bytes,
            self.writes_committed,
            self.tasks_reaped,
            self.index_rebuilds,
            self.index_refits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_displays() {
        let t = Telemetry::default();
        assert_eq!(t.steps, 0);
        let s = t.to_string();
        assert!(s.contains("steps=0"));
        assert!(s.contains("wire=0B"));
        assert!(s.contains("skips=0"));
    }

    #[test]
    fn serialized_field_count_matches_definition() {
        // The JSON object must carry exactly FIELD_COUNT keys — the count
        // is generated, so this can only fail if serialization drops or
        // duplicates a field.
        let t = Telemetry {
            steps: 1,
            ..Default::default()
        };
        let json = surfos_obs::to_json(&t);
        let v = surfos_obs::JsonValue::parse(&json).expect("valid JSON");
        let fields = v.as_object().expect("an object");
        assert_eq!(fields.len(), Telemetry::FIELD_COUNT);
        assert_eq!(v.get("steps").and_then(|s| s.as_f64()), Some(1.0));
        assert_eq!(Telemetry::COUNTER_NAMES.len(), Telemetry::FIELD_COUNT);
        assert!(Telemetry::COUNTER_NAMES.contains(&"kernel.configs_skipped"));
    }
}
