//! The `surfosd serve` daemon: many clients, one kernel, over a wire.
//!
//! This module turns an in-process [`SurfOS`] kernel into a long-running
//! network service. Clients connect over TCP or a unix socket, speak the
//! framed protocol in [`rpc`](crate::rpc), and their requests are routed
//! through broker tenant registration
//! ([`TenantRegistry`]) and the
//! kernel's [`resource_model`](SurfOS::resource_model) admission precheck.
//! Over-demand — quota exhausted, registry at capacity, empty resource
//! grid — always answers with a structured `Rejected{reason}` response;
//! the daemon never parks a request.
//!
//! # Threading model
//!
//! One acceptor thread owns the listeners; a **bounded pool** of session
//! workers (sized by [`surfos_channel::par::configured_threads`], the same
//! `SURFOS_THREADS` discipline as the compute pools) owns the connections.
//! Each worker sweeps its shard of non-blocking connections: drain bytes
//! into a [`FrameBuf`], decode complete frames, dispatch, queue the
//! response bytes, flush. Kernel and registry state live behind one mutex
//! — the kernel is single-threaded by design, so the pool buys *I/O*
//! concurrency (thousands of idle connections are cheap) while dispatch
//! stays serialized and deterministic. An optional ticker thread drives
//! [`SurfOS::step`] so registered services actually get scheduled and
//! optimized while the daemon serves.
//!
//! # Tenancy
//!
//! Every connection gets a tenant id: `conn-N` by default, or the name
//! claimed in the first request's `tenant` field. Auto tenants are torn
//! down on disconnect (their leases released, backing tasks retired);
//! *claimed* tenants outlive their connections, so a client can reconnect
//! and release its leases by id.

use crate::rpc::frame::{write_frame, FrameBuf};
use crate::rpc::proto::{ProtoError, Request, RequestEnvelope, Response, PROTOCOL_VERSION};
use crate::SurfOS;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use surfos_broker::registry::TenantRegistry;
use surfos_obs as obs;
use surfos_orchestrator::task::{TaskId, TaskState};
use surfos_orchestrator::ServiceRequest;

/// How the daemon listens and admits.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP listen address (e.g. `"127.0.0.1:7464"`, port `0` for an
    /// ephemeral port). `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix socket path. `None` disables the unix listener. A stale
    /// socket file at the path is removed on start.
    pub unix: Option<PathBuf>,
    /// Session worker threads; `0` means the `channel::par` discipline
    /// (`SURFOS_THREADS`, else available parallelism), capped at 8.
    pub workers: usize,
    /// Maximum simultaneously-open connections. Connections beyond the
    /// cap are answered with one `Rejected` frame and closed — never left
    /// hanging in the accept queue.
    pub max_conns: usize,
    /// Kernel heartbeat period. Every `tick_ms` of wall time the daemon
    /// steps the kernel by `tick_ms` of simulation time, scheduling and
    /// optimizing admitted services. `0` disables the ticker — the kernel
    /// only admits (deterministic mode for recorded runs).
    pub tick_ms: u64,
    /// Global live-lease capacity across all tenants.
    pub capacity: usize,
    /// Live-lease cap per tenant.
    pub per_tenant: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
            workers: 0,
            max_conns: 4096,
            tick_ms: 0,
            capacity: 256,
            per_tenant: 16,
        }
    }
}

/// The request broker: kernel + tenant ledger + dispatch. Public so the
/// loopback tests and benches can drive admission without sockets.
pub struct Dispatcher {
    kernel: SurfOS,
    registry: TenantRegistry,
}

impl Dispatcher {
    /// Wraps a kernel with a tenant ledger sized by `opts`.
    pub fn new(kernel: SurfOS, opts: &ServeOptions) -> Self {
        Dispatcher {
            kernel,
            registry: TenantRegistry::new(opts.capacity, opts.per_tenant),
        }
    }

    /// The kernel being served.
    pub fn kernel(&self) -> &SurfOS {
        &self.kernel
    }

    /// Mutable kernel access (the ticker steps through this).
    pub fn kernel_mut(&mut self) -> &mut SurfOS {
        &mut self.kernel
    }

    /// Serves one request for `tenant`. Infallible by construction: every
    /// failure mode maps to a `Rejected` (admission) or `Error` (caller
    /// mistake) response.
    pub fn dispatch(&mut self, tenant: &str, request: &Request) -> Response {
        match request {
            Request::Ping => Response::Pong {
                version: PROTOCOL_VERSION,
                tenant: tenant.to_owned(),
            },
            Request::RegisterService {
                kind,
                subject,
                value,
            } => self.register(tenant, kind, subject, *value),
            Request::ReleaseService { service } => match self.registry.release(tenant, *service) {
                Ok(lease) => {
                    self.retire(lease.task);
                    Response::Released { service: *service }
                }
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::SubmitIntent { utterance } => self.intent(tenant, utterance),
            Request::QueryChannel { tx, rx } => self.query(tx, rx),
            Request::Metrics { deterministic } => {
                let snap = obs::snapshot();
                Response::Metrics {
                    json: if *deterministic {
                        snap.deterministic_json()
                    } else {
                        snap.to_json()
                    },
                }
            }
        }
    }

    /// The resource-grid precheck shared by register and intent: a grid
    /// with no surfaces or no slots can never run a task, so reject now
    /// rather than queue forever (mirrors `ShardedKernel::submit_service`).
    fn grid_reject(&self) -> Option<Response> {
        let model = self.kernel.resource_model();
        if model.surfaces == 0 {
            return Some(Response::Rejected {
                reason: "no surfaces deployed: the resource grid is empty".into(),
            });
        }
        if model.slots_per_frame == 0 {
            return Some(Response::Rejected {
                reason: "scheduler frame has zero slots".into(),
            });
        }
        None
    }

    fn register(&mut self, tenant: &str, kind: &str, subject: &str, value: f64) -> Response {
        if let Some(reject) = self.grid_reject() {
            return reject;
        }
        if let Err(e) = self.registry.admit(tenant) {
            return Response::Rejected {
                reason: e.to_string(),
            };
        }
        let Some(request) = service_request(kind, subject, value) else {
            return Response::Error {
                message: format!(
                    "unknown service kind {kind:?} (coverage|link|sensing|powering|protect)"
                ),
            };
        };
        let task = self.kernel.submit(request);
        match self.registry.register(tenant, kind, task) {
            Ok(service) => Response::Registered { service, task },
            // admit() passed above; a race is impossible under the state
            // mutex, but fail closed: retire the freshly admitted task.
            Err(e) => {
                self.retire(task);
                Response::Rejected {
                    reason: e.to_string(),
                }
            }
        }
    }

    fn intent(&mut self, tenant: &str, utterance: &str) -> Response {
        if let Some(reject) = self.grid_reject() {
            return reject;
        }
        if let Err(e) = self.registry.admit(tenant) {
            return Response::Rejected {
                reason: e.to_string(),
            };
        }
        let mut admitted = Vec::new();
        for task in self.kernel.handle_utterance(utterance) {
            match self.registry.register(tenant, "intent", task) {
                Ok(_) => admitted.push(task),
                // Quota ran out mid-intent: the overflow tasks are
                // retired, the admitted prefix stands.
                Err(_) => self.retire(task),
            }
        }
        Response::IntentTasks { tasks: admitted }
    }

    fn query(&mut self, tx: &str, rx: &str) -> Response {
        let orch = self.kernel.orchestrator();
        let (Some(tx_ep), Some(rx_ep)) = (orch.endpoint(tx), orch.endpoint(rx)) else {
            let missing = if orch.endpoint(tx).is_none() { tx } else { rx };
            return Response::Error {
                message: format!("unknown endpoint {missing:?}"),
            };
        };
        let budget = self.kernel.sim().link_budget(tx_ep, rx_ep);
        Response::Channel {
            rss_dbm: budget.rss_dbm,
            snr_db: budget.snr_db,
            capacity_bps: budget.capacity_bps,
        }
    }

    /// Retires the kernel task behind a released lease, following the
    /// release discipline of the sharded kernel: running tasks go idle
    /// first (freeing their slices), pending tasks fail.
    fn retire(&mut self, task: TaskId) {
        let orch = self.kernel.orchestrator_mut();
        match orch.tasks.get(task).map(|t| t.state) {
            Some(TaskState::Running) => {
                orch.set_idle(task);
                orch.tasks.set_state(task, TaskState::Completed);
            }
            Some(TaskState::Idle) => orch.tasks.set_state(task, TaskState::Completed),
            Some(TaskState::Pending) => orch.tasks.set_state(task, TaskState::Failed),
            // Completed/Failed (reaped by expiry) or unknown: nothing to do.
            _ => {}
        }
    }

    /// Tears down an auto-assigned tenant on disconnect: every lease it
    /// holds is released and its backing task retired.
    fn teardown(&mut self, tenant: &str) {
        for lease in self.registry.release_tenant(tenant) {
            self.retire(lease.task);
        }
    }
}

/// The quickstart kernel `surfosd serve` boots when no `--setup` script
/// is given: the two-room apartment with one programmable surface on the
/// bedroom wall, an access point (`ap0`) and a client (`laptop`) — the
/// same scene as the crate-level doctest, ready to take registrations,
/// intents and channel queries out of the box.
pub fn demo_kernel() -> SurfOS {
    use surfos_channel::{ChannelSim, Endpoint};
    let scen = surfos_geometry::scenario::two_room_apartment();
    let sim = ChannelSim::new(
        scen.plan.clone(),
        surfos_em::band::NamedBand::MmWave28GHz.band(),
    );
    let mut os = SurfOS::new(sim);
    let pose = *scen.anchor("bedroom-north").expect("scenario anchor");
    os.deploy_surface(
        "wall0",
        Box::new(surfos_hw::ProgrammableDriver::new(
            surfos_hw::designs::nr_surface(),
        )),
        pose,
    );
    os.add_endpoint(Endpoint::access_point("ap0", scen.ap_pose));
    os.add_endpoint(Endpoint::client(
        "laptop",
        surfos_geometry::Vec3::new(6.5, 1.5, 1.2),
    ));
    os.set_user_room(scen.target_room.clone());
    os
}

/// Maps the wire `kind` vocabulary onto [`ServiceRequest`] constructors —
/// the same five classes as the shell's `request` command.
fn service_request(kind: &str, subject: &str, value: f64) -> Option<ServiceRequest> {
    Some(match kind {
        "coverage" => ServiceRequest::optimize_coverage(subject, value),
        "link" => ServiceRequest::enhance_link(subject, value, 50.0),
        "sensing" => ServiceRequest::enable_sensing(subject, value),
        "powering" => ServiceRequest::init_powering(subject, value),
        "protect" => ServiceRequest::protect_link(subject, value),
        _ => return None,
    })
}

/// One live connection, TCP or unix.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nb),
            Conn::Unix(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Per-connection session state owned by one worker.
struct Session {
    conn: Conn,
    inbuf: FrameBuf,
    /// Encoded response bytes not yet accepted by the socket.
    outbuf: Vec<u8>,
    out_pos: usize,
    tenant: String,
    /// False until the first request; that request's `tenant` claim (if
    /// any) rebinds the session.
    bound: bool,
    /// True for `conn-N` tenants, whose leases die with the connection.
    auto_tenant: bool,
    closing: bool,
}

/// Bytes drained per session per sweep — bounds one client's buffered
/// demand without starving its neighbours on the same worker.
const READ_QUANTUM: usize = 64 * 1024;

impl Session {
    fn new(conn: Conn, id: u64) -> Self {
        Session {
            conn,
            inbuf: FrameBuf::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            tenant: format!("conn-{id}"),
            bound: false,
            auto_tenant: true,
            closing: false,
        }
    }

    fn queue(&mut self, body: &str) {
        write_frame(&mut self.outbuf, body).expect("Vec write is infallible");
    }

    /// Pushes queued bytes into the socket; returns false on a dead peer.
    fn flush(&mut self) -> bool {
        while self.out_pos < self.outbuf.len() {
            match self.conn.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.out_pos == self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        }
        true
    }

    fn flushed(&self) -> bool {
        self.out_pos == self.outbuf.len()
    }
}

/// A running daemon. Dropping it (or calling [`stop`](Server::stop))
/// shuts the listeners, closes every session and joins the threads.
pub struct Server {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    live: Arc<AtomicUsize>,
}

impl Server {
    /// Boots the daemon around `kernel`.
    ///
    /// Binds the listeners (so a `port 0` request has its real port in
    /// [`tcp_addr`](Server::tcp_addr) when this returns), then spawns the
    /// acceptor, the session workers and (if `tick_ms > 0`) the kernel
    /// ticker.
    pub fn start(kernel: SurfOS, opts: ServeOptions) -> io::Result<Server> {
        let tcp = match &opts.tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;
        let unix = match &opts.unix {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };

        let state = Arc::new(Mutex::new(Dispatcher::new(kernel, &opts)));
        let stop = Arc::new(AtomicBool::new(false));
        let inbox: Arc<Mutex<VecDeque<Session>>> = Arc::new(Mutex::new(VecDeque::new()));
        let live = Arc::new(AtomicUsize::new(0));
        let workers = if opts.workers > 0 {
            opts.workers
        } else {
            surfos_channel::par::configured_threads().min(8)
        };

        let mut handles = Vec::new();
        {
            let (stop, inbox, live) = (stop.clone(), inbox.clone(), live.clone());
            let max_conns = opts.max_conns;
            handles.push(
                std::thread::Builder::new()
                    .name("rpc-accept".into())
                    .spawn(move || accept_loop(tcp, unix, &stop, &inbox, &live, max_conns))
                    .expect("spawn acceptor"),
            );
        }
        for w in 0..workers {
            let (stop, inbox, live, state) =
                (stop.clone(), inbox.clone(), live.clone(), state.clone());
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rpc-worker-{w}"))
                    .spawn(move || worker_loop(&stop, &inbox, &live, &state, workers))
                    .expect("spawn worker"),
            );
        }
        if opts.tick_ms > 0 {
            let (stop, state) = (stop.clone(), state.clone());
            let tick = Duration::from_millis(opts.tick_ms);
            let dt = opts.tick_ms;
            handles.push(
                std::thread::Builder::new()
                    .name("rpc-ticker".into())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            std::thread::sleep(tick);
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let _span = obs::span!("daemon.tick");
                            state.lock().expect("state lock").kernel_mut().step(dt);
                        }
                    })
                    .expect("spawn ticker"),
            );
        }

        Ok(Server {
            stop,
            handles,
            tcp_addr,
            unix_path: opts.unix,
            live,
        })
    }

    /// The bound TCP address (the real port when `0` was requested).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The unix socket path, if one is being served.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// Connections currently open.
    pub fn live_conns(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Stops the daemon: listeners close, every session is dropped,
    /// threads join, the unix socket file is removed.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How long idle loops sleep between sweeps. Short enough that a request
/// round-trip stays well under a millisecond of added latency.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

fn accept_loop(
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    stop: &AtomicBool,
    inbox: &Mutex<VecDeque<Session>>,
    live: &AtomicUsize,
    max_conns: usize,
) {
    let mut conn_seq: u64 = 0;
    while !stop.load(Ordering::Relaxed) {
        let mut accepted = false;
        let mut incoming: Vec<Conn> = Vec::new();
        if let Some(l) = &tcp {
            while let Ok((s, _)) = l.accept() {
                incoming.push(Conn::Tcp(s));
            }
        }
        if let Some(l) = &unix {
            while let Ok((s, _)) = l.accept() {
                incoming.push(Conn::Unix(s));
            }
        }
        for mut conn in incoming {
            accepted = true;
            if live.load(Ordering::Relaxed) >= max_conns {
                // Over the connection cap: structured rejection, then
                // close. The peer gets an answer, not a hang.
                obs::add("rpc.conns.over_capacity", 1);
                let body = Response::Rejected {
                    reason: format!("connection limit reached ({max_conns})"),
                }
                .encode(0);
                let _ = write_frame(&mut conn, &body);
                continue;
            }
            if conn.set_nonblocking(true).is_err() {
                continue;
            }
            conn_seq += 1;
            live.fetch_add(1, Ordering::Relaxed);
            obs::add("rpc.conns.opened", 1);
            obs::gauge("rpc.conns.live", live.load(Ordering::Relaxed) as f64);
            inbox
                .lock()
                .expect("inbox lock")
                .push_back(Session::new(conn, conn_seq));
        }
        if !accepted {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

fn worker_loop(
    stop: &AtomicBool,
    inbox: &Mutex<VecDeque<Session>>,
    live: &AtomicUsize,
    state: &Mutex<Dispatcher>,
    workers: usize,
) {
    let mut sessions: Vec<Session> = Vec::new();
    let mut scratch = [0u8; 4096];
    while !stop.load(Ordering::Relaxed) {
        // Adopt a fair share of newly accepted connections.
        {
            let mut q = inbox.lock().expect("inbox lock");
            let take = q.len().div_ceil(workers).min(q.len());
            for _ in 0..take {
                sessions.push(q.pop_front().expect("len checked"));
            }
        }

        let mut active = false;
        for s in &mut sessions {
            active |= sweep_session(s, state, &mut scratch);
        }

        // Drop closed sessions, tearing down their auto tenants.
        let before = sessions.len();
        let mut dead = Vec::new();
        sessions.retain_mut(|s| {
            if s.closing && s.flushed() {
                dead.push((s.tenant.clone(), s.auto_tenant));
                false
            } else {
                true
            }
        });
        if before != sessions.len() {
            live.fetch_sub(before - sessions.len(), Ordering::Relaxed);
            obs::add("rpc.conns.closed", (before - sessions.len()) as u64);
            obs::gauge("rpc.conns.live", live.load(Ordering::Relaxed) as f64);
            let mut st = state.lock().expect("state lock");
            for (tenant, auto) in dead {
                if auto {
                    st.teardown(&tenant);
                }
            }
        }

        if !active {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// One sweep over one session: drain readable bytes, serve every complete
/// frame, flush. Returns true if any bytes moved (the worker skips its
/// idle sleep).
fn sweep_session(s: &mut Session, state: &Mutex<Dispatcher>, scratch: &mut [u8]) -> bool {
    let mut moved = false;
    if !s.closing {
        let mut drained = 0;
        loop {
            match s.conn.read(scratch) {
                Ok(0) => {
                    s.closing = true;
                    break;
                }
                Ok(n) => {
                    moved = true;
                    s.inbuf.extend(&scratch[..n]);
                    drained += n;
                    if drained >= READ_QUANTUM {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    s.closing = true;
                    break;
                }
            }
        }
    }

    // A mid-frame disconnect (EOF with bytes still pending in the frame
    // buffer) is simply dropped: there is no complete request to serve
    // and nobody left to answer.
    loop {
        match s.inbuf.next_frame() {
            Ok(Some(body)) => {
                moved = true;
                serve_frame(s, state, &body);
            }
            Ok(None) => break,
            // Framing is unrecoverable (we cannot resync a byte stream
            // with a hostile length prefix): answer once, then close.
            Err(e) => {
                obs::add("rpc.frame_errors", 1);
                let body = Response::Error {
                    message: format!("framing error: {e}"),
                }
                .encode(0);
                s.queue(&body);
                s.closing = true;
                break;
            }
        }
    }

    if !s.flush() {
        s.closing = true;
        s.outbuf.clear();
        s.out_pos = 0;
    }
    moved
}

/// Decodes one frame body, binds the session tenant, dispatches, queues
/// the response.
fn serve_frame(s: &mut Session, state: &Mutex<Dispatcher>, body: &str) {
    let t0 = Instant::now();
    let (id, op, response) = match RequestEnvelope::decode(body) {
        Ok(env) => {
            if !s.bound {
                if let Some(claim) = &env.tenant {
                    s.tenant = claim.clone();
                    s.auto_tenant = false;
                }
                s.bound = true;
            }
            let response = state
                .lock()
                .expect("state lock")
                .dispatch(&s.tenant, &env.request);
            (env.id, env.request.op(), response)
        }
        Err(ProtoError(message)) => (0, "invalid", Response::Error { message }),
    };
    let _op_label = obs::scoped(&[("op", op)]);
    obs::observe_ns("rpc.request_ns", t0.elapsed().as_nanos() as u64);
    obs::add("rpc.requests", 1);
    match &response {
        Response::Rejected { .. } => obs::add("rpc.rejected", 1),
        Response::Error { .. } => obs::add("rpc.errors", 1),
        _ => {}
    }
    s.queue(&response.encode(id));
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_channel::ChannelSim;
    use surfos_em::band::NamedBand;
    use surfos_geometry::scenario::two_room_apartment;

    fn kernel() -> SurfOS {
        demo_kernel()
    }

    fn dispatcher(capacity: usize, per_tenant: usize) -> Dispatcher {
        let opts = ServeOptions {
            capacity,
            per_tenant,
            ..ServeOptions::default()
        };
        Dispatcher::new(kernel(), &opts)
    }

    #[test]
    fn ping_echoes_tenant_and_version() {
        let mut d = dispatcher(8, 4);
        let resp = d.dispatch("conn-1", &Request::Ping);
        assert_eq!(
            resp,
            Response::Pong {
                version: PROTOCOL_VERSION,
                tenant: "conn-1".into()
            }
        );
    }

    #[test]
    fn register_then_release_round_trips_through_the_kernel() {
        let mut d = dispatcher(8, 4);
        let resp = d.dispatch(
            "t",
            &Request::RegisterService {
                kind: "coverage".into(),
                subject: "bedroom".into(),
                value: 25.0,
            },
        );
        let Response::Registered { service, task } = resp else {
            panic!("expected Registered, got {resp:?}");
        };
        assert!(d.kernel().orchestrator().tasks.get(task).is_some());
        let resp = d.dispatch("t", &Request::ReleaseService { service });
        assert_eq!(resp, Response::Released { service });
        // The backing task was retired, not left pending.
        let state = d.kernel().orchestrator().tasks.get(task).unwrap().state;
        assert!(matches!(state, TaskState::Failed | TaskState::Completed));
    }

    #[test]
    fn quota_exhaustion_rejects_with_reason() {
        let mut d = dispatcher(64, 2);
        let req = Request::RegisterService {
            kind: "coverage".into(),
            subject: "bedroom".into(),
            value: 25.0,
        };
        assert!(matches!(d.dispatch("t", &req), Response::Registered { .. }));
        assert!(matches!(d.dispatch("t", &req), Response::Registered { .. }));
        let Response::Rejected { reason } = d.dispatch("t", &req) else {
            panic!("third registration should exceed the per-tenant cap");
        };
        assert!(reason.contains("quota"), "{reason}");
        // A different tenant still gets in.
        assert!(matches!(d.dispatch("u", &req), Response::Registered { .. }));
    }

    #[test]
    fn empty_grid_rejects_instead_of_queueing() {
        let scen = two_room_apartment();
        let sim = ChannelSim::new(scen.plan.clone(), NamedBand::MmWave28GHz.band());
        let mut d = Dispatcher::new(SurfOS::new(sim), &ServeOptions::default());
        let Response::Rejected { reason } = d.dispatch(
            "t",
            &Request::RegisterService {
                kind: "coverage".into(),
                subject: "bedroom".into(),
                value: 25.0,
            },
        ) else {
            panic!("no surfaces deployed: must reject");
        };
        assert!(reason.contains("no surfaces"), "{reason}");
    }

    #[test]
    fn unknown_kind_and_endpoint_are_errors_not_rejections() {
        let mut d = dispatcher(8, 4);
        let resp = d.dispatch(
            "t",
            &Request::RegisterService {
                kind: "teleport".into(),
                subject: "bedroom".into(),
                value: 1.0,
            },
        );
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
        let resp = d.dispatch(
            "t",
            &Request::QueryChannel {
                tx: "ap0".into(),
                rx: "ghost".into(),
            },
        );
        let Response::Error { message } = resp else {
            panic!("unknown endpoint must be an error");
        };
        assert!(message.contains("ghost"), "{message}");
    }

    #[test]
    fn query_channel_reports_a_live_link_budget() {
        let mut d = dispatcher(8, 4);
        let resp = d.dispatch(
            "t",
            &Request::QueryChannel {
                tx: "ap0".into(),
                rx: "laptop".into(),
            },
        );
        let Response::Channel {
            rss_dbm,
            snr_db,
            capacity_bps,
        } = resp
        else {
            panic!("expected Channel");
        };
        assert!(rss_dbm.is_finite() && rss_dbm < 0.0);
        assert!(snr_db.is_finite());
        assert!(capacity_bps >= 0.0);
    }

    #[test]
    fn intent_registers_leases_up_to_quota() {
        let mut d = dispatcher(64, 1);
        let resp = d.dispatch(
            "t",
            &Request::SubmitIntent {
                utterance: "I want to watch a movie on my laptop".into(),
            },
        );
        let Response::IntentTasks { tasks } = resp else {
            panic!("expected IntentTasks");
        };
        // per-tenant cap is 1: exactly one lease admitted regardless of
        // how many tasks the utterance grounded into.
        assert_eq!(tasks.len().min(1), tasks.len());
        assert_eq!(d.registry.live_of("t"), tasks.len());
    }

    #[test]
    fn teardown_releases_auto_tenant_leases() {
        let mut d = dispatcher(8, 4);
        let Response::Registered { task, .. } = d.dispatch(
            "conn-1",
            &Request::RegisterService {
                kind: "coverage".into(),
                subject: "bedroom".into(),
                value: 25.0,
            },
        ) else {
            panic!("expected Registered");
        };
        assert_eq!(d.registry.live(), 1);
        d.teardown("conn-1");
        assert_eq!(d.registry.live(), 0);
        let state = d.kernel().orchestrator().tasks.get(task).unwrap().state;
        assert!(matches!(state, TaskState::Failed | TaskState::Completed));
    }

    #[test]
    fn metrics_payload_is_parseable_json() {
        let mut d = dispatcher(8, 4);
        let Response::Metrics { json } = d.dispatch(
            "t",
            &Request::Metrics {
                deterministic: true,
            },
        ) else {
            panic!("expected Metrics");
        };
        surfos_obs::JsonValue::parse(&json).expect("metrics must parse");
    }
}
