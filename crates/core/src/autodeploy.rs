//! Deployment automation (paper §5, "New hardware design and deployment").
//!
//! "Deployment automation involves running the simulator to model the
//! environment and optimize for placement as part of the surface hardware
//! configurations." Given the feasible mounting anchors, a set of design
//! templates and a coverage goal, [`plan_deployment`] searches
//! (anchor × design × size) for the cheapest single-surface deployment
//! that meets the goal — the compile-a-goal-into-hardware step the
//! paper's abstraction layers make possible.

use surfos_channel::{ChannelSim, Endpoint, OperationMode, SurfaceInstance};
use surfos_em::array::ArrayGeometry;
use surfos_em::complex::Complex;
use surfos_geometry::{FloorPlan, Pose, Vec3};
use surfos_hw::cost::scaled;
use surfos_hw::granularity::Reconfigurability;
use surfos_hw::spec::{HardwareSpec, SurfaceMode};
use surfos_orchestrator::objective::CoverageObjective;
use surfos_orchestrator::optimizer::{adam, AdamOptions, Tying};

/// The goal a deployment must meet.
#[derive(Debug, Clone)]
pub struct CoverageGoal {
    /// Points the configuration is optimized over.
    pub points: Vec<Vec3>,
    /// Held-out points the achieved median is *validated* on. With few
    /// optimization points and many elements, a static configuration can
    /// multi-beam exactly onto the optimization grid and look far better
    /// than it is everywhere else — validation on a denser grid catches
    /// that. `None` validates on the optimization points.
    pub validation_points: Option<Vec<Vec3>>,
    /// Required median SNR in dB.
    pub median_snr_db: f64,
}

impl CoverageGoal {
    fn validation(&self) -> &[Vec3] {
        self.validation_points.as_deref().unwrap_or(&self.points)
    }
}

/// One candidate mounting spot.
#[derive(Debug, Clone)]
pub struct Anchor {
    /// Name for reporting.
    pub name: String,
    /// Mounting pose.
    pub pose: Pose,
}

/// The chosen deployment.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    /// Chosen anchor name.
    pub anchor: String,
    /// The sized design to install there.
    pub spec: HardwareSpec,
    /// Predicted median SNR at the goal points.
    pub median_snr_db: f64,
    /// Hardware cost in USD.
    pub cost_usd: f64,
}

/// Optimizer iterations used when evaluating a static (passive) pattern.
const STATIC_ITERS: usize = 80;
/// The size ladder searched per (anchor, template).
const SIZE_LADDER: [usize; 6] = [8, 16, 24, 32, 48, 64];

fn mode_of(spec: &HardwareSpec) -> OperationMode {
    match spec.mode {
        SurfaceMode::Reflective => OperationMode::Reflective,
        SurfaceMode::Transmissive => OperationMode::Transmissive,
        SurfaceMode::Transflective => OperationMode::Transflective,
    }
}

/// Median SNR a sized design achieves at an anchor for a *coverage* goal:
/// one configuration optimized for the whole goal region — the same
/// semantics the kernel's coverage service realizes — constrained to the
/// design's control granularity and quantization.
fn achieved_median(
    plan: &FloorPlan,
    ap_position: Vec3,
    anchor: &Anchor,
    spec: &HardwareSpec,
    goal: &CoverageGoal,
) -> f64 {
    let mut sim = ChannelSim::new(plan.clone(), spec.band);
    let geometry = ArrayGeometry::new(spec.rows, spec.cols, spec.pitch_m, spec.pitch_m);
    let idx = sim.add_surface(
        SurfaceInstance::new("cand", anchor.pose, geometry, mode_of(spec))
            .with_efficiency(spec.efficiency),
    );
    let ap = Endpoint::access_point(
        "ap",
        Pose::wall_mounted(ap_position, anchor.pose.position - ap_position),
    );
    let probe = Endpoint::client("probe", goal.points[0]);
    let bits = spec.phase_bits().unwrap_or(2);
    let n = spec.element_count();

    // The search must predict what the *hardware* will realize, not what
    // the optimizer wishes: granularity tying and quantization included.
    let mut tying = Tying::element_wise(1);
    match spec.reconfigurability {
        Reconfigurability::ColumnWise => tying.tie_columns(0, spec.rows, spec.cols),
        Reconfigurability::RowWise => tying.tie_rows(0, spec.rows, spec.cols),
        Reconfigurability::ElementWise | Reconfigurability::Passive => {}
    }
    let objective = CoverageObjective::new(&sim, &ap, &goal.points, &probe);
    let result = adam(
        &objective,
        &[vec![0.0; n]],
        &tying,
        AdamOptions {
            iters: STATIC_ITERS,
            lr: 0.15,
            ..Default::default()
        },
    );
    let realized: Vec<f64> =
        spec.reconfigurability
            .project_phases(&result.phases[0], spec.rows, spec.cols, bits);
    sim.set_surface_phases(idx, &realized);
    let validation = CoverageObjective::new(&sim, &ap, goal.validation(), &probe);
    let responses: Vec<Vec<Complex>> = vec![sim.surfaces()[idx].response().to_vec()];
    validation.median_snr_db(&responses)
}

/// Searches for the cheapest deployment meeting the goal.
///
/// Returns `None` when no (anchor, template, size ≤ 64×64) combination
/// reaches the target — the goal needs multi-surface deployment or better
/// anchors, which the caller decides.
pub fn plan_deployment(
    plan: &FloorPlan,
    ap_position: Vec3,
    anchors: &[Anchor],
    templates: &[HardwareSpec],
    goal: &CoverageGoal,
) -> Option<DeploymentPlan> {
    assert!(!anchors.is_empty(), "need at least one anchor");
    assert!(!templates.is_empty(), "need at least one design template");
    assert!(!goal.points.is_empty(), "goal needs evaluation points");

    let mut best: Option<DeploymentPlan> = None;
    for anchor in anchors {
        for template in templates {
            for &n in &SIZE_LADDER {
                let spec = scaled(template, n, n);
                let cost = spec.total_cost_usd();
                if let Some(b) = &best {
                    if cost >= b.cost_usd {
                        continue; // cannot improve even if it meets the goal
                    }
                }
                let median = achieved_median(plan, ap_position, anchor, &spec, goal);
                if median >= goal.median_snr_db {
                    best = Some(DeploymentPlan {
                        anchor: anchor.name.clone(),
                        spec,
                        median_snr_db: median,
                        cost_usd: cost,
                    });
                    break; // larger sizes of this template only cost more
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_em::band::NamedBand;
    use surfos_geometry::scenario::two_room_apartment;
    use surfos_hw::designs;
    use surfos_hw::granularity::Reconfigurability;
    use surfos_hw::spec::ControlCapability;

    fn templates() -> Vec<HardwareSpec> {
        // A programmable and a passive 28 GHz template.
        let band = NamedBand::MmWave28GHz.band();
        let mut prog = designs::scatter_mimo();
        prog.band = band;
        prog.pitch_m = band.wavelength_m() / 2.0;
        let passive = HardwareSpec {
            model: "Passive28".into(),
            band,
            mode: SurfaceMode::Reflective,
            capabilities: vec![ControlCapability::Phase { bits: 3 }],
            reconfigurability: Reconfigurability::Passive,
            rows: 16,
            cols: 16,
            pitch_m: band.wavelength_m() / 2.0,
            efficiency: 0.8,
            control_delay_us: None,
            config_slots: 1,
            cost_per_element_usd: 0.002,
            base_cost_usd: 2.0,
            power_mw: 0.0,
        };
        vec![prog, passive]
    }

    fn goal_and_world() -> (FloorPlan, Vec3, Vec<Anchor>, CoverageGoal) {
        let scen = two_room_apartment();
        let anchors = vec![
            Anchor {
                name: "bedroom-north".into(),
                pose: *scen.anchor("bedroom-north").unwrap(),
            },
            Anchor {
                name: "bedroom-wall".into(),
                pose: *scen.anchor("bedroom-wall").unwrap(),
            },
        ];
        let goal = CoverageGoal {
            points: scen.target().sample_grid(4, 4, 1.2, 0.4),
            validation_points: Some(scen.target().sample_grid(6, 6, 1.2, 0.4)),
            median_snr_db: 15.0,
        };
        (scen.plan.clone(), scen.ap_pose.position, anchors, goal)
    }

    #[test]
    fn finds_cheapest_meeting_goal() {
        let (plan, ap, anchors, goal) = goal_and_world();
        let deployment =
            plan_deployment(&plan, ap, &anchors, &templates(), &goal).expect("feasible");
        assert!(deployment.median_snr_db >= goal.median_snr_db);
        // The passive template is orders of magnitude cheaper; with a
        // doorway-visible anchor it should win the search.
        assert!(
            deployment.cost_usd < 50.0,
            "expected a cheap passive plan, got {} at ${}",
            deployment.spec.model,
            deployment.cost_usd
        );
        assert_eq!(deployment.anchor, "bedroom-north");
    }

    #[test]
    fn infeasible_goal_returns_none() {
        let (plan, ap, anchors, mut goal) = goal_and_world();
        goal.median_snr_db = 90.0; // beyond any 64×64 surface
        assert!(plan_deployment(&plan, ap, &anchors, &templates(), &goal).is_none());
    }

    #[test]
    fn bad_anchor_is_avoided() {
        let (plan, ap, _, goal) = goal_and_world();
        let scen = two_room_apartment();
        // Only the AP-hidden anchor available: still solvable, but needs
        // more hardware than the doorway-visible anchor would.
        let hidden = vec![Anchor {
            name: "bedroom-wall".into(),
            pose: *scen.anchor("bedroom-wall").unwrap(),
        }];
        let both_plan = plan_deployment(
            &plan,
            ap,
            &[
                hidden[0].clone(),
                Anchor {
                    name: "bedroom-north".into(),
                    pose: *scen.anchor("bedroom-north").unwrap(),
                },
            ],
            &templates(),
            &goal,
        )
        .expect("feasible");
        if let Some(hidden_plan) = plan_deployment(&plan, ap, &hidden, &templates(), &goal) {
            assert!(hidden_plan.cost_usd >= both_plan.cost_usd);
        }
        assert_eq!(both_plan.anchor, "bedroom-north");
    }
}
