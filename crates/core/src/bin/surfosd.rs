//! `surfosd` — the SurfOS operator console.
//!
//! Runs shell commands from a script file (first argument) or
//! interactively from stdin. See [`surfos::shell`] for the command set.
//!
//! ```text
//! cargo run --release -p surfos --bin surfosd -- deployment.surfos
//! echo "help" | cargo run --release -p surfos --bin surfosd
//! ```
//!
//! Observability flags (before the script path):
//!
//! - `--metrics-json PATH` — enable metrics collection and, on exit, write
//!   the full observability snapshot (counters, gauges, histograms, timer
//!   percentiles, span timings, event journal) as JSON to `PATH` (`-` for
//!   stdout, handy for piping into `jq`).
//! - `--deterministic-metrics` — write the run-invariant projection
//!   instead: wall-clock series (`*_ns`) are dropped, so two identical
//!   runs produce byte-identical files (used by `run_experiments.sh` to
//!   snapshot scenario metrics into `results/`).
//! - `--trace PATH` — flight-recorder timeline: record timestamped span
//!   and journal events and, on exit, write a Chrome Trace Event Format
//!   JSON file to `PATH` (`-` for stdout). Load it in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`; shard workers
//!   appear as named tracks (`shard=0`, `shard=1`, ...). Implies metrics
//!   collection.
//!
//! # Service mode
//!
//! `surfosd serve` turns the console into a long-running daemon speaking
//! the framed RPC protocol (see [`surfos::rpc`] and [`surfos::daemon`]):
//!
//! ```text
//! surfosd serve --listen 127.0.0.1:7464 --setup deployment.surfos
//! ```
//!
//! Flags: `--listen ADDR` (TCP; port 0 picks an ephemeral port, printed
//! as `surfosd: listening on ADDR`), `--unix PATH` (unix socket),
//! `--setup SCRIPT` (boot the kernel from a shell script; without it the
//! two-room demo scene is served), `--workers N`, `--max-conns N`,
//! `--tick-ms N` (kernel heartbeat; 0 = admission only), `--capacity N` /
//! `--per-tenant N` (lease quotas), `--duration-ms N` (self-stop for CI).
//! Without `--duration-ms` the daemon runs until stdin closes or reads a
//! `quit` line. The observability flags above compose with serve.

use std::io::{BufRead, Write};
use surfos::daemon::{demo_kernel, ServeOptions, Server};
use surfos::shell::Shell;

/// Parsed command line. Kept separate from `main` so the flag grammar is
/// unit-testable without spawning a process.
#[derive(Debug, Default, PartialEq)]
struct Args {
    metrics_json: Option<String>,
    deterministic: bool,
    trace: Option<String>,
    script_path: Option<String>,
    serve: Option<ServeArgs>,
}

/// The `serve` subcommand's flags.
#[derive(Debug, PartialEq)]
struct ServeArgs {
    listen: Option<String>,
    unix: Option<String>,
    setup: Option<String>,
    workers: usize,
    max_conns: usize,
    tick_ms: u64,
    capacity: usize,
    per_tenant: usize,
    duration_ms: Option<u64>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        let d = ServeOptions::default();
        ServeArgs {
            listen: None,
            unix: None,
            setup: None,
            workers: d.workers,
            max_conns: d.max_conns,
            tick_ms: d.tick_ms,
            capacity: d.capacity,
            per_tenant: d.per_tenant,
            duration_ms: None,
        }
    }
}

/// Parses surfosd's argument list (without the program name). Returns the
/// usage error message on bad input; the caller prints it and exits 2.
fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut out = Args::default();
    let mut args = argv.into_iter();
    let mut serving = false;
    while let Some(arg) = args.next() {
        // Flags shared by both modes.
        match arg.as_str() {
            "--metrics-json" => {
                match args.next() {
                    Some(path) => out.metrics_json = Some(path),
                    None => {
                        return Err("--metrics-json needs a path (or `-` for stdout)".into());
                    }
                }
                continue;
            }
            "--deterministic-metrics" => {
                out.deterministic = true;
                continue;
            }
            "--trace" => {
                match args.next() {
                    Some(path) => out.trace = Some(path),
                    None => {
                        return Err("--trace needs a path (or `-` for stdout)".into());
                    }
                }
                continue;
            }
            _ => {}
        }
        if serving {
            let serve = out.serve.as_mut().expect("serving implies serve args");
            match arg.as_str() {
                "--listen" => path_flag(&mut serve.listen, "--listen", args.next())?,
                "--unix" => path_flag(&mut serve.unix, "--unix", args.next())?,
                "--setup" => path_flag(&mut serve.setup, "--setup", args.next())?,
                "--workers" => serve.workers = num_flag("--workers", args.next())?,
                "--max-conns" => serve.max_conns = num_flag("--max-conns", args.next())?,
                "--tick-ms" => serve.tick_ms = num_flag("--tick-ms", args.next())?,
                "--capacity" => serve.capacity = num_flag("--capacity", args.next())?,
                "--per-tenant" => serve.per_tenant = num_flag("--per-tenant", args.next())?,
                "--duration-ms" => {
                    serve.duration_ms = Some(num_flag("--duration-ms", args.next())?)
                }
                other => return Err(format!("unknown serve flag {other}")),
            }
        } else {
            match arg.as_str() {
                "serve" if out.script_path.is_none() => {
                    serving = true;
                    out.serve = Some(ServeArgs::default());
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag {other}"));
                }
                other => out.script_path = Some(other.to_string()),
            }
        }
    }
    if let Some(serve) = &out.serve {
        if serve.listen.is_none() && serve.unix.is_none() {
            return Err("serve needs --listen ADDR and/or --unix PATH".into());
        }
    }
    Ok(out)
}

/// Parses a numeric flag operand.
fn num_flag<T: std::str::FromStr>(name: &str, value: Option<String>) -> Result<T, String> {
    let v = value.ok_or_else(|| format!("{name} needs a number"))?;
    v.parse().map_err(|_| format!("bad {name} value {v:?}"))
}

/// Stores a string flag operand.
fn path_flag(slot: &mut Option<String>, name: &str, value: Option<String>) -> Result<(), String> {
    match value {
        Some(v) => {
            *slot = Some(v);
            Ok(())
        }
        None => Err(format!("{name} needs a value")),
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("surfosd: {msg}");
            std::process::exit(2);
        }
    };

    if args.metrics_json.is_some() || args.trace.is_some() {
        surfos::obs::set_enabled(true);
    }
    if args.trace.is_some() {
        surfos::obs::trace::set_enabled(true);
    }

    if let Some(serve) = &args.serve {
        run_serve(&args, serve);
        return;
    }

    let mut shell = Shell::new();
    if let Some(path) = &args.script_path {
        let script = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("surfosd: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match shell.run_script(&script) {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("surfosd: {e}");
                std::process::exit(1);
            }
        }
        write_outputs(&args);
        return;
    }

    // Interactive: one command per line.
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    print!("surfosd> ");
    let _ = stdout.flush();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match shell.execute(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {}", e.what),
        }
        print!("surfosd> ");
        let _ = stdout.flush();
    }
    write_outputs(&args);
}

/// Boots a kernel (from `--setup` or the demo scene) and serves it until
/// `--duration-ms` elapses or stdin closes / reads `quit`.
fn run_serve(args: &Args, serve: &ServeArgs) {
    let kernel = match &serve.setup {
        Some(path) => {
            let script = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("surfosd: cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            let mut shell = Shell::new();
            if let Err(e) = shell.run_script(&script) {
                eprintln!("surfosd: {e}");
                std::process::exit(1);
            }
            match shell.into_kernel() {
                Some(k) => k,
                None => {
                    eprintln!(
                        "surfosd: setup script {path} did not boot a kernel \
                         (no deploy/ap/request command ran)"
                    );
                    std::process::exit(1);
                }
            }
        }
        None => demo_kernel(),
    };

    let opts = ServeOptions {
        tcp: serve.listen.clone(),
        unix: serve.unix.clone().map(Into::into),
        workers: serve.workers,
        max_conns: serve.max_conns,
        tick_ms: serve.tick_ms,
        capacity: serve.capacity,
        per_tenant: serve.per_tenant,
    };
    let server = match Server::start(kernel, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("surfosd: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    // The bound addresses go to stdout so scripts can scrape the real
    // port when `--listen 127.0.0.1:0` asked for an ephemeral one.
    if let Some(addr) = server.tcp_addr() {
        println!("surfosd: listening on {addr}");
    }
    if let Some(path) = server.unix_path() {
        println!("surfosd: listening on unix {}", path.display());
    }
    let _ = std::io::stdout().flush();

    match serve.duration_ms {
        Some(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        None => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                let line = line.trim();
                if line == "quit" || line == "exit" {
                    break;
                }
            }
        }
    }
    server.stop();
    println!("surfosd: stopped");
    write_outputs(args);
}

/// Dumps the metrics snapshot and/or trace timeline, as requested.
fn write_outputs(args: &Args) {
    if let Some(path) = args.metrics_json.as_deref() {
        let snap = surfos::obs::snapshot();
        let json = if args.deterministic {
            snap.deterministic_json()
        } else {
            snap.to_json()
        };
        write_output("metrics", path, &json);
    }
    if let Some(path) = args.trace.as_deref() {
        let json = surfos::obs::trace::export_chrome_json();
        write_output("trace", path, &json);
    }
}

fn write_output(what: &str, path: &str, json: &str) {
    if path == "-" {
        println!("{json}");
    } else if let Err(e) = std::fs::write(path, format!("{json}\n")) {
        eprintln!("surfosd: cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn bare_script_path() {
        let a = parse(&["demo.surfos"]).unwrap();
        assert_eq!(a.script_path.as_deref(), Some("demo.surfos"));
        assert_eq!(a.metrics_json, None);
        assert_eq!(a.trace, None);
        assert!(!a.deterministic);
    }

    #[test]
    fn stdout_sentinel_is_a_path_not_a_flag() {
        let a = parse(&["--metrics-json", "-", "demo.surfos"]).unwrap();
        assert_eq!(a.metrics_json.as_deref(), Some("-"));
        assert_eq!(a.script_path.as_deref(), Some("demo.surfos"));
        let a = parse(&["--trace", "-"]).unwrap();
        assert_eq!(a.trace.as_deref(), Some("-"));
    }

    #[test]
    fn flags_compose_in_any_order() {
        let a = parse(&[
            "--deterministic-metrics",
            "--trace",
            "t.json",
            "--metrics-json",
            "m.json",
            "demo.surfos",
        ])
        .unwrap();
        assert!(a.deterministic);
        assert_eq!(a.trace.as_deref(), Some("t.json"));
        assert_eq!(a.metrics_json.as_deref(), Some("m.json"));
        assert_eq!(a.script_path.as_deref(), Some("demo.surfos"));
    }

    #[test]
    fn missing_path_operands_error() {
        assert!(parse(&["--metrics-json"]).unwrap_err().contains("path"));
        assert!(parse(&["--trace"]).unwrap_err().contains("path"));
    }

    #[test]
    fn unknown_flags_error() {
        let err = parse(&["--metrics-yaml", "x"]).unwrap_err();
        assert!(err.contains("--metrics-yaml"), "{err}");
    }

    #[test]
    fn no_args_is_interactive() {
        assert_eq!(parse(&[]).unwrap(), Args::default());
    }

    #[test]
    fn serve_flags_parse() {
        let a = parse(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--unix",
            "/tmp/surfosd.sock",
            "--workers",
            "2",
            "--max-conns",
            "64",
            "--tick-ms",
            "50",
            "--capacity",
            "10",
            "--per-tenant",
            "3",
            "--duration-ms",
            "250",
            "--setup",
            "deploy.surfos",
        ])
        .unwrap();
        let s = a.serve.expect("serve mode");
        assert_eq!(s.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(s.unix.as_deref(), Some("/tmp/surfosd.sock"));
        assert_eq!(s.setup.as_deref(), Some("deploy.surfos"));
        assert_eq!(s.workers, 2);
        assert_eq!(s.max_conns, 64);
        assert_eq!(s.tick_ms, 50);
        assert_eq!(s.capacity, 10);
        assert_eq!(s.per_tenant, 3);
        assert_eq!(s.duration_ms, Some(250));
        assert_eq!(a.script_path, None);
    }

    #[test]
    fn serve_requires_an_address() {
        let err = parse(&["serve", "--workers", "2"]).unwrap_err();
        assert!(err.contains("--listen"), "{err}");
    }

    #[test]
    fn serve_composes_with_observability_flags() {
        let a = parse(&[
            "--metrics-json",
            "-",
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--deterministic-metrics",
        ])
        .unwrap();
        assert_eq!(a.metrics_json.as_deref(), Some("-"));
        assert!(a.deterministic);
        assert!(a.serve.is_some());
    }

    #[test]
    fn serve_rejects_bad_numbers_and_unknown_flags() {
        assert!(parse(&["serve", "--listen", "x", "--workers", "many"])
            .unwrap_err()
            .contains("--workers"));
        let err = parse(&["serve", "--listen", "x", "--frobnicate"]).unwrap_err();
        assert!(err.contains("serve flag"), "{err}");
    }

    #[test]
    fn serve_after_a_script_path_is_a_script_named_serve() {
        // `surfosd demo.surfos serve` keeps shell semantics: only a
        // leading `serve` selects service mode.
        let a = parse(&["demo.surfos", "serve"]).unwrap();
        assert!(a.serve.is_none());
        assert_eq!(a.script_path.as_deref(), Some("serve"));
    }
}
