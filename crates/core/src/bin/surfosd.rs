//! `surfosd` — the SurfOS operator console.
//!
//! Runs shell commands from a script file (first argument) or
//! interactively from stdin. See [`surfos::shell`] for the command set.
//!
//! ```text
//! cargo run --release -p surfos --bin surfosd -- deployment.surfos
//! echo "help" | cargo run --release -p surfos --bin surfosd
//! ```
//!
//! Observability flags (before the script path):
//!
//! - `--metrics-json PATH` — enable metrics collection and, on exit, write
//!   the full observability snapshot (counters, gauges, histograms, span
//!   timings, event journal) as JSON to `PATH` (`-` for stdout).
//! - `--deterministic-metrics` — write the run-invariant projection
//!   instead: wall-clock series (`*_ns`) are dropped, so two identical
//!   runs produce byte-identical files (used by `run_experiments.sh` to
//!   snapshot scenario metrics into `results/`).

use std::io::{BufRead, Write};
use surfos::shell::Shell;

fn main() {
    let mut shell = Shell::new();
    let mut metrics_json: Option<String> = None;
    let mut deterministic = false;
    let mut script_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-json" => match args.next() {
                Some(path) => metrics_json = Some(path),
                None => {
                    eprintln!("surfosd: --metrics-json needs a path (or `-` for stdout)");
                    std::process::exit(2);
                }
            },
            "--deterministic-metrics" => deterministic = true,
            other if other.starts_with("--") => {
                eprintln!("surfosd: unknown flag {other}");
                std::process::exit(2);
            }
            other => script_path = Some(other.to_string()),
        }
    }

    if metrics_json.is_some() {
        surfos::obs::set_enabled(true);
    }

    if let Some(path) = script_path {
        let script = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("surfosd: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match shell.run_script(&script) {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("surfosd: {e}");
                std::process::exit(1);
            }
        }
        write_metrics(metrics_json.as_deref(), deterministic);
        return;
    }

    // Interactive: one command per line.
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    print!("surfosd> ");
    let _ = stdout.flush();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match shell.execute(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {}", e.what),
        }
        print!("surfosd> ");
        let _ = stdout.flush();
    }
    write_metrics(metrics_json.as_deref(), deterministic);
}

/// Dumps the observability snapshot if `--metrics-json` was given.
fn write_metrics(path: Option<&str>, deterministic: bool) {
    let Some(path) = path else { return };
    let snap = surfos::obs::snapshot();
    let json = if deterministic {
        snap.deterministic_json()
    } else {
        snap.to_json()
    };
    if path == "-" {
        println!("{json}");
    } else if let Err(e) = std::fs::write(path, json + "\n") {
        eprintln!("surfosd: cannot write metrics to {path}: {e}");
        std::process::exit(1);
    }
}
