//! `surfosd` — the SurfOS operator console.
//!
//! Runs shell commands from a script file (first argument) or
//! interactively from stdin. See [`surfos::shell`] for the command set.
//!
//! ```text
//! cargo run --release -p surfos --bin surfosd -- deployment.surfos
//! echo "help" | cargo run --release -p surfos --bin surfosd
//! ```
//!
//! Observability flags (before the script path):
//!
//! - `--metrics-json PATH` — enable metrics collection and, on exit, write
//!   the full observability snapshot (counters, gauges, histograms, timer
//!   percentiles, span timings, event journal) as JSON to `PATH` (`-` for
//!   stdout, handy for piping into `jq`).
//! - `--deterministic-metrics` — write the run-invariant projection
//!   instead: wall-clock series (`*_ns`) are dropped, so two identical
//!   runs produce byte-identical files (used by `run_experiments.sh` to
//!   snapshot scenario metrics into `results/`).
//! - `--trace PATH` — flight-recorder timeline: record timestamped span
//!   and journal events and, on exit, write a Chrome Trace Event Format
//!   JSON file to `PATH` (`-` for stdout). Load it in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`; shard workers
//!   appear as named tracks (`shard=0`, `shard=1`, ...). Implies metrics
//!   collection.

use std::io::{BufRead, Write};
use surfos::shell::Shell;

/// Parsed command line. Kept separate from `main` so the flag grammar is
/// unit-testable without spawning a process.
#[derive(Debug, Default, PartialEq)]
struct Args {
    metrics_json: Option<String>,
    deterministic: bool,
    trace: Option<String>,
    script_path: Option<String>,
}

/// Parses surfosd's argument list (without the program name). Returns the
/// usage error message on bad input; the caller prints it and exits 2.
fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut out = Args::default();
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-json" => match args.next() {
                Some(path) => out.metrics_json = Some(path),
                None => {
                    return Err("--metrics-json needs a path (or `-` for stdout)".into());
                }
            },
            "--deterministic-metrics" => out.deterministic = true,
            "--trace" => match args.next() {
                Some(path) => out.trace = Some(path),
                None => {
                    return Err("--trace needs a path (or `-` for stdout)".into());
                }
            },
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            other => out.script_path = Some(other.to_string()),
        }
    }
    Ok(out)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("surfosd: {msg}");
            std::process::exit(2);
        }
    };

    if args.metrics_json.is_some() || args.trace.is_some() {
        surfos::obs::set_enabled(true);
    }
    if args.trace.is_some() {
        surfos::obs::trace::set_enabled(true);
    }

    let mut shell = Shell::new();
    if let Some(path) = &args.script_path {
        let script = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("surfosd: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match shell.run_script(&script) {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("surfosd: {e}");
                std::process::exit(1);
            }
        }
        write_outputs(&args);
        return;
    }

    // Interactive: one command per line.
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    print!("surfosd> ");
    let _ = stdout.flush();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match shell.execute(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {}", e.what),
        }
        print!("surfosd> ");
        let _ = stdout.flush();
    }
    write_outputs(&args);
}

/// Dumps the metrics snapshot and/or trace timeline, as requested.
fn write_outputs(args: &Args) {
    if let Some(path) = args.metrics_json.as_deref() {
        let snap = surfos::obs::snapshot();
        let json = if args.deterministic {
            snap.deterministic_json()
        } else {
            snap.to_json()
        };
        write_output("metrics", path, &json);
    }
    if let Some(path) = args.trace.as_deref() {
        let json = surfos::obs::trace::export_chrome_json();
        write_output("trace", path, &json);
    }
}

fn write_output(what: &str, path: &str, json: &str) {
    if path == "-" {
        println!("{json}");
    } else if let Err(e) = std::fs::write(path, format!("{json}\n")) {
        eprintln!("surfosd: cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn bare_script_path() {
        let a = parse(&["demo.surfos"]).unwrap();
        assert_eq!(a.script_path.as_deref(), Some("demo.surfos"));
        assert_eq!(a.metrics_json, None);
        assert_eq!(a.trace, None);
        assert!(!a.deterministic);
    }

    #[test]
    fn stdout_sentinel_is_a_path_not_a_flag() {
        let a = parse(&["--metrics-json", "-", "demo.surfos"]).unwrap();
        assert_eq!(a.metrics_json.as_deref(), Some("-"));
        assert_eq!(a.script_path.as_deref(), Some("demo.surfos"));
        let a = parse(&["--trace", "-"]).unwrap();
        assert_eq!(a.trace.as_deref(), Some("-"));
    }

    #[test]
    fn flags_compose_in_any_order() {
        let a = parse(&[
            "--deterministic-metrics",
            "--trace",
            "t.json",
            "--metrics-json",
            "m.json",
            "demo.surfos",
        ])
        .unwrap();
        assert!(a.deterministic);
        assert_eq!(a.trace.as_deref(), Some("t.json"));
        assert_eq!(a.metrics_json.as_deref(), Some("m.json"));
        assert_eq!(a.script_path.as_deref(), Some("demo.surfos"));
    }

    #[test]
    fn missing_path_operands_error() {
        assert!(parse(&["--metrics-json"]).unwrap_err().contains("path"));
        assert!(parse(&["--trace"]).unwrap_err().contains("path"));
    }

    #[test]
    fn unknown_flags_error() {
        let err = parse(&["--metrics-yaml", "x"]).unwrap_err();
        assert!(err.contains("--metrics-yaml"), "{err}");
    }

    #[test]
    fn no_args_is_interactive() {
        assert_eq!(parse(&[]).unwrap(), Args::default());
    }
}
