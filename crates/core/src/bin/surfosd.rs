//! `surfosd` — the SurfOS operator console.
//!
//! Runs shell commands from a script file (first argument) or
//! interactively from stdin. See [`surfos::shell`] for the command set.
//!
//! ```text
//! cargo run --release -p surfos --bin surfosd -- deployment.surfos
//! echo "help" | cargo run --release -p surfos --bin surfosd
//! ```

use std::io::{BufRead, Write};
use surfos::shell::Shell;

fn main() {
    let mut shell = Shell::new();
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = args.get(1) {
        let script = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("surfosd: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match shell.run_script(&script) {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("surfosd: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Interactive: one command per line.
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    print!("surfosd> ");
    let _ = stdout.flush();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match shell.execute(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {}", e.what),
        }
        print!("surfosd> ");
        let _ = stdout.flush();
    }
}
