//! The SurfOS kernel: the glue between broker, orchestrator, drivers and
//! the radio environment.
//!
//! The kernel's [`step`](SurfOS::step) loop is the system's heartbeat:
//!
//! 1. advance time — expired tasks are reaped and their slices freed;
//! 2. schedule the frame — live tasks get time × frequency × surface
//!    slices, shareable tasks grouped for joint optimization;
//! 3. optimize — each occupied time slot gets a jointly optimized
//!    multi-surface configuration (analytic-gradient Adam);
//! 4. actuate — configurations travel the *real* driver path: encoded to
//!    the binary wire format, decoded at the surface controller, written
//!    into the slot store after the design's control delay, projected to
//!    the hardware's granularity and quantization;
//! 5. sync — each surface's *realized* response (not the optimizer's
//!    ideal) becomes physical in the channel model, and the data plane
//!    picks the active slot locally from endpoint feedback.
//!
//! The gap between step 3's plan and step 5's reality is exactly the
//! hardware heterogeneity the paper's hardware manager exists to expose.

use crate::telemetry::Telemetry;
use surfos_broker::intent::{IntentContext, IntentTranslator, RuleBasedTranslator};
use surfos_broker::monitor::ServiceMonitor;
use surfos_channel::dynamics::{Blocker, BlockerWalk};
use surfos_channel::feedback::{FeedbackBus, FeedbackReport};
use surfos_channel::{ChannelSim, Endpoint, IndexStats, OperationMode, SurfaceInstance};
use surfos_em::array::ArrayGeometry;
use surfos_hw::driver::TimeMs;
use surfos_hw::spec::SurfaceMode;
use surfos_hw::wire::{self, ConfigFrame};
use surfos_hw::{DeviceRegistry, DriverError, Reconfigurability, SurfaceConfig, SurfaceDriver};
use surfos_orchestrator::task::TaskId;
use surfos_orchestrator::{Orchestrator, ServiceGoal, ServiceRequest};

/// Fractional resonance width of frequency-control surfaces (Scrolls-
/// class): the Lorentzian half-width as a fraction of the centre.
const RESONANCE_WIDTH: f64 = 0.15;

/// What one kernel step did.
#[derive(Debug, Default)]
pub struct StepReport {
    /// Tasks completed by expiry this step.
    pub reaped: Vec<TaskId>,
    /// Tasks the scheduler could not admit this frame.
    pub rejected: Vec<TaskId>,
    /// Time slots that received a fresh joint optimization.
    pub optimized_slots: Vec<usize>,
    /// Driver pushes that failed (surface id, error). Pushes to
    /// already-fabricated passive surfaces are expected and not listed.
    pub push_errors: Vec<(String, DriverError)>,
}

/// The SurfOS kernel.
pub struct SurfOS {
    orch: Orchestrator,
    registry: DeviceRegistry,
    /// driver id ↔ simulator surface index, in deployment order.
    bindings: Vec<(String, usize)>,
    translator: Box<dyn IntentTranslator>,
    feedback: FeedbackBus,
    telemetry: Telemetry,
    user_room: Option<String>,
    /// Non-AP endpoint ids, for grounding "my phone"-style references.
    known_devices: Vec<String>,
    /// Hash of the last wire image pushed per (surface, slot). Re-pushing
    /// an identical configuration would supersede the pending write and
    /// reset its control delay — a config slower than the frame period
    /// would then never commit — so unchanged configs are skipped.
    last_pushed: std::collections::HashMap<(String, usize), u64>,
    /// Per-task service health trackers, fed only while observability is
    /// enabled (measuring every service each step costs channel
    /// evaluations).
    monitors: std::collections::HashMap<TaskId, ServiceMonitor>,
    /// Scripted blocker trajectories the step loop replays: each walk
    /// contributes one person, repositioned every heartbeat. Blocker-only
    /// motion takes the simulator's incremental path (index refit +
    /// linearization refresh), never a structure rebuild.
    walks: Vec<BlockerWalk>,
    /// Simulator index counters at the last step boundary, so the
    /// telemetry deltas attribute rebuilds/refits to kernel steps.
    last_index_stats: IndexStats,
}

impl SurfOS {
    /// Boots a kernel over an environment model.
    pub fn new(sim: ChannelSim) -> Self {
        SurfOS {
            orch: Orchestrator::new(sim),
            registry: DeviceRegistry::new(),
            bindings: Vec::new(),
            translator: Box::new(RuleBasedTranslator),
            feedback: FeedbackBus::new(1024),
            telemetry: Telemetry::default(),
            user_room: None,
            known_devices: Vec::new(),
            last_pushed: std::collections::HashMap::new(),
            monitors: std::collections::HashMap::new(),
            walks: Vec::new(),
            last_index_stats: IndexStats::default(),
        }
    }

    /// Attaches a scripted blocker walk the step loop replays. Each walk
    /// adds one person to the environment; positions advance with kernel
    /// time, exercising the channel model's incremental (refit + refresh)
    /// path on every heartbeat.
    pub fn attach_walk(&mut self, walk: BlockerWalk) {
        self.walks.push(walk);
    }

    /// Replaces the environment's blockers directly (one-shot events; for
    /// continuous motion prefer [`SurfOS::attach_walk`]).
    pub fn set_blockers(&mut self, blockers: Vec<Blocker>) {
        self.orch.sim.set_blockers(blockers);
    }

    /// Replaces the intent backend (e.g. with an LLM client).
    pub fn set_translator(&mut self, translator: Box<dyn IntentTranslator>) {
        self.translator = translator;
    }

    /// Sets the room utterances like "this room" refer to.
    pub fn set_user_room(&mut self, room: impl Into<String>) {
        self.user_room = Some(room.into());
    }

    /// Deploys a surface: registers its driver and instantiates its
    /// physics in the channel model at `pose`. Returns the simulator
    /// surface index.
    ///
    /// # Panics
    /// Panics on duplicate ids (deployment bug).
    pub fn deploy_surface(
        &mut self,
        id: impl Into<String>,
        driver: Box<dyn SurfaceDriver>,
        pose: surfos_geometry::Pose,
    ) -> usize {
        let id = id.into();
        let spec = driver.spec().clone();
        let geometry = ArrayGeometry::new(spec.rows, spec.cols, spec.pitch_m, spec.pitch_m);
        let mode = match spec.mode {
            SurfaceMode::Reflective => OperationMode::Reflective,
            SurfaceMode::Transmissive => OperationMode::Transmissive,
            SurfaceMode::Transflective => OperationMode::Transflective,
        };
        let mut instance =
            SurfaceInstance::new(id.clone(), pose, geometry, mode).with_efficiency(spec.efficiency);
        // Frequency-control designs are resonant structures: their
        // scattering strength follows a Lorentzian around the (tunable)
        // resonance centre.
        if spec.supports("frequency") {
            instance = instance.with_resonance(spec.band.center_hz, RESONANCE_WIDTH);
        }
        let idx = self.orch.sim.add_surface(instance);

        // Wire the hardware's granularity into the optimizer.
        self.orch.tying.groups.push(None);
        match spec.reconfigurability {
            Reconfigurability::ColumnWise => self.orch.tying.tie_columns(idx, spec.rows, spec.cols),
            Reconfigurability::RowWise => self.orch.tying.tie_rows(idx, spec.rows, spec.cols),
            Reconfigurability::ElementWise | Reconfigurability::Passive => {}
        }

        // The physical surface starts in its driver's realized state.
        self.orch
            .sim
            .surface_mut(idx)
            .set_response(driver.realized_response());

        self.registry.register_surface(id.clone(), driver);
        self.bindings.push((id, idx));
        idx
    }

    /// Registers an endpoint (AP, client, tag).
    pub fn add_endpoint(&mut self, endpoint: Endpoint) {
        if endpoint.kind != surfos_channel::EndpointKind::AccessPoint {
            self.known_devices.push(endpoint.id.clone());
        }
        self.orch.add_endpoint(endpoint);
    }

    /// Translates an utterance into service tasks and admits them.
    pub fn handle_utterance(&mut self, utterance: &str) -> Vec<TaskId> {
        let context = self.intent_context();
        let requests = self.translator.translate(utterance, &context);
        requests.into_iter().map(|r| self.orch.submit(r)).collect()
    }

    fn intent_context(&self) -> IntentContext {
        let room = self
            .user_room
            .clone()
            .or_else(|| self.orch.sim.plan.rooms().first().map(|r| r.name.clone()))
            .unwrap_or_else(|| "here".to_string());
        IntentContext {
            room,
            devices: self.known_devices.clone(),
            bandwidth_hz: self.orch.sim.band.bandwidth_hz,
        }
    }

    /// Submits an explicit service request (surface-native applications).
    pub fn submit(&mut self, request: ServiceRequest) -> TaskId {
        self.orch.submit(request)
    }

    /// Ingests an endpoint feedback report (data-plane slot selection).
    pub fn ingest_feedback(&mut self, report: FeedbackReport) {
        self.feedback.publish(report);
    }

    /// One kernel heartbeat of `dt_ms` milliseconds.
    pub fn step(&mut self, dt_ms: u64) -> StepReport {
        let _step_span = surfos_obs::span!("kernel.step");
        let mut report = StepReport::default();
        self.telemetry.steps += 1;
        surfos_obs::add("kernel.steps", 1);

        // 1. Time & reaping.
        report.reaped = self.orch.tick(dt_ms);
        self.telemetry.tasks_reaped += report.reaped.len() as u64;
        surfos_obs::add("kernel.tasks_reaped", report.reaped.len() as u64);

        // 1b. Environment dynamics: replay attached walks at the new
        // time. A blocker-only mutation — the simulator refits its index
        // and refreshes cached linearizations instead of rebuilding.
        if !self.walks.is_empty() {
            let t_s = self.orch.now_ms() as f64 / 1000.0;
            let blockers = self.walks.iter().map(|w| w.blocker_at(t_s)).collect();
            self.orch.sim.set_blockers(blockers);
        }

        // 2. Schedule.
        let outcome = {
            let _span = surfos_obs::span!("kernel.schedule");
            self.orch.schedule_frame()
        };
        report.rejected = outcome.rejected;
        self.telemetry.frames_scheduled += 1;
        surfos_obs::add("kernel.frames_scheduled", 1);

        // 3. + 4. Optimize each occupied slot and push through drivers.
        let now: TimeMs = self.orch.now_ms();
        for slot in 0..self.orch.slots_per_frame {
            let optimized = {
                let _span = surfos_obs::span!("kernel.optimize");
                self.orch.optimize_slot(slot)
            };
            if optimized.is_none() {
                continue;
            }
            self.telemetry.optimizations += 1;
            surfos_obs::add("kernel.optimizations", 1);
            report.optimized_slots.push(slot);
            let _span = surfos_obs::span!("kernel.push");
            self.push_configs(slot, now, &mut report);
        }

        // Commit delayed writes.
        {
            let _span = surfos_obs::span!("kernel.commit");
            let committed = self.registry.tick_all(now) as u64;
            self.telemetry.writes_committed += committed;
            surfos_obs::add("kernel.writes_committed", committed);
        }

        // 5. Sync realized responses into the channel model.
        {
            let _span = surfos_obs::span!("kernel.sync");
            self.sync_realized();
        }

        // 6. Service health (observability only: no control decisions).
        if surfos_obs::enabled() {
            self.monitor_services();
        }

        // 7. Attribute the step's scene-index work: full rebuilds vs
        // blocker refits — the dashboard's view of how often the
        // incremental path carried a heartbeat.
        let ix = self.orch.sim.index_stats();
        let rebuilds = ix.builds - self.last_index_stats.builds;
        let refits = ix.refits - self.last_index_stats.refits;
        self.last_index_stats = ix;
        self.telemetry.index_rebuilds += rebuilds;
        surfos_obs::add("kernel.index_rebuilds", rebuilds);
        self.telemetry.index_refits += refits;
        surfos_obs::add("kernel.index_refits", refits);
        report
    }

    /// Pushes each surface's current (planned) phases as slot `slot`'s
    /// configuration, through the wire format and the driver.
    fn push_configs(&mut self, slot: usize, now: TimeMs, report: &mut StepReport) {
        for (id, idx) in &self.bindings {
            let phases: Vec<f64> = self.orch.sim.surfaces()[*idx]
                .response()
                .iter()
                .map(|r| r.arg())
                .collect();
            let driver = self.registry.surface_mut(id).expect("bound driver");
            let spec = driver.spec();
            let slot = slot.min(spec.config_slots - 1);
            let bits = spec.phase_bits().unwrap_or(8);

            // Control channel: encode, "transmit", decode, load.
            let frame = ConfigFrame {
                slot: slot as u16,
                config: SurfaceConfig::from_phases(&phases),
            };
            let bytes = wire::encode(&frame, bits, 0);
            let hash = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &b in bytes.iter() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            };
            if self.last_pushed.get(&(id.clone(), slot)) == Some(&hash) {
                self.telemetry.configs_skipped += 1;
                surfos_obs::add("kernel.configs_skipped", 1);
                continue; // unchanged: leave any pending write to commit
            }
            self.last_pushed.insert((id.clone(), slot), hash);
            self.telemetry.wire_bytes += bytes.len() as u64;
            surfos_obs::add("kernel.wire_bytes", bytes.len() as u64);
            match wire::decode(bytes) {
                Ok((decoded, _, _)) => {
                    match driver.load_config(decoded.slot as usize, decoded.config, now) {
                        Ok(()) => {
                            self.telemetry.configs_pushed += 1;
                            surfos_obs::add("kernel.configs_pushed", 1);
                        }
                        Err(DriverError::AlreadyFabricated) => {} // frozen passive
                        Err(e) => report.push_errors.push((id.clone(), e)),
                    }
                }
                Err(e) => report.push_errors.push((id.clone(), e)),
            }
        }
    }

    /// Copies every driver's realized response into the channel model and
    /// lets the data plane pick the active slot from endpoint feedback.
    pub fn sync_realized(&mut self) {
        for (id, idx) in &self.bindings {
            let driver = self.registry.surface_mut(id).expect("bound driver");
            if let Some(best) = self.feedback.best_slot(id) {
                let best = best.min(driver.spec().config_slots - 1);
                driver.activate_slot(best).expect("slot clamped");
            }
            let response = driver.realized_response();
            let pol = driver.realized_polarization();
            let shift = driver.realized_frequency_shift();
            let has_freq = driver.spec().supports("frequency");
            let center = driver.spec().band.center_hz;
            // Responses are evaluation inputs — push them through the
            // cache-preserving setter; only touch geometry (and so
            // invalidate cached linearizations) when it actually changed.
            self.orch.sim.set_surface_response(*idx, response);
            let geometry_changed = {
                let surf = &self.orch.sim.surfaces()[*idx];
                surf.polarization_rot != pol
                    || (has_freq && surf.resonance != Some((center + shift, RESONANCE_WIDTH)))
            };
            if geometry_changed {
                let surf = self.orch.sim.surface_mut(*idx);
                surf.polarization_rot = pol;
                if has_freq {
                    surf.resonance = Some((center + shift, RESONANCE_WIDTH));
                }
            }
        }
    }

    /// Compares each live task's measured metric against its requested
    /// target and journals health transitions (`broker.monitor` events).
    /// Purely observational: the kernel makes no control decisions from
    /// health, and skips the whole pass when observability is off.
    fn monitor_services(&mut self) {
        let _span = surfos_obs::span!("kernel.monitor");
        let live: Vec<TaskId> = self
            .orch
            .tasks
            .live_by_priority()
            .iter()
            .map(|t| t.id)
            .collect();
        self.monitors.retain(|id, _| live.contains(id));
        for id in live {
            let Some(task) = self.orch.tasks.get(id) else {
                continue;
            };
            // (target, higher_is_better) per goal; localization has no
            // channel-level metric to compare against.
            let (target, higher_is_better) = match task.request.goal {
                ServiceGoal::LinkQuality { min_snr_db, .. } => (min_snr_db, true),
                ServiceGoal::AreaCoverage { median_snr_db } => (median_snr_db, true),
                ServiceGoal::DeliveredPower { min_power_dbm } => (min_power_dbm, true),
                ServiceGoal::Suppression { max_leak_dbm } => (max_leak_dbm, false),
                ServiceGoal::LocalizationAccuracy { .. } => continue,
            };
            let label = format!(
                "task#{id} {:?}({})",
                task.request.kind, task.request.subject
            );
            let Some(metric) = self.orch.measure(id) else {
                continue;
            };
            self.monitors
                .entry(id)
                .or_insert_with(|| ServiceMonitor::new(label, target, higher_is_better))
                .observe(metric);
        }
    }

    /// Current health of a monitored task, if observability has fed it.
    pub fn service_health(&self, task: TaskId) -> Option<surfos_broker::monitor::Health> {
        self.monitors.get(&task).map(|m| m.health())
    }

    /// The orchestrator (task table, slices, service API).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orch
    }

    /// Mutable orchestrator access.
    pub fn orchestrator_mut(&mut self) -> &mut Orchestrator {
        &mut self.orch
    }

    /// The schedulable resource grid this kernel exposes — the same model
    /// [`Orchestrator::schedule_frame`] builds each frame. The service
    /// plane uses it as the admission precheck (mirroring
    /// [`ShardedKernel::resource_model`](crate::shard::ShardedKernel::resource_model)
    /// at campus scale): a daemon rejects new work outright when the grid
    /// has no surfaces or no slots instead of queueing tasks that can
    /// never run.
    pub fn resource_model(&self) -> surfos_orchestrator::scheduler::ResourceModel {
        surfos_orchestrator::scheduler::ResourceModel {
            slots_per_frame: self.orch.slots_per_frame,
            bands: 1,
            surfaces: self.orch.sim.surfaces().len(),
        }
    }

    /// The channel simulator (environment + surfaces).
    pub fn sim(&self) -> &ChannelSim {
        &self.orch.sim
    }

    /// The device registry.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// Mutable registry access (e.g. to fabricate passive surfaces).
    pub fn registry_mut(&mut self) -> &mut DeviceRegistry {
        &mut self.registry
    }

    /// Kernel counters.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry
    }

    /// Measured service metric for a task (see
    /// [`Orchestrator::measure`]).
    pub fn measure(&mut self, task: TaskId) -> Option<f64> {
        self.orch.measure(task)
    }

    /// The environment as seen by a *different* network at `band` — the
    /// paper's §2.1 interference check ("surfaces designed for 2.4 GHz may
    /// block 3 GHz cellular and 5 GHz Wi-Fi"). Every deployed surface
    /// appears as a partial obstruction whose transparency comes from its
    /// design's wideband frequency response; none of them scatters (their
    /// programmed behaviour is out of band).
    pub fn foreign_band_view(&self, band: surfos_em::band::Band) -> ChannelSim {
        let mut sim = ChannelSim::new(self.orch.sim.plan.clone(), band);
        for (id, idx) in &self.bindings {
            let spec = self.registry.surface(id).expect("bound driver").spec();
            let source = &self.orch.sim.surfaces()[*idx];
            let obstruction = SurfaceInstance::new(
                format!("{id}-offband"),
                source.pose,
                source.geometry,
                source.mode,
            )
            .with_efficiency(0.0) // no programmed scattering off-band
            .with_obstruction(spec.offband_transmission(band.center_hz));
            sim.add_surface(obstruction);
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_em::band::NamedBand;
    use surfos_geometry::scenario::two_room_apartment;
    use surfos_geometry::{Pose, Vec3};
    use surfos_hw::designs;
    use surfos_hw::driver::{PassiveDriver, ProgrammableDriver};
    use surfos_orchestrator::task::TaskState;

    /// A programmable 32×32 element-wise design for tests.
    fn prog_spec() -> surfos_hw::HardwareSpec {
        let mut s = designs::scatter_mimo();
        s.band = NamedBand::MmWave28GHz.band();
        s.rows = 32;
        s.cols = 32;
        s.pitch_m = 0.0053;
        s.control_delay_us = Some(1_000); // 1 ms
        s
    }

    fn boot() -> SurfOS {
        let scen = two_room_apartment();
        let sim = ChannelSim::new(scen.plan.clone(), NamedBand::MmWave28GHz.band());
        let mut os = SurfOS::new(sim);
        let pose = *scen.anchor("bedroom-north").unwrap();
        os.deploy_surface(
            "wall0",
            Box::new(ProgrammableDriver::new(prog_spec())),
            pose,
        );
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
        );
        os.add_endpoint(ap);
        os.add_endpoint(Endpoint::client("laptop", Vec3::new(6.5, 1.5, 1.2)));
        os.add_endpoint(Endpoint::client("phone", Vec3::new(7.0, 2.5, 1.0)));
        os.orchestrator_mut().adam_options.iters = 50;
        os
    }

    #[test]
    fn deploy_binds_driver_and_physics() {
        let os = boot();
        assert_eq!(os.sim().surfaces().len(), 1);
        assert_eq!(os.registry().surface_count(), 1);
        let surf = &os.sim().surfaces()[0];
        assert_eq!(surf.len(), 1024);
        // Initial physical state is the driver's realized (specular) one.
        assert!(surf.response().iter().all(|r| (r.abs() - 1.0).abs() < 1e-9));
    }

    #[test]
    fn utterance_to_tasks() {
        let mut os = boot();
        os.set_user_room("bedroom");
        let tasks = os.handle_utterance("I want to start VR gaming in this room");
        assert!(tasks.len() >= 2, "got {}", tasks.len());
        // One of them is a coverage task on the bedroom.
        let orch = os.orchestrator();
        assert!(tasks.iter().any(|t| {
            let task = orch.tasks.get(*t).unwrap();
            task.request.subject == "bedroom"
        }));
    }

    #[test]
    fn step_loop_improves_service_end_to_end() {
        let mut os = boot();
        let task = os.submit(ServiceRequest::optimize_coverage("bedroom", 25.0));
        let before = os.measure(task).expect("measurable");
        let report = os.step(10);
        assert!(report.rejected.is_empty());
        assert!(!report.optimized_slots.is_empty());
        assert!(report.push_errors.is_empty(), "{:?}", report.push_errors);
        // The pushed write commits after its 1 ms control delay, i.e. on
        // the next heartbeat.
        os.step(10);
        let t = os.telemetry();
        assert!(t.writes_committed > 0);
        assert!(t.wire_bytes > 0);
        let after = os.measure(task).expect("measurable");
        assert!(
            after > before + 5.0,
            "realized (quantized) config should still add real SNR: before={before:.1} after={after:.1}"
        );
        assert_eq!(
            os.orchestrator().tasks.get(task).unwrap().state,
            TaskState::Running
        );
    }

    #[test]
    fn kernel_ticks_reuse_scene_index() {
        let mut os = boot();
        os.submit(ServiceRequest::optimize_coverage("bedroom", 25.0));
        // The first step may legitimately touch geometry (resonance sync
        // from the driver); after that the loop is steady-state.
        os.step(10);
        let index = os.sim().scene_index();
        os.step(10);
        os.step(10);
        assert!(
            std::sync::Arc::ptr_eq(&index, &os.sim().scene_index()),
            "steady-state kernel ticks must not rebuild the scene index"
        );
    }

    #[test]
    fn walk_ticks_refit_not_rebuild() {
        let mut os = boot();
        os.submit(ServiceRequest::optimize_coverage("bedroom", 25.0));
        os.attach_walk(BlockerWalk::new(
            vec![Vec3::xy(5.5, 1.0), Vec3::xy(7.0, 2.5)],
            1.4,
        ));
        // First step may touch geometry (resonance sync); settle first.
        os.step(10);
        os.step(10);
        let settled = os.telemetry();
        let structure = std::sync::Arc::clone(os.sim().scene_index().structure());
        for _ in 0..5 {
            os.step(10);
            assert!(
                std::sync::Arc::ptr_eq(&structure, os.sim().scene_index().structure()),
                "walk ticks must keep the wall BVH structure"
            );
        }
        let t = os.telemetry();
        assert_eq!(
            t.index_rebuilds, settled.index_rebuilds,
            "blocker-only steps must never rebuild the scene index"
        );
        assert!(
            t.index_refits >= settled.index_refits + 5,
            "each walk tick refits: {} -> {}",
            settled.index_refits,
            t.index_refits
        );
    }

    #[test]
    fn realized_response_is_quantized() {
        let mut os = boot();
        os.submit(ServiceRequest::optimize_coverage("bedroom", 25.0));
        os.step(10);
        let bits = os
            .registry()
            .surface("wall0")
            .unwrap()
            .spec()
            .phase_bits()
            .unwrap();
        for r in os.sim().surfaces()[0].response() {
            let phase = surfos_em::phase::wrap_phase(r.arg());
            let q = surfos_em::phase::quantize_phase(phase, bits);
            assert!(
                (phase - q).abs() < 1e-9 || (phase - q).abs() > std::f64::consts::TAU - 1e-9,
                "phase {phase} not on {bits}-bit lattice"
            );
        }
    }

    #[test]
    fn control_delay_defers_commit() {
        let scen = two_room_apartment();
        let sim = ChannelSim::new(scen.plan.clone(), NamedBand::MmWave28GHz.band());
        let mut os = SurfOS::new(sim);
        let mut spec = prog_spec();
        spec.control_delay_us = Some(50_000); // 50 ms
        let pose = *scen.anchor("bedroom-north").unwrap();
        os.deploy_surface("slow0", Box::new(ProgrammableDriver::new(spec)), pose);
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
        );
        os.add_endpoint(ap);
        os.orchestrator_mut().adam_options.iters = 30;
        os.submit(ServiceRequest::optimize_coverage("bedroom", 25.0));

        // First step (10 ms): optimization pushed but not yet committed —
        // the physical surface still shows the specular state.
        os.step(10);
        assert_eq!(os.telemetry().writes_committed, 0);
        assert!(os.sim().surfaces()[0]
            .response()
            .iter()
            .all(|r| (r.abs() - 1.0).abs() < 1e-9 && r.arg().abs() < 1e-9));

        // After the delay elapses, the write lands.
        os.step(60);
        assert!(os.telemetry().writes_committed > 0);
    }

    #[test]
    fn fabricated_passive_surface_is_not_an_error() {
        let scen = two_room_apartment();
        let sim = ChannelSim::new(scen.plan.clone(), NamedBand::MmWave60GHz.band());
        let mut os = SurfOS::new(sim);
        let mut spec = designs::milli_mirror();
        spec.rows = 16;
        spec.cols = 16;
        let pose = *scen.anchor("bedroom-north").unwrap();
        os.deploy_surface("mirror0", Box::new(PassiveDriver::new(spec)), pose);
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
        );
        os.add_endpoint(ap);
        os.orchestrator_mut().adam_options.iters = 20;
        os.submit(ServiceRequest::optimize_coverage("bedroom", 20.0));

        // First step configures the not-yet-fabricated pattern.
        let r1 = os.step(10);
        assert!(r1.push_errors.is_empty());
        // Freeze it.
        {
            let reg = os.registry_mut();
            let drv = reg.surface_mut("mirror0").unwrap();
            let passive = drv
                .as_any_mut()
                .downcast_mut::<PassiveDriver>()
                .expect("passive driver");
            passive.fabricate().unwrap();
        }
        // Subsequent pushes silently skip the frozen surface.
        let r2 = os.step(10);
        assert!(r2.push_errors.is_empty());
    }

    #[test]
    fn feedback_selects_active_slot() {
        let mut os = boot();
        os.submit(ServiceRequest::optimize_coverage("bedroom", 25.0));
        os.step(10);
        // Report that slot 2 serves the client best.
        for t in 0..3 {
            os.ingest_feedback(FeedbackReport {
                endpoint_id: "laptop".into(),
                surface_id: "wall0".into(),
                config_slot: 2,
                rss_dbm: -50.0,
                timestamp_ms: t,
            });
        }
        os.sync_realized();
        assert_eq!(os.registry().surface("wall0").unwrap().active_slot(), 2);
    }

    #[test]
    fn telemetry_accumulates() {
        let mut os = boot();
        os.submit(ServiceRequest::optimize_coverage("bedroom", 25.0));
        os.step(10);
        os.step(10);
        let t = os.telemetry();
        assert_eq!(t.steps, 2);
        assert_eq!(t.frames_scheduled, 2);
        assert!(t.optimizations >= 2);
        // The second step's configs are identical and deduplicated, so
        // exactly the first step's pushes are counted — and committed.
        assert!(t.configs_pushed >= 1);
        assert!(t.writes_committed >= 1);
    }

    #[test]
    fn foreign_band_view_exposes_crossband_blocking() {
        // A 2.4 GHz LAIA standing mid-path between a 3.5 GHz base station
        // and its user shows up as measurable attenuation in the foreign
        // band's view of the environment (§2.1).
        let sim = ChannelSim::new(
            surfos_geometry::FloorPlan::new(),
            NamedBand::Ism2_4GHz.band(),
        );
        let mut os = SurfOS::new(sim);
        let pose = Pose::wall_mounted(Vec3::new(3.0, 0.0, 1.5), Vec3::X);
        os.deploy_surface(
            "laia0",
            Box::new(ProgrammableDriver::new(designs::laia())),
            pose,
        );

        let foreign = os.foreign_band_view(NamedBand::Cellular3_5GHz.band());
        let mut tx = Endpoint::client("bs", Vec3::new(0.0, 0.0, 1.5));
        tx.pattern = surfos_em::antenna::ElementPattern::Isotropic;
        let mut rx = Endpoint::client("ue", Vec3::new(6.0, 0.0, 1.5));
        rx.pattern = surfos_em::antenna::ElementPattern::Isotropic;
        let obstructed = foreign.rss_dbm(&tx, &rx);

        let clear = ChannelSim::new(
            surfos_geometry::FloorPlan::new(),
            NamedBand::Cellular3_5GHz.band(),
        )
        .rss_dbm(&tx, &rx);
        let loss = clear - obstructed;
        assert!(
            loss > 0.4,
            "2.4 GHz surface must bother 3.5 GHz cellular: {loss:.2} dB"
        );

        // Far off-band (60 GHz) the same structure is essentially
        // transparent.
        let far = os.foreign_band_view(NamedBand::MmWave60GHz.band());
        let clear60 = ChannelSim::new(
            surfos_geometry::FloorPlan::new(),
            NamedBand::MmWave60GHz.band(),
        )
        .rss_dbm(&tx, &rx);
        let loss60 = clear60 - far.rss_dbm(&tx, &rx);
        assert!(loss60 < 0.2, "60 GHz barely affected: {loss60:.2} dB");
    }

    #[test]
    fn frequency_retuning_revives_detuned_surface() {
        // A Scrolls-class surface resonant at 3.45 GHz is weak in a
        // 2.44 GHz network until its resonance is rolled down to the
        // operating band — the paper's frequency-control primitive with
        // real channel consequences.
        let band = NamedBand::Ism2_4GHz.band();
        let sim = ChannelSim::new(surfos_geometry::FloorPlan::new(), band);
        let mut os = SurfOS::new(sim);
        let mut spec = designs::scrolls();
        spec.rows = 16;
        spec.cols = 16;
        spec.reconfigurability = Reconfigurability::ElementWise; // isolate the frequency effect
        let pose = Pose::wall_mounted(Vec3::new(0.0, 0.0, 1.5), Vec3::X);
        os.deploy_surface("scroll0", Box::new(ProgrammableDriver::new(spec)), pose);

        let mut tx = Endpoint::client("tx", Vec3::new(4.0, 3.0, 1.5));
        tx.pattern = surfos_em::antenna::ElementPattern::Isotropic;
        let mut rx = Endpoint::client("rx", Vec3::new(4.0, -3.0, 1.5));
        rx.pattern = surfos_em::antenna::ElementPattern::Isotropic;

        // Focus the surface on the link; measure its contribution detuned.
        let focus_and_measure = |os: &mut SurfOS| {
            let lin = os.sim().linearize(&tx, &rx);
            let term = lin.linear.iter().find(|t| t.surface == 0);
            term.map(|t| t.coeffs.iter().map(|c| c.abs()).sum::<f64>())
                .unwrap_or(0.0)
        };
        let detuned = focus_and_measure(&mut os);

        // Roll the resonance down to the operating band via the driver.
        {
            let drv = os.registry_mut().surface_mut("scroll0").unwrap();
            let shift = NamedBand::Ism2_4GHz.band().center_hz - drv.spec().band.center_hz;
            drv.set_frequency(0, shift, 0).unwrap();
            drv.tick(1_000_000); // mechanical rolling is slow; let it land
        }
        os.sync_realized();
        let tuned = focus_and_measure(&mut os);
        assert!(
            tuned > 3.0 * detuned,
            "retuning must strengthen the surface: detuned={detuned:.3e} tuned={tuned:.3e}"
        );
    }

    #[test]
    fn polarization_rotation_propagates_to_channel() {
        let band = NamedBand::Ism2_4GHz.band();
        let sim = ChannelSim::new(surfos_geometry::FloorPlan::new(), band);
        let mut os = SurfOS::new(sim);
        let mut spec = designs::llama();
        spec.rows = 8;
        spec.cols = 8;
        let pose = Pose::wall_mounted(Vec3::new(0.0, 0.0, 1.5), Vec3::X);
        os.deploy_surface("llama0", Box::new(ProgrammableDriver::new(spec)), pose);
        {
            let drv = os.registry_mut().surface_mut("llama0").unwrap();
            drv.set_polarization(0, std::f64::consts::FRAC_PI_2, 0)
                .unwrap();
            drv.tick(1_000_000);
        }
        os.sync_realized();
        assert!(
            (os.sim().surfaces()[0].polarization_rot - std::f64::consts::FRAC_PI_2).abs() < 1e-12
        );
    }

    #[test]
    fn expired_sensing_task_reaped_in_step() {
        let mut os = boot();
        let t = os.submit(ServiceRequest::enable_sensing("bedroom", 0.05));
        os.step(10); // schedules it
        assert_eq!(
            os.orchestrator().tasks.get(t).unwrap().state,
            TaskState::Running
        );
        let report = os.step(100); // 110 ms > 50 ms duration
        assert_eq!(report.reaped, vec![t]);
    }
}
