//! # SurfOS
//!
//! An operating system for programmable radio environments — a full
//! reproduction of the system proposed in *"SurfOS: Towards an Operating
//! System for Programmable Radio Environments"* (HotNets '24).
//!
//! Metasurfaces give wireless networks signal-level programmability:
//! boards of sub-wavelength elements that steer, focus, filter or block
//! electromagnetic waves under software control. SurfOS is the missing
//! system layer above them — it orchestrates heterogeneous surface
//! hardware and multiplexes connectivity, sensing, powering and security
//! services over it, the way an OS multiplexes processes over CPUs.
//!
//! ## Architecture (paper §3)
//!
//! ```text
//!   user space   │  apps, intents ("start VR gaming in this room")
//!                │      ↓ service broker (surfos-broker)
//!   "kernel"     │  surface orchestrator (surfos-orchestrator)
//!                │      ↓ unified driver APIs (surfos-hw)
//!   hardware     │  heterogeneous surfaces + APs + sensors
//!   substrate    │  channel simulator (surfos-channel) + geometry + EM
//! ```
//!
//! The [`SurfOS`] kernel ties the layers: it owns the device registry and
//! the orchestrator, grounds natural-language intents into service tasks,
//! and runs the schedule → optimize → actuate loop, pushing every
//! configuration through the real driver path (wire encoding, control
//! delays, granularity projection, phase quantization) before it takes
//! physical effect in the channel model.
//!
//! ## Quickstart
//!
//! ```
//! use surfos::SurfOS;
//! use surfos_channel::{ChannelSim, Endpoint};
//! use surfos_em::band::NamedBand;
//! use surfos_geometry::scenario::two_room_apartment;
//! use surfos_hw::{designs, ProgrammableDriver};
//!
//! let scen = two_room_apartment();
//! let sim = ChannelSim::new(scen.plan.clone(), NamedBand::MmWave28GHz.band());
//! let mut os = SurfOS::new(sim);
//!
//! // Deploy a published surface design at a mounting anchor.
//! let pose = *scen.anchor("bedroom-north").unwrap();
//! os.deploy_surface("wall0", Box::new(ProgrammableDriver::new(designs::nr_surface())), pose);
//!
//! // Register infrastructure and a user device.
//! os.add_endpoint(Endpoint::access_point("ap0", scen.ap_pose));
//! os.add_endpoint(Endpoint::client("laptop", surfos_geometry::Vec3::new(6.5, 1.5, 1.2)));
//!
//! // Ask for service in plain language, then run the kernel loop.
//! let tasks = os.handle_utterance("I want to watch a movie on my laptop");
//! assert!(!tasks.is_empty());
//! os.step(100);
//! ```

pub mod autodeploy;
pub mod daemon;
pub mod kernel;
pub mod rpc;
pub mod shard;
pub mod shell;
pub mod telemetry;

pub use kernel::SurfOS;
pub use shard::{ShardedKernel, Zone};
pub use telemetry::Telemetry;

// Re-export the layer crates under one roof so applications can depend on
// `surfos` alone.
pub use surfos_broker as broker;
pub use surfos_channel as channel;
pub use surfos_em as em;
pub use surfos_geometry as geometry;
pub use surfos_hw as hw;
pub use surfos_obs as obs;
pub use surfos_orchestrator as orchestrator;
pub use surfos_sensing as sensing;
