//! The sharded kernel: one `SurfOS` instance per campus zone, run
//! concurrently, coupled only by explicit messages.
//!
//! The paper targets *dense, building-wide* deployments; a campus of
//! metal-shelled buildings is the natural scale-out unit because RF makes
//! it one: a bounce or relay path that enters one building and leaves
//! another crosses at least two metal shells (≥ 180 dB), which the channel
//! layer's uniform `TRANSMISSION_FLOOR` gate rounds to *exactly* zero.
//! Zones separated by such shells are therefore not approximately
//! independent but bit-exactly independent — a per-zone kernel computes
//! the same numbers the flat whole-campus kernel would, while touching a
//! fraction of the walls (see DESIGN §11 for the full argument).
//!
//! [`ShardedKernel`] owns one [`KernelShard`] per [`Zone`]. Each shard has
//! its own scene index, linearization cache, scheduler state and
//! orchestrator; shards never share a lock on the hot path. The three
//! cross-shard concerns travel as messages with deterministic delivery
//! order:
//!
//! - **Walker handoff** ([`ShardMessage::Walker`]): a [`BlockerWalk`]
//!   whose position leaves its owner's zone is handed to the zone that
//!   contains it. Positions are pure functions of global time, so a
//!   handoff transfers ownership, never state — replay is bit-identical
//!   at any shard count.
//! - **Service registration** ([`ControlMessage::Register`] /
//!   [`ControlMessage::Release`]): a campus service spanning several zones
//!   registers one task per zone; after each step the coordinator
//!   reconciles grants all-or-nothing, releasing partial grants.
//! - **Admission aggregation**: [`ShardedKernel::resource_model`] folds
//!   the per-shard scheduler models into one campus view used as the
//!   admission precheck for multi-zone services.
//!
//! Determinism: phase A (walker routing) and phase B (shard heartbeats)
//! run on a scoped worker pool ([`surfos_channel::par`]), but every
//! channel is drained in source-shard order and walker lists are re-sorted
//! by id after absorption, so the outcome is independent of thread count
//! and identical to serial execution. `SURFOS_THREADS=1` pins the pool for
//! CI.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use crate::kernel::{StepReport, SurfOS};
use crate::telemetry::Telemetry;
use surfos_channel::dynamics::BlockerWalk;
use surfos_channel::{par, CacheStats, ChannelSim, Endpoint, Linearization, SurfaceInstance};
use surfos_em::band::Band;
use surfos_geometry::{FloorPlan, Pose, Room, Vec3, Wall};
use surfos_hw::SurfaceDriver;
use surfos_orchestrator::scheduler::ResourceModel;
use surfos_orchestrator::task::{TaskId, TaskState};
use surfos_orchestrator::ServiceRequest;

/// A half-open plan-view rectangle `[x0, x1) × [y0, y1)` owning one shard.
///
/// Zones must tile the plane (adjacent zones share a boundary line; the
/// outermost cells extend to ±∞) so every walker position has exactly one
/// owner. The half-open convention makes boundary points unambiguous.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zone {
    /// West edge (inclusive).
    pub x0: f64,
    /// South edge (inclusive).
    pub y0: f64,
    /// East edge (exclusive).
    pub x1: f64,
    /// North edge (exclusive).
    pub y1: f64,
}

impl Zone {
    /// A zone from its edges.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Zone { x0, y0, x1, y1 }
    }

    /// The zone covering the whole plane — a 1-zone sharding is the flat
    /// kernel.
    pub fn all() -> Self {
        Zone::new(
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::INFINITY,
        )
    }

    /// Whether the zone owns plan-view point `p` (half-open on the
    /// east/north edges).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.x0 && p.x < self.x1 && p.y >= self.y0 && p.y < self.y1
    }

    /// Squared plan-view distance from `p` to the zone rectangle (0 when
    /// inside) — the deterministic tie-breaker for points no zone
    /// contains.
    fn distance_sq(&self, p: Vec3) -> f64 {
        let dx = (self.x0 - p.x).max(p.x - self.x1).max(0.0);
        let dy = (self.y0 - p.y).max(p.y - self.y1).max(0.0);
        dx * dx + dy * dy
    }
}

/// The zone index owning `p`: the first zone containing it, else the
/// nearest by clamped distance (first minimum — deterministic).
fn route(zones: &[Zone], p: Vec3) -> usize {
    if let Some(i) = zones.iter().position(|z| z.contains(p)) {
        return i;
    }
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, z) in zones.iter().enumerate() {
        let d = z.distance_sq(p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// A cross-shard data-plane message (shard → shard, one FIFO channel per
/// ordered pair).
#[derive(Debug)]
pub enum ShardMessage {
    /// A walker whose position left the sender's zone; the receiver owns
    /// it from this tick on. The walk is a pure function of global time,
    /// so ownership transfer carries no hidden state.
    Walker {
        /// Campus-wide walker id (assigned by [`ShardedKernel::attach_walk`]).
        id: u64,
        /// The scripted trajectory.
        walk: BlockerWalk,
    },
}

/// A coordinator → shard control message (drained before each heartbeat).
#[derive(Debug)]
pub enum ControlMessage {
    /// Admit one zone's part of a campus service.
    Register {
        /// Campus-wide service id.
        service: u64,
        /// The request this zone's orchestrator should admit.
        request: ServiceRequest,
    },
    /// Withdraw a previously registered part (all-or-nothing
    /// reconciliation failed in another zone). Releases its slices and
    /// retires the task.
    Release {
        /// Campus-wide service id.
        service: u64,
    },
}

/// A scripted blocker with its campus-wide identity.
#[derive(Debug)]
struct Walker {
    id: u64,
    walk: BlockerWalk,
}

/// Lifecycle of a multi-zone campus service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceStatus {
    /// Registered; grants not yet reconciled.
    Pending,
    /// Every zone's part is running.
    Granted,
    /// Admission failed (precheck or partial grant); all parts released.
    Rejected,
}

#[derive(Debug)]
struct CampusService {
    id: u64,
    parts: Vec<usize>,
    status: ServiceStatus,
}

/// One zone's kernel plus its communication endpoints.
pub struct KernelShard {
    index: usize,
    zone: Zone,
    /// The full zone table (routing for outbound handoffs).
    zones: Vec<Zone>,
    kernel: SurfOS,
    /// Links this shard evaluates each replay tick, in registration order.
    links: Vec<(Endpoint, Endpoint)>,
    /// Last replay outputs, one per local link.
    lins: Vec<Arc<Linearization>>,
    /// Owned walkers, sorted by campus id.
    walkers: Vec<Walker>,
    /// Lifetime count of handoffs this shard sent.
    outbound: u64,
    /// Senders to every shard (self-channel unused).
    peer_tx: Vec<Sender<ShardMessage>>,
    /// Receivers from every shard, indexed by source.
    peer_rx: Vec<Receiver<ShardMessage>>,
    ctrl_rx: Receiver<ControlMessage>,
    /// Campus service id → this shard's task for it.
    tasks: BTreeMap<u64, TaskId>,
}

impl KernelShard {
    /// The shard's kernel (scheduler state, telemetry, simulator).
    pub fn kernel(&self) -> &SurfOS {
        &self.kernel
    }

    /// Phase A: advance owned walkers to global time `t_s` and hand off
    /// any that left the zone. Send order is walker-id order (the owned
    /// list is kept sorted), so each channel's FIFO content is
    /// deterministic.
    fn route_walkers(&mut self, t_s: f64) {
        let mut kept = Vec::with_capacity(self.walkers.len());
        for w in self.walkers.drain(..) {
            let pos = w.walk.position_at(t_s);
            let dst = if self.zone.contains(pos) {
                self.index
            } else {
                route(&self.zones, pos)
            };
            if dst == self.index {
                kept.push(w);
            } else {
                self.outbound += 1;
                self.peer_tx[dst]
                    .send(ShardMessage::Walker {
                        id: w.id,
                        walk: w.walk,
                    })
                    .expect("peer shard channel closed");
            }
        }
        self.walkers = kept;
    }

    /// Phase B prologue: absorb inbound handoffs (source order, FIFO per
    /// channel) and restore the id sort.
    fn absorb(&mut self) {
        for rx in &self.peer_rx {
            while let Ok(ShardMessage::Walker { id, walk }) = rx.try_recv() {
                self.walkers.push(Walker { id, walk });
            }
        }
        self.walkers.sort_by_key(|w| w.id);
    }

    /// Drain control messages: admit registered parts, retire released
    /// ones (slices freed, task moved out of contention).
    fn control(&mut self) {
        while let Ok(msg) = self.ctrl_rx.try_recv() {
            match msg {
                ControlMessage::Register { service, request } => {
                    let tid = self.kernel.submit(request);
                    self.tasks.insert(service, tid);
                }
                ControlMessage::Release { service } => {
                    let Some(tid) = self.tasks.remove(&service) else {
                        continue;
                    };
                    let orch = self.kernel.orchestrator_mut();
                    match orch.tasks.get(tid).map(|t| t.state) {
                        Some(TaskState::Running) => {
                            orch.set_idle(tid); // releases slices
                            orch.tasks.set_state(tid, TaskState::Completed);
                        }
                        Some(TaskState::Idle) => orch.tasks.set_state(tid, TaskState::Completed),
                        Some(TaskState::Pending) => orch.tasks.set_state(tid, TaskState::Failed),
                        _ => {}
                    }
                }
            }
        }
    }

    /// Position the owned crowd at global time `t_s` (id order).
    fn set_blockers_at(&mut self, t_s: f64) {
        let blockers = self
            .walkers
            .iter()
            .map(|w| w.walk.blocker_at(t_s))
            .collect();
        self.kernel.set_blockers(blockers);
    }

    /// Evaluate every local link through the shard's linearization cache
    /// (hit / refresh / miss, exactly as the flat kernel would).
    fn eval_links(&mut self) {
        let sim = self.kernel.sim();
        self.lins = self
            .links
            .iter()
            .map(|(tx, rx)| sim.cached_linearization(tx, rx))
            .collect();
    }

    /// Freshly trace and linearize every local link (no cache).
    fn linearize_links(&self) -> Vec<Linearization> {
        let sim = self.kernel.sim();
        let pairs: Vec<(&Endpoint, &Endpoint)> =
            self.links.iter().map(|(tx, rx)| (tx, rx)).collect();
        sim.linearize_batch(&pairs)
    }
}

/// What one campus heartbeat did, across all shards.
#[derive(Debug, Default)]
pub struct CampusStepReport {
    /// Each shard's own step report, in shard order.
    pub per_shard: Vec<StepReport>,
    /// Campus services whose parts all ran this frame (newly granted).
    pub granted: Vec<u64>,
    /// Campus services rejected this frame (partial grants released).
    pub rejected: Vec<u64>,
    /// Walker handoffs that crossed a zone boundary this step.
    pub handoffs: u64,
}

/// A kernel-per-zone decomposition of one campus.
///
/// Construction partitions a flat [`FloorPlan`] by zone (global wall and
/// room order preserved within each shard; a wall straddling a boundary is
/// a construction bug and panics). Surfaces, endpoints, links, walks and
/// services route to the zone containing them; cross-zone links are
/// rejected — the geometry that justifies sharding also makes them dark.
pub struct ShardedKernel {
    shards: Vec<KernelShard>,
    zones: Vec<Zone>,
    ctrl_tx: Vec<Sender<ControlMessage>>,
    band: Band,
    now_ms: u64,
    walker_seq: u64,
    service_seq: u64,
    /// Worker-pool override (tests pin this; `None` → `SURFOS_THREADS` /
    /// hardware via [`par::configured_threads`]).
    threads: Option<usize>,
    /// Global link id → (shard, local index).
    links: Vec<(usize, usize)>,
    /// Global surface id → (shard, local index).
    surfaces: Vec<(usize, usize)>,
    /// Per shard: local surface index → global surface id.
    surface_globals: Vec<Vec<usize>>,
    services: Vec<CampusService>,
    /// Handoff total at the last step boundary (for per-step deltas).
    last_handoffs: u64,
}

impl ShardedKernel {
    /// Partitions `plan` into per-zone kernels.
    ///
    /// # Panics
    /// Panics when `zones` is empty or a wall's endpoints route to
    /// different zones (the plan was not cut along zone boundaries).
    pub fn new(plan: &FloorPlan, band: Band, zones: Vec<Zone>) -> Self {
        assert!(!zones.is_empty(), "at least one zone required");
        let n = zones.len();
        let mut local_plans: Vec<FloorPlan> = (0..n).map(|_| FloorPlan::new()).collect();
        for wall in plan.walls() {
            let owner = route(&zones, wall.a);
            assert_eq!(
                owner,
                route(&zones, wall.b),
                "wall straddles a zone boundary: {:?} -> {:?}",
                wall.a,
                wall.b
            );
            local_plans[owner].add_wall(Wall::new(wall.a, wall.b, wall.height, wall.material));
        }
        for room in plan.rooms() {
            let center = (room.min + room.max) * 0.5;
            local_plans[route(&zones, center)].add_room(Room::new(
                room.name.clone(),
                room.min,
                room.max,
            ));
        }

        // One FIFO channel per ordered shard pair (self-channels exist but
        // stay empty — uniform indexing beats special cases).
        let mut peer_tx: Vec<Vec<Sender<ShardMessage>>> = (0..n).map(|_| Vec::new()).collect();
        let mut peer_rx: Vec<Vec<Receiver<ShardMessage>>> = (0..n).map(|_| Vec::new()).collect();
        // Outer loop is the source shard, so peer_rx[dst] collects its
        // receivers in source order — exactly the drain order `absorb`
        // uses for deterministic delivery.
        for tx_row in peer_tx.iter_mut() {
            for rx_col in peer_rx.iter_mut() {
                let (tx, rx) = channel();
                tx_row.push(tx);
                rx_col.push(rx);
            }
        }

        let mut ctrl_tx = Vec::with_capacity(n);
        let mut shards = Vec::with_capacity(n);
        let mut rx_iter = peer_rx.into_iter();
        for (index, tx_row) in peer_tx.into_iter().enumerate() {
            let (ctl_tx, ctl_rx) = channel();
            ctrl_tx.push(ctl_tx);
            shards.push(KernelShard {
                index,
                zone: zones[index],
                zones: zones.clone(),
                kernel: SurfOS::new(ChannelSim::new(
                    std::mem::take(&mut local_plans[index]),
                    band,
                )),
                links: Vec::new(),
                lins: Vec::new(),
                walkers: Vec::new(),
                outbound: 0,
                peer_tx: tx_row,
                peer_rx: rx_iter.next().expect("one rx row per shard"),
                ctrl_rx: ctl_rx,
                tasks: BTreeMap::new(),
            });
        }

        ShardedKernel {
            shards,
            zones,
            ctrl_tx,
            band,
            now_ms: 0,
            walker_seq: 0,
            service_seq: 0,
            threads: None,
            links: Vec::new(),
            surfaces: Vec::new(),
            surface_globals: vec![Vec::new(); n],
            services: Vec::new(),
            last_handoffs: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning plan-view point `p`.
    pub fn zone_of(&self, p: Vec3) -> usize {
        route(&self.zones, p)
    }

    /// One shard, for inspection.
    pub fn shard(&self, index: usize) -> &KernelShard {
        &self.shards[index]
    }

    /// The operating band.
    pub fn band(&self) -> Band {
        self.band
    }

    /// Campus time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Pins the worker pool (`Some(1)` forces serial supersteps); `None`
    /// restores the `SURFOS_THREADS` / hardware default. Thread count
    /// never changes results, only wall-clock.
    pub fn set_worker_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    fn worker_count(&self) -> usize {
        self.threads
            .unwrap_or_else(par::configured_threads)
            .min(self.shards.len())
    }

    /// Adds a bare surface instance to the zone containing its pose and
    /// returns its campus-wide index. Mirrors the flat kernel's
    /// orchestrator wiring (one tying group slot per surface).
    pub fn add_surface(&mut self, surface: SurfaceInstance) -> usize {
        let shard = route(&self.zones, surface.pose.position);
        let orch = self.shards[shard].kernel.orchestrator_mut();
        let local = orch.sim.add_surface(surface);
        orch.tying.groups.push(None);
        let global = self.surfaces.len();
        self.surfaces.push((shard, local));
        self.surface_globals[shard].push(global);
        global
    }

    /// Deploys a driver-backed surface into the zone containing `pose`
    /// (full driver path: wire encoding, control delays, quantization).
    /// Returns the campus-wide surface index.
    pub fn deploy_surface(
        &mut self,
        id: impl Into<String>,
        driver: Box<dyn SurfaceDriver>,
        pose: Pose,
    ) -> usize {
        let shard = route(&self.zones, pose.position);
        let local = self.shards[shard].kernel.deploy_surface(id, driver, pose);
        let global = self.surfaces.len();
        self.surfaces.push((shard, local));
        self.surface_globals[shard].push(global);
        global
    }

    /// Registers an endpoint in the zone containing it; returns the shard
    /// index.
    pub fn add_endpoint(&mut self, endpoint: Endpoint) -> usize {
        let shard = route(&self.zones, endpoint.position());
        self.shards[shard].kernel.add_endpoint(endpoint);
        shard
    }

    /// Registers a link the campus evaluates every replay tick. Both
    /// endpoints must live in the same zone: with zones cut along metal
    /// shells, a cross-zone link is below the channel floor by
    /// construction, so asking for one is a deployment error.
    pub fn add_link(&mut self, tx: Endpoint, rx: Endpoint) -> Result<u64, String> {
        let zt = route(&self.zones, tx.position());
        let zr = route(&self.zones, rx.position());
        if zt != zr {
            return Err(format!(
                "link {}→{} spans zones {zt} and {zr}: cross-zone links are RF-dark",
                tx.id, rx.id
            ));
        }
        // One endpoint may serve several links (an AP with many clients);
        // register each id with the shard kernel once.
        let shard = &mut self.shards[zt];
        for ep in [&tx, &rx] {
            let seen = shard
                .links
                .iter()
                .any(|(a, b)| a.id == ep.id || b.id == ep.id);
            if !seen {
                shard.kernel.add_endpoint(ep.clone());
            }
        }
        let id = self.links.len() as u64;
        self.links.push((zt, shard.links.len()));
        shard.links.push((tx, rx));
        Ok(id)
    }

    /// Attaches a scripted walker; ownership starts at the zone containing
    /// its current position and follows it across boundaries via handoff
    /// messages. Returns the campus-wide walker id.
    pub fn attach_walk(&mut self, walk: BlockerWalk) -> u64 {
        let id = self.walker_seq;
        self.walker_seq += 1;
        let t_s = self.now_ms as f64 / 1000.0;
        let owner = route(&self.zones, walk.position_at(t_s));
        self.shards[owner].walkers.push(Walker { id, walk });
        self.shards[owner].walkers.sort_by_key(|w| w.id);
        id
    }

    /// The aggregated campus resource model: surfaces sum across shards;
    /// slots are the per-frame minimum (a multi-zone service must fit in
    /// every zone it spans).
    pub fn resource_model(&self) -> ResourceModel {
        ResourceModel {
            slots_per_frame: self
                .shards
                .iter()
                .map(|s| s.kernel.orchestrator().slots_per_frame)
                .min()
                .unwrap_or(0),
            bands: 1,
            surfaces: self
                .shards
                .iter()
                .map(|s| s.kernel.sim().surfaces().len())
                .sum(),
        }
    }

    /// Submits a campus service: one request per zone it spans. The
    /// aggregated resource model prechecks admission (a named zone with no
    /// deployed surface rejects immediately); parts that pass are
    /// registered via control messages and reconciled all-or-nothing after
    /// the next step. Returns the campus-wide service id.
    pub fn submit_service(&mut self, parts: Vec<(usize, ServiceRequest)>) -> u64 {
        let id = self.service_seq;
        self.service_seq += 1;
        let feasible = !parts.is_empty()
            && self.resource_model().slots_per_frame > 0
            && parts
                .iter()
                .all(|(z, _)| !self.shards[*z].kernel.sim().surfaces().is_empty());
        let status = if feasible {
            ServiceStatus::Pending
        } else {
            surfos_obs::add("kernel.shard.rejects", 1);
            ServiceStatus::Rejected
        };
        let shard_ids: Vec<usize> = parts.iter().map(|(z, _)| *z).collect();
        if feasible {
            for (zone, request) in parts {
                self.ctrl_tx[zone]
                    .send(ControlMessage::Register {
                        service: id,
                        request,
                    })
                    .expect("shard control channel closed");
            }
        }
        self.services.push(CampusService {
            id,
            parts: shard_ids,
            status,
        });
        id
    }

    /// Lifecycle state of a campus service.
    pub fn service_status(&self, id: u64) -> Option<ServiceStatus> {
        self.services.iter().find(|s| s.id == id).map(|s| s.status)
    }

    /// One campus heartbeat: route walkers (phase A, parallel), then run
    /// every shard's full kernel step (phase B, parallel), then reconcile
    /// multi-zone services and mirror aggregates (phase C, serial).
    pub fn step(&mut self, dt_ms: u64) -> CampusStepReport {
        self.now_ms += dt_ms;
        let t_s = self.now_ms as f64 / 1000.0;
        let threads = self.worker_count();
        par_shards(&mut self.shards, threads, |s| {
            let _obs = surfos_obs::scoped(&[("shard", s.index)]);
            let _span = surfos_obs::span!("kernel.shard.route");
            s.route_walkers(t_s)
        });
        let per_shard = par_shards(&mut self.shards, threads, |s| {
            // Per-shard label scope: every counter/span the kernel records
            // in this phase also lands under `{shard=N}`, and the worker's
            // flight-recorder track is named after the shard.
            let _obs = surfos_obs::scoped(&[("shard", s.index)]);
            s.absorb();
            s.control();
            s.set_blockers_at(t_s);
            s.kernel.step(dt_ms)
        });
        let mut report = CampusStepReport {
            per_shard,
            ..Default::default()
        };
        self.reconcile(&mut report);
        let total: u64 = self.shards.iter().map(|s| s.outbound).sum();
        report.handoffs = total - self.last_handoffs;
        self.last_handoffs = total;
        self.mirror_obs(report.handoffs);
        report
    }

    /// One replay tick: walker routing plus per-shard blocker update and
    /// cached link evaluation — the walk-replay hot path, no scheduling or
    /// optimization. Results land in [`ShardedKernel::linearizations`].
    pub fn replay_tick(&mut self, dt_ms: u64) {
        self.now_ms += dt_ms;
        let t_s = self.now_ms as f64 / 1000.0;
        let threads = self.worker_count();
        par_shards(&mut self.shards, threads, |s| {
            let _obs = surfos_obs::scoped(&[("shard", s.index)]);
            let _span = surfos_obs::span!("kernel.shard.route");
            s.route_walkers(t_s)
        });
        par_shards(&mut self.shards, threads, |s| {
            let _obs = surfos_obs::scoped(&[("shard", s.index)]);
            let _span = surfos_obs::span!("kernel.shard.eval");
            s.absorb();
            s.set_blockers_at(t_s);
            s.eval_links();
        });
        let total: u64 = self.shards.iter().map(|s| s.outbound).sum();
        self.mirror_obs(total - self.last_handoffs);
        self.last_handoffs = total;
    }

    /// All-or-nothing grant reconciliation for pending campus services.
    fn reconcile(&mut self, report: &mut CampusStepReport) {
        for service in &mut self.services {
            if service.status != ServiceStatus::Pending {
                continue;
            }
            let states: Vec<Option<TaskState>> = service
                .parts
                .iter()
                .map(|&z| {
                    let shard = &self.shards[z];
                    shard
                        .tasks
                        .get(&service.id)
                        .and_then(|tid| shard.kernel.orchestrator().tasks.get(*tid))
                        .map(|t| t.state)
                })
                .collect();
            let running = states
                .iter()
                .filter(|s| **s == Some(TaskState::Running))
                .count();
            if running == service.parts.len() {
                service.status = ServiceStatus::Granted;
                report.granted.push(service.id);
                surfos_obs::add("kernel.shard.grants", 1);
            } else if running > 0 {
                // Partial grant: withdraw everywhere (the Release lands
                // before the next heartbeat's schedule frame).
                for &z in &service.parts {
                    self.ctrl_tx[z]
                        .send(ControlMessage::Release {
                            service: service.id,
                        })
                        .expect("shard control channel closed");
                }
                service.status = ServiceStatus::Rejected;
                report.rejected.push(service.id);
                surfos_obs::add("kernel.shard.rejects", 1);
            }
            // running == 0: stay pending, retry next frame.
        }
    }

    /// Mirrors campus aggregates into the obs registry under
    /// `kernel.shard.*` (gauges for lifetime stats, adds for flow).
    fn mirror_obs(&self, handoffs_delta: u64) {
        if !surfos_obs::enabled() {
            return;
        }
        surfos_obs::gauge("kernel.shard.count", self.shards.len() as f64);
        surfos_obs::add("kernel.shard.steps", 1);
        surfos_obs::add("kernel.shard.handoffs", handoffs_delta);
        let cs = self.cache_stats();
        surfos_obs::gauge("kernel.shard.lincache_hits", cs.hits as f64);
        surfos_obs::gauge("kernel.shard.lincache_misses", cs.misses as f64);
        surfos_obs::gauge("kernel.shard.lincache_refreshes", cs.refreshes as f64);
        surfos_obs::gauge("kernel.shard.lincache_evictions", cs.evictions as f64);
        surfos_obs::gauge("kernel.shard.lincache_len", cs.len as f64);
    }

    /// The last replay tick's linearizations in global link order, with
    /// surface indices remapped from shard-local to campus-global — the
    /// shape a flat single-scene evaluation of the same campus produces.
    pub fn linearizations(&self) -> Vec<Linearization> {
        self.links
            .iter()
            .map(|&(shard, local)| {
                remap(
                    &self.shards[shard].lins[local],
                    &self.surface_globals[shard],
                )
            })
            .collect()
    }

    /// Freshly traces and linearizes every registered link (batch path, no
    /// cache), shards in parallel, output in global link order with
    /// campus-global surface indices.
    pub fn linearize_links(&mut self) -> Vec<Linearization> {
        let threads = self.worker_count();
        let per_shard = par_shards(&mut self.shards, threads, |s| {
            let _obs = surfos_obs::scoped(&[("shard", s.index)]);
            let _span = surfos_obs::span!("kernel.shard.linearize");
            s.linearize_links()
        });
        self.links
            .iter()
            .map(|&(shard, local)| remap(&per_shard[shard][local], &self.surface_globals[shard]))
            .collect()
    }

    /// Lifetime walker handoffs across zone boundaries.
    pub fn handoffs(&self) -> u64 {
        self.shards.iter().map(|s| s.outbound).sum()
    }

    /// Per-shard linearization-cache statistics, summed campus-wide
    /// (exposed as `kernel.shard.lincache_*` gauges when observability is
    /// on).
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let cs = shard.kernel.sim().cache_stats();
            total.hits += cs.hits;
            total.misses += cs.misses;
            total.refreshes += cs.refreshes;
            total.evictions += cs.evictions;
            total.len += cs.len;
        }
        total
    }

    /// Per-shard kernel counters, merged field-wise campus-wide.
    pub fn telemetry(&self) -> Telemetry {
        let mut total = Telemetry::default();
        for shard in &self.shards {
            total.merge(&shard.kernel.telemetry());
        }
        total
    }
}

/// Remaps a shard-local linearization's surface indices to campus-global
/// ones. Coefficients are untouched — only the labels change.
fn remap(lin: &Linearization, globals: &[usize]) -> Linearization {
    let mut out = lin.clone();
    for term in &mut out.linear {
        term.surface = globals[term.surface];
    }
    for term in &mut out.bilinear {
        term.first = globals[term.first];
        term.second = globals[term.second];
    }
    out
}

/// Runs `f` once per shard on a scoped worker pool, results in shard
/// order. `threads <= 1` is the plain serial loop — bit-identical either
/// way, since shards only communicate through their channels and those are
/// drained in deterministic order afterwards.
fn par_shards<R, F>(shards: &mut [KernelShard], threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut KernelShard) -> R + Sync,
{
    if threads <= 1 || shards.len() <= 1 {
        return shards.iter_mut().map(f).collect();
    }
    let chunk_len = shards.len().div_ceil(threads);
    let f = &f;
    let mut out = Vec::with_capacity(shards.len());
    std::thread::scope(|scope| {
        let workers: Vec<_> = shards
            .chunks_mut(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<R>>()))
            .collect();
        // Joining in spawn order = chunk order = shard order.
        for worker in workers {
            out.extend(worker.join().expect("shard worker panicked"));
        }
    });
    out
}

// --- Demo campus (shell `campus` command, core-level tests) -------------

/// Extra clearance of the demo metal shell beyond each building's walls.
const DEMO_SHELL_MARGIN: f64 = 0.6;
/// Street width between adjacent demo shells.
const DEMO_STREET_WIDTH: f64 = 6.0;

/// A small ready-made campus: `buildings` copies of the two-room
/// apartment in a row, each wrapped in a metal isolation shell, with an
/// AP + client + surface + link per building, one coverage service per
/// building, and one walker pacing the street across every zone boundary.
pub struct CampusDemo {
    /// The sharded kernel, one zone per building.
    pub kernel: ShardedKernel,
    /// Campus wall count (apartment walls + 4 shell walls per building).
    pub walls: usize,
    /// Campus service ids, one per building, in building order.
    pub services: Vec<u64>,
}

/// Builds [`CampusDemo`] with one zone per building. See
/// [`demo_campus_with_zones`] for custom shardings (e.g. the 1-zone flat
/// reference).
pub fn demo_campus(buildings: usize) -> CampusDemo {
    demo_campus_with_zones(buildings, None)
}

/// [`demo_campus`] with an explicit zone table (must tile the plane and
/// cut only along streets). `None` derives one zone per building.
pub fn demo_campus_with_zones(buildings: usize, zones: Option<Vec<Zone>>) -> CampusDemo {
    assert!(buildings > 0, "campus needs at least one building");
    let scen = surfos_geometry::scenario::two_room_apartment();
    let band = surfos_em::band::NamedBand::MmWave28GHz.band();

    // Apartment plan-view bounding box.
    let (mut min, mut max) = (
        Vec3::new(f64::INFINITY, f64::INFINITY, 0.0),
        Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, 0.0),
    );
    for w in scen.plan.walls() {
        for p in [w.a, w.b] {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
    }
    let shell_h = scen
        .plan
        .walls()
        .iter()
        .fold(0.0f64, |h, w| h.max(w.height))
        + 1.0;
    let pitch = (max.x - min.x) + 2.0 * DEMO_SHELL_MARGIN + DEMO_STREET_WIDTH;

    let mut plan = FloorPlan::new();
    let mut derived_zones = Vec::with_capacity(buildings);
    for b in 0..buildings {
        let origin = Vec3::xy(b as f64 * pitch, 0.0);
        // Metal shell first, then the translated apartment walls: the
        // per-building block stays contiguous in global wall order.
        let (sx0, sy0) = (min.x - DEMO_SHELL_MARGIN, min.y - DEMO_SHELL_MARGIN);
        let (sx1, sy1) = (max.x + DEMO_SHELL_MARGIN, max.y + DEMO_SHELL_MARGIN);
        let corners = [
            (Vec3::xy(sx0, sy0), Vec3::xy(sx1, sy0)),
            (Vec3::xy(sx1, sy0), Vec3::xy(sx1, sy1)),
            (Vec3::xy(sx1, sy1), Vec3::xy(sx0, sy1)),
            (Vec3::xy(sx0, sy1), Vec3::xy(sx0, sy0)),
        ];
        for (a, bb) in corners {
            plan.add_wall(Wall::new(
                a + origin,
                bb + origin,
                shell_h,
                surfos_geometry::Material::Metal,
            ));
        }
        for w in scen.plan.walls() {
            plan.add_wall(Wall::new(w.a + origin, w.b + origin, w.height, w.material));
        }
        for room in scen.plan.rooms() {
            plan.add_room(Room::new(
                format!("b{b}.{}", room.name),
                room.min + origin,
                room.max + origin,
            ));
        }
        // Zone cell: street midlines, outer edges open to ±∞.
        let x0 = if b == 0 {
            f64::NEG_INFINITY
        } else {
            b as f64 * pitch + min.x - DEMO_SHELL_MARGIN - DEMO_STREET_WIDTH / 2.0
        };
        let x1 = if b + 1 == buildings {
            f64::INFINITY
        } else {
            (b + 1) as f64 * pitch + min.x - DEMO_SHELL_MARGIN - DEMO_STREET_WIDTH / 2.0
        };
        derived_zones.push(Zone::new(x0, f64::NEG_INFINITY, x1, f64::INFINITY));
    }

    let walls = plan.walls().len();
    let zones = zones.unwrap_or(derived_zones);
    let mut kernel = ShardedKernel::new(&plan, band, zones);

    let anchor = *scen.anchor("bedroom-north").expect("apartment anchor");
    let geom = surfos_em::array::ArrayGeometry::half_wavelength(16, 16, band.wavelength_m());
    let mut services = Vec::with_capacity(buildings);
    for b in 0..buildings {
        let origin = Vec3::xy(b as f64 * pitch, 0.0);
        let mut pose = anchor;
        pose.position += origin;
        kernel.add_surface(SurfaceInstance::new(
            format!("b{b}-wall"),
            pose,
            geom,
            surfos_channel::OperationMode::Reflective,
        ));
        let mut ap_pose = scen.ap_pose;
        ap_pose.position += origin;
        let ap = Endpoint::access_point(format!("b{b}-ap"), ap_pose);
        let client = Endpoint::client(format!("b{b}-laptop"), Vec3::new(6.5, 1.5, 1.2) + origin);
        kernel
            .add_link(ap, client)
            .expect("in-building link routes to one zone");
        let zone = kernel.zone_of(origin);
        services.push(kernel.submit_service(vec![(
            zone,
            ServiceRequest::optimize_coverage(format!("b{b}.{}", scen.target_room), 25.0),
        )]));
    }

    // One walker pacing the south street end to end — every zone boundary
    // crossed twice per loop.
    let street_y = min.y - DEMO_SHELL_MARGIN - 1.0;
    kernel.attach_walk(BlockerWalk::new(
        vec![
            Vec3::xy(min.x, street_y),
            Vec3::xy((buildings - 1) as f64 * pitch + max.x, street_y),
        ],
        1.4,
    ));

    CampusDemo {
        kernel,
        walls,
        services,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shards move onto scoped worker threads; everything they own must
    /// be `Send`.
    #[allow(dead_code)]
    fn assert_shard_is_send() {
        fn is_send<T: Send>() {}
        is_send::<KernelShard>();
        is_send::<ShardedKernel>();
    }

    #[test]
    fn zone_routing_is_total_and_deterministic() {
        let zones = vec![
            Zone::new(f64::NEG_INFINITY, f64::NEG_INFINITY, 10.0, f64::INFINITY),
            Zone::new(10.0, f64::NEG_INFINITY, f64::INFINITY, f64::INFINITY),
        ];
        assert_eq!(route(&zones, Vec3::xy(-100.0, 3.0)), 0);
        assert_eq!(route(&zones, Vec3::xy(9.999, 3.0)), 0);
        // Boundary point goes right (half-open).
        assert_eq!(route(&zones, Vec3::xy(10.0, 3.0)), 1);
        assert_eq!(route(&zones, Vec3::xy(1e6, -1e6)), 1);
        // Gap fallback: nearest zone, first minimum on ties.
        let gappy = vec![Zone::new(0.0, 0.0, 1.0, 1.0), Zone::new(3.0, 0.0, 4.0, 1.0)];
        assert_eq!(route(&gappy, Vec3::xy(1.5, 0.5)), 0);
        assert_eq!(route(&gappy, Vec3::xy(2.9, 0.5)), 1);
        assert_eq!(route(&gappy, Vec3::xy(2.0, 0.5)), 0); // equidistant → first
    }

    #[test]
    #[should_panic(expected = "straddles")]
    fn straddling_wall_is_rejected() {
        let mut plan = FloorPlan::new();
        plan.add_wall(Wall::new(
            Vec3::xy(5.0, 0.0),
            Vec3::xy(15.0, 0.0),
            3.0,
            surfos_geometry::Material::Concrete,
        ));
        let zones = vec![
            Zone::new(f64::NEG_INFINITY, f64::NEG_INFINITY, 10.0, f64::INFINITY),
            Zone::new(10.0, f64::NEG_INFINITY, f64::INFINITY, f64::INFINITY),
        ];
        ShardedKernel::new(&plan, surfos_em::band::NamedBand::MmWave28GHz.band(), zones);
    }

    #[test]
    fn cross_zone_link_is_rejected() {
        let demo = demo_campus(2);
        let mut kernel = demo.kernel;
        let err = kernel
            .add_link(
                Endpoint::client("a", Vec3::new(1.0, 1.0, 1.2)),
                Endpoint::client("b", Vec3::new(30.0, 1.0, 1.2)),
            )
            .unwrap_err();
        assert!(err.contains("RF-dark"), "{err}");
    }

    #[test]
    fn demo_campus_steps_grants_and_hands_off() {
        let mut demo = demo_campus(2);
        assert_eq!(demo.kernel.shard_count(), 2);
        assert_eq!(demo.kernel.resource_model().surfaces, 2);
        // Speed up the test: fewer optimizer iterations per shard.
        // (Accessible only pre-step via the demo's kernel internals; the
        // default is fine here — two small shards.)
        let mut granted = Vec::new();
        for _ in 0..3 {
            let report = demo.kernel.step(100);
            granted.extend(report.granted);
        }
        for s in &demo.services {
            assert_eq!(
                demo.kernel.service_status(*s),
                Some(ServiceStatus::Granted),
                "per-building coverage should be granted"
            );
        }
        assert!(granted.len() >= demo.services.len());
        // The street walker takes ~16 s per building pitch at 1.4 m/s;
        // run replay ticks until it crosses the midline.
        for _ in 0..400 {
            demo.kernel.replay_tick(100);
        }
        assert!(
            demo.kernel.handoffs() > 0,
            "street walker must cross the zone boundary"
        );
        // Telemetry merged across shards: both kernels stepped 3 times.
        assert_eq!(demo.kernel.telemetry().steps, 6);
        // Cache stats aggregate: replay ticks hit/refresh per shard.
        let cs = demo.kernel.cache_stats();
        assert!(cs.misses >= 2, "each link traced at least once: {cs:?}");
        assert!(
            cs.hits + cs.refreshes > 0,
            "replay ticks must reuse the cache: {cs:?}"
        );
    }

    #[test]
    fn sharded_replay_matches_flat_bitwise() {
        // The core smoke version of the bench-level proptest: a 2-building
        // demo campus replayed sharded (2 zones, forced parallel) vs flat
        // (1 zone, serial) must produce bit-identical linearizations —
        // including ticks where the street walker changes owner.
        let mut sharded = demo_campus(2).kernel;
        sharded.set_worker_threads(Some(2));
        let mut flat = demo_campus_with_zones(2, Some(vec![Zone::all()])).kernel;
        flat.set_worker_threads(Some(1));
        assert_eq!(flat.shard_count(), 1);
        for tick in 0..40 {
            sharded.replay_tick(500);
            flat.replay_tick(500);
            let a = sharded.linearizations();
            let b = flat.linearizations();
            assert_eq!(a.len(), b.len());
            for (la, lb) in a.iter().zip(&b) {
                assert_eq!(
                    la.constant.re.to_bits(),
                    lb.constant.re.to_bits(),
                    "tick {tick}: constant diverged"
                );
                assert_eq!(la.constant.im.to_bits(), lb.constant.im.to_bits());
                assert_eq!(la.linear.len(), lb.linear.len());
                for (ta, tb) in la.linear.iter().zip(&lb.linear) {
                    assert_eq!(ta.surface, tb.surface);
                    for (ca, cb) in ta.coeffs.iter().zip(&tb.coeffs) {
                        assert_eq!(ca.re.to_bits(), cb.re.to_bits());
                        assert_eq!(ca.im.to_bits(), cb.im.to_bits());
                    }
                }
                assert_eq!(la.bilinear.len(), lb.bilinear.len());
            }
        }
        assert!(
            sharded.handoffs() > 0,
            "the replay window must include a handoff"
        );
    }

    #[test]
    fn multi_zone_service_reconciles_all_or_nothing() {
        let mut demo = demo_campus(2);
        // A campus service spanning both buildings: both zones have a
        // surface, so it should be granted.
        let span = demo.kernel.submit_service(vec![
            (0, ServiceRequest::optimize_coverage("b0.bedroom", 20.0)),
            (1, ServiceRequest::optimize_coverage("b1.bedroom", 20.0)),
        ]);
        demo.kernel.step(100);
        assert_eq!(
            demo.kernel.service_status(span),
            Some(ServiceStatus::Granted)
        );
        // A service naming a zone with no surface fails the aggregated
        // admission precheck immediately.
        let hopeless = demo.kernel.submit_service(vec![(
            0,
            ServiceRequest::optimize_coverage("no-such-room", 20.0),
        )]);
        assert_eq!(
            demo.kernel.service_status(hopeless),
            Some(ServiceStatus::Pending)
        );
        // (Unservable subject: stays pending, never flip-flops.)
        demo.kernel.step(100);
        assert_ne!(
            demo.kernel.service_status(hopeless),
            Some(ServiceStatus::Granted)
        );
    }
}
