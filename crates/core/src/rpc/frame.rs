//! Length-prefixed framing for the SurfOS service plane.
//!
//! Every message on a service-plane connection — in either direction — is
//! one *frame*: a 4-byte little-endian length followed by exactly that many
//! bytes of UTF-8 JSON.
//!
//! ```text
//!   0        4                    4 + len
//!   ├────────┼────────────────────┤
//!   │ len LE │ JSON body (UTF-8)  │
//!   └────────┴────────────────────┘
//! ```
//!
//! The length counts the body only, never the header. Frames are
//! independent: a connection is a sequence of frames with no interleaving
//! or continuation, so a reader needs no state beyond "bytes seen so far".
//!
//! # Bounded allocation
//!
//! A frame length above [`MAX_FRAME_LEN`] is rejected *before* any buffer
//! is sized from it: a hostile or corrupt 4-byte prefix (e.g.
//! `0xffff_ffff`) costs the peer a [`FrameError::Oversized`] error, not a
//! 4 GiB allocation. [`FrameBuf`] only ever buffers bytes actually
//! received.
//!
//! # Examples
//!
//! Encoding and decoding one frame:
//!
//! ```
//! use surfos::rpc::frame::{encode_frame, FrameBuf};
//!
//! let bytes = encode_frame(r#"{"op":"ping"}"#);
//! assert_eq!(&bytes[..4], &13u32.to_le_bytes());
//!
//! let mut buf = FrameBuf::new();
//! buf.extend(&bytes);
//! assert_eq!(buf.next_frame().unwrap().as_deref(), Some(r#"{"op":"ping"}"#));
//! assert_eq!(buf.next_frame().unwrap(), None); // nothing left
//! ```
//!
//! A truncated frame stays pending until its bytes arrive:
//!
//! ```
//! use surfos::rpc::frame::{encode_frame, FrameBuf};
//!
//! let bytes = encode_frame("hello");
//! let mut buf = FrameBuf::new();
//! buf.extend(&bytes[..6]); // header + 2 of 5 body bytes
//! assert_eq!(buf.next_frame().unwrap(), None);
//! buf.extend(&bytes[6..]);
//! assert_eq!(buf.next_frame().unwrap().as_deref(), Some("hello"));
//! ```

use std::io::{Read, Write};

/// Hard upper bound on a frame body, in bytes (1 MiB). Large enough for a
/// full metrics snapshot, small enough that a corrupt length prefix cannot
/// drive an allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Size of the length prefix, in bytes.
pub const HEADER_LEN: usize = 4;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix names a body larger than [`MAX_FRAME_LEN`].
    /// Raised before any allocation is sized from the prefix.
    Oversized(usize),
    /// The stream ended inside a frame: `got` of `want` body bytes arrived
    /// before EOF.
    Truncated {
        /// Body bytes received before the stream ended.
        got: usize,
        /// Body bytes the header promised.
        want: usize,
    },
    /// The body is not valid UTF-8.
    NotUtf8,
    /// An I/O error from the underlying stream.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(len) => {
                write!(f, "frame length {len} exceeds maximum {MAX_FRAME_LEN}")
            }
            FrameError::Truncated { got, want } => {
                write!(f, "stream ended mid-frame ({got} of {want} body bytes)")
            }
            FrameError::NotUtf8 => write!(f, "frame body is not valid UTF-8"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encodes `body` as one frame: 4-byte little-endian length + the bytes.
///
/// # Panics
/// Panics if `body` exceeds [`MAX_FRAME_LEN`] — outbound frames are built
/// by this crate and a too-large one is a protocol bug, not peer input.
pub fn encode_frame(body: &str) -> Vec<u8> {
    assert!(
        body.len() <= MAX_FRAME_LEN,
        "outbound frame of {} bytes exceeds MAX_FRAME_LEN",
        body.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// Writes `body` as one frame to `w` (header + body, single flush).
pub fn write_frame(w: &mut impl Write, body: &str) -> std::io::Result<()> {
    w.write_all(&encode_frame(body))?;
    w.flush()
}

/// Reads exactly one frame from a *blocking* stream.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer closed
/// between frames); [`FrameError::Truncated`] when the stream ends inside
/// a header or body; [`FrameError::Oversized`] before allocating anything
/// for a hostile length prefix.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(FrameError::Truncated {
                    got: 0,
                    want: filled, // stream died inside the header itself
                });
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut body[got..])? {
            0 => return Err(FrameError::Truncated { got, want: len }),
            n => got += n,
        }
    }
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| FrameError::NotUtf8)
}

/// An incremental frame decoder for non-blocking streams.
///
/// Feed whatever bytes arrive with [`FrameBuf::extend`]; pop complete
/// frames with [`FrameBuf::next_frame`]. The buffer never grows past the
/// bytes actually received plus one frame: an oversized length prefix
/// errors out of `next_frame` before any body bytes are awaited.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted lazily.
    start: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Appends received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer at O(pending bytes).
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame, if one has fully arrived.
    ///
    /// `Ok(None)` means "incomplete — feed more bytes". An
    /// [`FrameError::Oversized`] or [`FrameError::NotUtf8`] frame poisons
    /// the stream (framing cannot resynchronize); the caller should drop
    /// the connection.
    pub fn next_frame(&mut self) -> Result<Option<String>, FrameError> {
        let pending = &self.buf[self.start..];
        if pending.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..HEADER_LEN].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(len));
        }
        if pending.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let body = std::str::from_utf8(&pending[HEADER_LEN..HEADER_LEN + len])
            .map_err(|_| FrameError::NotUtf8)?
            .to_owned();
        self.start += HEADER_LEN + len;
        Ok(Some(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single_and_back_to_back() {
        let mut buf = FrameBuf::new();
        buf.extend(&encode_frame("alpha"));
        buf.extend(&encode_frame(""));
        buf.extend(&encode_frame("β-utf8"));
        assert_eq!(buf.next_frame().unwrap().as_deref(), Some("alpha"));
        assert_eq!(buf.next_frame().unwrap().as_deref(), Some(""));
        assert_eq!(buf.next_frame().unwrap().as_deref(), Some("β-utf8"));
        assert_eq!(buf.next_frame().unwrap(), None);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let bytes = encode_frame(r#"{"op":"ping","id":7}"#);
        let mut buf = FrameBuf::new();
        for (i, b) in bytes.iter().enumerate() {
            if i + 1 < bytes.len() {
                buf.extend(std::slice::from_ref(b));
                assert_eq!(buf.next_frame().unwrap(), None, "complete at byte {i}?");
            } else {
                buf.extend(std::slice::from_ref(b));
            }
        }
        assert_eq!(
            buf.next_frame().unwrap().as_deref(),
            Some(r#"{"op":"ping","id":7}"#)
        );
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut buf = FrameBuf::new();
        buf.extend(&u32::MAX.to_le_bytes());
        // Rejected from the 4 header bytes alone — no body was ever needed,
        // so nothing was allocated from the hostile length.
        assert!(matches!(
            buf.next_frame(),
            Err(FrameError::Oversized(n)) if n == u32::MAX as usize
        ));
        assert!(buf.pending() <= HEADER_LEN);

        // One past the limit is rejected; the limit itself is not.
        let mut at_limit = FrameBuf::new();
        at_limit.extend(&((MAX_FRAME_LEN as u32 + 1).to_le_bytes()));
        assert!(matches!(
            at_limit.next_frame(),
            Err(FrameError::Oversized(_))
        ));
        let mut ok = FrameBuf::new();
        ok.extend(&(MAX_FRAME_LEN as u32).to_le_bytes());
        assert!(ok.next_frame().unwrap().is_none()); // just incomplete
    }

    #[test]
    fn blocking_reader_handles_eof_positions() {
        // Clean EOF at a boundary.
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
        // EOF inside the header.
        let mut partial_header: &[u8] = &[3, 0];
        assert!(matches!(
            read_frame(&mut partial_header),
            Err(FrameError::Truncated { .. })
        ));
        // EOF inside the body.
        let full = encode_frame("abcdef");
        let mut cut = &full[..full.len() - 2];
        assert!(matches!(
            read_frame(&mut cut),
            Err(FrameError::Truncated { got: 4, want: 6 })
        ));
        // Oversized before allocation.
        let mut huge: &[u8] = &[0xff, 0xff, 0xff, 0x7f, 1, 2, 3];
        assert!(matches!(
            read_frame(&mut huge),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn non_utf8_body_rejected() {
        let mut raw = 2u32.to_le_bytes().to_vec();
        raw.extend_from_slice(&[0xff, 0xfe]);
        let mut buf = FrameBuf::new();
        buf.extend(&raw);
        assert!(matches!(buf.next_frame(), Err(FrameError::NotUtf8)));
        let mut r: &[u8] = &raw;
        assert!(matches!(read_frame(&mut r), Err(FrameError::NotUtf8)));
    }

    #[test]
    fn compaction_keeps_buffer_bounded() {
        let mut buf = FrameBuf::new();
        let frame = encode_frame(&"x".repeat(1024));
        for _ in 0..100 {
            buf.extend(&frame);
            assert!(buf.next_frame().unwrap().is_some());
        }
        // After 100 consumed 1 KiB frames the retained buffer must not have
        // accumulated all 100 KiB.
        assert!(buf.buf.len() < 3 * frame.len(), "len={}", buf.buf.len());
    }
}
