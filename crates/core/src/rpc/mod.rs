//! The wire layer of the service plane: framing and protocol codec.
//!
//! `surfosd serve` and `surfos-loadgen` speak a hand-rolled protocol over
//! TCP or a unix socket. It has two layers, each its own module:
//!
//! * [`frame`] — length-prefixed framing: every message is a 4-byte
//!   little-endian length followed by that many bytes of UTF-8 JSON.
//!   Hostile lengths are rejected *before* any allocation.
//! * [`proto`] — the versioned request/response types and their JSON
//!   codec over the vendored serde shim.
//!
//! The daemon itself (session loop, dispatch, admission) lives in
//! [`daemon`](crate::daemon); this module is deliberately free of any
//! kernel or socket dependency so clients, servers, tests and benches all
//! share exactly one codec.
#![warn(missing_docs)]

pub mod frame;
pub mod proto;

pub use frame::{read_frame, write_frame, FrameBuf, FrameError, MAX_FRAME_LEN};
pub use proto::{ProtoError, Request, RequestEnvelope, Response, PROTOCOL_VERSION};
